"""Tests for pBlock, sBlock and the pools."""

import pytest

from repro.core.pblock import PBlock
from repro.core.pools import PPool, SPool
from repro.core.sblock import SBlock
from repro.errors import CudaInvalidValueError, CudaOutOfMemoryError
from repro.gpu.device import GpuDevice
from repro.units import GB, MB

CHUNK = 2 * MB


@pytest.fixture
def device():
    return GpuDevice(capacity=1 * GB)


def make_pblock(device, size):
    return PBlock.allocate(device, size, CHUNK)


class TestPBlockAllocate:
    def test_allocate_commits_chunks(self, device):
        block = make_pblock(device, 10 * MB)
        assert block.size == 10 * MB
        assert block.n_chunks == 5
        assert len(block.handles) == 5
        assert device.used_memory == 10 * MB

    def test_allocate_maps_fully(self, device):
        block = make_pblock(device, 6 * MB)
        assert device.vmm.is_fully_mapped(block.va, block.size)

    def test_unaligned_size_rejected(self, device):
        with pytest.raises(CudaInvalidValueError):
            make_pblock(device, 3 * MB)

    def test_oom_rolls_back(self, device):
        make_pblock(device, 900 * MB)
        used = device.used_memory
        with pytest.raises(CudaOutOfMemoryError):
            make_pblock(device, 200 * MB)
        assert device.used_memory == used

    def test_new_block_is_inactive(self, device):
        block = make_pblock(device, 4 * MB)
        assert not block.active
        assert block.owner_id is None

    def test_ids_unique(self, device):
        a = make_pblock(device, 2 * MB)
        b = make_pblock(device, 2 * MB)
        assert a.id != b.id


class TestPBlockSplit:
    def test_split_sizes(self, device):
        block = make_pblock(device, 10 * MB)
        left, right = block.split(device, 4 * MB)
        assert left.size == 4 * MB
        assert right.size == 6 * MB

    def test_split_conserves_physical_memory(self, device):
        block = make_pblock(device, 10 * MB)
        used = device.used_memory
        block.split(device, 2 * MB)
        assert device.used_memory == used

    def test_split_partitions_handles(self, device):
        block = make_pblock(device, 10 * MB)
        handles = list(block.handles)
        left, right = block.split(device, 4 * MB)
        assert left.handles == handles[:2]
        assert right.handles == handles[3 - 1:]

    def test_split_remaps_new_vas(self, device):
        block = make_pblock(device, 10 * MB)
        old_va = block.va
        left, right = block.split(device, 4 * MB)
        assert left.va != old_va and right.va != old_va
        assert device.vmm.is_fully_mapped(left.va, left.size)
        assert device.vmm.is_fully_mapped(right.va, right.size)

    def test_split_active_rejected(self, device):
        block = make_pblock(device, 10 * MB)
        block.active = True
        with pytest.raises(CudaInvalidValueError):
            block.split(device, 4 * MB)

    def test_split_unaligned_rejected(self, device):
        block = make_pblock(device, 10 * MB)
        with pytest.raises(CudaInvalidValueError):
            block.split(device, 3 * MB)

    def test_split_out_of_bounds_rejected(self, device):
        block = make_pblock(device, 10 * MB)
        with pytest.raises(CudaInvalidValueError):
            block.split(device, 10 * MB)


class TestPBlockDestroy:
    def test_destroy_returns_memory(self, device):
        block = make_pblock(device, 8 * MB)
        block.destroy(device)
        assert device.used_memory == 0

    def test_destroy_active_rejected(self, device):
        block = make_pblock(device, 4 * MB)
        block.active = True
        with pytest.raises(CudaInvalidValueError):
            block.destroy(device)


class TestSBlockStitch:
    def test_stitch_concatenates(self, device):
        a = make_pblock(device, 4 * MB)
        b = make_pblock(device, 6 * MB)
        sblock = SBlock.stitch(device, [a, b])
        assert sblock.size == 10 * MB
        assert device.vmm.is_fully_mapped(sblock.va, 10 * MB)

    def test_stitch_creates_no_physical_memory(self, device):
        a = make_pblock(device, 4 * MB)
        b = make_pblock(device, 4 * MB)
        used = device.used_memory
        SBlock.stitch(device, [a, b])
        assert device.used_memory == used

    def test_stitch_needs_two_members(self, device):
        a = make_pblock(device, 4 * MB)
        with pytest.raises(CudaInvalidValueError):
            SBlock.stitch(device, [a])

    def test_active_follows_members(self, device):
        a = make_pblock(device, 4 * MB)
        b = make_pblock(device, 4 * MB)
        sblock = SBlock.stitch(device, [a, b])
        assert not sblock.active
        a.active = True
        assert sblock.active

    def test_overlapping_sblocks_allowed(self, device):
        """Multiple sBlocks may alias the same pBlock (Figure 8)."""
        a = make_pblock(device, 4 * MB)
        b = make_pblock(device, 4 * MB)
        c = make_pblock(device, 4 * MB)
        s1 = SBlock.stitch(device, [a, b])
        s2 = SBlock.stitch(device, [b, c])
        assert s1.contains(b) and s2.contains(b)

    def test_destroy_keeps_members(self, device):
        a = make_pblock(device, 4 * MB)
        b = make_pblock(device, 4 * MB)
        sblock = SBlock.stitch(device, [a, b])
        used = device.used_memory
        sblock.destroy(device)
        assert device.used_memory == used
        assert device.vmm.is_fully_mapped(a.va, a.size)

    def test_destroy_allocated_rejected(self, device):
        a = make_pblock(device, 4 * MB)
        b = make_pblock(device, 4 * MB)
        sblock = SBlock.stitch(device, [a, b])
        sblock.owner_id = 1
        with pytest.raises(CudaInvalidValueError):
            sblock.destroy(device)

    def test_replace_member_with_split_parts(self, device):
        a = make_pblock(device, 4 * MB)
        b = make_pblock(device, 8 * MB)
        sblock = SBlock.stitch(device, [a, b])
        left, right = b.split(device, 2 * MB)
        sblock.replace_member(b, [left, right])
        assert sblock.members == [a, left, right]
        assert sblock.size == 12 * MB

    def test_replace_member_size_mismatch_rejected(self, device):
        a = make_pblock(device, 4 * MB)
        b = make_pblock(device, 8 * MB)
        c = make_pblock(device, 2 * MB)
        sblock = SBlock.stitch(device, [a, b])
        with pytest.raises(CudaInvalidValueError):
            sblock.replace_member(b, [c])

    def test_replace_nonmember_rejected(self, device):
        a = make_pblock(device, 4 * MB)
        b = make_pblock(device, 4 * MB)
        c = make_pblock(device, 4 * MB)
        sblock = SBlock.stitch(device, [a, b])
        with pytest.raises(CudaInvalidValueError):
            sblock.replace_member(c, [c])


class TestPools:
    def test_ppool_exact_inactive(self, device):
        pool = PPool()
        a = make_pblock(device, 4 * MB)
        b = make_pblock(device, 6 * MB)
        pool.add(a)
        pool.add(b)
        assert pool.exact_inactive(4 * MB) is a
        assert pool.exact_inactive(8 * MB) is None

    def test_ppool_exact_skips_active(self, device):
        pool = PPool()
        a = make_pblock(device, 4 * MB)
        a.active = True
        pool.add(a)
        assert pool.exact_inactive(4 * MB) is None

    def test_ppool_exact_prefers_unreferenced(self, device):
        pool = PPool()
        referenced = make_pblock(device, 4 * MB)
        referenced.sblock_refs = 2
        fresh = make_pblock(device, 4 * MB)
        pool.add(referenced)
        pool.add(fresh)
        assert pool.exact_inactive(4 * MB) is fresh

    def test_ppool_exact_falls_back_to_referenced(self, device):
        pool = PPool()
        referenced = make_pblock(device, 4 * MB)
        referenced.sblock_refs = 1
        pool.add(referenced)
        assert pool.exact_inactive(4 * MB) is referenced

    def test_ppool_inactive_descending_order(self, device):
        pool = PPool()
        sizes = [4 * MB, 10 * MB, 6 * MB]
        for size in sizes:
            pool.add(make_pblock(device, size))
        got = [b.size for b in pool.inactive_descending()]
        assert got == sorted(sizes, reverse=True)

    def test_ppool_totals(self, device):
        pool = PPool()
        a = make_pblock(device, 4 * MB)
        b = make_pblock(device, 6 * MB)
        b.active = True
        pool.add(a)
        pool.add(b)
        assert pool.total_bytes == 10 * MB
        assert pool.inactive_bytes == 4 * MB

    def test_spool_exact_inactive_only(self, device):
        spool = SPool()
        a = make_pblock(device, 4 * MB)
        b = make_pblock(device, 4 * MB)
        sblock = SBlock.stitch(device, [a, b])
        spool.add(sblock)
        assert spool.exact_inactive(8 * MB) is sblock
        a.active = True
        spool.member_activated(a)
        assert spool.exact_inactive(8 * MB) is None
        a.active = False
        spool.member_deactivated(a)
        assert spool.exact_inactive(8 * MB) is sblock

    def test_spool_lru_inactive(self, device):
        spool = SPool()
        blocks = []
        for i in range(3):
            x = make_pblock(device, 2 * MB)
            y = make_pblock(device, 2 * MB)
            s = SBlock.stitch(device, [x, y])
            s.last_used = 10 - i
            spool.add(s)
            blocks.append(s)
        assert spool.lru_inactive() is blocks[-1]

    def test_spool_referencing(self, device):
        spool = SPool()
        a = make_pblock(device, 4 * MB)
        b = make_pblock(device, 4 * MB)
        c = make_pblock(device, 4 * MB)
        s1 = SBlock.stitch(device, [a, b])
        s2 = SBlock.stitch(device, [b, c])
        spool.add(s1)
        spool.add(s2)
        assert set(id(s) for s in spool.referencing(b)) == {id(s1), id(s2)}
        assert spool.referencing(a) == [s1]

    def test_invariant_checks_pass(self, device):
        ppool, spool = PPool(), SPool()
        a = make_pblock(device, 4 * MB)
        b = make_pblock(device, 4 * MB)
        ppool.add(a)
        ppool.add(b)
        spool.add(SBlock.stitch(device, [a, b]))
        ppool.check_invariants()
        spool.check_invariants(ppool)

    def test_invariant_detects_dangling_member(self, device):
        ppool, spool = PPool(), SPool()
        a = make_pblock(device, 4 * MB)
        b = make_pblock(device, 4 * MB)
        ppool.add(a)  # b deliberately missing
        spool.add(SBlock.stitch(device, [a, b]))
        with pytest.raises(AssertionError):
            spool.check_invariants(ppool)
