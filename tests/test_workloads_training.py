"""Tests for the fine-tuning trace builder."""

import pytest

from repro.units import GB
from repro.workloads import StrategySet, TrainingWorkload, estimate_compute_us, get_model
from repro.workloads.request import Op
from repro.workloads.training import OPTIMIZER_STATE_FACTOR, _trainable_bytes
from repro.workloads.zero import ZeroConfig


def build(model="opt-1.3b", **kwargs):
    defaults = dict(batch_size=4, n_gpus=1, strategies="N", iterations=3)
    defaults.update(kwargs)
    return TrainingWorkload(model, **defaults)


class TestConstruction:
    def test_accepts_string_model_and_strategies(self):
        workload = build(strategies="LR")
        assert workload.model.name == "opt-1.3b"
        assert workload.strategies.lora

    def test_bad_batch_rejected(self):
        with pytest.raises(ValueError):
            build(batch_size=0)

    def test_label_is_descriptive(self):
        workload = build(strategies="RO", n_gpus=4)
        assert "opt-1.3b" in workload.label
        assert "RO" in workload.label
        assert "4gpu" in workload.label

    def test_zero_config_follows_gpus(self):
        assert not build(n_gpus=1).zero.shards_params
        assert build(n_gpus=4).zero.shards_params


class TestTraceWellFormedness:
    @pytest.mark.parametrize("strategies", ["N", "R", "LR", "RO", "LRO"])
    @pytest.mark.parametrize("n_gpus", [1, 4])
    def test_traces_validate(self, strategies, n_gpus):
        trace = build(strategies=strategies, n_gpus=n_gpus).build_trace()
        trace.validate()

    def test_iteration_markers_match(self):
        trace = build(iterations=5).build_trace()
        stats = trace.stats()
        assert stats.n_iterations == 5
        assert len(trace.compute_us_per_iter) == 5

    def test_determinism_same_seed(self):
        a = build(strategies="LRO", seed=3).build_trace()
        b = build(strategies="LRO", seed=3).build_trace()
        assert [(e.op, e.tensor, e.size) for e in a.events] == [
            (e.op, e.tensor, e.size) for e in b.events
        ]

    def test_seq_jitter_changes_sizes(self):
        a = build(seq_jitter=(0.5, 1.0), seed=1).build_trace()
        b = build(seq_jitter=(1.0, 1.0), seed=1).build_trace()
        assert a.stats().total_alloc_bytes != b.stats().total_alloc_bytes

    def test_meta_records_workload(self):
        trace = build(strategies="LR", n_gpus=4).build_trace()
        assert trace.meta["strategies"] == "LR"
        assert trace.meta["global_batch"] == 16


class TestFigure5Statistics:
    """+LR must produce more and smaller allocations (Figure 5)."""

    def test_lr_increases_allocation_count(self):
        plain = build(model="gpt-neox-20b", batch_size=2).build_trace().stats()
        lr = build(model="gpt-neox-20b", batch_size=2,
                   strategies="LR").build_trace().stats()
        assert lr.n_allocs > plain.n_allocs

    def test_lr_decreases_mean_size(self):
        plain = build(model="gpt-neox-20b", batch_size=2).build_trace().stats()
        lr = build(model="gpt-neox-20b", batch_size=2,
                   strategies="LR").build_trace().stats()
        assert lr.mean_alloc_bytes < plain.mean_alloc_bytes

    def test_recompute_reduces_peak_live(self):
        plain = build(batch_size=16).build_trace().stats()
        recompute = build(batch_size=16, strategies="R").build_trace().stats()
        assert recompute.peak_live_bytes < plain.peak_live_bytes

    def test_offload_reduces_persistent_memory(self):
        plain = build().build_trace().stats()
        offload = build(strategies="RO").build_trace().stats()
        assert offload.peak_live_bytes < plain.peak_live_bytes

    def test_lora_shrinks_optimizer_footprint(self):
        plain = build().build_trace()
        lora = build(strategies="LR").build_trace()
        # Setup allocations (before first ITER_START) shrink under LoRA.
        def setup_bytes(trace):
            total = 0
            for event in trace.events:
                if event.op is Op.ITER_START:
                    break
                if event.op is Op.ALLOC:
                    total += event.size
            return total
        assert setup_bytes(lora) < setup_bytes(plain) / 2


class TestDistributedEffects:
    def test_more_gpus_smaller_setup(self):
        one = build(n_gpus=1).build_trace()
        eight = build(n_gpus=8).build_trace()
        assert eight.stats().peak_live_bytes < one.stats().peak_live_bytes

    def test_sharded_runs_emit_gathers(self):
        trace = build(n_gpus=4).build_trace()
        gathers = [e for e in trace.events
                   if e.op is Op.ALLOC and ".g" in e.tensor]
        assert gathers

    def test_single_gpu_has_no_gathers(self):
        trace = build(n_gpus=1).build_trace()
        gathers = [e for e in trace.events
                   if e.op is Op.ALLOC and ".f.g" in e.tensor]
        assert not gathers

    def test_gather_window_bounded_by_prefetch(self):
        workload = build(n_gpus=4, strategies="N")
        trace = workload.build_trace()
        live_gathers = 0
        max_live = 0
        for event in trace.events:
            if ".f.g" in event.tensor:
                if event.op is Op.ALLOC:
                    live_gathers += 1
                    max_live = max(max_live, live_gathers)
                elif event.op is Op.FREE:
                    live_gathers -= 1
        # The prefetcher may briefly overlap one extra gather while it
        # allocates the next window before freeing the previous layer.
        assert max_live <= workload.zero.prefetch_depth + 1


class TestComputeModel:
    def test_more_tokens_more_time(self):
        model = get_model("opt-1.3b")
        strategies = StrategySet()
        zero = ZeroConfig()
        assert estimate_compute_us(model, 8, 2048, strategies, zero) > (
            estimate_compute_us(model, 4, 2048, strategies, zero)
        )

    def test_recompute_costs_extra_forward(self):
        model = get_model("opt-1.3b")
        zero = ZeroConfig()
        plain = estimate_compute_us(model, 8, 2048, StrategySet(), zero)
        recompute = estimate_compute_us(
            model, 8, 2048, StrategySet(recompute=True), zero
        )
        assert recompute == pytest.approx(plain * 8 / 6)

    def test_sharding_adds_comm_time(self):
        model = get_model("opt-13b")
        strategies = StrategySet()
        single = estimate_compute_us(model, 4, 2048, strategies, ZeroConfig(n_gpus=1))
        multi = estimate_compute_us(
            model, 4, 2048, strategies, ZeroConfig(n_gpus=4)
        )
        assert multi > single

    def test_offload_adds_transfer_time(self):
        model = get_model("opt-1.3b")
        zero = ZeroConfig()
        base = estimate_compute_us(model, 4, 2048, StrategySet(), zero)
        offload = estimate_compute_us(
            model, 4, 2048, StrategySet(offload=True), zero
        )
        assert offload > base

    def test_lora_trainable_bytes_tiny(self):
        model = get_model("opt-13b")
        full = _trainable_bytes(model, StrategySet())
        lora = _trainable_bytes(model, StrategySet(lora=True))
        assert lora < full / 100

    def test_optimizer_factor_is_adam_fp32(self):
        assert OPTIMIZER_STATE_FACTOR == 6  # 12 bytes per 2-byte param


class TestMemoryScale:
    def test_opt13b_4gpu_fits_80gb(self):
        trace = build(model="opt-13b", n_gpus=4, batch_size=4,
                      strategies="LR").build_trace()
        assert trace.stats().peak_live_bytes < 80 * GB

    def test_neox_large_batch_exceeds_80gb(self):
        trace = build(model="gpt-neox-20b", n_gpus=4, batch_size=72,
                      strategies="LR").build_trace()
        assert trace.stats().peak_live_bytes > 80 * GB
