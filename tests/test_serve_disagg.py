"""Disaggregated prefill/decode serving and cross-replica KV migration.

Covers the ``repro.serve.disagg`` subsystem end to end: phase-split
correctness (per-phase waits, merged lifecycles), the migration ledger
(``migrated_bytes`` billed on both ends, no KV parcel leaked or
stranded mid-flight, rollback on rejection), per-fleet autoscaling and
observability (fleet gauges, ``migrate_out``/``migrate_in`` trace
spans that survive Chrome-trace validation), the ``ServingSpec.disagg``
JSON surface, and — the load-bearing invariant — that a colocated run
is bit-for-bit untouched by the disagg machinery existing or having
run in the same process.
"""

import pytest

from repro import api
from repro.api import SpecError
from repro.obs import GaugeSampler, TraceRecorder, validate_chrome_trace
from repro.serve import (
    LengthSampler,
    PoissonArrivals,
    ServingConfig,
    run_serving,
    run_serving_disagg,
)
from repro.serve.disagg import DisaggServingResult
from repro.serve.kvcache import ChunkedKVCache
from repro.serve.preemption import RecomputePreemption
from repro.units import GB
from repro.workloads.models import get_model

from tests.test_equivalence_goldens import serving_digest

MODEL = "opt-1.3b"


def _stream(n=40, rate=4.0, seed=0, mean_prompt=512, mean_output=256):
    lengths = LengthSampler(mean_prompt=mean_prompt,
                            mean_output=mean_output)
    return PoissonArrivals(rate_per_s=rate).generate(n, lengths, seed=seed)


def _run(n=40, **kw):
    kw.setdefault("capacity", 8 * GB)
    return run_serving_disagg(_stream(n), MODEL, **kw)


class TestDisaggRun:
    def test_everything_completes_and_migrates(self):
        result = _run(prefill_replicas=2, decode_replicas=2)
        assert isinstance(result, DisaggServingResult)
        assert result.completed == 40
        assert result.rejected == 0
        # Every multi-token request's KV crossed the wire exactly once,
        # and nothing is still in flight at the end.
        multi = sum(1 for r in result.requests if r.output_tokens > 1)
        assert result.migrations == multi
        assert result.pending_imports == 0

    def test_migration_billed_on_both_ends(self):
        result = _run(prefill_replicas=1, decode_replicas=1)
        exported = sum(r.kv_metrics.migrated_bytes
                       for r in result.prefill_results)
        imported = sum(r.kv_metrics.migrated_bytes
                       for r in result.decode_results)
        assert exported > 0
        # A completed run imports every byte it exported; the merged
        # total is both directions, like swapped_bytes.
        assert imported == exported
        assert result.migrated_bytes == exported + imported
        assert result.kv_metrics.migrated_bytes == result.migrated_bytes

    def test_per_phase_wait_attribution(self):
        result = _run(prefill_replicas=1, decode_replicas=1)
        for request in result.requests:
            if not request.finished:
                continue
            assert request.prefill_wait_s is not None
            assert request.prefill_wait_s >= 0.0
            if request.output_tokens > 1:
                assert request.decode_wait_s is not None
                assert request.decode_wait_s >= 0.0
            # TTFT is entirely a prefill-side quantity: the first token
            # is emitted by the prefill clone's admission.
            assert request.first_token_s is not None
            assert request.first_token_s <= (request.finished_s
                                             or float("inf"))
        report = result.report()
        assert report.prefill_wait_s >= 0.0
        assert report.decode_wait_s >= 0.0
        assert report.migrated_mb > 0.0
        assert report.as_row()["migrated (MB)"] == round(
            report.migrated_mb, 1)

    def test_replica_ids_are_global(self):
        result = _run(prefill_replicas=2, decode_replicas=3)
        prefill_ids = {r.replica_id for r in result.prefill_results}
        decode_ids = {r.replica_id for r in result.decode_results}
        assert prefill_ids == {0, 1}
        assert decode_ids == {2, 3, 4}
        for request in result.requests:
            if request.finished and request.output_tokens > 1:
                assert request.replica in decode_ids

    def test_interconnect_speed_orders_makespans(self):
        """A faster link never makes the run slower (same workload)."""
        slow = _run(interconnect="pcie?gb_per_s=2")
        fast = _run(interconnect="nvlink?gb_per_s=600&latency_us=1")
        assert fast.makespan_s <= slow.makespan_s
        assert slow.migrated_bytes == fast.migrated_bytes

    def test_extras_and_summary_surface(self):
        result = _run(prefill_replicas=2, decode_replicas=1,
                      interconnect="nvlink")
        extras = result.extras()
        assert extras["prefill_replicas"] == 2
        assert extras["decode_replicas"] == 1
        assert extras["interconnect"] == "nvlink"
        assert extras["migrations"] == result.migrations
        assert extras["migrated_mb"] > 0
        assert result.summary().startswith("2P+1D over nvlink:")

    def test_streaming_report_matches_exact_counts(self):
        result = _run()
        exact = result.report()
        streaming = result.report(streaming=True)
        assert streaming.completed == exact.completed
        assert streaming.migrated_mb == exact.migrated_mb
        assert streaming.prefill_wait_s == pytest.approx(
            exact.prefill_wait_s)
        assert streaming.decode_wait_s == pytest.approx(
            exact.decode_wait_s)


class TestNoKvLeak:
    def _assert_no_leak(self, result):
        assert result.pending_imports == 0
        metrics = result.kv_metrics
        assert metrics.kv_allocs == metrics.kv_frees
        for request in result.requests:
            assert request.finished or request.rejected

    def test_clean_run_leaks_nothing(self):
        self._assert_no_leak(_run(prefill_replicas=2, decode_replicas=2))

    def test_preemption_during_decode_rolls_back_cleanly(self):
        """A tight decode fleet preempts mid-stream; every exported KV
        parcel is still either imported or dropped with its request."""
        result = run_serving_disagg(
            _stream(n=30, rate=6.0, mean_prompt=1500, mean_output=900),
            MODEL, prefill_replicas=2, decode_replicas=1,
            capacity=4 * GB,
            config=ServingConfig(max_batch=8, queue_timeout_s=3.0),
        )
        assert result.preemptions > 0 or result.rejected > 0
        self._assert_no_leak(result)

    def test_rejection_regime_leaks_nothing(self):
        """Timeouts at both fleets: rejected requests' in-flight KV is
        forgotten, not stranded."""
        result = run_serving_disagg(
            _stream(n=40, rate=12.0, mean_prompt=1200, mean_output=600),
            MODEL, prefill_replicas=1, decode_replicas=1,
            capacity=4 * GB,
            config=ServingConfig(max_batch=4, queue_timeout_s=1.0),
        )
        assert result.rejected > 0
        self._assert_no_leak(result)


class TestColocatedByteIdentity:
    def test_colocated_unchanged_by_disagg_running_first(self):
        """The golden invariant, in-process: a colocated run digests
        identically whether or not a disagg run happened before it —
        the disagg machinery shares no mutable state with the
        single-replica path."""
        def colocated():
            return serving_digest(run_serving(
                _stream(), MODEL, allocator="gmlake", capacity=8 * GB))

        before = colocated()
        _run(prefill_replicas=2, decode_replicas=2)
        after = colocated()
        assert before == after

    def test_colocated_report_has_no_migration(self):
        result = run_serving(_stream(), MODEL, allocator="gmlake",
                             capacity=8 * GB)
        assert result.kv_metrics.migrated_bytes == 0
        report = result.report()
        assert report.migrated_mb == 0.0
        assert report.prefill_wait_s == 0.0
        assert report.decode_wait_s == 0.0
        assert "migrated_mb" not in result.extras()


class TestAutoscalingAndGauges:
    def test_per_fleet_autoscaling_series(self):
        gauges = GaugeSampler(0.5)
        result = run_serving_disagg(
            _stream(n=60, rate=8.0), MODEL,
            prefill_replicas=3, decode_replicas=3,
            capacity=8 * GB,
            autoscaler="queue-depth?high=2000&low=200",
            gauges=gauges,
        )
        assert result.autoscaler_name == "queue-depth"
        # Each fleet carries its own size series, tagged by name.
        assert result.prefill_fleet_points
        assert result.decode_fleet_points
        assert result.prefill_fleet_points == gauges.fleet_series("prefill")
        assert result.decode_fleet_points == gauges.fleet_series("decode")
        for points, fleet_size in ((result.prefill_fleet_points, 3),
                                   (result.decode_fleet_points, 3)):
            for _, active in points:
                assert 1 <= active <= fleet_size

    def test_gauge_points_merge_all_replicas(self):
        gauges = GaugeSampler(0.5)
        result = _run(prefill_replicas=2, decode_replicas=2,
                      gauges=gauges)
        replicas = {p.replica for p in result.gauge_points}
        assert replicas == {0, 1, 2, 3}


class TestDisaggTrace:
    def _traced(self, **kw):
        trace = TraceRecorder()
        result = _run(trace=trace, **kw)
        return trace, result

    def test_migrate_events_recorded(self):
        trace, result = self._traced()
        outs = [e for e in trace.events if e.kind == "migrate_out"]
        ins = [e for e in trace.events if e.kind == "migrate_in"]
        assert len(outs) == result.migrations
        assert len(ins) == result.migrations
        for event in outs + ins:
            assert event.args["bytes"] > 0
            assert event.args["us"] > 0

    def test_chrome_trace_validates_with_migrating_spans(self):
        trace, _ = self._traced(prefill_replicas=2, decode_replicas=2)
        assert validate_chrome_trace(trace.chrome_trace()) > 0
        names = {span["name"] for span in trace.spans()}
        assert "migrating" in names

    def test_fleet_tagged_autoscale_counters(self):
        trace = TraceRecorder()
        run_serving_disagg(
            _stream(n=60, rate=8.0), MODEL,
            prefill_replicas=2, decode_replicas=2, capacity=8 * GB,
            autoscaler="queue-depth?high=2000&low=200", trace=trace,
        )
        counters = {e["name"] for e in trace.chrome_trace()["traceEvents"]
                    if e.get("ph") == "C"}
        assert "active replicas (prefill)" in counters
        assert "active replicas (decode)" in counters


class TestRunnerValidation:
    def test_fleet_sizes_validated(self):
        with pytest.raises(ValueError, match="at least one replica"):
            _run(prefill_replicas=0)
        with pytest.raises(ValueError, match="at least one replica"):
            _run(decode_replicas=0)

    def test_shared_component_instances_rejected(self):
        with pytest.raises(ValueError, match="spec string"):
            _run(kv_cache=ChunkedKVCache(get_model(MODEL)))
        with pytest.raises(ValueError, match="spec string"):
            _run(preemption=RecomputePreemption())


class TestServingSpecDisagg:
    def _spec(self, **disagg):
        return api.ExperimentSpec(
            mode="serve", allocators=["gmlake"], capacity=6 * GB,
            serving=api.ServingSpec(
                model=MODEL, rate_per_s=4.0, n_requests=20,
                disagg=dict(disagg) if disagg else
                {"prefill_replicas": 1, "decode_replicas": 1},
            ),
        )

    def test_json_round_trip(self):
        spec = self._spec(prefill_replicas=2, decode_replicas=3,
                          interconnect="nvlink?gb_per_s=300")
        clone = api.ExperimentSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.serving.disagg.prefill_replicas == 2
        assert clone.serving.disagg.decode_replicas == 3
        assert clone.serving.disagg.interconnect \
            == "nvlink?gb_per_s=300.0"

    def test_parse_time_validation(self):
        with pytest.raises(SpecError, match="replicas"):
            api.DisaggSpec(prefill_replicas=0)
        with pytest.raises(SpecError, match="replicas"):
            api.DisaggSpec(decode_replicas=-1)
        with pytest.raises(SpecError):
            api.DisaggSpec(interconnect="hypertransport")
        with pytest.raises(SpecError):
            self._spec(interconnect="nvlink?gb_per_s=0")

    def test_disagg_excludes_replicas(self):
        with pytest.raises(SpecError, match="disagg"):
            api.ServingSpec(replicas=2,
                            disagg={"prefill_replicas": 1,
                                    "decode_replicas": 1})

    def test_autoscaler_allowed_under_disagg(self):
        spec = api.ServingSpec(
            autoscaler="queue-depth?high=100&low=10",
            disagg={"prefill_replicas": 2, "decode_replicas": 2})
        assert spec.disagg.prefill_replicas == 2

    def test_api_run_routes_to_disagg(self):
        results = api.run(self._spec(prefill_replicas=1,
                                     decode_replicas=1))
        assert len(results) == 1
        result = results[0]
        assert result.mode == "serve-disagg"
        assert isinstance(result.raw, DisaggServingResult)
        extras = result.extras()
        assert extras["prefill_replicas"] == 1
        assert extras["decode_replicas"] == 1
        assert "prefill_wait_s" in extras
        assert "decode_wait_s" in extras
        assert extras["migrated_mb"] > 0
