"""Tests for the allocator registry and the ``AllocatorSpec`` mini-DSL."""

import pytest

from repro import api
from repro.api import AllocatorSpec, Param, SpecError, UnknownAllocatorError
from repro.api.registry import _ALIASES, _REGISTRY, register_allocator
from repro.allocators.base import BaseAllocator
from repro.gpu.device import GpuDevice
from repro.units import GB, MB


class TestRegistry:
    def test_builtins_registered(self):
        assert api.allocator_names() == [
            "caching", "expandable", "gmlake", "native", "vmm-naive",
        ]

    def test_aliases_resolve_to_canonical(self):
        assert api.canonical_name("pytorch") == "caching"
        assert api.get_allocator_info("pytorch").name == "caching"

    def test_aliases_are_metadata_not_entries(self):
        # One canonical entry; "pytorch" must not be its own allocator.
        assert "pytorch" not in api.allocator_registry()
        assert "pytorch" in api.get_allocator_info("caching").aliases

    def test_unknown_name(self):
        with pytest.raises(UnknownAllocatorError):
            api.canonical_name("tcmalloc")

    def test_param_metadata(self):
        info = api.get_allocator_info("gmlake")
        by_name = {p.name: p for p in info.params}
        assert by_name["chunk_size"].default == 2 * MB
        assert by_name["chunk_size"].type_name == "size"
        assert "stitching" in by_name["enable_stitch"].keys
        assert by_name["max_spool_blocks"].default == 4096

    def test_size_param_unit_keys(self):
        info = api.get_allocator_info("gmlake")
        param, scale = info.find_param("chunk_mb")
        assert param.name == "chunk_size" and scale == MB
        param, scale = info.find_param("chunk_gb")
        assert scale == GB

    def test_introspected_params(self):
        info = api.get_allocator_info("native")
        assert [p.name for p in info.params] == ["op_amplification"]
        assert info.params[0].default == 40

    def test_register_custom_allocator(self):
        class NullAllocator(BaseAllocator):
            """A do-nothing allocator for the registry test."""

            def __init__(self, device, burn_us: float = 1.0):
                super().__init__(device, name="null")
                self.burn_us = burn_us

            @property
            def reserved_bytes(self):
                return self.active_bytes

            def _malloc_impl(self, size):
                return 0x1000, size

            def _free_impl(self, allocation):
                pass

        try:
            register_allocator("null-test", aliases=("nil",))(NullAllocator)
            spec = AllocatorSpec.parse("null-test?burn_us=2.5")
            allocator = spec.build(GpuDevice(capacity=1 * GB))
            assert allocator.burn_us == 2.5
            assert api.canonical_name("nil") == "null-test"
        finally:
            _REGISTRY.pop("null-test", None)
            _ALIASES.pop("nil", None)

    def test_double_registration_rejected(self):
        with pytest.raises(ValueError):
            register_allocator("gmlake")(BaseAllocator)

    def test_param_kind_validated(self):
        with pytest.raises(ValueError):
            Param("x", int, 1, kind="complex")


class TestSpecParsing:
    def test_bare_name(self):
        spec = AllocatorSpec.parse("caching")
        assert spec.name == "caching" and spec.params == {}
        assert spec.spec_string() == "caching"

    def test_alias_canonicalized(self):
        assert AllocatorSpec.parse("pytorch").name == "caching"

    def test_unit_suffixed_key(self):
        spec = AllocatorSpec.parse("gmlake?chunk_mb=512")
        assert spec.params["chunk_size"] == 512 * MB

    def test_size_string_value(self):
        spec = AllocatorSpec.parse("gmlake?chunk_size=512MB")
        assert spec.params["chunk_size"] == 512 * MB

    def test_bool_words(self):
        for word, expected in (("off", False), ("on", True),
                               ("false", False), ("1", True)):
            spec = AllocatorSpec.parse(f"gmlake?stitching={word}")
            assert spec.params["enable_stitch"] is expected

    def test_int_alias_and_float(self):
        spec = AllocatorSpec.parse("gmlake?spool=64&va_oversubscription=8.0")
        assert spec.params["max_spool_blocks"] == 64
        assert spec.params["va_oversubscription"] == 8.0

    def test_parse_is_idempotent_on_specs(self):
        spec = AllocatorSpec.parse("gmlake?spool=64")
        assert AllocatorSpec.parse(spec) is spec

    def test_whitespace_tolerated(self):
        assert AllocatorSpec.parse("  caching ").name == "caching"


class TestSpecErrors:
    def test_unknown_allocator_is_keyerror_too(self):
        with pytest.raises(UnknownAllocatorError):
            AllocatorSpec.parse("tcmalloc")
        with pytest.raises(KeyError):
            AllocatorSpec.parse("tcmalloc?x=1")

    def test_unknown_parameter(self):
        with pytest.raises(SpecError, match="no parameter"):
            AllocatorSpec.parse("gmlake?bogus=1")

    def test_ill_typed_size(self):
        with pytest.raises(SpecError, match="bad value"):
            AllocatorSpec.parse("gmlake?chunk_mb=huge")

    def test_ill_typed_int(self):
        with pytest.raises(SpecError, match="bad value"):
            AllocatorSpec.parse("gmlake?spool=many")

    def test_ill_typed_bool(self):
        with pytest.raises(SpecError, match="bad value"):
            AllocatorSpec.parse("gmlake?stitching=maybe")

    def test_negative_size_rejected(self):
        with pytest.raises(SpecError):
            AllocatorSpec.parse("gmlake?chunk_mb=-4")

    def test_empty_spec(self):
        with pytest.raises(SpecError):
            AllocatorSpec.parse("   ")

    def test_malformed_item(self):
        with pytest.raises(SpecError, match="key=value"):
            AllocatorSpec.parse("gmlake?chunk_mb")

    def test_duplicate_key(self):
        with pytest.raises(SpecError, match="duplicate"):
            AllocatorSpec.parse("gmlake?spool=1&spool=2")

    def test_alias_collision(self):
        with pytest.raises(SpecError, match="alias"):
            AllocatorSpec.parse("gmlake?chunk_mb=4&chunk_size=8MB")

    def test_invalid_config_combination(self):
        # fragmentation_limit below chunk_size violates GMLakeConfig.
        spec = AllocatorSpec.parse(
            "gmlake?chunk_mb=64&fragmentation_limit=2MB")
        with pytest.raises(SpecError, match="cannot construct"):
            spec.build(GpuDevice(capacity=1 * GB))


class TestSpecRoundTrip:
    CASES = [
        "caching",
        "native?op_amplification=1",
        "vmm-naive?chunk_mb=64",
        "gmlake?chunk_mb=512&stitching=off",
        "gmlake?spool=16&va_oversubscription=4.5&stitch_after_split=false",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_dict_round_trip(self, text):
        spec = AllocatorSpec.parse(text)
        assert AllocatorSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("text", CASES)
    def test_string_round_trip(self, text):
        spec = AllocatorSpec.parse(text)
        assert AllocatorSpec.parse(spec.spec_string()) == spec

    def test_dict_is_json_safe(self):
        import json

        spec = AllocatorSpec.parse("gmlake?chunk_mb=512&stitching=off")
        assert AllocatorSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))) == spec

    def test_from_dict_errors(self):
        with pytest.raises(SpecError):
            AllocatorSpec.from_dict({"params": {}})
        with pytest.raises(SpecError):
            AllocatorSpec.from_dict({"name": "gmlake", "junk": 1})


class TestSpecBuild:
    def test_configured_gmlake(self):
        spec = AllocatorSpec.parse("gmlake?chunk_mb=8&stitching=off")
        allocator = spec.build(GpuDevice(capacity=1 * GB))
        assert allocator.config.chunk_size == 8 * MB
        assert allocator.config.enable_stitch is False

    def test_derived_defaults_follow_chunk_size(self):
        spec = AllocatorSpec.parse("gmlake?chunk_mb=64")
        allocator = spec.build(GpuDevice(capacity=4 * GB))
        assert allocator.config.small_threshold == 64 * MB
        assert allocator.config.fragmentation_limit == 64 * MB

    def test_explicit_pin_beats_derived_default(self):
        spec = AllocatorSpec.parse(
            "gmlake?chunk_mb=8&fragmentation_limit=32MB")
        allocator = spec.build(GpuDevice(capacity=4 * GB))
        assert allocator.config.chunk_size == 8 * MB
        assert allocator.config.fragmentation_limit == 32 * MB

    def test_resolved_params_includes_defaults(self):
        spec = AllocatorSpec.parse("gmlake?spool=16")
        resolved = spec.resolved_params()
        assert resolved["max_spool_blocks"] == 16
        assert resolved["chunk_size"] == 2 * MB  # default

    def test_kwarg_allocators(self):
        native = AllocatorSpec.parse("native?op_amplification=1").build(
            GpuDevice(capacity=1 * GB))
        assert native.op_amplification == 1
        vmm = AllocatorSpec.parse("vmm-naive?chunk_mb=4").build(
            GpuDevice(capacity=1 * GB))
        assert vmm.chunk_size == 4 * MB

    def test_resolve_allocator_callable_passthrough(self):
        sentinel = object()
        assert api.resolve_allocator(lambda device: sentinel,
                                     GpuDevice(capacity=1 * GB)) is sentinel

    def test_spec_label(self):
        assert api.spec_label("gmlake?chunk_mb=4") == "gmlake?chunk_size=4MB"
        assert api.spec_label(lambda device: None) is None
