"""Tests for the unpooled VMM allocator (§2.5 baseline)."""

import pytest

from repro.allocators import VmmNaiveAllocator
from repro.errors import OutOfMemoryError
from repro.gpu.device import GpuDevice
from repro.units import GB, MB


@pytest.fixture
def device():
    return GpuDevice(capacity=1 * GB)


class TestVmmNaive:
    def test_alloc_rounds_to_chunk(self, device):
        allocator = VmmNaiveAllocator(device, chunk_size=2 * MB)
        alloc = allocator.malloc(3 * MB)
        assert alloc.rounded_size == 4 * MB

    def test_free_returns_memory_immediately(self, device):
        allocator = VmmNaiveAllocator(device)
        alloc = allocator.malloc(64 * MB)
        assert device.used_memory == 64 * MB
        allocator.free(alloc)
        assert device.used_memory == 0
        assert allocator.reserved_bytes == 0

    def test_chunk_count_matches(self, device):
        allocator = VmmNaiveAllocator(device, chunk_size=2 * MB)
        allocator.malloc(64 * MB)
        assert device.vmm.counters.create_calls == 32
        assert device.vmm.counters.map_calls == 32

    def test_larger_chunks_fewer_calls(self, device):
        allocator = VmmNaiveAllocator(device, chunk_size=32 * MB)
        allocator.malloc(64 * MB)
        assert device.vmm.counters.create_calls == 2

    def test_small_chunks_cost_more_time(self):
        d1, d2 = GpuDevice(), GpuDevice()
        fine = VmmNaiveAllocator(d1, chunk_size=2 * MB)
        coarse = VmmNaiveAllocator(d2, chunk_size=128 * MB)
        fine.malloc(512 * MB)
        coarse.malloc(512 * MB)
        assert d1.clock.now_us > 5 * d2.clock.now_us

    def test_oom_rolls_back_cleanly(self, device):
        allocator = VmmNaiveAllocator(device)
        keeper = allocator.malloc(900 * MB)
        with pytest.raises(OutOfMemoryError):
            allocator.malloc(300 * MB)
        # Partial chunks from the failed allocation were all released.
        assert device.used_memory == 900 * MB
        allocator.free(keeper)
        assert device.used_memory == 0
        assert device.vaspace.live_count == 0

    def test_bad_chunk_size_rejected(self, device):
        with pytest.raises(ValueError):
            VmmNaiveAllocator(device, chunk_size=3 * MB)

    def test_no_fragmentation_by_construction(self, device):
        allocator = VmmNaiveAllocator(device)
        allocs = [allocator.malloc(50 * MB) for _ in range(4)]
        for alloc in allocs[::2]:
            allocator.free(alloc)
        assert allocator.reserved_bytes == allocator.active_bytes
