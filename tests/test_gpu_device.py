"""Tests for the device facade and the error hierarchy."""

import pytest

from repro import (
    AllocatorError,
    CudaError,
    CudaOutOfMemoryError,
    OutOfMemoryError,
    ReproError,
)
from repro.errors import DoubleFreeError, UnknownAllocationError
from repro.gpu.clock import SimClock
from repro.gpu.device import GpuDevice
from repro.gpu.latency import LatencyModel
from repro.units import A100_80GB, GB, MB


class TestGpuDevice:
    def test_defaults_to_a100(self):
        device = GpuDevice()
        assert device.capacity == A100_80GB
        assert device.free_memory == A100_80GB

    def test_used_and_free_track_phys(self):
        device = GpuDevice(capacity=1 * GB)
        device.runtime.cuda_malloc(100 * MB)
        assert device.used_memory == 100 * MB
        assert device.free_memory == 924 * MB

    def test_peak_used_memory(self):
        device = GpuDevice(capacity=1 * GB)
        ptr = device.runtime.cuda_malloc(200 * MB)
        device.runtime.cuda_free(ptr)
        assert device.peak_used_memory == 200 * MB
        assert device.used_memory == 0

    def test_shared_clock_across_devices(self):
        clock = SimClock()
        dev_a = GpuDevice(capacity=1 * GB, clock=clock)
        dev_b = GpuDevice(capacity=1 * GB, clock=clock)
        dev_a.runtime.cuda_malloc(10 * MB)
        t_after_a = clock.now_us
        dev_b.runtime.cuda_malloc(10 * MB)
        assert clock.now_us > t_after_a
        assert dev_a.clock is dev_b.clock

    def test_custom_latency_model(self):
        fast = LatencyModel(cuda_malloc_fixed_us=1.0,
                            cuda_malloc_per_gb_us=0.0)
        device = GpuDevice(capacity=1 * GB, latency=fast)
        t0 = device.clock.now_us
        device.runtime.cuda_malloc(512 * MB)
        assert device.clock.now_us - t0 == pytest.approx(1.0)

    def test_driver_time_combines_vmm_and_runtime(self):
        device = GpuDevice(capacity=1 * GB)
        device.runtime.cuda_malloc(2 * MB)
        device.vmm.mem_create(2 * MB)
        assert device.driver_time_us() == pytest.approx(
            device.vmm.counters.total_time_us
            + device.runtime.counters.total_time_us
        )

    def test_repr_mentions_usage(self):
        device = GpuDevice(capacity=1 * GB)
        assert "GpuDevice" in repr(device)


class TestErrorHierarchy:
    def test_cuda_errors_are_repro_errors(self):
        assert issubclass(CudaError, ReproError)
        assert issubclass(CudaOutOfMemoryError, CudaError)

    def test_allocator_errors_are_repro_errors(self):
        assert issubclass(AllocatorError, ReproError)
        assert issubclass(OutOfMemoryError, AllocatorError)
        assert issubclass(DoubleFreeError, AllocatorError)
        assert issubclass(UnknownAllocationError, AllocatorError)

    def test_cuda_oom_carries_numbers(self):
        error = CudaOutOfMemoryError(requested=10, free=5, total=20)
        assert error.requested == 10
        assert error.free == 5
        assert error.total == 20
        assert "10" in str(error)

    def test_allocator_oom_carries_numbers(self):
        error = OutOfMemoryError(requested=4, reserved=3, active=2, capacity=8)
        assert (error.requested, error.reserved,
                error.active, error.capacity) == (4, 3, 2, 8)

    def test_cuda_oom_is_not_allocator_oom(self):
        """The driver error and the allocator error are distinct levels:
        engines catch the allocator one, allocators catch the driver one."""
        assert not issubclass(CudaOutOfMemoryError, AllocatorError)
        assert not issubclass(OutOfMemoryError, CudaError)
