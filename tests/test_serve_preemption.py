"""Preemption policies: recompute equivalence and swap accounting.

The ``recompute`` policy must be *byte-identical* to the simulator's
pre-refactor inlined behaviour (also pinned by the pre-refactor golden
fixtures in ``test_equivalence_goldens.py``); ``swap`` must charge
PCIe both ways, account ``swapped_bytes``, and never leak host-side
ledger entries.
"""

import pytest

from repro.gpu.device import GpuDevice
from repro.serve import (
    PoissonArrivals,
    PreemptionSpec,
    RecomputePreemption,
    ServingConfig,
    ServingSimulator,
    SwapPreemption,
    resolve_preemption,
    run_serving,
)
from repro.units import GB, MB


def _pressure_stream(n=100, rate=8.0, seed=0):
    return PoissonArrivals(rate_per_s=rate).generate(n, seed=seed)


def _run(preemption, *, allocator="caching", capacity=6 * GB, n=100,
         rate=8.0, seed=0, kv_cache="chunked", scheduler="fcfs"):
    return run_serving(
        _pressure_stream(n=n, rate=rate, seed=seed), "opt-1.3b",
        allocator=allocator, capacity=capacity, scheduler=scheduler,
        kv_cache=kv_cache, preemption=preemption,
        config=ServingConfig(max_batch=16, queue_timeout_s=30.0))


def _digest(result):
    """Every simulated metric, exact (floats included)."""
    metrics = result.kv_metrics
    return {
        "requests": [
            (r.req_id, r.state.name, r.tokens_done, r.preemptions,
             repr(r.admitted_s), repr(r.first_token_s), repr(r.finished_s),
             repr(r.rejected_s), r.reject_reason)
            for r in result.requests
        ],
        "makespan": repr(result.makespan_s),
        "peaks": (result.peak_active_bytes, result.peak_reserved_bytes),
        "kv": (metrics.kv_allocs, metrics.kv_frees, metrics.peak_kv_bytes,
               metrics.grow_copy_bytes, metrics.preempt_copy_bytes,
               metrics.swapped_bytes),
    }


class TestResolve:
    def test_names(self):
        assert resolve_preemption("recompute").name == "recompute"
        assert resolve_preemption("swap").name == "swap"

    def test_instance_passes_through(self):
        policy = SwapPreemption()
        assert resolve_preemption(policy) is policy

    def test_spec_params(self):
        policy = PreemptionSpec.parse("swap?gb_per_s=12").build()
        assert policy.pcie_gb_per_s == 12.0

    def test_rebind_rejected(self):
        """A policy carries per-run state, so one simulator only."""
        policy = SwapPreemption()
        ServingSimulator("opt-1.3b", allocator="caching",
                         preemption=policy)
        with pytest.raises(ValueError, match="already bound"):
            ServingSimulator("opt-1.3b", allocator="caching",
                             preemption=policy)


class TestRecomputeIsByteIdentical:
    """`preemption="recompute"` reproduces the default path exactly."""

    @pytest.mark.parametrize("allocator,kv_cache,capacity", [
        ("caching", "chunked", 6 * GB),
        ("gmlake", "chunked", 6 * GB),
        # Paged KV needs a genuinely full pool to preempt (growth never
        # transiently doubles), hence the tighter device.
        ("caching", "paged?block_tokens=16", int(3.4 * GB)),
    ])
    def test_explicit_recompute_equals_default(self, allocator, kv_cache,
                                               capacity):
        default = _run("recompute", allocator=allocator, kv_cache=kv_cache,
                       capacity=capacity)
        explicit = _run(RecomputePreemption(), allocator=allocator,
                        kv_cache=kv_cache, capacity=capacity)
        assert default.preemptions > 0  # the regime actually preempts
        assert _digest(default) == _digest(explicit)

    def test_recompute_swaps_nothing(self):
        result = _run("recompute")
        assert result.kv_metrics.swapped_bytes == 0
        assert result.preemption_name == "recompute"


class TestSwap:
    def test_swap_moves_bytes_both_ways(self):
        result = _run("swap")
        assert result.preemptions > 0
        assert result.preemption_name == "swap"
        swapped = result.kv_metrics.swapped_bytes
        assert swapped > 0
        # Every request that came back was swapped out once and in
        # once, so the total is even in units of per-request KV sizes
        # — at minimum, out-bytes never exceed in-bytes by more than
        # the requests still parked (none after a finished run).
        assert result.kv_metrics.preempt_copy_bytes == 0  # no recompute cost

    def test_swap_charges_pcie_time(self):
        """Swap-out delays the clock relative to a free-only eviction
        at the same event sequence — makespans must differ once any
        preemption happened."""
        recompute = _run("recompute")
        swap = _run("swap")
        assert recompute.preemptions > 0 and swap.preemptions > 0
        assert recompute.makespan_s != swap.makespan_s

    def test_no_leaked_ledger_entries(self):
        simulator = ServingSimulator(
            "opt-1.3b", allocator="caching", capacity=6 * GB,
            scheduler="fcfs", preemption="swap",
            config=ServingConfig(max_batch=16, queue_timeout_s=30.0))
        simulator.run(_pressure_stream())
        assert simulator.preemption.swapped_out_requests == 0
        assert simulator.kv.live_requests == 0

    def test_rejected_request_forgets_host_copy(self):
        """A swapped-out request that is rejected from the queue
        (timeout or preempted-out) must drop its host-side ledger
        entry."""
        from repro.serve import LengthSampler

        lengths = LengthSampler(mean_prompt=1500, mean_output=900)
        stream = PoissonArrivals(rate_per_s=6.0).generate(30, lengths, seed=0)
        simulator = ServingSimulator(
            "opt-1.3b", allocator="caching", capacity=4 * GB,
            scheduler="fcfs", preemption="swap",
            config=ServingConfig(max_batch=8, queue_timeout_s=3.0,
                                 max_preemptions=2))
        result = simulator.run(stream)
        assert simulator.preemption.swapped_out_requests == 0
        assert any(r.rejected for r in result.requests)

    def test_doomed_victim_pays_no_pcie(self):
        """A victim whose preemption budget is already exhausted is
        rejected, not offloaded — no PCIe charge, no swapped bytes."""
        from repro.serve import LengthSampler

        lengths = LengthSampler(mean_prompt=1500, mean_output=900)
        stream = PoissonArrivals(rate_per_s=6.0).generate(30, lengths, seed=0)
        result = run_serving(
            stream, "opt-1.3b", allocator="caching", capacity=4 * GB,
            scheduler="fcfs", preemption="swap",
            config=ServingConfig(max_batch=8, queue_timeout_s=30.0,
                                 max_preemptions=0))
        assert result.preemptions > 0
        assert any(r.reject_reason == "preempted-out"
                   for r in result.requests)
        assert result.kv_metrics.swapped_bytes == 0
        # The discarded KV still lands in the recompute-style discard
        # ledger, so cross-policy copy comparisons stay honest.
        assert result.kv_metrics.preempt_copy_bytes > 0

    def test_bandwidth_scales_transfer_cost(self):
        """Halving PCIe bandwidth makes the same swap traffic slower
        (a longer makespan) without changing what was moved."""
        fast = _run("swap?pcie_gb_per_s=48")
        slow = _run("swap?pcie_gb_per_s=2")
        assert fast.kv_metrics.swapped_bytes > 0
        assert slow.makespan_s > fast.makespan_s

    def test_pcie_transfer_model(self):
        latency = GpuDevice().latency
        base = latency.pcie_transfer(0)
        assert base == latency.pcie_latency_us
        one_gb = latency.pcie_transfer(1 * GB)
        assert one_gb == pytest.approx(
            latency.pcie_latency_us + 1e6 / latency.pcie_gb_per_s)
        # Override halves the bandwidth -> doubles the payload term.
        slow = latency.pcie_transfer(256 * MB, latency.pcie_gb_per_s / 2)
        fast = latency.pcie_transfer(256 * MB)
        assert (slow - base) == pytest.approx(2 * (fast - base))
