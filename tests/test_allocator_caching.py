"""Behavioral tests for the BFC caching allocator."""

import pytest

from repro.allocators import CachingAllocator
from repro.allocators.caching import (
    LARGE_BUFFER,
    MIN_BLOCK_SIZE,
    MIN_LARGE_ALLOC,
    ROUND_LARGE,
    SMALL_BUFFER,
    SMALL_SIZE,
    pool_for,
    round_size,
    segment_size_for,
    should_split,
)
from repro.errors import OutOfMemoryError
from repro.gpu.device import GpuDevice
from repro.units import GB, KB, MB


@pytest.fixture
def device():
    return GpuDevice(capacity=1 * GB)


@pytest.fixture
def caching(device):
    return CachingAllocator(device)


class TestRoundingPolicy:
    def test_round_size_minimum(self):
        assert round_size(1) == MIN_BLOCK_SIZE

    def test_round_size_multiple_of_512(self):
        assert round_size(513) == 1024

    def test_pool_small_boundary(self):
        assert pool_for(SMALL_SIZE) == "small"
        assert pool_for(SMALL_SIZE + 512) == "large"

    def test_segment_for_small_request(self):
        assert segment_size_for(100 * KB) == SMALL_BUFFER

    def test_segment_for_mid_request(self):
        assert segment_size_for(5 * MB) == LARGE_BUFFER

    def test_segment_for_huge_request_rounds_to_2mb(self):
        assert segment_size_for(MIN_LARGE_ALLOC + 1) == MIN_LARGE_ALLOC + ROUND_LARGE

    def test_should_split_small_pool(self):
        assert should_split(2 * MB, 1 * MB, "small")
        assert not should_split(1 * MB + 256, 1 * MB, "small")

    def test_should_split_large_pool(self):
        assert should_split(20 * MB, 5 * MB, "large")
        assert not should_split(5 * MB + SMALL_SIZE, 5 * MB, "large")


class TestCachingBehavior:
    def test_free_does_not_return_memory_to_device(self, caching, device):
        alloc = caching.malloc(50 * MB)
        reserved = caching.reserved_bytes
        caching.free(alloc)
        assert caching.reserved_bytes == reserved
        assert device.used_memory == reserved

    def test_cache_hit_avoids_driver(self, caching, device):
        alloc = caching.malloc(50 * MB)
        caching.free(alloc)
        calls_before = device.runtime.counters.malloc_calls
        caching.malloc(50 * MB)
        assert device.runtime.counters.malloc_calls == calls_before

    def test_small_requests_share_a_segment(self, caching):
        for _ in range(4):
            caching.malloc(100 * KB)
        assert caching.segment_count == 1
        assert caching.reserved_bytes == SMALL_BUFFER

    def test_mid_requests_get_20mb_segment(self, caching):
        caching.malloc(2 * MB)
        assert caching.reserved_bytes == LARGE_BUFFER

    def test_split_leaves_remainder_in_pool(self, caching):
        alloc = caching.malloc(50 * MB)
        caching.free(alloc)
        caching.malloc(30 * MB)  # best-fits into the 50 MB block, splits
        assert caching.segment_count == 1
        assert caching.free_block_count("large") == 1
        assert caching.cached_bytes() == 20 * MB

    def test_best_fit_prefers_smallest_sufficient(self, caching):
        a = caching.malloc(30 * MB)
        b = caching.malloc(60 * MB)
        caching.free(a)
        caching.free(b)
        caching.malloc(25 * MB)  # must come from the 30 MB block
        blocks = sorted(block.size for pool in ("large",)
                        for block in caching._free_pools[pool])
        assert 60 * MB in blocks

    def test_coalesce_neighbours_on_free(self, caching):
        whole = caching.malloc(60 * MB)
        caching.free(whole)
        a = caching.malloc(20 * MB)
        b = caching.malloc(20 * MB)
        c = caching.malloc(20 * MB)
        for alloc in (a, b, c):
            caching.free(alloc)
        # All three re-merge into one 60 MB whole-segment block.
        assert caching.free_block_count("large") == 1
        assert caching._free_pools["large"].max().size == 60 * MB

    def test_coalesce_only_within_segment(self, caching):
        a = caching.malloc(30 * MB)
        b = caching.malloc(30 * MB)
        caching.free(a)
        caching.free(b)
        # Two separate segments: blocks cannot merge across them.
        assert caching.free_block_count("large") == 2

    def test_empty_cache_releases_whole_segments(self, caching, device):
        alloc = caching.malloc(50 * MB)
        caching.free(alloc)
        caching.empty_cache()
        assert caching.reserved_bytes == 0
        assert device.used_memory == 0

    def test_empty_cache_keeps_partial_segments(self, caching):
        keep = caching.malloc(30 * MB)
        free_me = caching.malloc(60 * MB)
        caching.free(free_me)
        caching.empty_cache()
        assert caching.reserved_bytes == pytest.approx(30 * MB, abs=ROUND_LARGE)
        caching.free(keep)

    def test_fragmentation_emerges_from_interleaving(self, caching):
        """Freeing every other block strands holes that cannot serve a
        larger request — the paper's Figure 1 scenario."""
        allocs = [caching.malloc(40 * MB) for _ in range(8)]
        for alloc in allocs[::2]:
            caching.free(alloc)
        # 160 MB free in 40 MB holes, but an 80 MB request needs new memory.
        reserved_before = caching.reserved_bytes
        caching.malloc(80 * MB)
        assert caching.reserved_bytes > reserved_before

    def test_oom_releases_cache_then_retries(self, caching, device):
        big = caching.malloc(600 * MB)
        caching.free(big)
        # 600 MB cached; a 700 MB request OOMs the device first, then the
        # allocator frees the cached segment and retries successfully.
        alloc = caching.malloc(700 * MB)
        assert alloc.size == 700 * MB

    def test_oom_raises_when_reclaim_insufficient(self, caching):
        caching.malloc(600 * MB)  # still active, cannot be reclaimed
        with pytest.raises(OutOfMemoryError):
            caching.malloc(600 * MB)

    def test_rounded_size_accounting(self, caching):
        alloc = caching.malloc(1000)
        assert alloc.rounded_size == 1024
        assert caching.active_bytes == 1024

    def test_invariants_after_mixed_workload(self, caching):
        import random
        rng = random.Random(7)
        live = []
        for step in range(300):
            if live and rng.random() < 0.45:
                caching.free(live.pop(rng.randrange(len(live))))
            else:
                size = rng.choice([64 * KB, 700 * KB, 3 * MB, 24 * MB, 50 * MB])
                live.append(caching.malloc(size))
            if step % 50 == 0:
                caching.check_invariants()
        for alloc in live:
            caching.free(alloc)
        caching.check_invariants()
        assert caching.active_bytes == 0

    def test_reserved_peak_recorded(self, caching):
        alloc = caching.malloc(100 * MB)
        caching.free(alloc)
        caching.empty_cache()
        assert caching.reserved_bytes == 0
        assert caching.peak_reserved_bytes >= 100 * MB
