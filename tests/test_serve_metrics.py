"""Tests for serving SLO metrics and the report aggregation."""

import pytest

from repro.serve import ServingReport, SloConfig, percentile
from repro.serve.request import RequestState, ServeRequest


def finished_request(req_id=0, arrival=0.0, first=1.0, done=3.0, tokens=5):
    request = ServeRequest(req_id=req_id, arrival_s=arrival,
                           prompt_tokens=64, output_tokens=tokens)
    request.state = RequestState.FINISHED
    request.admitted_s = arrival + (first - arrival) / 2
    request.first_token_s = first
    request.finished_s = done
    request.tokens_done = tokens
    return request


class TestPercentile:
    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0

    def test_interpolates(self):
        assert percentile([0.0, 10.0], 25) == 2.5

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_empty_is_zero(self):
        assert percentile([], 99) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestRequestDerivedMetrics:
    def test_ttft_latency_tpot(self):
        request = finished_request(arrival=0.0, first=1.0, done=3.0,
                                   tokens=5)
        assert request.ttft_s == 1.0
        assert request.latency_s == 3.0
        assert request.tpot_s == pytest.approx(0.5)  # 2 s over 4 tokens

    def test_unfinished_has_no_latency(self):
        request = ServeRequest(req_id=0, arrival_s=0.0, prompt_tokens=64,
                               output_tokens=8)
        assert request.ttft_s is None
        assert request.latency_s is None
        assert request.tpot_s is None


class TestSloConfig:
    def test_met(self):
        slo = SloConfig(ttft_s=2.0, tpot_s=0.6)
        assert slo.met_by(finished_request())

    def test_ttft_violation(self):
        slo = SloConfig(ttft_s=0.5, tpot_s=10.0)
        assert not slo.met_by(finished_request(first=1.0))

    def test_tpot_violation(self):
        slo = SloConfig(ttft_s=10.0, tpot_s=0.1)
        assert not slo.met_by(finished_request())

    def test_unfinished_never_meets(self):
        request = ServeRequest(req_id=0, arrival_s=0.0, prompt_tokens=64,
                               output_tokens=8)
        assert not SloConfig().met_by(request)


class TestServingReport:
    def test_aggregates(self):
        requests = [
            finished_request(0, arrival=0.0, first=0.5, done=1.0),
            finished_request(1, arrival=1.0, first=1.5, done=3.0),
        ]
        rejected = ServeRequest(req_id=2, arrival_s=0.0, prompt_tokens=64,
                                output_tokens=8)
        rejected.state = RequestState.REJECTED
        rejected.reject_reason = "timeout"
        report = ServingReport.from_requests(
            requests + [rejected], makespan_s=10.0,
            slo=SloConfig(ttft_s=1.0, tpot_s=1.0))
        assert report.n_requests == 3
        assert report.completed == 2
        assert report.rejected == 1
        assert report.timed_out == 1
        assert report.mean_ttft_s == pytest.approx(0.5)
        assert report.throughput_req_s == pytest.approx(0.2)
        assert report.goodput_req_s == pytest.approx(0.2)
        assert report.slo_attainment == pytest.approx(2 / 3)
        assert report.tokens_per_s == pytest.approx(1.0)

    def test_goodput_below_throughput_on_slo_miss(self):
        requests = [
            finished_request(0, arrival=0.0, first=0.1, done=1.0),
            finished_request(1, arrival=0.0, first=5.0, done=6.0),
        ]
        report = ServingReport.from_requests(
            requests, makespan_s=10.0, slo=SloConfig(ttft_s=1.0, tpot_s=1.0))
        assert report.goodput_req_s < report.throughput_req_s

    def test_empty_population(self):
        report = ServingReport.from_requests([], makespan_s=0.0)
        assert report.n_requests == 0
        assert report.slo_attainment == 0.0
        assert report.goodput_req_s == 0.0

    def test_row_and_summary(self):
        report = ServingReport.from_requests(
            [finished_request()], makespan_s=5.0)
        row = report.as_row()
        assert {"done", "goodput (req/s)", "lat p99 (s)"} <= set(row)
        assert "goodput" in report.summary()
