"""Tests for admission scheduling policies and the allocator loop."""

import pytest

from repro.api import resolve_allocator
from repro.gpu.device import GpuDevice
from repro.serve import (
    FcfsScheduler,
    MemoryAwareScheduler,
    SchedulerSpec,
    SchedulerView,
    ShortestPromptScheduler,
    resolve_kv_cache,
    resolve_scheduler,
    scheduler_names,
)
from repro.serve.request import ServeRequest
from repro.units import GB
from repro.workloads import get_model
from repro.workloads.inference import kv_bytes


def request(req_id, prompt=256, output=128, arrival=0.0):
    return ServeRequest(req_id=req_id, arrival_s=arrival,
                        prompt_tokens=prompt, output_tokens=output)


def view_on(capacity=4 * GB, model="opt-1.3b", kv_cache="chunked"):
    device = GpuDevice(capacity=capacity)
    allocator = resolve_allocator("caching", device)
    spec = get_model(model)
    kv = resolve_kv_cache(kv_cache, spec, default_chunk_tokens=256)
    return SchedulerView(
        allocator=allocator, model=spec, running=0,
        max_batch=16, capacity=capacity, kv=kv,
    ), allocator


class TestResolve:
    def test_known_names(self):
        for name in scheduler_names(include_aliases=True):
            assert resolve_scheduler(name).name in (
                "fcfs", "shortest-prompt", "memory-aware")

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            resolve_scheduler("priority-lottery")

    def test_passthrough(self):
        scheduler = FcfsScheduler()
        assert resolve_scheduler(scheduler) is scheduler

    def test_spec_carries_params(self):
        scheduler = resolve_scheduler("memory-aware?margin=1.75")
        assert isinstance(scheduler, MemoryAwareScheduler)
        assert scheduler.margin == 1.75

    def test_bad_margin_fails_at_parse_time(self):
        from repro.api import SpecError

        with pytest.raises(SpecError, match="margin"):
            SchedulerSpec.parse("memory-aware?margin=0.5")


class TestFcfs:
    def test_takes_queue_head(self):
        view, _ = view_on()
        queue = [request(3), request(1), request(2)]
        assert FcfsScheduler().select(queue, view) is queue[0]

    def test_empty_queue(self):
        view, _ = view_on()
        assert FcfsScheduler().select([], view) is None


class TestShortestPrompt:
    def test_prefers_smallest_context(self):
        view, _ = view_on()
        queue = [request(0, prompt=1024), request(1, prompt=64),
                 request(2, prompt=512)]
        assert ShortestPromptScheduler().select(queue, view).req_id == 1

    def test_counts_generated_tokens(self):
        """A preempted request's context includes its decoded tokens."""
        view, _ = view_on()
        fresh = request(0, prompt=256)
        resumed = request(1, prompt=128)
        resumed.tokens_done = 512
        assert ShortestPromptScheduler().select(
            [fresh, resumed], view) is fresh

    def test_tie_break_by_id(self):
        view, _ = view_on()
        queue = [request(5, prompt=256), request(2, prompt=256)]
        assert ShortestPromptScheduler().select(queue, view).req_id == 2


class TestMemoryAware:
    def test_admits_when_empty(self):
        view, _ = view_on()
        assert MemoryAwareScheduler().select([request(0)], view) is not None

    def test_declines_when_active_fills_device(self):
        view, allocator = view_on(capacity=4 * GB)
        allocator.malloc(int(3.8 * GB))  # nearly everything is active
        big = request(0, prompt=1024, output=1024)
        assert MemoryAwareScheduler().select([big], view) is None

    def test_skips_to_fitting_request(self):
        view, allocator = view_on(capacity=4 * GB)
        allocator.malloc(int(3.2 * GB))
        big = request(0, prompt=2048, output=2048)     # ~850 MB projected
        small = request(1, prompt=64, output=32)       # one 50 MB chunk
        assert MemoryAwareScheduler().select([big, small], view) is small

    def test_fragmented_pool_shrinks_headroom(self):
        """Reserved-but-inactive memory only half-counts: a shredded
        pool admits less than a clean one at the same active bytes."""
        clean, _ = view_on(capacity=4 * GB)
        shredded, allocator = view_on(capacity=4 * GB)
        hoard = allocator.malloc(3 * GB)
        allocator.free(hoard)  # reserved stays ~3 GB, active 0
        assert shredded.headroom_bytes() < clean.headroom_bytes()

    def test_margin_validation(self):
        with pytest.raises(ValueError):
            MemoryAwareScheduler(margin=0.5)


class TestSchedulerView:
    def test_projected_kv_is_chunk_rounded(self):
        view, _ = view_on()
        model = get_model("opt-1.3b")
        tiny = request(0, prompt=17, output=1)
        assert view.projected_kv_bytes(tiny) == kv_bytes(model, 256)
        exact = request(1, prompt=200, output=56)
        assert view.projected_kv_bytes(exact) == kv_bytes(model, 256)
        over = request(2, prompt=200, output=57)
        assert view.projected_kv_bytes(over) == kv_bytes(model, 512)

    def test_paged_projection_counts_whole_blocks(self):
        view, _ = view_on(kv_cache="paged?block_tokens=16")
        model = get_model("opt-1.3b")
        tiny = request(0, prompt=17, output=1)      # 18 tokens -> 2 blocks
        assert view.projected_kv_bytes(tiny) == kv_bytes(model, 32)
        exact = request(1, prompt=200, output=56)   # 256 -> 16 blocks
        assert view.projected_kv_bytes(exact) == kv_bytes(model, 256)

    def test_paged_headroom_is_block_quantized_and_fully_reuses_pool(self):
        """Idle pool memory counts in full under paged KV (exact-fit
        blocks), where chunked KV discounts it — the admission-side
        face of cache-level defragmentation."""
        paged, allocator = view_on(kv_cache="paged?block_tokens=16")
        chunked, chunked_alloc = view_on()
        for alloc in (allocator, chunked_alloc):
            hoard = alloc.malloc(3 * GB)
            alloc.free(hoard)  # reserved stays ~3 GB, active 0
        assert paged.headroom_bytes() % paged.kv.block_bytes == 0
        assert paged.headroom_bytes() > chunked.headroom_bytes()
        free = paged.kv.free_blocks(allocator.stats(), paged.capacity)
        assert free * paged.kv.block_bytes == paged.headroom_bytes()
