"""Tests for admission scheduling policies and the allocator loop."""

import pytest

from repro.api import resolve_allocator
from repro.gpu.device import GpuDevice
from repro.serve import (
    FcfsScheduler,
    MemoryAwareScheduler,
    SchedulerSpec,
    SchedulerView,
    ShortestPromptScheduler,
    WeightedFairScheduler,
    parse_tenant_weights,
    resolve_kv_cache,
    resolve_scheduler,
    scheduler_names,
)
from repro.serve.request import RequestState, ServeRequest
from repro.units import GB
from repro.workloads import get_model
from repro.workloads.inference import kv_bytes


def request(req_id, prompt=256, output=128, arrival=0.0):
    return ServeRequest(req_id=req_id, arrival_s=arrival,
                        prompt_tokens=prompt, output_tokens=output)


def view_on(capacity=4 * GB, model="opt-1.3b", kv_cache="chunked"):
    device = GpuDevice(capacity=capacity)
    allocator = resolve_allocator("caching", device)
    spec = get_model(model)
    kv = resolve_kv_cache(kv_cache, spec, default_chunk_tokens=256)
    return SchedulerView(
        allocator=allocator, model=spec, running=0,
        max_batch=16, capacity=capacity, kv=kv,
    ), allocator


class TestResolve:
    def test_known_names(self):
        for name in scheduler_names(include_aliases=True):
            assert resolve_scheduler(name).name in (
                "fcfs", "shortest-prompt", "memory-aware", "wfq")

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            resolve_scheduler("priority-lottery")

    def test_passthrough(self):
        scheduler = FcfsScheduler()
        assert resolve_scheduler(scheduler) is scheduler

    def test_spec_carries_params(self):
        scheduler = resolve_scheduler("memory-aware?margin=1.75")
        assert isinstance(scheduler, MemoryAwareScheduler)
        assert scheduler.margin == 1.75

    def test_bad_margin_fails_at_parse_time(self):
        from repro.api import SpecError

        with pytest.raises(SpecError, match="margin"):
            SchedulerSpec.parse("memory-aware?margin=0.5")


class TestFcfs:
    def test_takes_queue_head(self):
        view, _ = view_on()
        queue = [request(3), request(1), request(2)]
        assert FcfsScheduler().select(queue, view) is queue[0]

    def test_empty_queue(self):
        view, _ = view_on()
        assert FcfsScheduler().select([], view) is None


class TestShortestPrompt:
    def test_prefers_smallest_context(self):
        view, _ = view_on()
        queue = [request(0, prompt=1024), request(1, prompt=64),
                 request(2, prompt=512)]
        assert ShortestPromptScheduler().select(queue, view).req_id == 1

    def test_counts_generated_tokens(self):
        """A preempted request's context includes its decoded tokens."""
        view, _ = view_on()
        fresh = request(0, prompt=256)
        resumed = request(1, prompt=128)
        resumed.tokens_done = 512
        assert ShortestPromptScheduler().select(
            [fresh, resumed], view) is fresh

    def test_tie_break_by_id(self):
        view, _ = view_on()
        queue = [request(5, prompt=256), request(2, prompt=256)]
        assert ShortestPromptScheduler().select(queue, view).req_id == 2


class TestMemoryAware:
    def test_admits_when_empty(self):
        view, _ = view_on()
        assert MemoryAwareScheduler().select([request(0)], view) is not None

    def test_declines_when_active_fills_device(self):
        view, allocator = view_on(capacity=4 * GB)
        allocator.malloc(int(3.8 * GB))  # nearly everything is active
        big = request(0, prompt=1024, output=1024)
        assert MemoryAwareScheduler().select([big], view) is None

    def test_skips_to_fitting_request(self):
        view, allocator = view_on(capacity=4 * GB)
        allocator.malloc(int(3.2 * GB))
        big = request(0, prompt=2048, output=2048)     # ~850 MB projected
        small = request(1, prompt=64, output=32)       # one 50 MB chunk
        assert MemoryAwareScheduler().select([big, small], view) is small

    def test_fragmented_pool_shrinks_headroom(self):
        """Reserved-but-inactive memory only half-counts: a shredded
        pool admits less than a clean one at the same active bytes."""
        clean, _ = view_on(capacity=4 * GB)
        shredded, allocator = view_on(capacity=4 * GB)
        hoard = allocator.malloc(3 * GB)
        allocator.free(hoard)  # reserved stays ~3 GB, active 0
        assert shredded.headroom_bytes() < clean.headroom_bytes()

    def test_margin_validation(self):
        with pytest.raises(ValueError):
            MemoryAwareScheduler(margin=0.5)


class TestSchedulerView:
    def test_projected_kv_is_chunk_rounded(self):
        view, _ = view_on()
        model = get_model("opt-1.3b")
        tiny = request(0, prompt=17, output=1)
        assert view.projected_kv_bytes(tiny) == kv_bytes(model, 256)
        exact = request(1, prompt=200, output=56)
        assert view.projected_kv_bytes(exact) == kv_bytes(model, 256)
        over = request(2, prompt=200, output=57)
        assert view.projected_kv_bytes(over) == kv_bytes(model, 512)

    def test_paged_projection_counts_whole_blocks(self):
        view, _ = view_on(kv_cache="paged?block_tokens=16")
        model = get_model("opt-1.3b")
        tiny = request(0, prompt=17, output=1)      # 18 tokens -> 2 blocks
        assert view.projected_kv_bytes(tiny) == kv_bytes(model, 32)
        exact = request(1, prompt=200, output=56)   # 256 -> 16 blocks
        assert view.projected_kv_bytes(exact) == kv_bytes(model, 256)

    def test_paged_headroom_is_block_quantized_and_fully_reuses_pool(self):
        """Idle pool memory counts in full under paged KV (exact-fit
        blocks), where chunked KV discounts it — the admission-side
        face of cache-level defragmentation."""
        paged, allocator = view_on(kv_cache="paged?block_tokens=16")
        chunked, chunked_alloc = view_on()
        for alloc in (allocator, chunked_alloc):
            hoard = alloc.malloc(3 * GB)
            alloc.free(hoard)  # reserved stays ~3 GB, active 0
        assert paged.headroom_bytes() % paged.kv.block_bytes == 0
        assert paged.headroom_bytes() > chunked.headroom_bytes()
        free = paged.kv.free_blocks(allocator.stats(), paged.capacity)
        assert free * paged.kv.block_bytes == paged.headroom_bytes()


def tenant_request(req_id, tenant, prompt=256, output=128, arrival=0.0):
    return ServeRequest(req_id=req_id, arrival_s=arrival,
                        prompt_tokens=prompt, output_tokens=output,
                        tenant=tenant)


def _drain(scheduler, queue, view, rounds):
    """Run the select/admit loop ``rounds`` times, admitting every
    selection (state -> RUNNING), and return the tenant order."""
    order = []
    for _ in range(rounds):
        request = scheduler.select(queue, view)
        if request is None:
            break
        request.state = RequestState.RUNNING
        queue.remove(request)
        order.append(request.tenant)
    return order


class TestParseTenantWeights:
    def test_pairs(self):
        assert parse_tenant_weights("t0:2,t1:1") == {"t0": 2.0, "t1": 1.0}

    def test_bare_positional(self):
        assert parse_tenant_weights("2,1") == {"t0": 2.0, "t1": 1.0}

    def test_empty(self):
        assert parse_tenant_weights("") == {}

    def test_identical_duplicate_collapses(self):
        assert parse_tenant_weights("t0:2,t0:2") == {"t0": 2.0}

    def test_conflicting_duplicate_rejected(self):
        from repro.api import SpecError

        with pytest.raises(SpecError, match="conflicting"):
            parse_tenant_weights("t0:2,t0:3")

    def test_non_numeric_rejected(self):
        from repro.api import SpecError

        with pytest.raises(SpecError, match="must be a number"):
            parse_tenant_weights("t0:lots")

    def test_non_positive_rejected(self):
        from repro.api import SpecError

        with pytest.raises(SpecError, match="positive"):
            parse_tenant_weights("t0:0")

    def test_spec_roundtrip(self):
        scheduler = resolve_scheduler("wfq?weights=t0:2,t1:1")
        assert isinstance(scheduler, WeightedFairScheduler)
        assert scheduler.weights == {"t0": 2.0, "t1": 1.0}


class TestWeightedFair:
    def test_equal_weights_alternate(self):
        view, _ = view_on()
        queue = ([tenant_request(i, "a") for i in range(4)]
                 + [tenant_request(10 + i, "b") for i in range(4)])
        order = _drain(WeightedFairScheduler(), queue, view, 8)
        assert order == ["a", "b", "a", "b", "a", "b", "a", "b"]

    def test_two_to_one_service_ratio(self):
        view, _ = view_on()
        queue = ([tenant_request(i, "a") for i in range(30)]
                 + [tenant_request(100 + i, "b") for i in range(30)])
        order = _drain(
            WeightedFairScheduler(weights="a:2,b:1"), queue, view, 30)
        assert order.count("a") == 20
        assert order.count("b") == 10

    def test_weight_scaling_gives_identical_schedule(self):
        """Only weight *ratios* matter: 4:2 schedules exactly like 2:1."""
        orders = []
        for weights in ("a:2,b:1", "a:4,b:2"):
            view, _ = view_on()
            queue = ([tenant_request(i, "a") for i in range(30)]
                     + [tenant_request(100 + i, "b") for i in range(30)])
            orders.append(_drain(
                WeightedFairScheduler(weights=weights), queue, view, 60))
        assert orders[0] == orders[1]

    def test_failed_admission_costs_nothing(self):
        """A selection bounced by the allocator (state never leaves
        QUEUED) is not charged to its tenant's virtual time."""
        view, _ = view_on()
        scheduler = WeightedFairScheduler()
        queue = [tenant_request(0, "a"), tenant_request(1, "b")]
        first = scheduler.select(queue, view)
        assert first.tenant == "a"        # vtime tie -> req_id order
        # Admission failed: the simulator requeues it still QUEUED.
        again = scheduler.select(queue, view)
        assert again is first             # uncharged, "a" still cheapest
        assert scheduler._vtime.get("a", 0.0) == 0.0

    def test_new_tenant_joins_at_current_floor(self):
        """A tenant first seen mid-run gets no banked credit for the
        time before it existed."""
        view, _ = view_on()
        scheduler = WeightedFairScheduler()
        queue = [tenant_request(i, "a") for i in range(6)]
        _drain(scheduler, queue, view, 4)
        assert scheduler._vtime["a"] > 0.0
        queue.append(tenant_request(100, "b"))
        scheduler.select(queue, view)
        assert scheduler._vtime["b"] == scheduler._vtime["a"]

    def test_fcfs_within_tenant(self):
        view, _ = view_on()
        queue = [tenant_request(3, "a", arrival=0.3),
                 tenant_request(1, "a", arrival=0.1),
                 tenant_request(2, "a", arrival=0.2)]
        order = []
        scheduler = WeightedFairScheduler()
        for _ in range(3):
            request = scheduler.select(queue, view)
            request.state = RequestState.RUNNING
            queue.remove(request)
            order.append(request.req_id)
        assert order == [3, 1, 2]         # queue order, never reshuffled


class TestWfqFairnessEndToEnd:
    """Fleet-level fairness: the scheduler inside the real simulator."""

    MODEL = "opt-1.3b"

    @staticmethod
    def _stream(per_tenant, weights_tenants=("a", "b"), stagger_s=0.0):
        requests = []
        for k, tenant in enumerate(weights_tenants):
            for i in range(per_tenant):
                requests.append(ServeRequest(
                    req_id=k * 1000 + i,
                    arrival_s=k * stagger_s,
                    prompt_tokens=256, output_tokens=128,
                    tenant=tenant))
        return requests

    def _run(self, scheduler, requests, timeout_s=60.0, max_batch=4):
        from repro.serve import ServingConfig, run_serving

        return run_serving(
            requests, self.MODEL, allocator="caching", capacity=8 * GB,
            scheduler=scheduler, kv_cache="paged?block_tokens=16",
            config=ServingConfig(max_batch=max_batch,
                                 queue_timeout_s=timeout_s))

    def test_saturated_2to1_weights_give_2to1_goodput(self):
        """Under saturation (a timeout rejects the excess), completed
        token share lands within tolerance of the 2:1 weights."""
        result = self._run("wfq?weights=a:2,b:1",
                           self._stream(per_tenant=40), timeout_s=2.0)
        tokens = {"a": 0, "b": 0}
        for request in result.requests:
            if request.finished:
                tokens[request.tenant] += request.tokens_done
        assert result.report().rejected > 0   # genuinely saturated
        assert tokens["b"] > 0
        ratio = tokens["a"] / tokens["b"]
        assert 1.6 <= ratio <= 2.5

    def test_wfq_bounds_late_tenant_ttft_vs_fcfs(self):
        """Tenant b arrives behind tenant a's 40-request flood: FCFS
        makes b wait out the whole backlog, WFQ interleaves it."""
        from repro.serve import percentile

        def p99_ttft(scheduler):
            stream = self._stream(per_tenant=40, stagger_s=0.5)
            stream = [r for r in stream if r.tenant == "a"] + \
                     [r for r in stream if r.tenant == "b"][:5]
            result = self._run(scheduler, stream, max_batch=2)
            waits = [r.ttft_s for r in result.requests
                     if r.tenant == "b" and r.finished]
            assert len(waits) == 5
            return percentile(waits, 99.0)

        assert p99_ttft("wfq") < p99_ttft("fcfs")
