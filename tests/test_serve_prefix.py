"""Tests for radix-trie prefix sharing (``paged-shared``).

Three layers:

- unit tests for the trie and the sharing mechanics (splice, COW
  boundary charge, LRU pressure eviction, rollback on OOM);
- a hypothesis ``RuleBasedStateMachine`` that drives random
  admit/grow/preempt/finish/re-admit sequences over shared prefixes
  and checks the block ledger after every step: **every block's
  ``ref_count`` equals its live references** (trie ownership + block
  table splices), and a drained cache leaks nothing — the sharing
  analogue of the disagg no-leak test;
- the PR's acceptance physics end-to-end: on a multi-tenant workload
  with ample capacity, sharing shows ``prefix_hit_rate > 0`` and a
  strictly lower peak KV footprint than the identical sharing-off run.
"""

from collections import Counter

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.api import resolve_allocator
from repro.gpu.device import GpuDevice
from repro.serve import (
    MultiTenantArrivals,
    SharedPagedKVCache,
    run_serving,
)
from repro.serve.prefix import PrefixTrie
from repro.serve.request import ServeRequest
from repro.sim.engine import ReplaySession
from repro.units import GB
from repro.workloads import get_model
from repro.workloads.inference import kv_bytes

MODEL = get_model("opt-1.3b")
BLOCK_TOKENS = 16
BLOCK_BYTES = kv_bytes(MODEL, BLOCK_TOKENS)


def harness(capacity_blocks=256):
    """A SharedPagedKVCache bound to a real caching allocator."""
    device = GpuDevice(capacity=capacity_blocks * BLOCK_BYTES)
    allocator = resolve_allocator("caching", device)
    kv = SharedPagedKVCache(MODEL, block_tokens=BLOCK_TOKENS)
    kv.bind(ReplaySession(allocator), allocator)
    return kv, allocator


def prefix_request(req_id, prefix_id=None, prefix_tokens=0,
                   prompt=128, output=64):
    return ServeRequest(req_id=req_id, arrival_s=0.0,
                        prompt_tokens=prompt, output_tokens=output,
                        prefix_id=prefix_id, prefix_tokens=prefix_tokens)


def assert_ref_ledger(kv):
    """Every block's ref_count equals its live references: one per
    trie ownership plus one per block-table splice."""
    expected = Counter()
    for _, block in kv.trie.owned_blocks():
        expected[block] += 1
    for table in kv._tables.values():
        expected.update(table)
    assert dict(expected) == kv._ref
    assert kv.live_blocks == len(kv._ref)


class TestPrefixTrie:
    def test_slot_is_stable(self):
        trie = PrefixTrie()
        assert trie.slot("a") == 0
        assert trie.slot("b") == 1
        assert trie.slot("a") == 0

    def test_path_extend_trim(self):
        trie = PrefixTrie()
        assert trie.path("a") == []
        trie.extend("a", "x0")
        trie.extend("a", "x1")
        assert trie.path("a") == ["x0", "x1"]
        assert trie.resident_blocks == 2
        assert trie.trim_tail("a") == "x1"
        assert trie.trim_tail("a") == "x0"
        assert trie.trim_tail("a") is None
        assert trie.path("a") == []

    def test_lru_order_follows_touch(self):
        trie = PrefixTrie()
        for pid in ("a", "b", "c"):
            trie.extend(pid, f"{pid}0")
            trie.touch(pid)
        trie.touch("a")
        assert trie.lru_ids() == ["b", "c", "a"]

    def test_owned_blocks_enumerates_every_path(self):
        trie = PrefixTrie()
        trie.extend("a", "x0")
        trie.extend("b", "y0")
        trie.extend("b", "y1")
        assert sorted(trie.owned_blocks()) == [
            ("a", "x0"), ("b", "y0"), ("b", "y1")]


class TestSharingMechanics:
    def test_first_request_materializes_prefix(self):
        kv, _ = harness()
        ok = kv.admit(prefix_request(0, "p", prefix_tokens=64))
        assert ok
        assert kv.metrics.prefix_lookups == 1
        assert kv.metrics.prefix_hits == 0      # cold: nothing resident yet
        assert kv.trie.resident_blocks == 64 // BLOCK_TOKENS
        for _, block in kv.trie.owned_blocks():
            assert kv.ref_count(block) == 2     # trie + the request's table
        assert_ref_ledger(kv)

    def test_second_request_hits_and_shares(self):
        kv, _ = harness()
        assert kv.admit(prefix_request(0, "p", prefix_tokens=64))
        assert kv.admit(prefix_request(1, "p", prefix_tokens=64))
        assert kv.metrics.prefix_hits == 1
        assert kv.metrics.shared_bytes == 4 * BLOCK_BYTES
        assert kv.metrics.prefix_hit_rate == 0.5
        for _, block in kv.trie.owned_blocks():
            assert kv.ref_count(block) == 3
        assert_ref_ledger(kv)

    def test_prefix_survives_request_release(self):
        kv, allocator = harness()
        r = prefix_request(0, "p", prefix_tokens=64)
        assert kv.admit(r)
        kv.release(r)
        assert kv.live_requests == 0
        assert kv.trie.resident_blocks == 4     # cache, not leak
        assert kv.idle_shared_blocks == 4
        assert kv.live_blocks == 4
        # The next request of the group pays zero allocations for them.
        allocs = kv.metrics.kv_allocs
        assert kv.admit(prefix_request(1, "p", prefix_tokens=64, prompt=64))
        assert kv.metrics.prefix_hits == 1
        assert kv.metrics.kv_allocs == allocs + 1   # only the +1 token block
        assert_ref_ledger(kv)

    def test_no_prefix_takes_plain_paged_path(self):
        kv, _ = harness()
        assert kv.admit(prefix_request(0))
        assert kv.metrics.prefix_lookups == 0
        assert kv.trie.resident_blocks == 0
        assert all(b.startswith("kvb") for b in kv._tables[0])
        assert_ref_ledger(kv)

    def test_sub_block_prefix_is_not_shared(self):
        kv, _ = harness()
        assert kv.admit(prefix_request(0, "p", prefix_tokens=BLOCK_TOKENS - 1))
        assert kv.metrics.prefix_lookups == 0
        assert kv.trie.resident_blocks == 0

    def test_cow_charged_when_prefix_ends_mid_block(self):
        kv, _ = harness()
        ragged = 2 * BLOCK_TOKENS + 8           # 2 shared blocks + 8 tokens
        assert kv.admit(prefix_request(0, "p", prefix_tokens=ragged))
        assert kv.metrics.cow_copy_bytes == 0   # cold miss: nothing copied
        assert kv.admit(prefix_request(1, "p", prefix_tokens=ragged))
        assert kv.metrics.cow_copy_bytes == kv_bytes(MODEL, 8)

    def test_longer_prefix_extends_resident_path(self):
        kv, _ = harness()
        assert kv.admit(prefix_request(0, "p", prefix_tokens=32))
        assert kv.trie.resident_blocks == 2
        assert kv.admit(prefix_request(1, "p", prefix_tokens=64))
        assert kv.trie.resident_blocks == 4     # reused 2, materialized 2
        assert kv.metrics.prefix_hits == 1
        assert_ref_ledger(kv)

    def test_shorter_prefix_shares_head_only(self):
        kv, _ = harness()
        assert kv.admit(prefix_request(0, "p", prefix_tokens=64))
        assert kv.admit(prefix_request(1, "p", prefix_tokens=32))
        head = kv.trie.path("p")[:2]
        for block in head:
            assert kv.ref_count(block) == 3
        for block in kv.trie.path("p")[2:]:
            assert kv.ref_count(block) == 2
        assert_ref_ledger(kv)

    def test_oom_mid_materialization_rolls_back_everything(self):
        # Pool segments hold 6 blocks at this capacity: the 8-block
        # prefix OOMs mid-materialization.
        kv, allocator = harness(capacity_blocks=10)
        big = prefix_request(0, "p", prefix_tokens=128, prompt=128)
        assert not kv.admit(big)
        assert kv.live_requests == 0
        assert kv.live_blocks == 0
        assert kv.trie.resident_blocks == 0
        assert kv._ref == {}
        assert allocator.stats().active_bytes == 0
        assert kv.metrics.kv_allocs == kv.metrics.kv_frees

    def test_pressure_evicts_idle_shared_lru_first(self):
        # This capacity fits 12 blocks after pool-segment rounding.
        kv, _ = harness(capacity_blocks=16)
        r0 = prefix_request(0, "a", prefix_tokens=128, prompt=128, output=16)
        assert kv.admit(r0)                     # 8 shared + 1 private
        kv.release(r0)                          # 8 idle shared remain
        assert kv.idle_shared_blocks == 8
        r1 = prefix_request(1, "b", prefix_tokens=128, prompt=128, output=16)
        assert kv.admit(r1)                     # needs 9 fresh blocks
        assert len(kv.trie.path("a")) < 8       # cold tail was evicted
        assert len(kv.trie.path("b")) == 8
        assert_ref_ledger(kv)

    def test_busy_shared_blocks_are_never_evicted(self):
        # Fits 12 blocks: r0 holds 9 live, r1 needs 5 but only 3 are
        # free and nothing resident is idle.
        kv, _ = harness(capacity_blocks=16)
        r0 = prefix_request(0, "a", prefix_tokens=128, prompt=128, output=16)
        assert kv.admit(r0)                     # 9 blocks, r0 still live
        r1 = prefix_request(1, "b", prefix_tokens=64, prompt=64, output=16)
        assert not kv.admit(r1)                 # nothing idle to evict
        assert len(kv.trie.path("a")) == 8      # untouched
        assert_ref_ledger(kv)

    def test_reset_shared_drains_idle_cache(self):
        kv, allocator = harness()
        for i, pid in enumerate(("a", "b")):
            r = prefix_request(i, pid, prefix_tokens=64)
            assert kv.admit(r)
            kv.release(r)
        assert kv.reset_shared() == 8
        assert kv.live_blocks == 0
        assert allocator.stats().active_bytes == 0
        assert kv.metrics.kv_allocs == kv.metrics.kv_frees

    def test_preempt_recompute_skips_shared_prefix(self):
        kv, _ = harness()
        r = prefix_request(0, "p", prefix_tokens=64, prompt=96, output=64)
        assert kv.admit(r)
        kv.release(r, preempted=True)
        # Only the 32 private context tokens past the shared 64 are
        # recomputed; the prefix stays resident in the trie.
        assert kv.metrics.preempt_copy_bytes == kv_bytes(MODEL, 96 - 64)
        # A plain request with the same context recomputes all of it.
        plain = prefix_request(1, prompt=96, output=64)
        assert kv.admit(plain)
        kv.release(plain, preempted=True)
        assert kv.metrics.preempt_copy_bytes == \
            kv_bytes(MODEL, 32) + kv_bytes(MODEL, 96)


class PrefixRefCountMachine(RuleBasedStateMachine):
    """Random admit/grow/preempt/finish/re-admit traffic over shared
    prefixes; the block ledger must balance after every step."""

    PREFIXES = ("alpha", "beta", "gamma")

    def __init__(self):
        super().__init__()
        self.kv, self.allocator = harness(capacity_blocks=48)
        self.live = {}       # req_id -> ServeRequest with KV on device
        self.parked = []     # preempted, eligible for re-admission
        self.next_id = 0

    # -- rules ----------------------------------------------------------
    @rule(group=st.integers(0, 3),
          prefix_blocks=st.integers(1, 6),
          prompt_blocks=st.integers(1, 8),
          output=st.integers(1, 64))
    def admit_new(self, group, prefix_blocks, prompt_blocks, output):
        prefix_id = (self.PREFIXES[group]
                     if group < len(self.PREFIXES) else None)
        request = prefix_request(
            self.next_id, prefix_id,
            prefix_tokens=prefix_blocks * BLOCK_TOKENS if prefix_id else 0,
            prompt=prompt_blocks * BLOCK_TOKENS, output=output)
        self.next_id += 1
        if self.kv.admit(request):
            self.live[request.req_id] = request
        else:
            assert request.req_id not in self.kv._tables

    @rule(pick=st.integers(0, 10 ** 6))
    def grow_one(self, pick):
        if not self.live:
            return
        request = self.live[sorted(self.live)[pick % len(self.live)]]
        request.tokens_done += BLOCK_TOKENS     # decode past capacity
        if not self.kv.grow(request):
            # The simulator would preempt on failed growth.
            self.kv.release(request, preempted=True)
            del self.live[request.req_id]
            self.parked.append(request)

    @rule(pick=st.integers(0, 10 ** 6))
    def finish_one(self, pick):
        if not self.live:
            return
        request = self.live.pop(sorted(self.live)[pick % len(self.live)])
        self.kv.release(request)

    @rule(pick=st.integers(0, 10 ** 6))
    def preempt_one(self, pick):
        if not self.live:
            return
        request = self.live.pop(sorted(self.live)[pick % len(self.live)])
        self.kv.release(request, preempted=True)
        self.parked.append(request)

    @rule()
    def readmit_parked(self):
        if not self.parked:
            return
        request = self.parked.pop(0)
        if self.kv.admit(request):
            self.live[request.req_id] = request

    @rule()
    def drain_idle_cache(self):
        self.kv.reset_shared()

    # -- the invariant (checked after every rule) -----------------------
    @invariant()
    def check_ledger(self):
        assert_ref_ledger(self.kv)
        assert self.kv.live_requests == len(self.live)
        assert (self.kv.metrics.kv_allocs - self.kv.metrics.kv_frees
                == self.kv.live_blocks)

    def teardown(self):
        for request in list(self.live.values()):
            self.kv.release(request)
        self.live.clear()
        self.kv.reset_shared()
        # pending == 0 and live == 0  =>  zero leaked blocks.
        assert self.kv.live_requests == 0
        assert self.kv.live_blocks == 0
        assert self.kv._ref == {}
        assert self.kv.trie.resident_blocks == 0
        assert self.kv.metrics.kv_allocs == self.kv.metrics.kv_frees
        assert self.allocator.stats().active_bytes == 0


TestPrefixRefCountFuzz = PrefixRefCountMachine.TestCase
TestPrefixRefCountFuzz.settings = settings(
    max_examples=25, stateful_step_count=40)


class TestAcceptancePhysics:
    """The PR's acceptance bar, end-to-end through the simulator."""

    def _run(self, kv_cache, n=60):
        stream = MultiTenantArrivals(
            tenants=4, rate_per_s=6.0, shared_prefix_tokens=256,
        ).generate(n, seed=3)
        return run_serving(stream, "opt-1.3b", allocator="caching",
                           capacity=8 * GB, kv_cache=kv_cache,
                           scheduler="memory-aware")

    def test_sharing_hits_and_strictly_lowers_peak_kv(self):
        plain = self._run("paged?block_tokens=16")
        shared = self._run("paged-shared?block_tokens=16")
        assert shared.kv_metrics.prefix_hit_rate > 0
        assert shared.kv_metrics.shared_bytes > 0
        assert (shared.kv_metrics.peak_kv_bytes
                < plain.kv_metrics.peak_kv_bytes)
        # Same seed, same stream: serving quality does not regress.
        assert shared.report().completed == plain.report().completed == 60
        assert (shared.report().goodput_req_s
                >= plain.report().goodput_req_s)

    def test_sharing_off_pays_no_sharing_ledger(self):
        plain = self._run("paged?block_tokens=16")
        assert plain.kv_metrics.prefix_lookups == 0
        assert plain.kv_metrics.shared_bytes == 0
        assert plain.kv_metrics.cow_copy_bytes == 0
