"""Tests for the expandable-segments allocator (extension)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.allocators import ExpandableSegmentsAllocator
from repro.errors import OutOfMemoryError
from repro.gpu.device import GpuDevice
from repro.units import GB, KB, MB


@pytest.fixture
def device():
    return GpuDevice(capacity=1 * GB)


@pytest.fixture
def expandable(device):
    return ExpandableSegmentsAllocator(device)


class TestGrowth:
    def test_first_alloc_grows_arena(self, expandable, device):
        expandable.malloc(50 * MB)
        assert expandable.reserved_bytes == 50 * MB
        assert device.used_memory == 50 * MB

    def test_growth_is_chunk_granular(self, expandable):
        expandable.malloc(3 * MB)
        assert expandable.reserved_bytes == 4 * MB

    def test_growth_reuses_free_tail(self, expandable):
        alloc = expandable.malloc(10 * MB)
        expandable.free(alloc)
        expandable.malloc(12 * MB)  # extends the free 10 MB tail by 2 MB
        assert expandable.reserved_bytes == 12 * MB

    def test_small_and_large_arenas_are_separate(self, expandable):
        expandable.malloc(100 * KB)
        expandable.malloc(30 * MB)
        assert expandable.mapped_bytes("small") == 2 * MB
        assert expandable.mapped_bytes("large") == 30 * MB

    def test_uses_vmm_not_cudamalloc(self, expandable, device):
        expandable.malloc(10 * MB)
        assert device.runtime.counters.malloc_calls == 0
        assert device.vmm.counters.create_calls == 5


class TestNoSegmentBoundaries:
    def test_freed_neighbours_coalesce_across_whole_arena(self, expandable):
        """What BFC cannot do: blocks from different 'segments' merge."""
        a = expandable.malloc(30 * MB)
        b = expandable.malloc(30 * MB)
        expandable.free(a)
        expandable.free(b)
        reserved = expandable.reserved_bytes
        big = expandable.malloc(60 * MB)  # served by the merged hole
        assert expandable.reserved_bytes == reserved
        assert big.rounded_size == 60 * MB

    def test_holes_cannot_be_stitched(self, expandable):
        """What GMLake can do and expandable segments cannot: two
        non-adjacent holes cannot serve one large request."""
        a = expandable.malloc(30 * MB)
        keep = expandable.malloc(2 * MB)
        b = expandable.malloc(30 * MB)
        expandable.free(a)
        expandable.free(b)
        reserved = expandable.reserved_bytes
        expandable.malloc(60 * MB)  # must grow: holes are disjoint
        assert expandable.reserved_bytes > reserved
        expandable.free(keep)


class TestTrimAndOom:
    def test_empty_cache_trims_free_tail(self, expandable, device):
        alloc = expandable.malloc(50 * MB)
        expandable.free(alloc)
        expandable.empty_cache()
        assert expandable.reserved_bytes == 0
        assert device.used_memory == 0

    def test_trim_keeps_interior_holes(self, expandable):
        hole = expandable.malloc(30 * MB)
        keep = expandable.malloc(10 * MB)
        expandable.free(hole)
        expandable.empty_cache()
        # The hole is below a live block: it cannot be unmapped.
        assert expandable.reserved_bytes == 40 * MB
        expandable.free(keep)

    def test_oom_trims_then_retries(self, expandable):
        big = expandable.malloc(600 * MB)
        expandable.free(big)
        alloc = expandable.malloc(900 * MB)  # trim 600, grow 900
        assert alloc.rounded_size == 900 * MB

    def test_oom_raises_when_pinned(self, expandable):
        expandable.malloc(600 * MB)
        with pytest.raises(OutOfMemoryError):
            expandable.malloc(600 * MB)

    def test_usable_after_oom(self, expandable):
        keeper = expandable.malloc(600 * MB)
        with pytest.raises(OutOfMemoryError):
            expandable.malloc(600 * MB)
        expandable.free(keeper)
        assert expandable.malloc(500 * MB)


class TestInvariantsAndProperties:
    def test_invariants_after_mixed_ops(self, expandable):
        import random
        rng = random.Random(3)
        live = []
        for _ in range(200):
            if live and rng.random() < 0.5:
                expandable.free(live.pop(rng.randrange(len(live))))
            else:
                size = rng.choice([64 * KB, 3 * MB, 12 * MB, 40 * MB])
                try:
                    live.append(expandable.malloc(size))
                except OutOfMemoryError:
                    pass
        expandable.check_invariants()
        for alloc in live:
            expandable.free(alloc)
        expandable.check_invariants()
        assert expandable.active_bytes == 0

    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(1, 64 * MB),
                              st.integers(0, 1000)), max_size=50))
    def test_property_reserved_covers_active(self, steps):
        allocator = ExpandableSegmentsAllocator(GpuDevice(capacity=2 * GB))
        live = []
        for is_alloc, size, index in steps:
            if is_alloc or not live:
                try:
                    live.append(allocator.malloc(size))
                except OutOfMemoryError:
                    continue
            else:
                allocator.free(live.pop(index % len(live)))
        allocator.check_invariants()
        assert allocator.reserved_bytes >= allocator.active_bytes
        for alloc in live:
            allocator.free(alloc)
        allocator.empty_cache()
        assert allocator.device.used_memory == 0


class TestOrderingVsOtherAllocators:
    def test_fragmentation_ordering_on_interleaved_frees(self):
        """caching <= expandable <= gmlake by utilization on the
        paper's hole-stranding pattern."""
        from repro.allocators import CachingAllocator
        from repro.core import GMLakeAllocator

        def stress(allocator):
            allocs = [allocator.malloc(40 * MB) for _ in range(8)]
            for alloc in allocs[::2]:
                allocator.free(alloc)
            allocator.malloc(80 * MB)
            return allocator.stats().utilization_ratio

        caching = stress(CachingAllocator(GpuDevice(capacity=2 * GB)))
        expandable = stress(
            ExpandableSegmentsAllocator(GpuDevice(capacity=2 * GB)))
        gmlake = stress(GMLakeAllocator(GpuDevice(capacity=2 * GB)))
        assert caching <= expandable + 1e-9
        assert expandable <= gmlake + 1e-9
        assert gmlake > 0.99
