"""Tests for the tiered KV memory hierarchy (``repro.serve.memtier``).

Four layers:

- unit tests for the ``memory-tier`` registry entries and the
  hierarchy spec mini-DSL (aliases, check hooks, comma parsing);
- mechanics tests for :class:`TierHierarchy`: first-fit placement in
  tier order, spill to deeper tiers, rejection when everything is
  full, promote/discard bookkeeping, label de-duplication and
  transfer pricing through the tier's interconnect;
- a hypothesis ``RuleBasedStateMachine`` driving random
  demote/promote/discard traffic and checking the residency ledger
  after every step: **every item is resident in exactly one tier**,
  per-tier usage equals the sum of its residents, capacities are
  never exceeded, and a drained hierarchy leaks nothing;
- the subsystem end-to-end: ``memory_tiers`` on :func:`run_serving`
  wraps recompute preemption into :class:`TieredPreemption`, parks
  victims in the hierarchy, restores them on re-admission, and the
  degenerate unbounded-DRAM hierarchy replays **byte-identically** to
  legacy swap preemption (same request lifecycles, same total bytes
  moved).
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.api.registry import SpecError
from repro.gpu.device import GpuDevice
from repro.gpu.latency import LatencyModel
from repro.serve import (
    CxlTier,
    DramTier,
    MemoryTierSpec,
    NvmeTier,
    PcieInterconnect,
    PoissonArrivals,
    ServingConfig,
    SwapPreemption,
    TieredPreemption,
    TierHierarchy,
    memory_tier_names,
    parse_memory_tiers,
    resolve_memory_tiers,
    run_serving,
)
from repro.units import GB
from test_equivalence_goldens import _request_digest

MB = 1 << 20


class TestTierRegistry:
    def test_registered_names(self):
        assert set(memory_tier_names()) == {"dram", "cxl", "nvme"}
        names = memory_tier_names(include_aliases=True)
        for alias in ("host", "flash", "ssd"):
            assert alias in names

    def test_aliases_resolve_to_canonical_classes(self):
        assert isinstance(MemoryTierSpec.parse("host").build(), DramTier)
        assert isinstance(MemoryTierSpec.parse("flash").build(), NvmeTier)
        assert isinstance(MemoryTierSpec.parse("ssd").build(), NvmeTier)

    def test_defaults_materialize(self):
        dram = MemoryTierSpec.parse("dram").build()
        assert dram.gb == 64.0
        assert dram.capacity_bytes == 64 * GB
        cxl = MemoryTierSpec.parse("cxl").build()
        assert (cxl.gb, cxl.gb_per_s, cxl.latency_us) == (256.0, 40.0, 1.0)

    def test_zero_gb_means_unbounded(self):
        tier = MemoryTierSpec.parse("dram?gb=0").build()
        assert tier.capacity_bytes == float("inf")

    def test_negative_params_rejected(self):
        for bad in ("dram?gb=-1", "cxl?gb_per_s=-2", "nvme?latency_us=-3"):
            with pytest.raises(SpecError, match=">= 0"):
                MemoryTierSpec.parse(bad)

    def test_link_conflicts_with_explicit_figures(self):
        with pytest.raises(SpecError, match="not both"):
            MemoryTierSpec.parse("dram?link=pcie&gb_per_s=12")

    def test_bad_link_spec_rejected(self):
        with pytest.raises(SpecError, match="link"):
            MemoryTierSpec.parse("dram?link=warp-drive")

    def test_link_prices_transfers(self):
        tier = MemoryTierSpec.parse(
            "dram?gb=64&link=nvlink?gb_per_s=300").build()
        latency = LatencyModel()
        assert tier.transfer_us(GB, latency) \
            == tier.interconnect.transfer_us(GB, latency)

    def test_bare_dram_prices_like_device_pcie(self):
        """gb_per_s/latency_us default to 0 — the device-latency
        sentinel — so a bare dram tier prices exactly as swap always
        has."""
        tier = MemoryTierSpec.parse("dram").build()
        latency = LatencyModel()
        assert tier.transfer_us(GB, latency) == latency.pcie_transfer(GB)


class TestHierarchyParsing:
    def test_empty_string_is_no_tiering(self):
        assert parse_memory_tiers("") == []
        assert parse_memory_tiers("  ") == []
        assert resolve_memory_tiers("") is None
        assert resolve_memory_tiers(None) is None
        assert resolve_memory_tiers([]) is None

    def test_comma_list_parses_in_order(self):
        specs = parse_memory_tiers("dram?gb=64, cxl?gb=256 ,nvme")
        assert [s.info.name for s in specs] == ["dram", "cxl", "nvme"]

    def test_resolve_accepts_many_shapes(self):
        from_string = resolve_memory_tiers("dram?gb=64,cxl")
        from_specs = resolve_memory_tiers(parse_memory_tiers("dram?gb=64,cxl"))
        from_instances = resolve_memory_tiers(
            [DramTier(gb=64.0), CxlTier()])
        for hierarchy in (from_string, from_specs, from_instances):
            assert isinstance(hierarchy, TierHierarchy)
            assert hierarchy.labels == ["dram", "cxl"]
        assert resolve_memory_tiers(from_string) is from_string

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ValueError, match="at least one tier"):
            TierHierarchy([])

    def test_duplicate_tier_labels_deduplicate(self):
        hierarchy = TierHierarchy(["dram?gb=1", "dram?gb=2"])
        assert hierarchy.labels == ["dram", "dram1"]

    def test_spec_strings_round_trip(self):
        hierarchy = TierHierarchy(["dram?gb=64", "cxl"])
        strings = hierarchy.spec_strings()
        assert strings == ["dram?gb=64",
                           "cxl?gb=256&gb_per_s=40&latency_us=1"]
        again = TierHierarchy(strings)
        assert again.spec_strings() == strings


def bound_hierarchy(*tiers):
    hierarchy = TierHierarchy(list(tiers))
    hierarchy.bind(None, GpuDevice())
    return hierarchy


class TestHierarchyMechanics:
    def test_first_fit_in_tier_order(self):
        hierarchy = bound_hierarchy(f"dram?gb={2 * MB / GB}", "cxl?gb=1")
        label, us = hierarchy.demote("a", MB)
        assert label == "dram" and us > 0
        assert hierarchy.tier_of("a") == "dram"
        assert hierarchy.used_bytes == {"dram": MB, "cxl": 0}

    def test_spills_to_deeper_tier_when_full(self):
        hierarchy = bound_hierarchy(f"dram?gb={2 * MB / GB}", "cxl?gb=1")
        assert hierarchy.demote("a", 2 * MB)[0] == "dram"
        assert hierarchy.demote("b", MB)[0] == "cxl"

    def test_returns_none_when_everything_is_full(self):
        hierarchy = bound_hierarchy(f"dram?gb={MB / GB}",
                                    f"cxl?gb={MB / GB}")
        assert hierarchy.demote("a", MB) is not None
        assert hierarchy.demote("b", MB) is not None
        assert hierarchy.demote("c", MB) is None
        assert hierarchy.resident_items == 2

    def test_promote_returns_from_landing_tier(self):
        hierarchy = bound_hierarchy(f"dram?gb={MB / GB}", "cxl?gb=1")
        hierarchy.demote("a", MB)
        hierarchy.demote("b", MB)            # spilled to cxl
        label, size, us = hierarchy.promote("b")
        assert (label, size) == ("cxl", MB) and us > 0
        assert not hierarchy.holds("b")
        assert hierarchy.used_bytes["cxl"] == 0

    def test_promote_missing_is_none(self):
        hierarchy = bound_hierarchy("dram?gb=1")
        assert hierarchy.promote("ghost") is None

    def test_double_demote_raises(self):
        hierarchy = bound_hierarchy("dram?gb=1")
        hierarchy.demote("a", MB)
        with pytest.raises(ValueError, match="already resident"):
            hierarchy.demote("a", MB)

    def test_discard_frees_without_transfer(self):
        hierarchy = bound_hierarchy("dram?gb=1")
        hierarchy.demote("a", MB)
        hierarchy.discard("a")
        hierarchy.discard("a")               # idempotent
        assert hierarchy.drained

    def test_deep_tier_pricing_uses_its_own_link(self):
        cxl = CxlTier(gb=1.0, gb_per_s=40.0, latency_us=1.0)
        hierarchy = bound_hierarchy(cxl)
        _, us = hierarchy.demote("a", GB)
        assert us == pytest.approx(
            PcieInterconnect(gb_per_s=40.0, latency_us=1.0).transfer_us(
                GB, LatencyModel()))


class TierResidencyMachine(RuleBasedStateMachine):
    """Random demote/promote/discard traffic over a bounded two-tier
    hierarchy; the residency ledger must balance after every step."""

    def __init__(self):
        super().__init__()
        self.hierarchy = bound_hierarchy(
            f"dram?gb={4 * MB / GB}", f"cxl?gb={8 * MB / GB}")
        self.caps = [4 * MB, 8 * MB]
        self.resident = {}   # name -> (label, size) shadow model
        self.next_id = 0

    @rule(blocks=st.integers(1, 3))
    def demote_new(self, blocks):
        size = blocks * MB
        name = f"item{self.next_id}"
        self.next_id += 1
        placed = self.hierarchy.demote(name, size)
        used = {label: 0 for label in self.hierarchy.labels}
        for label, item_size in self.resident.values():
            used[label] += item_size
        fits = [label for label, cap in zip(self.hierarchy.labels, self.caps)
                if used[label] + size <= cap]
        if placed is None:
            # Rejected only when genuinely nothing fits.
            assert not fits
            assert not self.hierarchy.holds(name)
        else:
            label, us = placed
            # First fit: the shallowest tier with room wins.
            assert label == fits[0]
            assert us > 0
            self.resident[name] = (label, size)

    @rule(pick=st.integers(0, 10 ** 6))
    def promote_one(self, pick):
        if not self.resident:
            return
        name = sorted(self.resident)[pick % len(self.resident)]
        label, size = self.resident.pop(name)
        got_label, got_size, us = self.hierarchy.promote(name)
        assert (got_label, got_size) == (label, size)
        assert us > 0

    @rule(pick=st.integers(0, 10 ** 6))
    def discard_one(self, pick):
        if not self.resident:
            return
        name = sorted(self.resident)[pick % len(self.resident)]
        del self.resident[name]
        self.hierarchy.discard(name)

    @invariant()
    def check_ledger(self):
        used = {label: 0 for label in self.hierarchy.labels}
        for name, (label, size) in self.resident.items():
            # Every shadow item is resident in exactly the tier the
            # shadow says (and residency is single-homed by dict shape).
            assert self.hierarchy.tier_of(name) == label
            used[label] += size
        assert self.hierarchy.used_bytes == used
        assert self.hierarchy.resident_items == len(self.resident)
        for label, cap in zip(self.hierarchy.labels, self.caps):
            assert used[label] <= cap

    def teardown(self):
        for name in sorted(self.resident):
            self.hierarchy.promote(name)
        self.resident.clear()
        assert self.hierarchy.drained


TestTierResidencyFuzz = TierResidencyMachine.TestCase
TestTierResidencyFuzz.settings = settings(
    max_examples=25, stateful_step_count=40)


def _serve(n=60, **kw):
    stream = PoissonArrivals(rate_per_s=8.0).generate(n, seed=7)
    return run_serving(
        stream, "opt-1.3b", allocator="caching", capacity=3 * GB,
        scheduler="memory-aware", kv_cache="paged?block_tokens=16",
        config=ServingConfig(max_batch=32, queue_timeout_s=60.0), **kw)


class TestServingEndToEnd:
    def test_recompute_wraps_into_tiered_preemption(self):
        result = _serve(memory_tiers="dram?gb=64")
        assert result.preemption_name == "tiered"
        assert result.memory_tiers == "dram?gb=64"
        assert result.report().preemptions > 0
        demoted = result.kv_metrics.demoted_bytes
        promoted = result.kv_metrics.promoted_bytes
        assert demoted and set(demoted) == {"dram"}
        # Every demoted victim either promoted back or was forgotten;
        # here the run drains, so the ledgers match.
        assert promoted.get("dram", 0) <= demoted["dram"]
        extras = result.extras()
        assert extras["memory_tiers"] == "dram?gb=64"
        assert extras["demoted_mb"] > 0

    def test_explicit_swap_with_tiers_is_an_error(self):
        with pytest.raises(ValueError, match="generalizes swap"):
            _serve(memory_tiers="dram?gb=64", preemption="swap")

    def test_no_tiers_leaves_recompute_untouched(self):
        result = _serve(memory_tiers="")
        assert result.preemption_name == "recompute"
        assert result.memory_tiers == ""
        assert not result.kv_metrics.demoted_bytes
        assert "memory_tiers" not in result.extras()

    def test_unbounded_dram_hierarchy_matches_legacy_swap(self):
        """Swap is the degenerate two-tier case: one unbounded DRAM
        tier over the device's PCIe link.  The same stream under
        ``memory_tiers="dram?gb=0"`` and under ``preemption="swap"``
        must produce identical request lifecycles, and the per-tier
        ledger must total exactly the legacy swapped-bytes ledger."""
        tiered = _serve(memory_tiers="dram?gb=0")
        swap = _serve(preemption="swap")
        assert _request_digest(tiered.requests) \
            == _request_digest(swap.requests)
        moved = (sum(tiered.kv_metrics.demoted_bytes.values())
                 + sum(tiered.kv_metrics.promoted_bytes.values()))
        assert moved == swap.kv_metrics.swapped_bytes
        assert swap.kv_metrics.demoted_bytes == {}

    def test_full_tiers_fall_back_to_recompute(self):
        """A hierarchy too small for any victim's KV can never park
        anything: the run degrades to recompute semantics (identical
        request lifecycles), with an empty tier ledger."""
        tiny = _serve(memory_tiers=f"dram?gb={1 / GB}")
        plain = _serve()
        assert _request_digest(tiny.requests) \
            == _request_digest(plain.requests)
        assert not tiny.kv_metrics.demoted_bytes

    def test_gauges_sample_tier_residency(self):
        from repro.obs import GaugeSampler

        gauges = GaugeSampler(0.5)
        result = _serve(memory_tiers="dram?gb=64", gauges=gauges)
        assert result.report().preemptions > 0
        assert any(p.kv_tier_bytes > 0 for p in gauges.points)

    def test_trace_records_tier_events(self):
        from repro.obs import TraceRecorder

        recorder = TraceRecorder()
        result = _serve(memory_tiers="dram?gb=64", trace=recorder)
        assert result.report().preemptions > 0
        kinds = {event.kind for event in recorder.events}
        assert "kv_demote" in kinds and "kv_promote" in kinds
        assert "kv_tier" in kinds
        trace = recorder.chrome_trace()
        names = {event["name"] for event in trace["traceEvents"]}
        assert "tier KV (MB)" in names


class TestTieredPreemptionUnit:
    def test_swap_is_a_single_unbounded_dram_tier(self):
        policy = SwapPreemption()
        assert isinstance(policy, TieredPreemption)
        assert len(policy.hierarchy.tiers) == 1
        host = policy.hierarchy.tiers[0]
        assert isinstance(host, DramTier)
        assert host.capacity_bytes == float("inf")
        assert host.interconnect is policy.interconnect

    def test_policy_instance_binds_once(self):
        hierarchy = TierHierarchy(["dram?gb=64"])
        policy = TieredPreemption(hierarchy)
        _serve(preemption=policy)
        with pytest.raises(ValueError, match="already bound"):
            _serve(preemption=policy)
