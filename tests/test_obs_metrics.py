"""Token-level SLOs and the streaming (sketch-backed) serving report.

Two contracts guard the metrics overhaul:

* ``SloConfig.tokens_on_time`` — the closed form must agree with a
  naive per-token deadline loop;
* ``streaming=True`` reports — every counter and mean is float-equal
  to the exact path, percentiles are within sketch tolerance, and the
  accumulator ``merge()`` matches single-pass observation.
"""

import dataclasses
import random

import pytest

from repro.serve.metrics import (
    ServingReport,
    ServingReportAccumulator,
    SloConfig,
    percentile,
)
from repro.serve.request import RequestState, ServeRequest


def make_finished(req_id, arrival=0.0, ttft=1.0, tpot=0.04, tokens=100,
                  prompt=128, preemptions=0):
    request = ServeRequest(req_id=req_id, arrival_s=arrival,
                           prompt_tokens=prompt, output_tokens=tokens)
    request.state = RequestState.FINISHED
    request.admitted_s = arrival + ttft / 2.0
    request.first_token_s = arrival + ttft
    request.tokens_done = tokens
    request.finished_s = arrival + ttft + tpot * max(tokens - 1, 0)
    request.preemptions = preemptions
    return request


def make_rejected(req_id, arrival=0.0, after_s=3.0, tokens_done=0,
                  reason="timeout"):
    request = ServeRequest(req_id=req_id, arrival_s=arrival,
                           prompt_tokens=64, output_tokens=32)
    request.state = RequestState.REJECTED
    request.rejected_s = arrival + after_s
    request.reject_reason = reason
    request.tokens_done = tokens_done
    return request


def brute_force_on_time(slo, request):
    """Token k (1-based) emitted at ttft + (k-1)*tpot, due at
    slo.ttft + (k-1)*slo.tpot — count the on-time ones directly."""
    if not request.finished or request.tokens_done <= 0:
        return 0
    if request.ttft_s is None:
        return 0
    ttft = request.ttft_s
    tpot = request.tpot_s or 0.0
    count = 0
    for k in range(1, request.tokens_done + 1):
        if (ttft - slo.ttft_s) <= (k - 1) * (slo.tpot_s - tpot):
            count += 1
    return count


class TestTokensOnTime:
    SLO = SloConfig(ttft_s=2.0, tpot_s=0.05)

    def test_token_deadline_schedule(self):
        assert self.SLO.token_deadline_s(1) == 2.0
        assert self.SLO.token_deadline_s(101) == pytest.approx(2.0 + 5.0)
        with pytest.raises(ValueError):
            self.SLO.token_deadline_s(0)

    def test_all_on_time_when_both_slos_met(self):
        request = make_finished(0, ttft=1.5, tpot=0.04, tokens=100)
        assert self.SLO.tokens_on_time(request) == 100

    def test_late_start_fast_decode_catches_up(self):
        # lateness 0.5s, decoding 10ms/token under SLO pace: token k is
        # on time once (k-1)*0.01 >= 0.5, i.e. from token 51 on.
        request = make_finished(0, ttft=2.5, tpot=0.04, tokens=100)
        assert self.SLO.tokens_on_time(request) == 50

    def test_late_start_exact_pace_never_catches_up(self):
        request = make_finished(0, ttft=2.5, tpot=0.05, tokens=100)
        assert self.SLO.tokens_on_time(request) == 0

    def test_on_time_start_exact_pace_all_on_time(self):
        request = make_finished(0, ttft=2.0, tpot=0.05, tokens=100)
        assert self.SLO.tokens_on_time(request) == 100

    def test_early_start_slow_decode_falls_behind(self):
        # 1s of TTFT headroom erodes at 10ms/token: tokens 1..101 make
        # their deadlines, later ones miss.
        request = make_finished(0, ttft=1.0, tpot=0.06, tokens=200)
        assert self.SLO.tokens_on_time(request) == 101

    def test_early_start_slow_decode_short_request(self):
        request = make_finished(0, ttft=1.0, tpot=0.06, tokens=50)
        assert self.SLO.tokens_on_time(request) == 50

    def test_unfinished_and_rejected_count_zero(self):
        assert self.SLO.tokens_on_time(make_rejected(0, tokens_done=7)) == 0
        queued = ServeRequest(req_id=1, arrival_s=0.0, prompt_tokens=8,
                              output_tokens=8)
        assert self.SLO.tokens_on_time(queued) == 0

    @pytest.mark.parametrize("seed", range(6))
    def test_closed_form_matches_brute_force(self, seed):
        rng = random.Random(seed)
        slo = SloConfig(ttft_s=rng.uniform(0.5, 3.0),
                        tpot_s=rng.uniform(0.01, 0.1))
        for req_id in range(200):
            request = make_finished(
                req_id,
                arrival=rng.uniform(0.0, 50.0),
                ttft=rng.uniform(0.01, 6.0),
                tpot=rng.uniform(0.0, 0.2),
                tokens=rng.randint(1, 400),
            )
            got = slo.tokens_on_time(request)
            want = brute_force_on_time(slo, request)
            # The closed form and the loop compare the same affine
            # quantities with different float groupings; an exact
            # boundary may fall either way, never further.
            assert abs(got - want) <= 1, (slo, request)
            assert 0 <= got <= request.tokens_done


def synthetic_population(n, seed=0):
    rng = random.Random(seed)
    requests = []
    for req_id in range(n):
        if rng.random() < 0.12:
            requests.append(make_rejected(
                req_id, arrival=rng.uniform(0.0, 500.0),
                tokens_done=rng.randint(0, 5),
                reason=rng.choice(["timeout", "preempted-out"])))
        else:
            requests.append(make_finished(
                req_id,
                arrival=rng.uniform(0.0, 500.0),
                ttft=rng.lognormvariate(-0.5, 0.8),
                tpot=rng.uniform(0.01, 0.09),
                tokens=rng.randint(1, 300),
                preemptions=rng.randint(0, 2),
            ))
    return requests


EXACT_FIELDS = [
    "n_requests", "completed", "rejected", "timed_out", "preemptions",
    "makespan_s", "mean_ttft_s", "mean_tpot_s", "throughput_req_s",
    "goodput_req_s", "slo_attainment", "tokens_per_s", "utilization",
    "peak_reserved_gb", "output_tokens", "on_time_tokens",
    "token_slo_attainment", "token_goodput_tok_s",
]

SKETCH_FIELDS = [
    "p50_ttft_s", "p99_ttft_s", "p50_latency_s", "p95_latency_s",
    "p99_latency_s",
]


class TestStreamingReport:
    def test_counters_and_means_are_exact(self):
        requests = synthetic_population(2000)
        slo = SloConfig()
        exact = ServingReport.from_requests(requests, 600.0, slo,
                                            utilization=0.9,
                                            peak_reserved_gb=40.0)
        stream = ServingReport.from_requests(requests, 600.0, slo,
                                             utilization=0.9,
                                             peak_reserved_gb=40.0,
                                             streaming=True)
        for field in EXACT_FIELDS:
            assert getattr(stream, field) == getattr(exact, field), field
        assert exact.streaming is False
        assert stream.streaming is True

    def test_percentiles_within_one_percent_at_10k(self):
        """The acceptance bar: 10k requests, p50/p95/p99 within 1%
        relative error of exact, without materialized sample lists."""
        requests = synthetic_population(10_000)
        exact = ServingReport.from_requests(requests, 600.0)
        stream = ServingReport.from_requests(requests, 600.0,
                                             streaming=True)
        for field in SKETCH_FIELDS:
            want = getattr(exact, field)
            got = getattr(stream, field)
            assert abs(got - want) <= 0.01 * abs(want), \
                f"{field}: {got} vs exact {want}"

    def test_accumulator_is_constant_memory(self):
        acc = ServingReportAccumulator()
        for request in synthetic_population(10_000, seed=3):
            acc.observe(request)
        assert acc.ttft_sketch.centroid_count <= 2 * acc.ttft_sketch.compression
        assert (acc.latency_sketch.centroid_count
                <= 2 * acc.latency_sketch.compression)

    def test_merge_matches_single_pass(self):
        requests = synthetic_population(3000, seed=5)
        slo = SloConfig(ttft_s=1.5, tpot_s=0.06)
        whole = ServingReportAccumulator(slo)
        for request in requests:
            whole.observe(request)

        shards = [ServingReportAccumulator(slo) for _ in range(4)]
        for i, request in enumerate(requests):
            shards[i % 4].observe(request)
        merged = shards[0]
        for shard in shards[1:]:
            merged.merge(shard)

        one = whole.report(400.0, utilization=0.8, peak_reserved_gb=30.0)
        two = merged.report(400.0, utilization=0.8, peak_reserved_gb=30.0)
        for field in ("n_requests", "completed", "rejected", "timed_out",
                      "preemptions", "output_tokens", "on_time_tokens",
                      "slo_attainment", "token_slo_attainment"):
            assert getattr(one, field) == getattr(two, field), field
        for field in SKETCH_FIELDS:
            want = getattr(one, field)
            assert getattr(two, field) == pytest.approx(want, rel=0.02), field

    def test_merge_rejects_slo_mismatch(self):
        left = ServingReportAccumulator(SloConfig(ttft_s=1.0, tpot_s=0.05))
        right = ServingReportAccumulator(SloConfig(ttft_s=2.0, tpot_s=0.05))
        with pytest.raises(ValueError):
            left.merge(right)


class TestReportSurface:
    def test_as_row_has_timeout_and_token_slo_columns(self):
        requests = synthetic_population(200)
        report = ServingReport.from_requests(requests, 100.0)
        row = report.as_row()
        assert row["timeout"] == report.timed_out
        assert row["tok SLO %"] == round(report.token_slo_attainment * 100.0, 1)
        keys = list(row)
        assert keys.index("timeout") == keys.index("rej") + 1
        assert keys.index("tok SLO %") == keys.index("SLO %") + 1

    def test_percentile_presorted_matches_unsorted(self):
        rng = random.Random(9)
        values = [rng.uniform(0.0, 10.0) for _ in range(101)]
        ordered = sorted(values)
        for q in (0.0, 12.5, 50.0, 95.0, 99.0, 100.0):
            assert (percentile(values, q)
                    == percentile(ordered, q, presorted=True))

    def test_empty_population(self):
        exact = ServingReport.from_requests([], 0.0)
        stream = ServingReport.from_requests([], 0.0, streaming=True)
        as_exact = dataclasses.asdict(exact)
        as_stream = dataclasses.asdict(stream)
        as_exact.pop("streaming")
        as_stream.pop("streaming")
        assert as_exact == as_stream
        assert exact.token_slo_attainment == 0.0
