"""Tests for the multi-rank cluster simulation."""

import pytest

from repro.sim import run_cluster
from repro.sim.cluster import ClusterResult
from repro.sim.engine import EngineResult
from repro.units import GB
from repro.workloads import TrainingWorkload


def fake_rank(util, reserved_gb, thru, oom=False):
    reserved = int(reserved_gb * GB)
    return EngineResult(
        allocator_name="fake", meta={},
        peak_active_bytes=int(util * reserved),
        peak_reserved_bytes=reserved,
        throughput_samples_per_s=thru,
        oom=oom,
    )


class TestClusterAggregation:
    def test_oom_if_any_rank_ooms(self):
        result = ClusterResult(ranks=[fake_rank(0.9, 10, 5),
                                      fake_rank(0.9, 10, 5, oom=True)])
        assert result.oom

    def test_no_oom_when_all_survive(self):
        result = ClusterResult(ranks=[fake_rank(0.9, 10, 5)] * 2)
        assert not result.oom

    def test_max_reserved_is_worst_rank(self):
        result = ClusterResult(ranks=[fake_rank(0.9, 10, 5),
                                      fake_rank(0.8, 14, 5)])
        assert result.max_peak_reserved_bytes == 14 * GB

    def test_min_and_mean_utilization(self):
        result = ClusterResult(ranks=[fake_rank(0.9, 10, 5),
                                      fake_rank(0.8, 10, 5)])
        assert result.min_utilization == pytest.approx(0.8)
        assert result.mean_utilization == pytest.approx(0.85)

    def test_throughput_is_slowest_rank(self):
        result = ClusterResult(ranks=[fake_rank(0.9, 10, 5),
                                      fake_rank(0.9, 10, 3)])
        assert result.throughput_samples_per_s == 3

    def test_summary_mentions_ranks(self):
        result = ClusterResult(ranks=[fake_rank(0.9, 10, 5)])
        assert "1 ranks" in result.summary()


class TestRunCluster:
    def test_simulates_every_rank(self):
        workload = TrainingWorkload("opt-1.3b", batch_size=2, n_gpus=4,
                                    strategies="LR", iterations=3)
        result = run_cluster(workload, "gmlake")
        assert result.n_ranks == 4
        assert not result.oom

    def test_rank_seeds_differ(self):
        workload = TrainingWorkload("opt-1.3b", batch_size=2, n_gpus=2,
                                    strategies="RO", iterations=3,
                                    seq_jitter=(0.7, 1.0))
        # Divergent seeds -> divergent traces (jitter differs per rank).
        from dataclasses import replace
        traces = [
            replace(workload, seed=workload.seed + 1009 * rank).build_trace()
            for rank in range(2)
        ]
        assert (traces[0].stats().total_alloc_bytes
                != traces[1].stats().total_alloc_bytes)
        result = run_cluster(workload, "caching")
        assert result.n_ranks == 2

    def test_single_rank_cluster(self):
        workload = TrainingWorkload("opt-1.3b", batch_size=2, n_gpus=1,
                                    iterations=2)
        result = run_cluster(workload, "gmlake")
        assert result.n_ranks == 1
        assert result.min_utilization == result.mean_utilization
