"""The t-digest quantile sketch: accuracy, merging, edge cases.

The sketch's contract is *rank* accuracy: its answer for quantile q
must be a value whose exact rank is within a small band around q.
Hypothesis drives random and adversarial streams through that check,
plus the merge laws (commutes, matches one-shot ingestion) and the
small-stream exactness guarantee the serving reports rely on.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import QuantileSketch
from repro.serve.metrics import percentile

QS = (50.0, 90.0, 95.0, 99.0)

floats = st.floats(min_value=-1e9, max_value=1e9,
                   allow_nan=False, allow_infinity=False)


def rank_of(sorted_values, x) -> float:
    """Fraction of values <= x (a value's exact quantile position)."""
    import bisect
    return bisect.bisect_right(sorted_values, x) / len(sorted_values)


def assert_rank_close(values, sketch, q, tol=0.03):
    """sketch.quantile(q) must sit within ``tol`` rank of q.

    Rank tolerance (not value tolerance) is the right yardstick:
    adversarial streams can make tiny rank errors arbitrarily large in
    value space, and vice versa.
    """
    data = sorted(values)
    got = sketch.quantile(q)
    lo = percentile(data, max(0.0, q - 100.0 * tol), presorted=True)
    hi = percentile(data, min(100.0, q + 100.0 * tol), presorted=True)
    # The band edges come from a different float grouping than the
    # sketch's interpolation; allow a last-ulp relative slop.  The
    # abs_tol floor covers subnormal streams, where halving a value in
    # the lerp underflows to 0.0 and no rel_tol can bridge the gap.
    assert (lo <= got <= hi
            or math.isclose(got, lo, rel_tol=1e-9, abs_tol=1e-300)
            or math.isclose(got, hi, rel_tol=1e-9, abs_tol=1e-300)), (
        f"q={q}: sketch {got} outside exact band [{lo}, {hi}] "
        f"(rank {rank_of(data, got):.4f})")


class TestBasics:
    def test_empty(self):
        sketch = QuantileSketch()
        assert len(sketch) == 0
        assert sketch.quantile(50.0) == 0.0

    def test_single_value(self):
        sketch = QuantileSketch()
        sketch.add(3.5)
        for q in (0.0, 50.0, 100.0):
            assert sketch.quantile(q) == 3.5

    def test_rejects_tiny_compression(self):
        with pytest.raises(ValueError):
            QuantileSketch(compression=5)

    def test_quantile_range_checked(self):
        sketch = QuantileSketch()
        sketch.add(1.0)
        with pytest.raises(ValueError):
            sketch.quantile(-1.0)
        with pytest.raises(ValueError):
            sketch.quantile(101.0)

    def test_min_max_exact(self):
        rng = random.Random(7)
        values = [rng.lognormvariate(0.0, 2.0) for _ in range(5000)]
        sketch = QuantileSketch(compression=100)
        sketch.extend(values)
        assert sketch.quantile(0.0) == min(values)
        assert sketch.quantile(100.0) == max(values)

    def test_small_streams_are_exact(self):
        """Below ~2x compression every centroid is a singleton, so the
        sketch interpolates the same order statistics percentile()
        does at the probed quantiles."""
        rng = random.Random(3)
        values = [rng.uniform(-50.0, 50.0) for _ in range(200)]
        sketch = QuantileSketch(compression=200)
        sketch.extend(values)
        data = sorted(values)
        for q in QS:
            assert sketch.quantile(q) == pytest.approx(
                percentile(data, q, presorted=True), rel=1e-9, abs=1e-9)

    def test_bounded_memory(self):
        sketch = QuantileSketch(compression=100)
        sketch.extend(float(i % 977) for i in range(50_000))
        sketch._compress(force=True)
        assert sketch.centroid_count <= 2 * 100
        assert len(sketch) == 50_000


class TestAccuracy:
    @given(st.lists(floats, min_size=1, max_size=2000))
    @settings(max_examples=60)
    def test_rank_accuracy_random_streams(self, values):
        sketch = QuantileSketch(compression=100)
        sketch.extend(values)
        for q in QS:
            assert_rank_close(values, sketch, q)

    @pytest.mark.parametrize("name,values", [
        ("sorted-ascending", [float(i) for i in range(8000)]),
        ("sorted-descending", [float(-i) for i in range(8000)]),
        ("constant", [42.0] * 8000),
        ("two-point-mass", [0.0] * 7000 + [1e9] * 1000),
        ("alternating-extremes", [(-1e9 if i % 2 else 1e9)
                                  for i in range(8000)]),
        ("heavy-tail", [math.exp(i % 23) for i in range(8000)]),
    ])
    def test_rank_accuracy_adversarial(self, name, values):
        sketch = QuantileSketch(compression=100)
        sketch.extend(values)
        for q in QS:
            assert_rank_close(values, sketch, q)

    def test_relative_error_10k_lognormal(self):
        """The acceptance bar: p50/p95/p99 within 1% relative error of
        exact on a 10k-sample latency-shaped stream."""
        rng = random.Random(0)
        values = [rng.lognormvariate(0.0, 1.0) for _ in range(10_000)]
        sketch = QuantileSketch(compression=200)
        sketch.extend(values)
        data = sorted(values)
        for q in (50.0, 95.0, 99.0):
            exact = percentile(data, q, presorted=True)
            got = sketch.quantile(q)
            assert abs(got - exact) / exact < 0.01, \
                f"p{q:g}: {got} vs exact {exact}"


class TestMerge:
    @given(st.lists(floats, min_size=1, max_size=600),
           st.lists(floats, min_size=1, max_size=600))
    @settings(max_examples=40)
    def test_merge_commutes_on_rank(self, a, b):
        """merge(A, B) and merge(B, A) both answer within tolerance of
        the exact combined stream (t-digest merging is not bitwise
        symmetric; its *contract* — rank accuracy — is)."""
        ab = QuantileSketch(compression=100)
        ab.extend(a)
        other_b = QuantileSketch(compression=100)
        other_b.extend(b)
        ab.merge(other_b)

        ba = QuantileSketch(compression=100)
        ba.extend(b)
        other_a = QuantileSketch(compression=100)
        other_a.extend(a)
        ba.merge(other_a)

        combined = a + b
        assert len(ab) == len(ba) == len(combined)
        for q in QS:
            assert_rank_close(combined, ab, q, tol=0.04)
            assert_rank_close(combined, ba, q, tol=0.04)

    def test_merge_matches_single_sketch_counters(self):
        rng = random.Random(11)
        values = [rng.expovariate(0.2) for _ in range(4000)]
        whole = QuantileSketch(compression=150)
        whole.extend(values)
        left = QuantileSketch(compression=150)
        left.extend(values[:1500])
        right = QuantileSketch(compression=150)
        right.extend(values[1500:])
        left.merge(right)
        assert len(left) == len(whole)
        assert left.quantile(0.0) == whole.quantile(0.0) == min(values)
        assert left.quantile(100.0) == whole.quantile(100.0) == max(values)
        for q in QS:
            assert_rank_close(values, left, q)

    def test_merge_empty_is_identity(self):
        sketch = QuantileSketch()
        sketch.extend([1.0, 2.0, 3.0])
        before = [sketch.quantile(q) for q in (0.0, 50.0, 100.0)]
        sketch.merge(QuantileSketch())
        assert [sketch.quantile(q) for q in (0.0, 50.0, 100.0)] == before

    def test_merge_into_empty(self):
        empty = QuantileSketch()
        full = QuantileSketch()
        full.extend([5.0, 6.0, 7.0])
        empty.merge(full)
        assert len(empty) == 3
        assert empty.quantile(50.0) == 6.0
