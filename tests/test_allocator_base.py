"""Contract tests shared by every allocator (via the native one) plus
native-allocator specifics."""

import pytest

from repro.allocators import NativeAllocator
from repro.errors import (
    AllocatorError,
    DoubleFreeError,
    OutOfMemoryError,
    UnknownAllocationError,
)
from repro.gpu.device import GpuDevice
from repro.units import GB, MB


@pytest.fixture
def device():
    return GpuDevice(capacity=1 * GB)


@pytest.fixture
def native(device):
    return NativeAllocator(device, op_amplification=1)


class TestAllocatorContract:
    def test_malloc_returns_allocation(self, native):
        alloc = native.malloc(10 * MB)
        assert alloc.size == 10 * MB
        assert alloc.rounded_size == 10 * MB
        assert alloc.ptr > 0

    def test_alloc_ids_increase(self, native):
        a = native.malloc(1 * MB)
        b = native.malloc(1 * MB)
        assert b.alloc_id > a.alloc_id

    def test_zero_size_rejected(self, native):
        with pytest.raises(AllocatorError):
            native.malloc(0)

    def test_negative_size_rejected(self, native):
        with pytest.raises(AllocatorError):
            native.malloc(-5)

    def test_double_free_detected(self, native):
        alloc = native.malloc(1 * MB)
        native.free(alloc)
        with pytest.raises(DoubleFreeError):
            native.free(alloc)

    def test_foreign_allocation_rejected(self, native, device):
        other = NativeAllocator(GpuDevice(), op_amplification=1)
        foreign = other.malloc(1 * MB)
        # An id the native allocator never issued.
        with pytest.raises((UnknownAllocationError, DoubleFreeError)):
            native.free(foreign)

    def test_active_bytes_track_live_allocations(self, native):
        a = native.malloc(10 * MB)
        b = native.malloc(20 * MB)
        assert native.active_bytes == 30 * MB
        native.free(a)
        assert native.active_bytes == 20 * MB
        native.free(b)
        assert native.active_bytes == 0

    def test_peak_active_is_monotone(self, native):
        a = native.malloc(30 * MB)
        native.free(a)
        native.malloc(10 * MB)
        assert native.peak_active_bytes == 30 * MB

    def test_live_allocation_count(self, native):
        a = native.malloc(1 * MB)
        assert native.live_allocation_count == 1
        native.free(a)
        assert native.live_allocation_count == 0

    def test_stats_snapshot(self, native):
        alloc = native.malloc(10 * MB)
        stats = native.stats()
        assert stats.active_bytes == 10 * MB
        assert stats.malloc_count == 1
        assert stats.free_count == 0
        assert stats.driver_time_us > 0
        native.free(alloc)
        assert native.stats().free_count == 1


class TestNativeSpecifics:
    def test_reserved_equals_active(self, native):
        """The native allocator caches nothing: no fragmentation ever."""
        allocs = [native.malloc(10 * MB) for _ in range(5)]
        assert native.reserved_bytes == native.active_bytes
        for alloc in allocs[::2]:
            native.free(alloc)
        assert native.reserved_bytes == native.active_bytes

    def test_oom_translates_cuda_error(self, native):
        with pytest.raises(OutOfMemoryError) as exc:
            native.malloc(2 * GB)
        assert exc.value.capacity == 1 * GB

    def test_every_malloc_hits_the_driver(self, native, device):
        for _ in range(4):
            native.free(native.malloc(1 * MB))
        assert device.runtime.counters.malloc_calls == 4
        assert device.runtime.counters.free_calls == 4

    def test_amplification_adds_host_time(self, device):
        amplified = NativeAllocator(device, op_amplification=10)
        t0 = device.clock.now_us
        amplified.free(amplified.malloc(1 * MB))
        amplified_time = device.clock.now_us - t0

        plain_device = GpuDevice(capacity=1 * GB)
        plain = NativeAllocator(plain_device, op_amplification=1)
        t0 = plain_device.clock.now_us
        plain.free(plain.malloc(1 * MB))
        plain_time = plain_device.clock.now_us - t0
        assert amplified_time > 5 * plain_time

    def test_bad_amplification_rejected(self, device):
        with pytest.raises(ValueError):
            NativeAllocator(device, op_amplification=0)

    def test_stats_utilization_is_one(self, native):
        native.malloc(100 * MB)
        assert native.stats().utilization_ratio == 1.0
