"""Metamorphic tests for the serving simulator.

Instead of asserting absolute numbers, each test perturbs one input of
a fixed-seed run along an axis with a known direction and checks the
output moves the right way (or doesn't move at all):

- **rate → 0**: an arbitrarily slow arrival stream never rejects,
  times out or preempts — each request has the machine to itself;
- **capacity ↑**: growing the device never decreases goodput or
  completions on the identical stream;
- **sharing off ≡ baseline**: with no request declaring a prefix, the
  ref-counted paged path replays byte-identically to the committed
  pre-refactor golden (the `serve/caching-paged-memaware-mmpp`
  scenario digest, floats and request lifecycles included);
- **weight scaling**: WFQ weights ``t0:4,t1:2`` produce the very same
  schedule as ``t0:2,t1:1`` — only ratios matter — down to identical
  request-lifecycle digests;
- **faults off ≡ baseline**: passing ``faults="none", retry="none"``
  explicitly replays byte-identically to the committed pre-fault
  golden digest;
- **tiers off ≡ baseline**: passing ``memory_tiers=""`` explicitly
  replays byte-identically to the committed pre-tier golden digest;
- **infinite-bandwidth DRAM ≥ recompute**: a free-transfer offload
  tier can only help — goodput and completions never fall below the
  recompute-only run on the identical stream;
- **mttr → 0**: vanishing repair times recover the no-fault fleet's
  completions (and nearly its goodput);
- **retry budget ↑**: at light load a larger crash-retry budget never
  completes fewer requests.
"""

import json
from pathlib import Path

from repro.serve import (
    LengthSampler,
    MMPPArrivals,
    MultiTenantArrivals,
    PoissonArrivals,
    ServingConfig,
    run_serving,
    run_serving_cluster,
)
from repro.units import GB
from test_equivalence_goldens import (
    SCENARIOS,
    _request_digest,
    serving_digest,
)

GOLDEN_PATH = Path(__file__).parent / "golden" / "hotpath_goldens.json"

MODEL = "opt-1.3b"


def _serve(stream, capacity=6 * GB, scheduler="memory-aware",
           timeout_s=60.0, max_batch=16, **kw):
    return run_serving(
        stream, MODEL, allocator="caching", capacity=capacity,
        scheduler=scheduler, kv_cache="paged?block_tokens=16",
        config=ServingConfig(max_batch=max_batch,
                             queue_timeout_s=timeout_s), **kw)


class TestRateToZero:
    def test_trickle_arrivals_never_reject_or_preempt(self):
        """At a vanishing arrival rate every request runs alone on an
        otherwise idle machine: nothing can queue long enough to time
        out, and nothing contends for KV memory."""
        stream = PoissonArrivals(rate_per_s=0.01).generate(20, seed=5)
        report = _serve(stream, capacity=4 * GB, timeout_s=5.0).report()
        assert report.completed == 20
        assert report.rejected == 0
        assert report.preemptions == 0

    def test_trickle_holds_under_prefix_sharing_too(self):
        stream = MultiTenantArrivals(
            tenants=4, rate_per_s=0.01, shared_prefix_tokens=256,
        ).generate(20, seed=5)
        result = run_serving(
            stream, MODEL, allocator="caching", capacity=4 * GB,
            kv_cache="paged-shared",
            config=ServingConfig(max_batch=16, queue_timeout_s=5.0))
        report = result.report()
        assert report.completed == 20
        assert report.rejected == 0
        assert report.preemptions == 0


class TestCapacityMonotonicity:
    def test_more_memory_never_hurts_goodput(self):
        """The identical arrival stream (regenerated per run — the
        simulator mutates requests) on a growing device: completions
        and goodput are non-decreasing in capacity."""
        completions, goodputs = [], []
        for capacity in (4 * GB, 6 * GB, 8 * GB):
            stream = PoissonArrivals(rate_per_s=6.0).generate(60, seed=7)
            report = _serve(stream, capacity=capacity, timeout_s=10.0,
                            max_batch=32).report()
            completions.append(report.completed)
            goodputs.append(report.goodput_req_s)
        assert completions == sorted(completions)
        assert goodputs == sorted(goodputs)

    def test_more_memory_never_hurts_multi_tenant_goodput(self):
        completions = []
        for capacity in (4 * GB, 8 * GB):
            stream = MultiTenantArrivals(
                tenants=4, rate_per_s=8.0, shared_prefix_tokens=256,
            ).generate(60, seed=7)
            result = run_serving(
                stream, MODEL, allocator="caching", capacity=capacity,
                kv_cache="paged-shared", scheduler="wfq",
                config=ServingConfig(max_batch=32, queue_timeout_s=10.0))
            completions.append(result.report().completed)
        assert completions == sorted(completions)


class TestSharingOffIsByteIdentical:
    def test_paged_golden_unchanged_by_refactor(self):
        """The ref-count refactor of ``PagedKVCache`` must be invisible
        when nothing shares: re-run the committed paged golden scenario
        and compare the full digest — counters, float timings and the
        MD5 over every request lifecycle."""
        goldens = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        name = "serve/caching-paged-memaware-mmpp"
        assert SCENARIOS[name]() == goldens[name]

    def test_shared_cache_without_prefixes_matches_plain_paged(self):
        """paged-shared degenerates to paged when no request declares
        a prefix: identical request lifecycles, identical KV ledger."""
        digests, ledgers = [], []
        for kv_cache in ("paged?block_tokens=16",
                         "paged-shared?block_tokens=16"):
            stream = PoissonArrivals(rate_per_s=6.0).generate(50, seed=11)
            result = run_serving(
                stream, MODEL, allocator="caching", capacity=4 * GB,
                scheduler="memory-aware", kv_cache=kv_cache,
                config=ServingConfig(max_batch=16, queue_timeout_s=60.0))
            digests.append(_request_digest(result.requests))
            m = result.kv_metrics
            ledgers.append((m.kv_allocs, m.kv_frees, m.peak_kv_bytes,
                            m.peak_blocks, m.preempt_copy_bytes))
        assert digests[0] == digests[1]
        assert ledgers[0] == ledgers[1]


class TestWeightScaleInvariance:
    def _run(self, weights):
        stream = MultiTenantArrivals(
            tenants=2, rate_per_s=10.0, shared_prefix_tokens=0,
        ).generate(60, seed=13)
        return run_serving(
            stream, MODEL, allocator="caching", capacity=6 * GB,
            scheduler=f"wfq?weights={weights}",
            kv_cache="paged?block_tokens=16",
            config=ServingConfig(max_batch=4, queue_timeout_s=10.0))

    def test_scaled_weights_schedule_identically(self):
        baseline = self._run("t0:2,t1:1")
        scaled = self._run("t0:4,t1:2")
        assert (_request_digest(baseline.requests)
                == _request_digest(scaled.requests))

    def test_duplicate_identical_weights_collapse(self):
        baseline = self._run("t0:2,t1:1")
        duplicated = self._run("t0:2,t1:1,t0:2")
        assert (_request_digest(baseline.requests)
                == _request_digest(duplicated.requests))


class TestFaultsOffIsByteIdentical:
    def test_explicit_none_matches_committed_golden(self):
        """``faults="none", retry="none"`` must be the identity: the
        committed pre-fault golden scenario replays to the same full
        digest — counters, float timings and the MD5 over every
        request lifecycle — with the gates passed explicitly."""
        goldens = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        arrivals = MMPPArrivals(rate_calm_per_s=4.0, rate_burst_per_s=16.0,
                                mean_dwell_s=10.0)
        stream = arrivals.generate(
            100, LengthSampler(mean_prompt=512, mean_output=256), seed=0)
        result = run_serving(
            stream, MODEL, allocator="caching", capacity=8 * GB,
            scheduler="memory-aware", kv_cache="paged?block_tokens=16",
            faults="none", retry="none")
        assert serving_digest(result) \
            == goldens["serve/caching-paged-memaware-mmpp"]


class TestTiersOffIsByteIdentical:
    def test_explicit_empty_tiers_match_committed_golden(self):
        """``memory_tiers=""`` must be the identity: the committed
        pre-tier golden scenario replays to the same full digest —
        counters, float timings and the MD5 over every request
        lifecycle — with the gate passed explicitly."""
        goldens = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        arrivals = MMPPArrivals(rate_calm_per_s=4.0, rate_burst_per_s=16.0,
                                mean_dwell_s=10.0)
        stream = arrivals.generate(
            100, LengthSampler(mean_prompt=512, mean_output=256), seed=0)
        result = run_serving(
            stream, MODEL, allocator="caching", capacity=8 * GB,
            scheduler="memory-aware", kv_cache="paged?block_tokens=16",
            memory_tiers="")
        assert serving_digest(result) \
            == goldens["serve/caching-paged-memaware-mmpp"]


class TestTierLimits:
    def _run(self, memory_tiers):
        stream = PoissonArrivals(rate_per_s=8.0).generate(60, seed=7)
        return run_serving(
            stream, MODEL, allocator="caching", capacity=3 * GB,
            scheduler="memory-aware", kv_cache="paged?block_tokens=16",
            config=ServingConfig(max_batch=32, queue_timeout_s=60.0),
            memory_tiers=memory_tiers)

    def test_free_transfers_never_hurt_goodput(self):
        """An unbounded DRAM tier with (near-)infinite bandwidth and
        vanishing setup latency makes offload preemption free:
        restoration costs ~nothing where recompute re-runs prefill, so
        completions and goodput can only improve."""
        recompute = self._run("").report()
        free = self._run(
            "dram?gb=0&gb_per_s=1e9&latency_us=1e-9").report()
        assert free.completed >= recompute.completed
        assert free.goodput_req_s >= recompute.goodput_req_s
        assert recompute.preemptions > 0     # the axis actually engaged


class TestFaultLimits:
    def _fleet(self, faults, retry):
        stream = PoissonArrivals(rate_per_s=4.0).generate(80, seed=7)
        return run_serving_cluster(
            stream, MODEL, n_replicas=2, allocator="caching",
            capacity=6 * GB, scheduler="memory-aware",
            kv_cache="paged?block_tokens=16", faults=faults, retry=retry)

    def test_mttr_to_zero_recovers_no_fault_completions(self):
        """Crashes with vanishing repair times are harmless blips: the
        fleet completes exactly what the fault-free fleet completes,
        and gives up almost none of its goodput re-running the
        interrupted work."""
        clean = self._fleet("none", "none").report()
        blips = self._fleet("replica-crash?mtbf_s=5&mttr_s=1e-6",
                            "budget?max=8").report()
        assert blips.completed == clean.completed
        assert blips.failed == 0
        assert blips.goodput_req_s >= 0.95 * clean.goodput_req_s

    def test_bigger_retry_budget_never_completes_fewer(self):
        """At light load (retries add no meaningful contention and the
        crash schedule is a pure function of the seed, not the load) a
        larger retry budget can only rescue more crash victims."""
        completions = []
        for budget in (1, 2, 4):
            report = self._fleet("replica-crash?mtbf_s=10&mttr_s=3",
                                 f"budget?max={budget}").report()
            completions.append(report.completed)
        assert completions == sorted(completions)
