"""Unit tests for repro.units."""

import pytest

from repro.units import (
    A100_80GB,
    CHUNK_SIZE,
    GB,
    KB,
    MB,
    align_down,
    align_up,
    chunks_for,
    fmt_bytes,
    is_aligned,
    parse_size,
)


class TestConstants:
    def test_kb_mb_gb_relationship(self):
        assert MB == 1024 * KB
        assert GB == 1024 * MB

    def test_chunk_size_is_2mb(self):
        assert CHUNK_SIZE == 2 * MB

    def test_a100_capacity(self):
        assert A100_80GB == 80 * GB


class TestAlignUp:
    def test_already_aligned(self):
        assert align_up(8, 4) == 8

    def test_rounds_up(self):
        assert align_up(5, 4) == 8

    def test_zero(self):
        assert align_up(0, 4) == 0

    def test_one_below(self):
        assert align_up(2 * MB - 1, 2 * MB) == 2 * MB

    def test_large_values(self):
        assert align_up(3 * GB + 1, 2 * MB) == 3 * GB + 2 * MB

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            align_up(-1, 4)

    def test_nonpositive_alignment_rejected(self):
        with pytest.raises(ValueError):
            align_up(4, 0)


class TestAlignDown:
    def test_already_aligned(self):
        assert align_down(8, 4) == 8

    def test_rounds_down(self):
        assert align_down(7, 4) == 4

    def test_below_alignment(self):
        assert align_down(3, 4) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            align_down(-4, 4)


class TestIsAligned:
    def test_aligned(self):
        assert is_aligned(4 * MB, 2 * MB)

    def test_not_aligned(self):
        assert not is_aligned(3 * MB, 2 * MB)

    def test_zero_is_aligned(self):
        assert is_aligned(0, 512)

    def test_bad_alignment(self):
        with pytest.raises(ValueError):
            is_aligned(4, -1)


class TestChunksFor:
    def test_exact(self):
        assert chunks_for(4 * MB) == 2

    def test_partial_rounds_up(self):
        assert chunks_for(4 * MB + 1) == 3

    def test_zero(self):
        assert chunks_for(0) == 0

    def test_custom_chunk(self):
        assert chunks_for(10, chunk_size=4) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            chunks_for(-1)


class TestFmtBytes:
    def test_bytes(self):
        assert fmt_bytes(17) == "17 B"

    def test_kb(self):
        assert fmt_bytes(1536) == "1.50 KB"

    def test_mb(self):
        assert fmt_bytes(3 * MB) == "3.00 MB"

    def test_gb(self):
        assert fmt_bytes(int(2.5 * GB)) == "2.50 GB"

    def test_negative(self):
        assert fmt_bytes(-3 * MB) == "-3.00 MB"


class TestParseSize:
    def test_mb(self):
        assert parse_size("2MB") == 2 * MB

    def test_gb_with_space(self):
        assert parse_size("1.5 GB") == int(1.5 * GB)

    def test_bytes_suffix(self):
        assert parse_size("512B") == 512

    def test_bare_number(self):
        assert parse_size("1024") == 1024

    def test_case_insensitive(self):
        assert parse_size("3mb") == 3 * MB

    def test_roundtrip_with_fmt(self):
        assert parse_size(fmt_bytes(7 * MB)) == 7 * MB
