"""Unit tests for the GPU substrate: clock, physical memory, VA space."""

import pytest

from repro.errors import (
    CudaInvalidAddressError,
    CudaInvalidValueError,
    CudaOutOfMemoryError,
)
from repro.gpu.clock import SimClock
from repro.gpu.phys import PhysicalMemory
from repro.gpu.vaspace import VirtualAddressSpace
from repro.units import MB


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_us == 0.0

    def test_custom_start(self):
        assert SimClock(start_us=5.0).now_us == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start_us=-1.0)

    def test_advance(self):
        clock = SimClock()
        clock.advance(10.0)
        clock.advance(2.5)
        assert clock.now_us == 12.5

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_unit_conversions(self):
        clock = SimClock()
        clock.advance(2_500_000)
        assert clock.now_ms == 2500.0
        assert clock.now_s == 2.5

    def test_reset(self):
        clock = SimClock()
        clock.advance(7.0)
        clock.reset()
        assert clock.now_us == 0.0


class TestPhysicalMemory:
    def test_create_commits_bytes(self):
        phys = PhysicalMemory(capacity=10 * MB)
        phys.create(4 * MB)
        assert phys.committed == 4 * MB
        assert phys.free == 6 * MB

    def test_handles_are_unique(self):
        phys = PhysicalMemory(capacity=10 * MB)
        h1 = phys.create(2 * MB)
        h2 = phys.create(2 * MB)
        assert h1 != h2

    def test_oom_raises_with_details(self):
        phys = PhysicalMemory(capacity=4 * MB)
        phys.create(3 * MB)
        with pytest.raises(CudaOutOfMemoryError) as exc:
            phys.create(2 * MB)
        assert exc.value.requested == 2 * MB
        assert exc.value.free == 1 * MB
        assert exc.value.total == 4 * MB

    def test_oom_exact_boundary_ok(self):
        phys = PhysicalMemory(capacity=4 * MB)
        phys.create(4 * MB)
        assert phys.free == 0

    def test_release_returns_bytes(self):
        phys = PhysicalMemory(capacity=4 * MB)
        handle = phys.create(2 * MB)
        phys.release(handle)
        assert phys.committed == 0

    def test_double_release_rejected(self):
        phys = PhysicalMemory(capacity=4 * MB)
        handle = phys.create(2 * MB)
        phys.release(handle)
        with pytest.raises(CudaInvalidValueError):
            phys.release(handle)

    def test_release_with_live_mapping_keeps_bytes(self):
        phys = PhysicalMemory(capacity=4 * MB)
        handle = phys.create(2 * MB)
        phys.retain(handle)  # a mapping reference
        phys.release(handle)  # creation reference dropped
        assert phys.committed == 2 * MB  # mapping keeps it alive
        phys.release_ref(handle)
        assert phys.committed == 0

    def test_release_then_double_release_via_refs(self):
        phys = PhysicalMemory(capacity=4 * MB)
        handle = phys.create(2 * MB)
        phys.release(handle)
        with pytest.raises(CudaInvalidValueError):
            phys.retain(handle)

    def test_peak_tracking(self):
        phys = PhysicalMemory(capacity=10 * MB)
        h1 = phys.create(4 * MB)
        phys.create(4 * MB)
        phys.release(h1)
        assert phys.peak_committed == 8 * MB
        assert phys.committed == 4 * MB

    def test_reset_peak(self):
        phys = PhysicalMemory(capacity=10 * MB)
        handle = phys.create(8 * MB)
        phys.release(handle)
        phys.reset_peak()
        assert phys.peak_committed == 0

    def test_invalid_size_rejected(self):
        phys = PhysicalMemory(capacity=4 * MB)
        with pytest.raises(CudaInvalidValueError):
            phys.create(0)

    def test_unknown_handle_rejected(self):
        phys = PhysicalMemory(capacity=4 * MB)
        with pytest.raises(CudaInvalidValueError):
            phys.get(99)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            PhysicalMemory(capacity=0)

    def test_live_chunk_count(self):
        phys = PhysicalMemory(capacity=10 * MB)
        h = phys.create(2 * MB)
        phys.create(2 * MB)
        assert phys.live_chunk_count == 2
        phys.release(h)
        assert phys.live_chunk_count == 1


class TestVirtualAddressSpace:
    def test_reserve_returns_aligned_address(self):
        va_space = VirtualAddressSpace()
        va = va_space.reserve(3 * MB)
        assert va % va_space.alignment == 0

    def test_reservations_do_not_overlap(self):
        va_space = VirtualAddressSpace()
        for _ in range(20):
            va_space.reserve(3 * MB)
        assert not va_space.overlaps()

    def test_size_rounded_to_alignment(self):
        va_space = VirtualAddressSpace()
        va = va_space.reserve(3 * MB)
        assert va_space.get(va).size == 4 * MB

    def test_contains(self):
        va_space = VirtualAddressSpace()
        va = va_space.reserve(4 * MB)
        assert va_space.contains(va, 0, 4 * MB)
        assert va_space.contains(va, 2 * MB, 2 * MB)
        assert not va_space.contains(va, 2 * MB, 3 * MB)
        assert not va_space.contains(va + 1, 0, 1)

    def test_free_removes_reservation(self):
        va_space = VirtualAddressSpace()
        va = va_space.reserve(2 * MB)
        assert va_space.free(va) == 2 * MB
        with pytest.raises(CudaInvalidAddressError):
            va_space.get(va)

    def test_double_free_rejected(self):
        va_space = VirtualAddressSpace()
        va = va_space.reserve(2 * MB)
        va_space.free(va)
        with pytest.raises(CudaInvalidAddressError):
            va_space.free(va)

    def test_total_and_peak_tracking(self):
        va_space = VirtualAddressSpace()
        va = va_space.reserve(2 * MB)
        va_space.reserve(2 * MB)
        va_space.free(va)
        assert va_space.total_reserved == 2 * MB
        assert va_space.peak_reserved == 4 * MB

    def test_zero_size_rejected(self):
        with pytest.raises(CudaInvalidValueError):
            VirtualAddressSpace().reserve(0)

    def test_live_count(self):
        va_space = VirtualAddressSpace()
        va = va_space.reserve(2 * MB)
        va_space.reserve(2 * MB)
        assert va_space.live_count == 2
        va_space.free(va)
        assert va_space.live_count == 1
