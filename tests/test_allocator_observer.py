"""Tests for the allocator event-hook interface and its subscribers."""

import pytest

from repro.allocators.base import AllocatorObserver
from repro.allocators.caching import CachingAllocator
from repro.analysis import PeakMemoryObserver
from repro.core.allocator import GMLakeAllocator
from repro.errors import OutOfMemoryError
from repro.gpu.device import GpuDevice
from repro.sim.engine import run_trace
from repro.sim.timeline import TimelineRecorder
from repro.units import GB, MB
from repro.workloads.request import Trace


class RecordingObserver(AllocatorObserver):
    def __init__(self):
        self.events = []

    def on_alloc(self, allocator, allocation):
        self.events.append(("alloc", allocation.size))

    def on_free(self, allocator, allocation):
        self.events.append(("free", allocation.size))

    def on_empty_cache(self, allocator):
        self.events.append(("empty_cache", None))

    def on_oom(self, allocator, size, error):
        self.events.append(("oom", size))


class TestObserverHooks:
    def test_alloc_free_events(self):
        allocator = CachingAllocator(GpuDevice(capacity=1 * GB))
        observer = allocator.add_observer(RecordingObserver())
        a = allocator.malloc(10 * MB)
        allocator.free(a)
        assert observer.events == [("alloc", 10 * MB), ("free", 10 * MB)]

    def test_empty_cache_event_fires_through_subclass_impl(self):
        # empty_cache is implemented by subclasses via _empty_cache_impl;
        # the notification must fire for all of them.
        for allocator in (CachingAllocator(GpuDevice(capacity=1 * GB)),
                          GMLakeAllocator(GpuDevice(capacity=1 * GB))):
            observer = allocator.add_observer(RecordingObserver())
            allocator.free(allocator.malloc(10 * MB))
            allocator.empty_cache()
            assert ("empty_cache", None) in observer.events

    def test_oom_event_carries_size(self):
        allocator = CachingAllocator(GpuDevice(capacity=32 * MB))
        observer = allocator.add_observer(RecordingObserver())
        with pytest.raises(OutOfMemoryError):
            allocator.malloc(64 * MB)
        assert observer.events == [("oom", 64 * MB)]

    def test_hooks_fire_after_bookkeeping(self):
        seen = []

        class StatsObserver(AllocatorObserver):
            def on_alloc(self, allocator, allocation):
                seen.append(allocator.active_bytes)

        allocator = CachingAllocator(GpuDevice(capacity=1 * GB))
        allocator.add_observer(StatsObserver())
        allocator.malloc(10 * MB)
        assert seen and seen[0] >= 10 * MB

    def test_remove_observer(self):
        allocator = CachingAllocator(GpuDevice(capacity=1 * GB))
        observer = allocator.add_observer(RecordingObserver())
        allocator.remove_observer(observer)
        allocator.remove_observer(observer)  # idempotent
        allocator.malloc(10 * MB)
        assert observer.events == []

    def test_multiple_observers(self):
        allocator = CachingAllocator(GpuDevice(capacity=1 * GB))
        first = allocator.add_observer(RecordingObserver())
        second = allocator.add_observer(RecordingObserver())
        allocator.malloc(10 * MB)
        assert len(first.events) == len(second.events) == 1


class TestTimelineRecorder:
    def test_samples_every_n_events(self):
        allocator = CachingAllocator(GpuDevice(capacity=1 * GB))
        recorder = allocator.add_observer(TimelineRecorder(allocator, every=2))
        live = [allocator.malloc(5 * MB) for _ in range(4)]
        for allocation in live:
            allocator.free(allocation)
        assert len(recorder.points) == 4  # 8 events / every=2
        assert all(p.reserved_bytes >= p.active_bytes >= 0
                   for p in recorder.points)

    def test_oom_and_empty_cache_always_sampled(self):
        allocator = CachingAllocator(GpuDevice(capacity=32 * MB))
        recorder = allocator.add_observer(
            TimelineRecorder(allocator, every=1000))
        allocator.free(allocator.malloc(4 * MB))
        allocator.empty_cache()
        with pytest.raises(OutOfMemoryError):
            allocator.malloc(64 * MB)
        assert len(recorder.points) == 2  # the cliffs, despite every=1000

    def test_bad_every(self):
        allocator = CachingAllocator(GpuDevice(capacity=1 * GB))
        with pytest.raises(ValueError):
            TimelineRecorder(allocator, every=0)

    def test_run_trace_timeline_via_observer(self):
        trace = Trace(meta={"global_batch": 1})
        trace.iter_start(0)
        for i in range(6):
            trace.alloc(f"t{i}", 5 * MB)
        for i in range(6):
            trace.free(f"t{i}")
        trace.iter_end(0)
        trace.compute_us_per_iter = [100.0]
        allocator = CachingAllocator(GpuDevice(capacity=1 * GB))
        result = run_trace(allocator, trace, record_timeline=True,
                           timeline_every=4)
        # 12 alloc/free events / 4 + the final sample.
        assert len(result.timeline) == 4
        # The recorder detached at the end of the replay.
        assert allocator._observers == []


class TestPeakMemoryObserver:
    def test_captures_report_at_peak(self):
        allocator = CachingAllocator(GpuDevice(capacity=1 * GB))
        observer = allocator.add_observer(PeakMemoryObserver())
        a = allocator.malloc(100 * MB)
        b = allocator.malloc(200 * MB)
        allocator.free(b)
        allocator.free(a)
        assert observer.at_peak is not None
        assert observer.at_peak.reserved_bytes >= 300 * MB
        assert observer.at_oom is None

    def test_min_growth_throttles_report_builds(self):
        allocator = CachingAllocator(GpuDevice(capacity=2 * GB))
        calls = []

        class CountingObserver(PeakMemoryObserver):
            def _maybe_snapshot(self, alloc):
                before = self.at_peak
                super()._maybe_snapshot(alloc)
                if self.at_peak is not before:
                    calls.append(1)

        observer = allocator.add_observer(CountingObserver(min_growth=100 * MB))
        for _ in range(20):
            allocator.malloc(25 * MB)  # 500 MB monotone ramp
        # ~500 MB growth / 100 MB granularity, not one build per alloc.
        assert 1 <= len(calls) <= 6
        assert observer.at_peak.reserved_bytes >= 400 * MB

    def test_exact_mode_with_zero_min_growth(self):
        allocator = CachingAllocator(GpuDevice(capacity=1 * GB))
        observer = allocator.add_observer(PeakMemoryObserver(min_growth=0))
        allocator.malloc(100 * MB)
        allocator.malloc(100 * MB)
        assert observer.at_peak.reserved_bytes >= 200 * MB

    def test_captures_report_at_first_oom(self):
        allocator = CachingAllocator(GpuDevice(capacity=64 * MB))
        observer = allocator.add_observer(PeakMemoryObserver())
        allocator.malloc(40 * MB)
        with pytest.raises(OutOfMemoryError):
            allocator.malloc(100 * MB)
        assert observer.at_oom is not None
        assert observer.oom_requested == 100 * MB
        assert observer.at_oom.reserved_bytes >= 40 * MB
