"""Tests for trace serialization and the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.units import MB
from repro.workloads import TrainingWorkload
from repro.workloads.inference import ServingWorkload
from repro.workloads.request import Op, Trace
from repro.workloads.traceio import load_trace, save_trace


class TestTraceIO:
    def test_roundtrip_preserves_everything(self, tmp_path):
        trace = TrainingWorkload("gpt-2", batch_size=4, strategies="R",
                                 iterations=2).build_trace()
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.meta == trace.meta
        assert loaded.compute_us_per_iter == trace.compute_us_per_iter
        assert [(e.op, e.tensor, e.size) for e in loaded.events] == [
            (e.op, e.tensor, e.size) for e in trace.events
        ]

    def test_loaded_trace_validates(self, tmp_path):
        trace = TrainingWorkload("gpt-2", batch_size=2,
                                 iterations=1).build_trace()
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        load_trace(path).validate()

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"kind": "event", "op": "alloc",
                                    "tensor": "x", "size": 1}) + "\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_free_events_have_no_size(self, tmp_path):
        trace = Trace()
        trace.alloc("a", 2 * MB)
        trace.free("a")
        path = tmp_path / "t.jsonl"
        save_trace(trace, path)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert "size" not in lines[2]
        assert load_trace(path).events[1].op is Op.FREE

    def test_serving_roundtrip_preserves_event_order(self, tmp_path):
        """ALLOC/FREE interleaving (the serving churn pattern) must
        survive save/load exactly — order, names, sizes, and meta."""
        trace = ServingWorkload("opt-1.3b", n_requests=40, max_batch=8,
                                seed=11).build_trace()
        path = tmp_path / "serving.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.meta == trace.meta
        assert loaded.compute_us_per_iter == trace.compute_us_per_iter
        assert [(e.op, e.tensor, e.size) for e in loaded.events] == [
            (e.op, e.tensor, e.size) for e in trace.events
        ]
        # The churn signature is intact: some KV frees happen before
        # later KV allocations (out-of-admission-order retirement).
        ops = [(e.op, e.tensor) for e in loaded.events
               if e.tensor.startswith("kv")]
        first_free = next(i for i, (op, _) in enumerate(ops)
                          if op is Op.FREE)
        assert any(op is Op.ALLOC for op, _ in ops[first_free:])

    def test_serving_workload_seed_is_byte_identical(self, tmp_path):
        """Same seed => byte-identical serialized trace."""
        path_a = tmp_path / "a.jsonl"
        path_b = tmp_path / "b.jsonl"
        save_trace(ServingWorkload("opt-1.3b", n_requests=60, max_batch=8,
                                   seed=9).build_trace(), path_a)
        save_trace(ServingWorkload("opt-1.3b", n_requests=60, max_batch=8,
                                   seed=9).build_trace(), path_b)
        assert path_a.read_bytes() == path_b.read_bytes()
        path_c = tmp_path / "c.jsonl"
        save_trace(ServingWorkload("opt-1.3b", n_requests=60, max_batch=8,
                                   seed=10).build_trace(), path_c)
        assert path_a.read_bytes() != path_c.read_bytes()


class TestCli:
    def test_models_lists_registry(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "gpt-neox-20b" in out

    def test_compare_runs(self, capsys):
        code = main(["compare", "--model", "opt-1.3b", "--batch", "2",
                     "--gpus", "1", "--strategies", "N",
                     "--iterations", "2",
                     "--allocators", "caching,gmlake"])
        assert code == 0
        out = capsys.readouterr().out
        assert "gmlake" in out and "caching" in out

    def test_sweep_strategies(self, capsys):
        code = main(["sweep", "--axis", "strategies", "--model", "opt-1.3b",
                     "--batch", "2", "--gpus", "1", "--values", "N,R",
                     "--iterations", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "UR gmlake" in out

    def test_trace_and_replay(self, tmp_path, capsys):
        out_path = str(tmp_path / "t.jsonl")
        assert main(["trace", "--model", "gpt-2", "--batch", "2",
                     "--gpus", "1", "--iterations", "2",
                     "--out", out_path]) == 0
        assert main(["replay", "--in", out_path,
                     "--allocator", "gmlake"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "gmlake" in out

    def test_microbench(self, capsys):
        assert main(["microbench"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "115" in out

    def test_list_allocators(self, capsys):
        assert main(["list-allocators"]) == 0
        out = capsys.readouterr().out
        assert "gmlake" in out and "caching" in out
        assert "pytorch" in out          # alias column
        assert "GMLakeAllocator" in out  # class column

    def test_serve_prints_slo_table(self, capsys):
        code = main(["serve", "--model", "opt-1.3b", "--arrival", "poisson",
                     "--rate", "2.0", "--requests", "20",
                     "--allocator", "gmlake", "--capacity", "8GB"])
        assert code == 0
        out = capsys.readouterr().out
        for column in ("TTFT p50", "lat p99", "goodput", "util"):
            assert column in out

    def test_serve_multi_allocator_multi_gpu(self, capsys):
        code = main(["serve", "--model", "opt-1.3b", "--arrival", "mmpp",
                     "--rate", "2.0", "--requests", "20", "--gpus", "2",
                     "--allocator", "caching,gmlake", "--capacity", "8GB",
                     "--scheduler", "fcfs"])
        assert code == 0
        out = capsys.readouterr().out
        assert "caching" in out and "gmlake" in out

    def test_serve_replay_arrivals(self, tmp_path, capsys):
        log = tmp_path / "arrivals.txt"
        log.write_text("\n".join(str(0.25 * i) for i in range(10)))
        code = main(["serve", "--model", "opt-1.3b", "--arrival", "replay",
                     "--arrival-log", str(log), "--requests", "10",
                     "--allocator", "gmlake", "--capacity", "8GB"])
        assert code == 0
        assert "10" in capsys.readouterr().out

    def test_serve_replay_requires_log(self, capsys):
        code = main(["serve", "--arrival", "replay"])
        assert code == 2
        assert "--arrival-log" in capsys.readouterr().err

    def test_unknown_command_fails(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_capacity_parsing(self, capsys):
        code = main(["compare", "--model", "opt-1.3b", "--batch", "2",
                     "--gpus", "1", "--strategies", "N", "--iterations", "2",
                     "--allocators", "gmlake", "--capacity", "24GB"])
        assert code == 0
        assert "OOM" in capsys.readouterr().out
