"""Tests for the serving arrival processes and length sampling."""

import random

import pytest

from repro.serve import (
    LengthSampler,
    MMPPArrivals,
    PoissonArrivals,
    ReplayArrivals,
    load_arrival_log,
)
from repro.serve.request import RequestState


class TestLengthSampler:
    def test_bounds_and_alignment(self):
        sampler = LengthSampler(mean_prompt=512, mean_output=256,
                                max_tokens=2048)
        rng = random.Random(0)
        for _ in range(500):
            prompt, output = sampler.sample(rng)
            for value in (prompt, output):
                assert 16 <= value <= 2048
                assert value % 16 == 0

    def test_heavy_tail(self):
        """A log-normal mixture must produce both short and long ends."""
        sampler = LengthSampler(mean_prompt=512)
        rng = random.Random(1)
        prompts = [sampler.sample(rng)[0] for _ in range(500)]
        assert min(prompts) < 256
        assert max(prompts) > 1024


class TestPoissonArrivals:
    def test_deterministic(self):
        a = PoissonArrivals(2.0).generate(50, seed=7)
        b = PoissonArrivals(2.0).generate(50, seed=7)
        assert [(r.arrival_s, r.prompt_tokens, r.output_tokens) for r in a] \
            == [(r.arrival_s, r.prompt_tokens, r.output_tokens) for r in b]

    def test_seed_changes_stream(self):
        a = PoissonArrivals(2.0).generate(50, seed=1)
        b = PoissonArrivals(2.0).generate(50, seed=2)
        assert [r.arrival_s for r in a] != [r.arrival_s for r in b]

    def test_mean_rate(self):
        requests = PoissonArrivals(4.0).generate(2000, seed=3)
        span = requests[-1].arrival_s
        assert 2000 / span == pytest.approx(4.0, rel=0.15)

    def test_sorted_ids_and_state(self):
        requests = PoissonArrivals(1.0).generate(20, seed=0)
        times = [r.arrival_s for r in requests]
        assert times == sorted(times)
        assert [r.req_id for r in requests] == list(range(20))
        assert all(r.state is RequestState.QUEUED for r in requests)

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)

    def test_bad_count_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivals(1.0).generate(0)


class TestMMPPArrivals:
    def test_deterministic_and_sorted(self):
        process = MMPPArrivals(rate_calm_per_s=1.0, rate_burst_per_s=8.0,
                               mean_dwell_s=5.0)
        a = process.generate(100, seed=4)
        b = process.generate(100, seed=4)
        assert [r.arrival_s for r in a] == [r.arrival_s for r in b]
        times = [r.arrival_s for r in a]
        assert times == sorted(times) and len(times) == 100

    def test_burstier_than_poisson(self):
        """MMPP inter-arrival CoV must exceed the Poisson CoV of 1."""

        def cov(requests):
            times = [r.arrival_s for r in requests]
            gaps = [b - a for a, b in zip(times, times[1:])]
            mean = sum(gaps) / len(gaps)
            var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
            return var ** 0.5 / mean

        mmpp = MMPPArrivals(rate_calm_per_s=1.0, rate_burst_per_s=16.0,
                            mean_dwell_s=10.0).generate(3000, seed=5)
        poisson = PoissonArrivals(2.0).generate(3000, seed=5)
        assert cov(mmpp) > cov(poisson) * 1.2

    def test_bad_configs_rejected(self):
        with pytest.raises(ValueError):
            MMPPArrivals(rate_calm_per_s=0.0)
        with pytest.raises(ValueError):
            MMPPArrivals(mean_dwell_s=0.0)


class TestReplayArrivals:
    def test_replays_exact_times(self):
        process = ReplayArrivals([3.0, 1.0, 2.0])
        requests = process.generate(3, seed=0)
        assert [r.arrival_s for r in requests] == [1.0, 2.0, 3.0]

    def test_too_many_requested(self):
        with pytest.raises(ValueError):
            ReplayArrivals([1.0]).generate(2)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            ReplayArrivals([-1.0, 2.0])


class TestClosedLoopArrivals:
    def test_deterministic_and_sorted(self):
        from repro.serve import ClosedLoopArrivals

        a = ClosedLoopArrivals(clients=8, think_s=0.5).generate(60, seed=5)
        b = ClosedLoopArrivals(clients=8, think_s=0.5).generate(60, seed=5)
        times = [r.arrival_s for r in a]
        assert times == [r.arrival_s for r in b]
        assert times == sorted(times)
        assert len(times) == 60

    def test_single_client_is_serial(self):
        """One client's consecutive requests are at least one service
        interval apart — the defining closed-loop property."""
        from repro.serve import ClosedLoopArrivals

        process = ClosedLoopArrivals(clients=1, think_s=1.0, service_s=2.0)
        times = [r.arrival_s for r in process.generate(20, seed=0)]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert min(gaps) >= process.service_s

    def test_population_bounds_concurrency(self):
        """At any instant, at most `clients` requests fall inside one
        service interval (the population is fixed)."""
        from repro.serve import ClosedLoopArrivals

        process = ClosedLoopArrivals(clients=4, think_s=0.2, service_s=2.0)
        times = [r.arrival_s for r in process.generate(80, seed=2)]
        for i, t in enumerate(times):
            inside = sum(1 for u in times if t <= u < t + process.service_s)
            assert inside <= process.clients, (i, t)

    def test_more_clients_raise_offered_load(self):
        from repro.serve import ClosedLoopArrivals

        few = ClosedLoopArrivals(clients=2, think_s=1.0).generate(60, seed=1)
        many = ClosedLoopArrivals(clients=16, think_s=1.0).generate(60, seed=1)
        assert many[-1].arrival_s < few[-1].arrival_s

    def test_validation(self):
        from repro.serve import ClosedLoopArrivals

        with pytest.raises(ValueError):
            ClosedLoopArrivals(clients=0)
        with pytest.raises(ValueError):
            ClosedLoopArrivals(think_s=0.0)
        with pytest.raises(ValueError):
            ClosedLoopArrivals(service_s=-1.0)


class TestArrivalLog:
    def test_load_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "log.txt"
        path.write_text("# header\n0.5\n\n1.25  # inline\n2.0\n")
        assert load_arrival_log(path) == [0.5, 1.25, 2.0]

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0.5\nnot-a-number\n")
        with pytest.raises(ValueError):
            load_arrival_log(path)

    def test_load_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        with pytest.raises(ValueError):
            load_arrival_log(path)
