"""Tests for ``ExperimentSpec`` / ``repro.api.run`` and the RunResult
protocol, plus the CLI paths that ride on them."""

import pytest

from repro import api
from repro.api import ExperimentSpec, ServingSpec, SpecError, WorkloadSpec
from repro.api.result import ExperimentResult, RunResult, run_result_row
from repro.cli import main
from repro.sim.engine import run_workload
from repro.units import GB
from repro.workloads import TrainingWorkload

TINY = dict(model="opt-1.3b", batch_size=2, n_gpus=1, strategies="N",
            iterations=2)


def tiny_experiment(**overrides):
    kwargs = dict(
        mode="replay",
        allocators=["caching"],
        workload=WorkloadSpec(**TINY),
    )
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)


class TestRunReplay:
    def test_matches_direct_run_workload_byte_for_byte(self):
        direct = run_workload(TrainingWorkload(
            TINY["model"], batch_size=TINY["batch_size"],
            n_gpus=TINY["n_gpus"], strategies=TINY["strategies"],
            iterations=TINY["iterations"], seed=0), "caching")
        via_api, = api.run(tiny_experiment())
        # The underlying EngineResult must be *identical* — same trace,
        # same device, same allocator construction path.
        assert via_api.raw == direct

    def test_configured_allocator_matches_spec_build(self):
        spec = api.AllocatorSpec.parse("gmlake?chunk_mb=4")
        direct = run_workload(TrainingWorkload(**{
            "model": TINY["model"], "batch_size": 2, "n_gpus": 1,
            "strategies": "N", "iterations": 2}), spec)
        via_api, = api.run(tiny_experiment(allocators=["gmlake?chunk_mb=4"]))
        assert via_api.raw == direct
        assert via_api.allocator_name == "gmlake?chunk_size=4MB"

    def test_one_result_per_allocator(self):
        results = api.run(tiny_experiment(allocators=["caching", "gmlake"]))
        assert [r.allocator_name for r in results] == ["caching", "gmlake"]
        assert all(r.mode == "replay" for r in results)

    def test_satisfies_protocol(self):
        result, = api.run(tiny_experiment())
        assert isinstance(result, RunResult)
        assert isinstance(result.raw, RunResult)  # EngineResult too

    def test_record_timeline(self):
        result, = api.run(tiny_experiment(record_timeline=True))
        assert len(result.raw.timeline) > 0


class TestRunClusterAndServe:
    def test_cluster_mode(self):
        spec = tiny_experiment(mode="cluster",
                               workload=WorkloadSpec(**{**TINY, "n_gpus": 2}))
        result, = api.run(spec)
        assert result.mode == "cluster"
        assert result.extras()["n_ranks"] == 2
        assert isinstance(result, RunResult)
        assert isinstance(result.raw, RunResult)  # ClusterResult too

    def test_serve_mode(self):
        spec = ExperimentSpec(
            mode="serve", allocators=["gmlake"], capacity=8 * GB,
            serving=ServingSpec(model="opt-1.3b", n_requests=10,
                                rate_per_s=4.0),
        )
        result, = api.run(spec)
        assert result.mode == "serve"
        assert result.extras()["completed"] == 10
        assert result.throughput > 0
        assert isinstance(result.raw, RunResult)  # ServingResult too

    def test_serve_cluster_mode(self):
        spec = ExperimentSpec(
            mode="serve", allocators=["gmlake"], capacity=8 * GB,
            serving=ServingSpec(model="opt-1.3b", n_requests=10,
                                rate_per_s=4.0, replicas=2),
        )
        result, = api.run(spec)
        assert result.mode == "serve-cluster"
        assert result.extras()["n_replicas"] == 2
        assert isinstance(result.raw, RunResult)  # ServeClusterResult too

    def test_serve_capacity_string(self):
        spec = ExperimentSpec(
            mode="serve", allocators=["gmlake"], capacity="8GB",
            serving=ServingSpec(model="opt-1.3b", n_requests=5),
        )
        assert spec.capacity == 8 * GB

    def test_mmpp_arrivals(self):
        spec = ExperimentSpec(
            mode="serve", allocators=["gmlake"], capacity=8 * GB,
            serving=ServingSpec(model="opt-1.3b", n_requests=5,
                                arrival="mmpp", rate_per_s=4.0),
        )
        result, = api.run(spec)
        assert result.extras()["completed"] == 5


class TestExperimentSpecSerialization:
    def test_json_round_trip(self):
        spec = ExperimentSpec(
            mode="replay",
            allocators=["caching", "gmlake?chunk_mb=512&stitching=off"],
            capacity=24 * GB,
            workload=WorkloadSpec(**TINY),
        )
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone == spec

    def test_save_load(self, tmp_path):
        path = str(tmp_path / "experiment.json")
        spec = tiny_experiment()
        spec.save(path)
        assert ExperimentSpec.load(path) == spec

    def test_run_accepts_path_and_dict(self, tmp_path):
        path = str(tmp_path / "experiment.json")
        spec = tiny_experiment()
        spec.save(path)
        from_path, = api.run(path)
        from_dict, = api.run(spec.to_dict())
        direct, = api.run(spec)
        assert from_path.raw == direct.raw == from_dict.raw

    def test_invalid_json_is_spec_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{ not json")
        with pytest.raises(SpecError, match="invalid JSON"):
            ExperimentSpec.load(str(path))
        path.write_text("[1, 2]")
        with pytest.raises(SpecError, match="JSON object"):
            ExperimentSpec.load(str(path))

    def test_cli_rejects_invalid_json_cleanly(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{ not json")
        assert main(["run", "--spec", str(path)]) == 2
        assert "invalid JSON" in capsys.readouterr().err

    def test_cluster_record_timeline(self):
        spec = tiny_experiment(
            mode="cluster", record_timeline=True,
            workload=WorkloadSpec(**{**TINY, "n_gpus": 2}))
        result, = api.run(spec)
        assert all(len(rank.timeline) > 0 for rank in result.raw.ranks)

    def test_unknown_mode(self):
        with pytest.raises(SpecError, match="mode"):
            ExperimentSpec(mode="teleport")

    def test_unknown_keys(self):
        with pytest.raises(SpecError, match="unknown experiment spec keys"):
            ExperimentSpec.from_dict({"mode": "replay", "wat": 1})

    def test_bad_workload_key(self):
        with pytest.raises(SpecError):
            ExperimentSpec.from_dict(
                {"mode": "replay", "workload": {"modle": "opt-13b"}})

    def test_no_allocators(self):
        with pytest.raises(SpecError, match="at least one"):
            ExperimentSpec(allocators=[])

    def test_defaults_fill_in(self):
        spec = ExperimentSpec()
        assert spec.mode == "replay"
        assert spec.workload is not None
        spec = ExperimentSpec(mode="serve")
        assert spec.serving is not None


class TestRunResultRow:
    def test_uniform_rows_across_modes(self):
        replay, = api.run(tiny_experiment())
        serve, = api.run(ExperimentSpec(
            mode="serve", allocators=["gmlake"], capacity=8 * GB,
            serving=ServingSpec(model="opt-1.3b", n_requests=5),
        ))
        rows = [run_result_row(replay), run_result_row(serve)]
        assert rows[0].keys() == rows[1].keys()
        assert rows[0]["allocator"] == "caching"

    def test_row_accepts_raw_engine_result(self):
        result, = api.run(tiny_experiment())
        assert run_result_row(result.raw)["allocator"] == "caching"

    def test_summary_mentions_mode(self):
        result, = api.run(tiny_experiment())
        assert "[replay]" in result.summary()

    def test_experiment_result_ratios(self):
        result = ExperimentResult(
            allocator_name="x", mode="replay", peak_active_bytes=50,
            peak_reserved_bytes=100, throughput=1.0, oom=False)
        assert result.utilization_ratio == 0.5
        assert result.fragmentation_ratio == 0.5


class TestCliSpecPaths:
    def test_compare_with_configured_spec(self, capsys):
        code = main(["compare", "--model", "opt-1.3b", "--batch", "2",
                     "--gpus", "1", "--strategies", "N",
                     "--iterations", "2",
                     "--allocators", "caching,gmlake?chunk_mb=4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "gmlake?chunk_size=4MB" in out

    def test_compare_bad_spec_is_user_error(self, capsys):
        code = main(["compare", "--model", "opt-1.3b",
                     "--allocators", "gmlake?bogus=1"])
        assert code == 2
        assert "no parameter" in capsys.readouterr().err

    def test_run_spec_file(self, tmp_path, capsys):
        path = str(tmp_path / "experiment.json")
        tiny_experiment(allocators=["caching", "gmlake"]).save(path)
        assert main(["run", "--spec", path]) == 0
        out = capsys.readouterr().out
        assert "mode=replay" in out
        assert "caching" in out and "gmlake" in out
        assert "iterations_completed=2" in out

    def test_compare_and_serve_accept_spec_file(self, tmp_path, capsys):
        path = str(tmp_path / "experiment.json")
        tiny_experiment().save(path)
        assert main(["compare", "--spec", path]) == 0
        assert "mode=replay" in capsys.readouterr().out
        assert main(["serve", "--spec", path]) == 0
        assert "mode=replay" in capsys.readouterr().out

    def test_run_missing_spec_file(self, capsys):
        assert main(["run", "--spec", "/nonexistent.json"]) == 2
        assert "nonexistent" in capsys.readouterr().err

    def test_replay_with_spec_string(self, tmp_path, capsys):
        out_path = str(tmp_path / "t.jsonl")
        assert main(["trace", "--model", "gpt-2", "--batch", "2",
                     "--gpus", "1", "--iterations", "2",
                     "--out", out_path]) == 0
        assert main(["replay", "--in", out_path,
                     "--allocator", "gmlake?chunk_mb=4"]) == 0
        assert "gmlake" in capsys.readouterr().out

    def test_serve_with_configured_spec(self, capsys):
        code = main(["serve", "--model", "opt-1.3b", "--rate", "4.0",
                     "--requests", "10", "--capacity", "8GB",
                     "--allocator", "gmlake?chunk_mb=4"])
        assert code == 0
        assert "gmlake?chunk_size=4MB" in capsys.readouterr().out

    def test_list_allocators_params_and_alias_dedup(self, capsys):
        assert main(["list-allocators"]) == 0
        out = capsys.readouterr().out
        # One canonical caching row carrying the alias — not two rows.
        assert out.count("CachingAllocator") == 1
        assert "pytorch" in out
        # The tunables table shows name/type/default from the registry.
        assert "tunable parameters" in out
        assert "chunk_size" in out and "max_spool_blocks" in out
        assert "stitching" in out  # alias spec key listed
