"""Unit + property tests for repro.sortedlist."""

import pytest
from hypothesis import given, strategies as st

from repro.sortedlist import SortedKeyList, sorted_pairs


class Item:
    """Mutable wrapper so identity-based removal is exercised."""

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return f"Item({self.value})"


class TestBasics:
    def test_empty(self):
        sl = SortedKeyList(key=lambda x: x)
        assert len(sl) == 0
        assert sl.min() is None
        assert sl.max() is None

    def test_add_keeps_sorted(self):
        sl = SortedKeyList(key=lambda x: x, items=[3, 1, 2])
        assert sl.as_list() == [1, 2, 3]

    def test_duplicates_allowed(self):
        sl = SortedKeyList(key=lambda x: x, items=[2, 2, 2])
        assert len(sl) == 3

    def test_min_max(self):
        sl = SortedKeyList(key=lambda x: x, items=[5, 1, 9])
        assert sl.min() == 1
        assert sl.max() == 9

    def test_contains_by_identity(self):
        a, b = Item(1), Item(1)
        sl = SortedKeyList(key=lambda i: i.value, items=[a])
        assert a in sl
        assert b not in sl

    def test_getitem(self):
        sl = SortedKeyList(key=lambda x: x, items=[30, 10, 20])
        assert sl[0] == 10
        assert sl[2] == 30


class TestRemove:
    def test_remove_by_identity_among_equal_keys(self):
        a, b = Item(1), Item(1)
        sl = SortedKeyList(key=lambda i: i.value, items=[a, b])
        sl.remove(a)
        assert a not in sl
        assert b in sl

    def test_remove_missing_raises(self):
        sl = SortedKeyList(key=lambda x: x, items=[1])
        with pytest.raises(ValueError):
            sl.remove(2)

    def test_discard_returns_bool(self):
        sl = SortedKeyList(key=lambda x: x, items=[1])
        assert sl.discard(1) is True
        assert sl.discard(1) is False

    def test_pop_index(self):
        sl = SortedKeyList(key=lambda x: x, items=[3, 1, 2])
        assert sl.pop_index(0) == 1
        assert sl.as_list() == [2, 3]

    def test_clear(self):
        sl = SortedKeyList(key=lambda x: x, items=[1, 2])
        sl.clear()
        assert len(sl) == 0


class TestQueries:
    def test_first_at_least_exact(self):
        sl = SortedKeyList(key=lambda x: x, items=[10, 20, 30])
        assert sl.first_at_least(20) == 20

    def test_first_at_least_between(self):
        sl = SortedKeyList(key=lambda x: x, items=[10, 20, 30])
        assert sl.first_at_least(15) == 20

    def test_first_at_least_above_all(self):
        sl = SortedKeyList(key=lambda x: x, items=[10])
        assert sl.first_at_least(11) is None

    def test_index_at_least(self):
        sl = SortedKeyList(key=lambda x: x, items=[10, 20, 30])
        assert sl.index_at_least(20) == 1
        assert sl.index_at_least(35) == 3

    def test_items_descending(self):
        sl = SortedKeyList(key=lambda x: x, items=[1, 3, 2])
        assert list(sl.items_descending()) == [3, 2, 1]


class TestProperties:
    @given(st.lists(st.integers(-100, 100)))
    def test_always_sorted_after_adds(self, values):
        sl = SortedKeyList(key=lambda x: x, items=values)
        assert sl.as_list() == sorted(values)
        assert sl.check_sorted()

    @given(st.lists(st.integers(0, 20), min_size=1))
    def test_add_remove_roundtrip(self, values):
        sl = SortedKeyList(key=lambda i: i.value)
        items = [Item(v) for v in values]
        for item in items:
            sl.add(item)
        for item in items:
            sl.remove(item)
        assert len(sl) == 0

    @given(st.lists(st.integers(0, 50)), st.integers(0, 50))
    def test_first_at_least_is_best_fit(self, values, needle):
        sl = SortedKeyList(key=lambda x: x, items=values)
        result = sl.first_at_least(needle)
        candidates = [v for v in values if v >= needle]
        if candidates:
            assert result == min(candidates)
        else:
            assert result is None


def test_sorted_pairs():
    assert sorted_pairs([(2, "b"), (1, "a")]) == ["a", "b"]
