"""Unit + property tests for repro.sortedlist.

Both implementations (flat ``SortedKeyList``, chunked
``ChunkedSortedKeyList``) honour one contract, so the whole suite is
parametrized over the two; the chunked variant runs with a tiny load
factor so chunk splits, boundary scans and chunk deletions are all
exercised even by small inputs.
"""

import pytest
from hypothesis import given, strategies as st

from repro.sortedlist import ChunkedSortedKeyList, SortedKeyList, sorted_pairs


class Item:
    """Mutable wrapper so identity-based removal is exercised."""

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return f"Item({self.value})"


def _chunked(key, items=None):
    return ChunkedSortedKeyList(key, items=items, load=2)


@pytest.fixture(params=["flat", "chunked"])
def make(request):
    """Factory for one of the two implementations."""
    return SortedKeyList if request.param == "flat" else _chunked


class TestBasics:
    def test_empty(self, make):
        sl = make(key=lambda x: x)
        assert len(sl) == 0
        assert sl.min() is None
        assert sl.max() is None

    def test_add_keeps_sorted(self, make):
        sl = make(key=lambda x: x, items=[3, 1, 2])
        assert sl.as_list() == [1, 2, 3]

    def test_duplicates_allowed(self, make):
        sl = make(key=lambda x: x, items=[2, 2, 2])
        assert len(sl) == 3

    def test_min_max(self, make):
        sl = make(key=lambda x: x, items=[5, 1, 9])
        assert sl.min() == 1
        assert sl.max() == 9

    def test_contains_by_identity(self, make):
        a, b = Item(1), Item(1)
        sl = make(key=lambda i: i.value, items=[a])
        assert a in sl
        assert b not in sl

    def test_getitem(self, make):
        sl = make(key=lambda x: x, items=[30, 10, 20])
        assert sl[0] == 10
        assert sl[2] == 30

    def test_iteration_order(self, make):
        sl = make(key=lambda x: x, items=[4, 2, 9, 7, 1, 3, 8, 5, 6])
        assert list(sl) == list(range(1, 10))


class TestRemove:
    def test_remove_by_identity_among_equal_keys(self, make):
        a, b = Item(1), Item(1)
        sl = make(key=lambda i: i.value, items=[a, b])
        sl.remove(a)
        assert a not in sl
        assert b in sl

    def test_remove_missing_raises(self, make):
        sl = make(key=lambda x: x, items=[1])
        with pytest.raises(ValueError):
            sl.remove(2)

    def test_discard_returns_bool(self, make):
        sl = make(key=lambda x: x, items=[1])
        assert sl.discard(1) is True
        assert sl.discard(1) is False

    def test_pop_index(self, make):
        sl = make(key=lambda x: x, items=[3, 1, 2])
        assert sl.pop_index(0) == 1
        assert sl.as_list() == [2, 3]

    def test_clear(self, make):
        sl = make(key=lambda x: x, items=[1, 2])
        sl.clear()
        assert len(sl) == 0

    def test_equal_keys_across_chunk_boundaries(self):
        # load=2 forces chunks of <= 4; 10 equal keys span chunks, and
        # identity removal must scan across the boundary.
        items = [Item(7) for _ in range(10)]
        sl = _chunked(key=lambda i: i.value, items=items)
        for item in reversed(items):
            sl.remove(item)
        assert len(sl) == 0


class TestQueries:
    def test_first_at_least_exact(self, make):
        sl = make(key=lambda x: x, items=[10, 20, 30])
        assert sl.first_at_least(20) == 20

    def test_first_at_least_between(self, make):
        sl = make(key=lambda x: x, items=[10, 20, 30])
        assert sl.first_at_least(15) == 20

    def test_first_at_least_above_all(self, make):
        sl = make(key=lambda x: x, items=[10])
        assert sl.first_at_least(11) is None

    def test_index_at_least(self, make):
        sl = make(key=lambda x: x, items=[10, 20, 30])
        assert sl.index_at_least(20) == 1
        assert sl.index_at_least(35) == 3

    def test_items_descending(self, make):
        sl = make(key=lambda x: x, items=[1, 3, 2])
        assert list(sl.items_descending()) == [3, 2, 1]

    def test_iter_from(self):
        sl = _chunked(key=lambda x: x, items=list(range(0, 20, 2)))
        assert list(sl.iter_from(7)) == [8, 10, 12, 14, 16, 18]
        assert list(sl.iter_from(99)) == []


class TestProperties:
    @given(st.lists(st.integers(-100, 100)))
    def test_always_sorted_after_adds(self, values):
        for factory in (SortedKeyList, _chunked):
            sl = factory(key=lambda x: x, items=values)
            assert sl.as_list() == sorted(values)
            assert sl.check_sorted()

    @given(st.lists(st.integers(0, 20), min_size=1))
    def test_add_remove_roundtrip(self, values):
        for factory in (SortedKeyList, _chunked):
            sl = factory(key=lambda i: i.value)
            items = [Item(v) for v in values]
            for item in items:
                sl.add(item)
            for item in items:
                sl.remove(item)
            assert len(sl) == 0

    @given(st.lists(st.integers(0, 50)), st.integers(0, 50))
    def test_first_at_least_is_best_fit(self, values, needle):
        for factory in (SortedKeyList, _chunked):
            sl = factory(key=lambda x: x, items=values)
            result = sl.first_at_least(needle)
            candidates = [v for v in values if v >= needle]
            if candidates:
                assert result == min(candidates)
            else:
                assert result is None

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 10),
                              st.integers(0, 1000)), max_size=80))
    def test_chunked_matches_flat_under_interleaving(self, steps):
        """Identical add/remove interleavings must leave both
        implementations with identical contents *and order* (equal keys
        keep insertion order in both)."""
        flat = SortedKeyList(key=lambda i: i.value)
        chunked = _chunked(key=lambda i: i.value)
        live = []
        for is_add, value, pick in steps:
            if is_add or not live:
                item = Item(value)
                flat.add(item)
                chunked.add(item)
                live.append(item)
            else:
                item = live.pop(pick % len(live))
                flat.remove(item)
                chunked.remove(item)
        assert flat.as_list() == chunked.as_list()
        assert chunked.check_sorted()
        assert len(flat) == len(chunked)


def test_sorted_pairs():
    assert sorted_pairs([(2, "b"), (1, "a")]) == ["a", "b"]
