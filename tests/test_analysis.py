"""Tests for tables, experiment runners and the summary aggregator."""

import pytest

from repro.analysis import format_table, summarize
from repro.analysis.experiments import (
    batch_sweep,
    first_oom_batch,
    scaleout_sweep,
    strategy_sweep,
)
from repro.analysis.tables import format_kv
from repro.sim.engine import EngineResult
from repro.sim.metrics import ComparisonRow
from repro.units import GB


def fake_result(reserved_gb, active_gb, oom=False):
    return EngineResult(
        allocator_name="fake",
        meta={"batch_size": 4},
        peak_active_bytes=int(active_gb * GB),
        peak_reserved_bytes=int(reserved_gb * GB),
        oom=oom,
    )


def fake_row(base_reserved, gml_reserved, active, oom_base=False, oom_gml=False):
    return ComparisonRow(
        label="w",
        baseline=fake_result(base_reserved, active, oom_base),
        gmlake=fake_result(gml_reserved, active, oom_gml),
    )


class TestTables:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        out = format_table(rows)
        lines = out.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        # All lines are equally wide (aligned columns).
        assert len({len(line) for line in lines}) == 1

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        out = format_table(rows, columns=["b"])
        assert "a" not in out.splitlines()[0]

    def test_format_table_title_and_empty(self):
        assert "t" in format_table([], title="t")

    def test_floats_formatted(self):
        out = format_table([{"x": 0.123456}])
        assert "0.123" in out

    def test_bools_formatted(self):
        out = format_table([{"x": True}])
        assert "yes" in out

    def test_format_kv(self):
        out = format_kv("head", {"alpha": 1, "b": 2.5})
        assert "head" in out and "alpha" in out and "2.500" in out


class TestSummary:
    def test_averages(self):
        rows = [fake_row(10, 8, 7), fake_row(20, 15, 14)]
        stats = summarize(rows)
        assert stats.n_workloads == 2
        assert stats.avg_saving_gb == pytest.approx((2 + 5) / 2)
        assert stats.max_saving_gb == pytest.approx(5)

    def test_mem_reduction_ratio_weighted(self):
        rows = [fake_row(10, 8, 7), fake_row(20, 15, 14)]
        stats = summarize(rows)
        assert stats.mem_reduction_ratio == pytest.approx(7 / 30)

    def test_oom_rows_counted_but_excluded(self):
        rows = [fake_row(10, 8, 7), fake_row(20, 15, 14, oom_base=True)]
        stats = summarize(rows)
        assert stats.baseline_ooms == 1
        assert stats.avg_saving_gb == pytest.approx(2.0)

    def test_empty(self):
        stats = summarize([])
        assert stats.n_workloads == 0
        assert stats.avg_saving_gb == 0.0

    def test_as_dict_keys(self):
        stats = summarize([fake_row(10, 9, 8)])
        assert "avg saving (GB)" in stats.as_dict()


class TestFirstOom:
    def test_finds_first_oom(self):
        rows = [fake_row(10, 9, 8)]
        rows[0].baseline.meta["batch_size"] = 16
        rows.append(fake_row(10, 9, 8, oom_base=True))
        rows[1].baseline.meta["batch_size"] = 32
        assert first_oom_batch(rows, "baseline") == 32
        assert first_oom_batch(rows, "gmlake") is None


class TestSweepsSmoke:
    """Fast, small-model sweeps exercising the experiment runners."""

    def test_strategy_sweep_shapes(self):
        rows = strategy_sweep("opt-1.3b", batch_size=2, combos=("N", "LR"),
                              iterations=4)
        assert len(rows) == 2
        for row in rows:
            assert row.gmlake.utilization_ratio >= row.baseline.utilization_ratio - 0.02

    def test_scaleout_sweep_runs(self):
        rows = scaleout_sweep("opt-1.3b", batch_size=2, gpu_counts=(1, 4),
                              iterations=4)
        assert len(rows) == 2
        assert rows[1].baseline.meta["n_gpus"] == 4

    def test_batch_sweep_detects_oom(self):
        rows = batch_sweep("opt-1.3b", batch_sizes=(1, 4096), n_gpus=4,
                           iterations=3)
        assert not rows[0].baseline.oom
        assert rows[1].baseline.oom and rows[1].gmlake.oom
