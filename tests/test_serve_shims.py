"""The pre-registry scheduler entry points survive as deprecation shims.

Mirrors the ``make_allocator`` / ``ALLOCATOR_FACTORIES`` shim coverage
in ``test_sim_engine.py``: legacy callers keep working (same types,
same ``KeyError`` on unknown names) while the canonical path is the
kind-aware component registry.
"""

import pytest

from repro.serve import (
    SCHEDULER_FACTORIES,
    FcfsScheduler,
    MemoryAwareScheduler,
    ShortestPromptScheduler,
    make_scheduler,
    resolve_scheduler,
    scheduler_names,
)


class TestSchedulerFactoriesShim:
    def test_mirrors_registry_with_aliases(self):
        assert set(SCHEDULER_FACTORIES) == set(
            scheduler_names(include_aliases=True))
        assert SCHEDULER_FACTORIES["fcfs"] is FcfsScheduler
        assert SCHEDULER_FACTORIES["memory-aware"] is MemoryAwareScheduler

    def test_alias_maps_to_canonical_class(self):
        assert SCHEDULER_FACTORIES["sjf"] is ShortestPromptScheduler
        assert SCHEDULER_FACTORIES["sjf"] \
            is SCHEDULER_FACTORIES["shortest-prompt"]

    def test_entries_construct(self):
        from repro.serve import Scheduler

        for factory in SCHEDULER_FACTORIES.values():
            assert isinstance(factory(), Scheduler)


class TestMakeSchedulerShim:
    def test_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="make_scheduler"):
            scheduler = make_scheduler("fcfs")
        assert isinstance(scheduler, FcfsScheduler)

    def test_alias_resolves(self):
        with pytest.warns(DeprecationWarning):
            assert isinstance(make_scheduler("sjf"), ShortestPromptScheduler)

    def test_unknown_still_raises_keyerror(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(KeyError):
                make_scheduler("priority-lottery")

    def test_instance_passes_through(self):
        scheduler = MemoryAwareScheduler(margin=2.0)
        with pytest.warns(DeprecationWarning):
            assert make_scheduler(scheduler) is scheduler

    def test_spec_strings_reach_the_registry(self):
        """The shim rides the same path as the canonical resolver."""
        with pytest.warns(DeprecationWarning):
            scheduler = make_scheduler("memory-aware?margin=1.5")
        assert scheduler.margin == 1.5
        assert resolve_scheduler("memory-aware?margin=1.5").margin == 1.5
