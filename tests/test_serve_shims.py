"""The pre-registry scheduler entry points survive as deprecation shims.

Mirrors the ``make_allocator`` / ``ALLOCATOR_FACTORIES`` shim coverage
in ``test_sim_engine.py``: legacy callers keep working (same types,
same ``KeyError`` on unknown names) while the canonical path is the
kind-aware component registry.  Swap preemption's legacy PCIe
parameters get the same treatment: they still work, warn, and price
byte-identically to the ``interconnect`` component that replaced them.
"""

import warnings

import pytest

from repro.gpu.latency import LatencyModel
from repro.serve import (
    SCHEDULER_FACTORIES,
    FcfsScheduler,
    MemoryAwareScheduler,
    NvlinkInterconnect,
    PcieInterconnect,
    ShortestPromptScheduler,
    SwapPreemption,
    make_scheduler,
    resolve_preemption,
    resolve_scheduler,
    scheduler_names,
)


class TestSchedulerFactoriesShim:
    def test_mirrors_registry_with_aliases(self):
        assert set(SCHEDULER_FACTORIES) == set(
            scheduler_names(include_aliases=True))
        assert SCHEDULER_FACTORIES["fcfs"] is FcfsScheduler
        assert SCHEDULER_FACTORIES["memory-aware"] is MemoryAwareScheduler

    def test_alias_maps_to_canonical_class(self):
        assert SCHEDULER_FACTORIES["sjf"] is ShortestPromptScheduler
        assert SCHEDULER_FACTORIES["sjf"] \
            is SCHEDULER_FACTORIES["shortest-prompt"]

    def test_entries_construct(self):
        from repro.serve import Scheduler

        for factory in SCHEDULER_FACTORIES.values():
            assert isinstance(factory(), Scheduler)


class TestMakeSchedulerShim:
    def test_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="make_scheduler"):
            scheduler = make_scheduler("fcfs")
        assert isinstance(scheduler, FcfsScheduler)

    def test_alias_resolves(self):
        with pytest.warns(DeprecationWarning):
            assert isinstance(make_scheduler("sjf"), ShortestPromptScheduler)

    def test_unknown_still_raises_keyerror(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(KeyError):
                make_scheduler("priority-lottery")

    def test_instance_passes_through(self):
        scheduler = MemoryAwareScheduler(margin=2.0)
        with pytest.warns(DeprecationWarning):
            assert make_scheduler(scheduler) is scheduler

    def test_spec_strings_reach_the_registry(self):
        """The shim rides the same path as the canonical resolver."""
        with pytest.warns(DeprecationWarning):
            scheduler = make_scheduler("memory-aware?margin=1.5")
        assert scheduler.margin == 1.5
        assert resolve_scheduler("memory-aware?margin=1.5").margin == 1.5


class TestSwapPcieParamShim:
    """Swap's legacy ``pcie_*`` knobs fold into the interconnect kind."""

    def test_legacy_params_warn_and_fold(self):
        with pytest.warns(DeprecationWarning, match="interconnect"):
            policy = SwapPreemption(pcie_gb_per_s=12.0, pcie_latency_us=5.0)
        assert isinstance(policy.interconnect, PcieInterconnect)
        assert policy.interconnect.gb_per_s == 12.0
        assert policy.interconnect.latency_us == 5.0
        # The legacy attributes survive for legacy readers.
        assert policy.pcie_gb_per_s == 12.0
        assert policy.pcie_latency_us == 5.0

    def test_legacy_spec_string_warns_on_build(self):
        with pytest.warns(DeprecationWarning, match="interconnect"):
            policy = resolve_preemption("swap?pcie_gb_per_s=12")
        assert policy.interconnect.gb_per_s == 12.0

    def test_new_path_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            policy = resolve_preemption("swap?interconnect=pcie?gb_per_s=12")
        assert isinstance(policy.interconnect, PcieInterconnect)
        assert policy.interconnect.gb_per_s == 12.0

    def test_legacy_and_explicit_link_conflict(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="not both"):
                SwapPreemption(pcie_gb_per_s=12.0,
                               interconnect=NvlinkInterconnect())

    def test_legacy_pricing_is_byte_identical(self):
        """The folded link prices exactly like the old inline formula
        (and the bare default exactly like the device latency model)."""
        latency = LatencyModel()
        size = 1 << 30
        with pytest.warns(DeprecationWarning):
            policy = SwapPreemption(pcie_gb_per_s=12.0, pcie_latency_us=5.0)
        assert policy.interconnect.transfer_us(size, latency) \
            == 5.0 + size / (12.0 * (1 << 30)) * 1e6
        bare = SwapPreemption()
        assert bare.interconnect.transfer_us(size, latency) \
            == latency.pcie_transfer(size)

    def test_other_interconnects_plug_in(self):
        policy = resolve_preemption("swap?interconnect=nvlink?gb_per_s=300")
        assert isinstance(policy.interconnect, NvlinkInterconnect)
        assert policy.interconnect.gb_per_s == 300.0


class TestSwapIsTieredShim:
    """Since the memory-tier subsystem landed, ``swap`` is a shim over
    :class:`TieredPreemption`: one unbounded host-DRAM tier priced by
    the policy's interconnect, with the byte ledger redirected into the
    legacy ``swapped_bytes`` counter."""

    def test_swap_subclasses_tiered(self):
        from repro.serve import TieredPreemption

        assert issubclass(SwapPreemption, TieredPreemption)

    def test_hierarchy_is_one_unbounded_dram_tier(self):
        from repro.serve import DramTier

        policy = resolve_preemption("swap")
        assert len(policy.hierarchy.tiers) == 1
        host = policy.hierarchy.tiers[0]
        assert isinstance(host, DramTier)
        assert host.capacity_bytes == float("inf")
        # The tier prices through the very interconnect instance the
        # legacy surface exposes — one link, two views.
        assert host.interconnect is policy.interconnect

    def test_legacy_params_reach_the_tier_link(self):
        with pytest.warns(DeprecationWarning):
            policy = SwapPreemption(pcie_gb_per_s=12.0, pcie_latency_us=5.0)
        latency = LatencyModel()
        size = 1 << 30
        assert policy.hierarchy.tiers[0].transfer_us(size, latency) \
            == 5.0 + size / (12.0 * (1 << 30)) * 1e6

    def test_account_keeps_the_legacy_ledger(self):
        """Bytes moved by swap land in ``swapped_bytes`` only — the
        per-tier demoted/promoted dicts stay empty, so pre-tier swap
        configurations read byte-identically."""
        from repro.serve import KVCacheMetrics

        class FakeKV:
            metrics = KVCacheMetrics(kv_cache="paged")

        policy = resolve_preemption("swap")
        policy._account(FakeKV, "dram", 1024, restore=False)
        policy._account(FakeKV, "dram", 512, restore=True)
        assert FakeKV.metrics.swapped_bytes == 1536
        assert FakeKV.metrics.demoted_bytes == {}
        assert FakeKV.metrics.promoted_bytes == {}

    def test_swapped_out_requests_mirrors_parked(self):
        policy = resolve_preemption("swap")
        assert policy.swapped_out_requests == policy.parked_requests == 0
