"""Shared fixtures for the test suite."""

import pytest

from repro import GMLakeAllocator, GpuDevice
from repro.allocators import CachingAllocator, NativeAllocator, VmmNaiveAllocator
from repro.units import GB


@pytest.fixture
def device() -> GpuDevice:
    """A full-size simulated A100-80GB."""
    return GpuDevice()


@pytest.fixture
def small_device() -> GpuDevice:
    """A 1 GB device, so OOM paths are cheap to trigger."""
    return GpuDevice(capacity=1 * GB)


@pytest.fixture
def gmlake(device) -> GMLakeAllocator:
    return GMLakeAllocator(device)


@pytest.fixture
def caching(device) -> CachingAllocator:
    return CachingAllocator(device)


@pytest.fixture
def native(device) -> NativeAllocator:
    return NativeAllocator(device)


@pytest.fixture
def vmm_naive(device) -> VmmNaiveAllocator:
    return VmmNaiveAllocator(device)
