"""Shared fixtures and hypothesis profiles for the test suite.

Hypothesis settings live here, not per-file: every property test runs
under the ``ci`` profile (no deadline — CI machines stall; printed
reproduction blobs — a shrunk failure must be replayable from the log)
unless ``HYPOTHESIS_PROFILE`` selects another.  The nightly CI job
exports ``HYPOTHESIS_PROFILE=nightly`` for a deeper example budget.
Individual tests only override ``max_examples``.
"""

import os

import pytest
from hypothesis import HealthCheck, settings

from repro import GMLakeAllocator, GpuDevice
from repro.allocators import CachingAllocator, NativeAllocator, VmmNaiveAllocator
from repro.units import GB

settings.register_profile(
    "ci",
    deadline=None,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "nightly",
    settings.get_profile("ci"),
    max_examples=400,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


@pytest.fixture
def device() -> GpuDevice:
    """A full-size simulated A100-80GB."""
    return GpuDevice()


@pytest.fixture
def small_device() -> GpuDevice:
    """A 1 GB device, so OOM paths are cheap to trigger."""
    return GpuDevice(capacity=1 * GB)


@pytest.fixture
def gmlake(device) -> GMLakeAllocator:
    return GMLakeAllocator(device)


@pytest.fixture
def caching(device) -> CachingAllocator:
    return CachingAllocator(device)


@pytest.fixture
def native(device) -> NativeAllocator:
    return NativeAllocator(device)


@pytest.fixture
def vmm_naive(device) -> VmmNaiveAllocator:
    return VmmNaiveAllocator(device)
