"""The kind-aware component registry and the generic spec mini-DSL.

Covers the four serving-side component kinds introduced alongside the
allocator and KV-cache kinds: schedulers, arrival processes,
preemption policies and autoscalers — registry metadata, spec
round-trips (property-tested: parse → JSON → parse is lossless for
arbitrary valid parameter values), parse-time validation, and the
``repro list-components`` CLI.
"""

import io
from contextlib import redirect_stdout

import pytest
from hypothesis import given, settings, strategies as st

from repro import api
from repro.api import SpecError, UnknownComponentError
from repro.cli import main as cli_main
from repro.serve import (
    ArrivalSpec,
    AutoscalerSpec,
    InterconnectSpec,
    KVCacheSpec,
    PreemptionSpec,
    SchedulerSpec,
)

#: Every spec view the serving stack registers, with one
#: representative parameterized string each.
SPEC_VIEWS = {
    "scheduler": (SchedulerSpec, "memory-aware?margin=1.5"),
    "arrivals": (ArrivalSpec, "closed-loop?clients=8&think_s=0.5"),
    "preemption": (PreemptionSpec, "swap?pcie_gb_per_s=12"),
    "autoscaler": (AutoscalerSpec, "queue-depth?high=6000&low=800"),
    "interconnect": (InterconnectSpec, "nvlink?gb_per_s=300&latency_us=1.5"),
}


class TestKindRegistry:
    def test_all_kinds_present(self):
        kinds = api.component_kinds()
        for kind in ("allocator", "kv-cache", "scheduler", "arrivals",
                     "preemption", "autoscaler", "interconnect"):
            assert kind in kinds

    def test_expected_names_per_kind(self):
        assert api.component_names("scheduler") == [
            "fcfs", "memory-aware", "shortest-prompt", "wfq"]
        assert api.component_names("arrivals") == [
            "closed-loop", "mmpp", "multi-tenant", "poisson", "replay"]
        assert api.component_names("preemption") == ["recompute", "swap"]
        assert api.component_names("autoscaler") == ["none", "queue-depth"]
        assert api.component_names("interconnect") == ["nvlink", "pcie"]

    def test_aliases_are_metadata_not_entries(self):
        assert "sjf" not in api.component_registry("scheduler")
        assert "sjf" in api.get_component_info(
            "scheduler", "shortest-prompt").aliases
        assert api.get_component_info("scheduler", "sjf").name \
            == "shortest-prompt"

    def test_allocator_kind_is_the_original_registry(self):
        assert api.component_names("allocator") == api.allocator_names()
        assert api.get_component_info("allocator", "gmlake") \
            is api.get_allocator_info("gmlake")

    def test_unknown_kind(self):
        with pytest.raises(SpecError, match="unknown component kind"):
            api.component_names("quantizer")

    def test_unknown_name_is_keyerror_too(self):
        with pytest.raises(UnknownComponentError):
            api.get_component_info("scheduler", "priority-lottery")
        with pytest.raises(KeyError):
            api.get_component_info("preemption", "hibernate")

    def test_every_info_has_description(self):
        for kind in api.component_kinds():
            for info in api.iter_components(kind):
                assert info.description, f"{kind}/{info.name}"
                assert info.kind == kind


class TestSpecViews:
    @pytest.mark.parametrize("kind", sorted(SPEC_VIEWS))
    def test_parameterized_round_trip(self, kind):
        spec_cls, text = SPEC_VIEWS[kind]
        spec = spec_cls.parse(text)
        assert spec_cls.parse(spec.spec_string()) == spec
        assert spec_cls.from_dict(spec.to_dict()) == spec
        assert spec_cls.parse(spec) is spec

    @pytest.mark.parametrize("kind", sorted(SPEC_VIEWS))
    def test_bare_names_round_trip(self, kind):
        spec_cls, _ = SPEC_VIEWS[kind]
        for name in api.component_names(kind):
            if name == "replay":
                continue  # replay requires a path (checked below)
            spec = spec_cls.parse(name)
            assert spec.spec_string() == name
            built = spec.build()
            label = getattr(built, "name", None) or getattr(built, "kind", None)
            assert label == name

    def test_unknown_name_lists_known(self):
        with pytest.raises(SpecError, match="known"):
            SchedulerSpec.parse("priority-lottery")

    def test_unknown_param_rejected(self):
        with pytest.raises(SpecError, match="no parameter"):
            PreemptionSpec.parse("swap?compression=lz4")

    def test_ill_typed_value_rejected(self):
        with pytest.raises(SpecError, match="bad value"):
            ArrivalSpec.parse("poisson?rate=fast")


# ----------------------------------------------------------------------
# Property tests: parse -> JSON -> parse is lossless for arbitrary
# valid parameter values, across all four new kinds.
# ----------------------------------------------------------------------
_floats = st.floats(min_value=0.01, max_value=1e6, allow_nan=False,
                    allow_infinity=False)


def _round_trip(spec_cls, name, params):
    spec = spec_cls(name, params)
    assert spec_cls.parse(spec.spec_string()) == spec, spec.spec_string()
    assert spec_cls.from_dict(spec.to_dict()) == spec
    # The canonical string is stable (idempotent canonicalization).
    assert spec_cls.parse(spec.spec_string()).spec_string() \
        == spec.spec_string()


class TestSpecRoundTripProperties:
    @settings(max_examples=50)
    @given(margin=st.floats(min_value=1.0, max_value=16.0,
                            allow_nan=False))
    def test_scheduler(self, margin):
        _round_trip(SchedulerSpec, "memory-aware", {"margin": margin})

    @settings(max_examples=50)
    @given(rate=_floats)
    def test_arrivals_poisson(self, rate):
        _round_trip(ArrivalSpec, "poisson", {"rate_per_s": rate})

    @settings(max_examples=50)
    @given(clients=st.integers(min_value=1, max_value=512),
           think=_floats, service=_floats)
    def test_arrivals_closed_loop(self, clients, think, service):
        _round_trip(ArrivalSpec, "closed-loop",
                    {"clients": clients, "think_s": think,
                     "service_s": service})

    @settings(max_examples=50)
    @given(bandwidth=_floats)
    def test_preemption_swap(self, bandwidth):
        _round_trip(PreemptionSpec, "swap", {"pcie_gb_per_s": bandwidth})

    @settings(max_examples=50)
    @given(low=st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
           delta=st.floats(min_value=0.1, max_value=1e5, allow_nan=False),
           floor=st.integers(min_value=1, max_value=64))
    def test_autoscaler_queue_depth(self, low, delta, floor):
        _round_trip(AutoscalerSpec, "queue-depth",
                    {"high": low + delta, "low": low,
                     "min_replicas": floor})

    @settings(max_examples=50)
    @given(tokens=st.integers(min_value=1, max_value=4096))
    def test_kv_cache(self, tokens):
        _round_trip(KVCacheSpec, "paged", {"block_tokens": tokens})

    @settings(max_examples=50)
    @given(bandwidth=st.floats(min_value=0.0, max_value=1e4,
                               allow_nan=False),
           setup=st.floats(min_value=0.0, max_value=1e4, allow_nan=False))
    def test_interconnect_pcie(self, bandwidth, setup):
        _round_trip(InterconnectSpec, "pcie",
                    {"gb_per_s": bandwidth, "latency_us": setup})

    @settings(max_examples=50)
    @given(bandwidth=_floats,
           setup=st.floats(min_value=0.0, max_value=1e4, allow_nan=False))
    def test_interconnect_nvlink(self, bandwidth, setup):
        _round_trip(InterconnectSpec, "nvlink",
                    {"gb_per_s": bandwidth, "latency_us": setup})


class TestParseTimeValidation:
    """Bad configurations fail when the spec is built, not mid-run."""

    @pytest.mark.parametrize("text,match", [
        ("poisson?rate=0", "positive"),
        ("poisson?rate=-2", "positive"),
        ("mmpp?burst=-1", "positive"),
        ("mmpp?dwell=0", "positive"),
        ("closed-loop?clients=0", ">= 1"),
        ("closed-loop?think_s=0", "positive"),
        ("replay", "path"),
    ])
    def test_arrival_specs(self, text, match):
        with pytest.raises(SpecError, match=match):
            ArrivalSpec.parse(text)

    @pytest.mark.parametrize("text,match", [
        ("memory-aware?margin=0.5", ">= 1.0"),
        ("memory-aware?margin=-1", ">= 1.0"),
    ])
    def test_scheduler_specs(self, text, match):
        with pytest.raises(SpecError, match=match):
            SchedulerSpec.parse(text)

    def test_swap_bandwidth(self):
        with pytest.raises(SpecError, match=">= 0"):
            PreemptionSpec.parse("swap?pcie_gb_per_s=-4")
        # 0 is the documented "device default" sentinel, not an error.
        assert PreemptionSpec.parse(
            "swap?pcie_gb_per_s=0").build().pcie_gb_per_s == 0.0

    def test_interconnect_specs(self):
        with pytest.raises(SpecError, match=">= 0"):
            InterconnectSpec.parse("pcie?gb_per_s=-1")
        with pytest.raises(SpecError, match=">= 0"):
            InterconnectSpec.parse("nvlink?latency_us=-2")
        # nvlink has no device fallback, so the 0 sentinel is an error
        # there but fine on pcie.
        with pytest.raises(SpecError, match="> 0"):
            InterconnectSpec.parse("nvlink?gb_per_s=0")
        assert InterconnectSpec.parse("pcie?gb_per_s=0").build().gb_per_s \
            == 0.0

    def test_swap_validates_nested_interconnect(self):
        """The swap policy's interconnect parameter is itself a spec,
        validated when the *preemption* spec parses."""
        spec = PreemptionSpec.parse("swap?interconnect=nvlink?gb_per_s=300")
        assert spec.params["interconnect"] == "nvlink?gb_per_s=300"
        with pytest.raises(SpecError):
            PreemptionSpec.parse("swap?interconnect=hypertransport")
        with pytest.raises(SpecError):
            PreemptionSpec.parse("swap?interconnect=nvlink?gb_per_s=0")

    @pytest.mark.parametrize("text", [
        "queue-depth?high=0",
        "queue-depth?high=100&low=100",
        "queue-depth?high=100&low=200",
        "queue-depth?min=0",
    ])
    def test_autoscaler_specs(self, text):
        with pytest.raises(SpecError):
            AutoscalerSpec.parse(text)

    def test_serving_spec_rejects_bad_rate(self):
        with pytest.raises(SpecError, match="rate_per_s"):
            api.ServingSpec(rate_per_s=0.0)
        with pytest.raises(SpecError, match="rate_per_s"):
            api.ServingSpec(rate_per_s=-3.0)

    def test_serving_spec_rejects_bad_margin(self):
        with pytest.raises(SpecError, match="margin"):
            api.ServingSpec(scheduler="memory-aware?margin=0.25")

    def test_serving_spec_rejects_bad_components(self):
        with pytest.raises(SpecError):
            api.ServingSpec(preemption="hibernate")
        with pytest.raises(SpecError):
            api.ServingSpec(autoscaler="queue-depth?high=1&low=2")
        with pytest.raises(SpecError):
            api.ServingSpec(arrivals="poisson?rate=0")

    def test_serving_spec_rejects_bad_shape(self):
        with pytest.raises(SpecError, match="n_requests"):
            api.ServingSpec(n_requests=0)
        with pytest.raises(SpecError, match="max_batch"):
            api.ServingSpec(max_batch=0)
        with pytest.raises(SpecError, match="queue_timeout_s"):
            api.ServingSpec(queue_timeout_s=-1.0)
        with pytest.raises(SpecError, match="replicas"):
            api.ServingSpec(replicas=0)

    def test_serving_spec_rejects_autoscaler_without_fleet(self):
        """An autoscaler on a single replica would be silently inert —
        reject it at parse time instead."""
        with pytest.raises(SpecError, match="replicas"):
            api.ServingSpec(autoscaler="queue-depth?high=100&low=10",
                            replicas=1)
        # With a fleet it parses fine.
        api.ServingSpec(autoscaler="queue-depth?high=100&low=10",
                        replicas=2)

    def test_serving_spec_canonicalizes_components(self):
        spec = api.ServingSpec(scheduler="sjf",
                               arrivals="poisson?rate=4",
                               preemption="swap")
        assert spec.scheduler == "shortest-prompt"
        assert spec.arrivals == "poisson?rate_per_s=4.0"
        assert spec.preemption == "swap"


class TestListComponentsCli:
    def _run(self, *argv):
        out = io.StringIO()
        with redirect_stdout(out):
            code = cli_main(list(argv))
        return code, out.getvalue()

    def test_lists_every_kind_with_params(self):
        code, text = self._run("list-components")
        assert code == 0
        for kind in ("allocator", "kv-cache", "scheduler", "arrivals",
                     "preemption", "autoscaler", "interconnect"):
            assert f"component kind {kind!r}" in text
        # Spot-check one name and one parameter per new kind.
        for needle in ("memory-aware", "margin", "closed-loop", "clients",
                       "swap", "pcie_gb_per_s", "queue-depth", "high",
                       "nvlink", "gb_per_s"):
            assert needle in text

    def test_kind_filter(self):
        code, text = self._run("list-components", "--kind", "preemption")
        assert code == 0
        assert "component kind 'preemption'" in text
        assert "component kind 'scheduler'" not in text
        assert "recompute" in text and "swap" in text

    def test_unknown_kind_fails(self):
        code, _ = self._run("list-components", "--kind", "quantizer")
        assert code == 2
