"""Behavioral tests for the GMLake allocator (strategy S1–S5)."""

import pytest

from repro.core import GMLakeAllocator, GMLakeConfig
from repro.core.bestfit import FitState
from repro.errors import OutOfMemoryError
from repro.gpu.device import GpuDevice
from repro.units import GB, KB, MB


@pytest.fixture
def device():
    return GpuDevice(capacity=1 * GB)


@pytest.fixture
def gml(device):
    return GMLakeAllocator(device)


def hits(allocator, state):
    return allocator.counters.state_hits[state.value]


class TestBasicAllocation:
    def test_malloc_rounds_to_chunk(self, gml):
        alloc = gml.malloc(5 * MB)
        assert alloc.rounded_size == 6 * MB

    def test_first_alloc_is_s4(self, gml):
        gml.malloc(10 * MB)
        assert hits(gml, FitState.INSUFFICIENT_BLOCKS) == 1

    def test_free_keeps_physical_cached(self, gml, device):
        alloc = gml.malloc(10 * MB)
        gml.free(alloc)
        assert device.used_memory == 10 * MB
        assert gml.reserved_bytes == 10 * MB
        assert gml.active_bytes == 0

    def test_exact_match_reuses_block(self, gml, device):
        alloc = gml.malloc(10 * MB)
        gml.free(alloc)
        used = device.used_memory
        gml.malloc(10 * MB)
        assert device.used_memory == used
        assert hits(gml, FitState.EXACT_MATCH) == 1

    def test_s2_split_serves_smaller_request(self, gml, device):
        alloc = gml.malloc(10 * MB)
        gml.free(alloc)
        used = device.used_memory
        smaller = gml.malloc(4 * MB)
        assert device.used_memory == used  # no new physical memory
        assert hits(gml, FitState.SINGLE_BLOCK) == 1
        assert smaller.rounded_size == 4 * MB
        assert gml.counters.splits == 1

    def test_s3_stitches_fragments(self, gml, device):
        a = gml.malloc(6 * MB)
        b = gml.malloc(6 * MB)
        gml.free(a)
        gml.free(b)
        used = device.used_memory
        big = gml.malloc(12 * MB)
        assert device.used_memory == used
        assert hits(gml, FitState.MULTIPLE_BLOCKS) == 1
        assert gml.counters.stitches >= 1
        assert big.rounded_size == 12 * MB

    def test_s4_partial_stitch_with_new_block(self, gml, device):
        a = gml.malloc(6 * MB)
        gml.free(a)
        gml.malloc(10 * MB)  # 6 cached + 4 new
        assert device.used_memory == 10 * MB
        assert gml.counters.alloc_pblocks == 2  # first block + shortfall

    def test_figure1_scenario(self, gml, device):
        """Blocks 2 and 5 freed; block 6 fits via stitching (Figure 1)."""
        one = gml.malloc(100 * MB)
        two = gml.malloc(200 * MB)
        three = gml.malloc(300 * MB)
        gml.free(two)
        gml.free(one)
        used = device.used_memory
        six = gml.malloc(300 * MB)  # needs 2+5's combined space
        assert device.used_memory == used
        gml.free(three)
        gml.free(six)


class TestSmallPool:
    def test_small_requests_bypass_vmm(self, gml, device):
        gml.malloc(100 * KB)
        assert device.vmm.counters.create_calls == 0
        assert gml.reserved_bytes == 2 * MB  # one small segment

    def test_small_free_and_reuse(self, gml):
        alloc = gml.malloc(64 * KB)
        gml.free(alloc)
        gml.malloc(64 * KB)
        assert gml.reserved_bytes == 2 * MB

    def test_small_and_large_accounted_together(self, gml):
        gml.malloc(100 * KB)
        gml.malloc(10 * MB)
        assert gml.reserved_bytes == 12 * MB


class TestDeallocationModule:
    def test_update_marks_inactive_without_driver_calls(self, gml, device):
        alloc = gml.malloc(10 * MB)
        unmaps = device.vmm.counters.unmap_calls
        gml.free(alloc)
        assert device.vmm.counters.unmap_calls == unmaps

    def test_sblock_free_deactivates_members(self, gml):
        a = gml.malloc(6 * MB)
        b = gml.malloc(6 * MB)
        gml.free(a)
        gml.free(b)
        big = gml.malloc(12 * MB)  # stitched
        gml.free(big)
        assert all(not p.active for p in gml.ppool)

    def test_stitch_free_lru_eviction(self, device):
        config = GMLakeConfig(max_spool_blocks=1)
        gml = GMLakeAllocator(device, config)
        a = gml.malloc(6 * MB)
        b = gml.malloc(6 * MB)
        gml.free(a)
        gml.free(b)
        big = gml.malloc(12 * MB)  # creates sBlock #1
        gml.free(big)
        c = gml.malloc(4 * MB)
        d = gml.malloc(8 * MB)
        gml.free(c)
        gml.free(d)
        gml.malloc(12 * MB)  # creates sBlock #2 -> evicts LRU
        assert len(gml.spool) <= 1
        assert gml.counters.stitch_frees >= 1


class TestTightSpoolCap:
    def test_fresh_sblock_never_evicted_before_assignment(self, device):
        """Regression: with a tight sPool cap, the LRU must not evict
        the sBlock created for the in-flight allocation (that would hand
        the tensor a destroyed block and double-book its chunks)."""
        config = GMLakeConfig(max_spool_blocks=1)
        gml = GMLakeAllocator(device, config)
        live = []
        # Repeatedly force stitches of different sizes under cap 1.
        for step, size in enumerate([6, 6, 12, 4, 8, 12, 10, 22, 6, 28]):
            alloc = gml.malloc(size * MB)
            live.append(alloc)
            if step % 2 == 1:
                gml.free(live.pop(0))
            gml.check_invariants()
            assert gml.active_bytes <= gml.reserved_bytes
        for alloc in live:
            gml.free(alloc)
        gml.check_invariants()

    def test_cap_zero_does_not_livelock(self, device):
        gml = GMLakeAllocator(device, GMLakeConfig(max_spool_blocks=0))
        a = gml.malloc(6 * MB)
        b = gml.malloc(6 * MB)
        gml.free(a)
        gml.free(b)
        big = gml.malloc(12 * MB)  # stitch under cap 0: protected block
        assert big.rounded_size == 12 * MB
        gml.check_invariants()


class TestReclaimAndOom:
    def test_stitch_avoids_reclaim(self, gml, device):
        big = gml.malloc(600 * MB)
        gml.free(big)
        # 600 MB cached; a 700 MB request stitches cache + 100 MB of new
        # memory instead of releasing anything — cheaper than reclaim.
        alloc = gml.malloc(700 * MB)
        assert alloc.rounded_size == 700 * MB
        assert gml.counters.reclaims == 0
        assert device.used_memory == 700 * MB

    def test_reclaim_releases_inactive_blocks(self, device):
        # With stitching disabled the cached 600 MB block cannot help a
        # 700 MB request; the allocator must reclaim it and re-allocate.
        gml = GMLakeAllocator(device, GMLakeConfig(enable_stitch=False))
        big = gml.malloc(600 * MB)
        gml.free(big)
        alloc = gml.malloc(700 * MB)
        assert alloc.rounded_size == 700 * MB
        assert gml.counters.reclaims == 1
        assert device.used_memory == 700 * MB

    def test_oom_when_active_blocks_pin_memory(self, gml):
        gml.malloc(600 * MB)
        with pytest.raises(OutOfMemoryError):
            gml.malloc(600 * MB)
        assert hits(gml, FitState.OOM) == 1

    def test_oom_error_reports_numbers(self, gml):
        gml.malloc(600 * MB)
        with pytest.raises(OutOfMemoryError) as exc:
            gml.malloc(900 * MB)
        assert exc.value.capacity == 1 * GB
        assert exc.value.active == 600 * MB

    def test_empty_cache_releases_everything_inactive(self, gml, device):
        a = gml.malloc(100 * MB)
        b = gml.malloc(50 * MB)
        gml.free(a)
        gml.empty_cache()
        assert gml.reserved_bytes == 50 * MB + 0  # only b's block remains
        gml.free(b)
        gml.empty_cache()
        assert device.used_memory == 0

    def test_allocator_usable_after_oom(self, gml):
        keeper = gml.malloc(600 * MB)
        with pytest.raises(OutOfMemoryError):
            gml.malloc(600 * MB)
        gml.free(keeper)
        assert gml.malloc(600 * MB).rounded_size == 600 * MB


class TestStitchingSemantics:
    def test_sblock_exact_reuse(self, gml):
        a = gml.malloc(6 * MB)
        b = gml.malloc(6 * MB)
        gml.free(a)
        gml.free(b)
        big = gml.malloc(12 * MB)
        gml.free(big)
        before = gml.counters.stitches
        gml.malloc(12 * MB)  # the stitched sBlock serves again
        assert gml.counters.stitches == before
        assert hits(gml, FitState.EXACT_MATCH) >= 1

    def test_owned_sblock_members_are_protected(self, gml):
        a = gml.malloc(6 * MB)
        b = gml.malloc(6 * MB)
        gml.free(a)
        gml.free(b)
        big = gml.malloc(12 * MB)  # sBlock over both pBlocks
        # While `big` is live its member chunks must not be reassigned:
        other = gml.malloc(6 * MB)
        assert other.ptr != a.ptr and other.ptr != b.ptr
        gml.check_invariants()

    def test_split_preserves_referencing_sblocks(self, gml):
        a = gml.malloc(6 * MB)
        b = gml.malloc(10 * MB)
        gml.free(a)
        gml.free(b)
        big = gml.malloc(16 * MB)  # sBlock(a', b')
        gml.free(big)
        spool_size = len(gml.spool)
        gml.malloc(4 * MB)  # splits one member
        assert len(gml.spool) >= spool_size  # nothing destroyed
        gml.check_invariants()

    def test_stitch_disabled_ablation(self, device):
        config = GMLakeConfig(enable_stitch=False)
        gml = GMLakeAllocator(device, config)
        a = gml.malloc(6 * MB)
        b = gml.malloc(6 * MB)
        gml.free(a)
        gml.free(b)
        gml.malloc(12 * MB)
        assert gml.counters.stitches == 0
        assert gml.reserved_bytes == 24 * MB  # had to allocate fresh

    def test_invariants_hold_through_random_workload(self, gml):
        import random
        rng = random.Random(11)
        live = []
        for step in range(250):
            if live and rng.random() < 0.5:
                gml.free(live.pop(rng.randrange(len(live))))
            else:
                size = rng.choice(
                    [512 * KB, 2 * MB, 5 * MB, 12 * MB, 30 * MB, 64 * MB]
                )
                try:
                    live.append(gml.malloc(size))
                except OutOfMemoryError:
                    pass
            if step % 50 == 0:
                gml.check_invariants()
        for alloc in live:
            gml.free(alloc)
        gml.check_invariants()
        assert gml.active_bytes == 0


class TestAccountingInvariants:
    def test_reserved_never_below_active(self, gml):
        allocs = [gml.malloc(20 * MB) for _ in range(5)]
        assert gml.reserved_bytes >= gml.active_bytes
        for alloc in allocs:
            gml.free(alloc)
        assert gml.reserved_bytes >= gml.active_bytes

    def test_stats_utilization(self, gml):
        gml.malloc(100 * MB)
        stats = gml.stats()
        assert stats.utilization_ratio == pytest.approx(1.0)

    def test_no_fragmentation_at_peak(self, gml):
        """The §4.2.1 effectiveness claim: when memory peaks through
        Alloc, utilization is full."""
        a = gml.malloc(100 * MB)
        b = gml.malloc(60 * MB)
        gml.free(a)
        gml.malloc(160 * MB)  # peak: stitches a's block + new memory
        stats = gml.stats()
        assert stats.utilization_ratio > 0.95
