"""Integration tests: the paper's headline claims, on reduced configs.

Each test reproduces the *shape* of one published result — who wins, in
which direction, and by roughly what kind of margin — on workloads small
enough for CI.
"""

import pytest

from repro.analysis.experiments import (
    batch_sweep,
    first_oom_batch,
    scaleout_sweep,
    strategy_sweep,
)
from repro.core import GMLakeAllocator
from repro.core.bestfit import FitState
from repro.gpu.device import GpuDevice
from repro.sim import run_trace, run_workload
from repro.units import GB, MB
from repro.workloads import TrainingWorkload


class TestObservation1Strategies:
    """§2.3: more strategies -> more caching-allocator fragmentation;
    Figure 10: GMLake eliminates it."""

    @pytest.fixture(scope="class")
    def rows(self):
        return strategy_sweep("opt-1.3b", batch_size=8, iterations=8)

    def test_plain_training_barely_fragments(self, rows):
        plain = rows[0]
        assert plain.baseline.meta["strategies"] == "N"
        assert plain.baseline.utilization_ratio > 0.90

    def test_strategies_fragment_the_caching_allocator(self, rows):
        plain = rows[0].baseline.utilization_ratio
        for row in rows[1:]:
            assert row.baseline.utilization_ratio < plain

    def test_gmlake_holds_high_utilization_everywhere(self, rows):
        for row in rows:
            assert row.gmlake.utilization_ratio > 0.95

    def test_gmlake_never_reserves_more(self, rows):
        for row in rows:
            assert row.gmlake.peak_reserved_bytes <= (
                row.baseline.peak_reserved_bytes + 64 * MB
            )

    def test_throughput_comparable(self, rows):
        for row in rows:
            assert row.throughput_ratio == pytest.approx(1.0, abs=0.1)


class TestObservation2Scaleout:
    """§2.4 / Figure 11: utilization declines with GPU count for the
    baseline; GMLake stays ~flat."""

    @pytest.fixture(scope="class")
    def rows(self):
        return scaleout_sweep("opt-1.3b", batch_size=8,
                              gpu_counts=(1, 4, 16), iterations=8)

    def test_baseline_declines_with_gpus(self, rows):
        utils = [row.baseline.utilization_ratio for row in rows]
        assert utils[0] > utils[-1]

    def test_gmlake_flat_with_gpus(self, rows):
        utils = [row.gmlake.utilization_ratio for row in rows]
        assert min(utils) > 0.95

    def test_throughput_scales_with_gpus(self, rows):
        thru = [row.gmlake.throughput_samples_per_s for row in rows]
        assert thru[-1] > 2 * thru[0]


class TestFigure13BatchScaling:
    """GMLake sustains strictly larger batches before OOM."""

    def test_gmlake_survives_longer(self):
        rows = batch_sweep(
            "opt-1.3b", batch_sizes=(8, 16, 24, 32, 40), n_gpus=4,
            iterations=5, capacity=8 * GB,
        )
        oom_base = first_oom_batch(rows, "baseline")
        oom_gml = first_oom_batch(rows, "gmlake")
        assert oom_base is not None
        assert oom_gml is None or oom_gml >= oom_base


class TestFigure14Convergence:
    """§4.2.2 / §5.4: after a few iterations only exact matches occur
    and reserved memory plateaus."""

    def test_steady_state_is_all_exact_match(self):
        workload = TrainingWorkload("opt-1.3b", batch_size=4, n_gpus=4,
                                    strategies="LR", iterations=14)
        trace = workload.build_trace()
        device = GpuDevice()
        allocator = GMLakeAllocator(device)

        # Replay the first 12 iterations, snapshot, then watch the rest.
        first = trace.subset_iterations(12)
        run_trace(allocator, first)
        hits_before = dict(allocator.counters.state_hits)
        reserved_before = allocator.reserved_bytes
        # Physical convergence happens within iteration 0-1: Alloc never
        # fires again after the first pass over the trace shape.
        assert hits_before[FitState.INSUFFICIENT_BLOCKS.value] < 200

        # Remaining iterations: replay events after iteration 12's end.
        from repro.workloads.request import Op, Trace
        tail = Trace(meta=trace.meta,
                     compute_us_per_iter=trace.compute_us_per_iter)
        tail.events = trace.events[len(first.events):]
        live = {}
        for event in tail.events:
            if event.op is Op.ALLOC:
                live[event.tensor] = allocator.malloc(event.size)
            elif event.op is Op.FREE and event.tensor in live:
                allocator.free(live.pop(event.tensor))

        hits_after = allocator.counters.state_hits
        for state in (FitState.SINGLE_BLOCK, FitState.MULTIPLE_BLOCKS,
                      FitState.INSUFFICIENT_BLOCKS):
            assert hits_after[state.value] == hits_before[state.value], (
                f"state {state.name} still occurring after convergence"
            )
        assert allocator.reserved_bytes == reserved_before

    def test_memory_trace_gap_is_allocator_specific(self):
        workload = TrainingWorkload("opt-1.3b", batch_size=8, n_gpus=4,
                                    strategies="LR", iterations=8)
        base = run_workload(workload, "caching", record_timeline=True)
        gml = run_workload(workload, "gmlake", record_timeline=True)
        # Average reserved-minus-active gap in steady state (2nd half).
        def gap(result):
            points = result.timeline[len(result.timeline) // 2:]
            return sum(p.reserved_bytes - p.active_bytes for p in points) / len(points)
        assert gap(gml) < gap(base)


class TestSection22NativeAllocator:
    """The caching allocator is ~10x faster end-to-end than native."""

    def test_throughput_ratio_close_to_paper(self):
        workload = TrainingWorkload("opt-1.3b", batch_size=8, n_gpus=4,
                                    strategies="N", iterations=6)
        caching = run_workload(workload, "caching")
        native = run_workload(workload, "native")
        ratio = (caching.throughput_samples_per_s
                 / native.throughput_samples_per_s)
        assert 6.0 < ratio < 14.0  # paper: 9.7x

    def test_native_never_fragments(self):
        workload = TrainingWorkload("opt-1.3b", batch_size=2, iterations=3)
        native = run_workload(workload, "native")
        assert native.utilization_ratio == pytest.approx(1.0)


class TestSection25VmmOverhead:
    """Figure 6: the unpooled VMM allocator is >100x slower per
    allocation at 2 MB chunks."""

    def test_per_allocation_overhead(self):
        from repro.allocators import VmmNaiveAllocator
        device = GpuDevice()
        allocator = VmmNaiveAllocator(device, chunk_size=2 * MB)
        t0 = device.clock.now_us
        allocator.malloc(2 * GB)
        vmm_time = device.clock.now_us - t0
        assert vmm_time / device.latency.cuda_malloc(2 * GB) > 100
