"""The docs stay true: links resolve, spec snippets execute.

Three guarantees for the ``docs/`` tree (and README):

* every intra-repo markdown link points at a file that exists;
* every fenced ``json`` snippet in the docs parses as an
  :class:`repro.api.ExperimentSpec` and actually **runs** end to end;
* the allocator/KV-cache catalogues in the docs cover every registered
  name and tunable parameter, so a new registration without docs (or
  docs for something renamed away) fails CI.
"""

import json
import re
from pathlib import Path

import pytest

from repro import api
from repro.serve import KV_CACHE_MODELS

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"

#: The markdown we author and therefore link-check.
LINKED_PAGES = sorted(
    [REPO / "README.md", REPO / "ROADMAP.md", *DOCS.glob("*.md")],
    key=lambda p: p.name,
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^```")


def _strip_code_fences(text: str) -> str:
    """Drop fenced code blocks (their brackets are not links)."""
    kept, fenced = [], False
    for line in text.splitlines():
        if _FENCE.match(line):
            fenced = not fenced
            continue
        if not fenced:
            kept.append(line)
    return "\n".join(kept)


def _fenced_blocks(path: Path, language: str):
    """Yield the bodies of ``language``-tagged fenced code blocks."""
    body, inside = [], False
    for line in path.read_text(encoding="utf-8").splitlines():
        if inside:
            if _FENCE.match(line):
                yield "\n".join(body)
                body, inside = [], False
            else:
                body.append(line)
        elif line.strip() == f"```{language}":
            inside = True


class TestDocsTreeExists:
    @pytest.mark.parametrize("name", [
        "architecture.md", "allocators.md", "serving.md", "experiments.md",
        "performance.md", "observability.md", "robustness.md",
        "memory_tiers.md",
    ])
    def test_guide_present(self, name):
        assert (DOCS / name).is_file()

    def test_readme_links_every_guide(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        for name in ("architecture.md", "allocators.md", "serving.md",
                     "experiments.md", "performance.md", "observability.md",
                     "robustness.md", "memory_tiers.md"):
            assert f"docs/{name}" in readme, f"README must link docs/{name}"


class TestIntraRepoLinks:
    @pytest.mark.parametrize(
        "page", LINKED_PAGES, ids=lambda p: p.name)
    def test_links_resolve(self, page):
        text = _strip_code_fences(page.read_text(encoding="utf-8"))
        broken = []
        for target in _LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            if not (page.parent / path).exists():
                broken.append(target)
        assert not broken, f"broken links in {page.name}: {broken}"


class TestSpecSnippetsRun:
    """Every fenced ``json`` block in the docs is a runnable spec."""

    SNIPPETS = [
        (path.name, idx, block)
        for path in sorted(DOCS.glob("*.md"))
        for idx, block in enumerate(_fenced_blocks(path, "json"))
    ]

    def test_docs_carry_a_worked_example_per_mode(self):
        specs = [api.ExperimentSpec.from_json(block)
                 for _, _, block in self.SNIPPETS]
        assert {spec.mode for spec in specs} == set(api.MODES)

    @pytest.mark.parametrize(
        "name,idx,block", SNIPPETS, ids=lambda v: str(v))
    def test_snippet_executes(self, name, idx, block):
        data = json.loads(block)  # malformed JSON fails loudly here
        spec = api.ExperimentSpec.from_dict(data)
        results = api.run(spec)
        assert len(results) == len(spec.allocators)
        for result in results:
            assert result.peak_reserved_bytes > 0


#: Which guide documents each component kind's catalogue.
KIND_DOC = {
    "allocator": "allocators.md",
    "kv-cache": "serving.md",
    "scheduler": "serving.md",
    "arrivals": "serving.md",
    "preemption": "serving.md",
    "autoscaler": "serving.md",
    "interconnect": "serving.md",
    "trace": "observability.md",
    "faults": "serving.md",
    "retry": "serving.md",
    "memory-tier": "serving.md",
}


class TestCataloguesAreComplete:
    def test_every_allocator_documented(self):
        text = (DOCS / "allocators.md").read_text(encoding="utf-8")
        for info in api.iter_allocators():
            assert f"`{info.name}`" in text, \
                f"docs/allocators.md misses allocator {info.name!r}"
            for param in info.params:
                assert f"`{param.name}`" in text, \
                    f"docs/allocators.md misses {info.name}.{param.name}"

    def test_every_kv_cache_model_documented(self):
        text = (DOCS / "serving.md").read_text(encoding="utf-8")
        for name, info in KV_CACHE_MODELS.items():
            assert f"`{name}`" in text, \
                f"docs/serving.md misses KV-cache model {name!r}"
            for param in info.params:
                assert f"`{param.name}`" in text, \
                    f"docs/serving.md misses {name}.{param.name}"

    def test_every_kind_has_a_doc_home(self):
        """A newly registered component *kind* must pick a guide."""
        assert set(api.component_kinds()) == set(KIND_DOC)

    @pytest.mark.parametrize("kind", sorted(KIND_DOC))
    def test_every_component_documented(self, kind):
        """Each kind's guide names every registered component, its
        aliases and every tunable parameter."""
        doc = KIND_DOC[kind]
        text = (DOCS / doc).read_text(encoding="utf-8")
        for info in api.iter_components(kind):
            assert f"`{info.name}`" in text, \
                f"docs/{doc} misses {kind} {info.name!r}"
            for alias in info.aliases:
                assert f"`{alias}`" in text, \
                    f"docs/{doc} misses {kind} alias {alias!r}"
            for param in info.params:
                assert f"`{param.name}`" in text, \
                    f"docs/{doc} misses {kind} {info.name}.{param.name}"
