"""Tests for the discrete-event serving simulator.

The headline behaviors: online admission with live allocator state,
chunked KV growth, and — the paper's serving argument — OOM leading to
preemption + requeue + eventual completion instead of job failure.
"""

import pytest

from repro.serve import (
    PoissonArrivals,
    ReplayArrivals,
    ServingConfig,
    ServingSimulator,
    SloConfig,
    run_serving,
)
from repro.serve.request import RequestState, ServeRequest
from repro.units import MB
from repro.workloads import get_model


def make_request(req_id, arrival, prompt, output):
    return ServeRequest(req_id=req_id, arrival_s=arrival,
                        prompt_tokens=prompt, output_tokens=output)


def light_stream(n=20, rate=2.0, seed=0):
    return PoissonArrivals(rate_per_s=rate).generate(n, seed=seed)


class TestHappyPath:
    def test_all_complete_under_light_load(self):
        result = run_serving(light_stream(), "opt-1.3b", allocator="gmlake")
        assert result.completed == 20
        assert result.rejected == 0
        assert result.preemptions == 0
        for r in result.requests:
            assert r.state is RequestState.FINISHED
            assert r.tokens_done == r.output_tokens
            assert r.ttft_s > 0
            assert r.latency_s >= r.ttft_s

    def test_timestamps_are_ordered(self):
        result = run_serving(light_stream(), "opt-1.3b")
        for r in result.requests:
            assert r.arrival_s <= r.admitted_s <= r.first_token_s \
                <= r.finished_s <= result.makespan_s

    def test_deterministic(self):
        a = run_serving(light_stream(seed=3), "opt-1.3b", allocator="caching")
        b = run_serving(light_stream(seed=3), "opt-1.3b", allocator="caching")
        assert [(r.finished_s, r.tokens_done) for r in a.requests] \
            == [(r.finished_s, r.tokens_done) for r in b.requests]
        assert a.makespan_s == b.makespan_s

    def test_weights_stay_resident(self):
        model = get_model("opt-1.3b")
        result = run_serving(light_stream(n=5), model, allocator="caching")
        assert result.stats.active_bytes >= model.weight_bytes

    def test_report_totals(self):
        result = run_serving(light_stream(), "opt-1.3b")
        report = result.report(SloConfig(ttft_s=60.0, tpot_s=60.0))
        assert report.n_requests == 20
        assert report.completed == 20
        assert report.slo_attainment == 1.0
        assert report.goodput_req_s == pytest.approx(
            report.throughput_req_s)
        assert report.p50_latency_s <= report.p95_latency_s \
            <= report.p99_latency_s


class TestBatchAndGrowth:
    def test_batch_cap_respected(self):
        config = ServingConfig(max_batch=2)
        simulator = ServingSimulator("opt-1.3b", allocator="gmlake",
                                     config=config)
        requests = [make_request(i, 0.0, 64, 64) for i in range(8)]
        result = simulator.run(requests)
        assert result.completed == 8
        # With a cap of 2 the batch drains pairwise: later requests'
        # first tokens appear strictly after earlier ones finish work.
        firsts = sorted(r.first_token_s for r in result.requests)
        assert firsts[2] > firsts[0]

    def test_smaller_chunks_mean_more_reallocs(self):
        def mallocs(chunk_tokens):
            config = ServingConfig(kv_chunk_tokens=chunk_tokens)
            simulator = ServingSimulator("opt-1.3b", allocator="native",
                                         config=config)
            result = simulator.run(
                [make_request(0, 0.0, 256, 512)])
            return result.stats.malloc_count

        assert mallocs(128) > mallocs(4096)

    def test_kv_capacity_covers_context(self):
        config = ServingConfig(kv_chunk_tokens=128)
        simulator = ServingSimulator("opt-1.3b", allocator="gmlake",
                                     config=config)
        result = simulator.run([make_request(0, 0.0, 200, 300)])
        request = result.requests[0]
        assert request.finished
        # The final KV block covered the full context, chunk-rounded.
        assert request.kv_generation >= 2  # grew at least once


class TestRejection:
    def test_timeout_rejects_queued_requests(self):
        # One giant batch slot: everyone else waits and times out.
        config = ServingConfig(max_batch=1, queue_timeout_s=0.5)
        simulator = ServingSimulator("opt-1.3b", allocator="gmlake",
                                     config=config)
        requests = [make_request(i, 0.0, 1024, 1024) for i in range(4)]
        result = simulator.run(requests)
        timed_out = [r for r in result.requests
                     if r.reject_reason == "timeout"]
        assert timed_out
        assert result.completed >= 1
        assert all(r.rejected_s is not None for r in timed_out)

    def test_too_large_request_rejected_not_fatal(self):
        model = get_model("opt-1.3b")
        capacity = model.weight_bytes + 300 * MB
        simulator = ServingSimulator(model, allocator="gmlake",
                                     capacity=capacity)
        requests = [
            make_request(0, 0.0, 2048, 1024),  # KV can never fit
            make_request(1, 0.2, 64, 32),      # one 50 MB chunk
        ]
        result = simulator.run(requests)
        by_id = {r.req_id: r for r in result.requests}
        assert by_id[0].reject_reason == "too-large"
        assert by_id[1].finished


class TestPreemption:
    """The acceptance-criteria path: OOM -> preempt -> requeue ->
    eventual completion, never a trace failure."""

    def _pressure_cooker(self, allocator="gmlake"):
        model = get_model("opt-1.3b")
        # Weights + ~870 MB of KV headroom: two growing requests
        # collide mid-decode and one must be preempted.
        capacity = model.weight_bytes + 900 * MB
        config = ServingConfig(max_batch=4, kv_chunk_tokens=256,
                               queue_timeout_s=600.0)
        simulator = ServingSimulator(model, allocator=allocator,
                                     capacity=capacity, config=config,
                                     scheduler="fcfs")
        requests = [
            make_request(0, 0.0, 1024, 800),
            make_request(1, 0.01, 1024, 800),
        ]
        return simulator.run(requests)

    def test_oom_preempts_and_requeues(self):
        result = self._pressure_cooker()
        assert result.preemptions >= 1
        preempted = [r for r in result.requests if r.preemptions > 0]
        assert preempted

    def test_preempted_requests_eventually_complete(self):
        result = self._pressure_cooker()
        for r in result.requests:
            assert r.state is RequestState.FINISHED
            assert r.tokens_done == r.output_tokens

    def test_preemption_under_caching_allocator_too(self):
        result = self._pressure_cooker(allocator="caching")
        assert all(r.finished for r in result.requests)

    def test_thrashing_request_is_rejected_not_looped(self):
        """max_preemptions bounds the retry storm."""
        model = get_model("opt-1.3b")
        capacity = model.weight_bytes + 900 * MB
        config = ServingConfig(max_batch=4, kv_chunk_tokens=256,
                               queue_timeout_s=600.0, max_preemptions=0)
        simulator = ServingSimulator(model, allocator="gmlake",
                                     capacity=capacity, config=config,
                                     scheduler="fcfs")
        requests = [
            make_request(0, 0.0, 1024, 800),
            make_request(1, 0.01, 1024, 800),
        ]
        result = simulator.run(requests)
        # The run still terminates, with every request resolved.
        for r in result.requests:
            assert r.finished or r.reject_reason == "preempted-out"


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_batch": 0},
        {"kv_chunk_tokens": 0},
        {"queue_timeout_s": 0.0},
        {"max_preemptions": -1},
        {"decode_tokens_per_s": 0.0},
    ])
    def test_bad_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServingConfig(**kwargs)

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            ServingSimulator("opt-175b")

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(KeyError):
            ServingSimulator("opt-1.3b", scheduler="lottery")


class TestTimelineAndReplayArrivals:
    def test_timeline_recording(self):
        config = ServingConfig(record_timeline=True)
        simulator = ServingSimulator("opt-1.3b", allocator="gmlake",
                                     config=config)
        result = simulator.run(light_stream(n=5))
        assert result.timeline
        assert all(p.reserved_bytes >= p.active_bytes
                   for p in result.timeline)

    def test_replayed_arrivals_serve_in_order(self):
        stream = ReplayArrivals([0.0, 0.5, 1.0]).generate(3, seed=0)
        result = run_serving(stream, "opt-1.3b")
        assert result.completed == 3
        assert result.makespan_s >= 1.0
