"""Tests for the parallel sweep runner (``repro.api.run_sweep``)."""

import pytest

from repro import api
from repro.units import GB


def _points(rates=(2.0, 4.0)):
    return [
        api.ExperimentSpec(
            mode="serve", allocators=["caching"], capacity=8 * GB,
            serving=api.ServingSpec(model="opt-1.3b", rate_per_s=rate,
                                    n_requests=10),
        )
        for rate in rates
    ]


class TestExpandSpecPoints:
    def test_one_point_per_allocator(self):
        spec = api.ExperimentSpec(
            mode="replay", allocators=["caching", "gmlake?chunk_mb=256"])
        points = api.expand_spec_points(spec)
        assert [p.allocators[0].label for p in points] == [
            "caching", "gmlake?chunk_size=256MB"]
        for point in points:
            assert len(point.allocators) == 1
            assert point.mode == spec.mode
            assert point.capacity == spec.capacity


class TestRunSweep:
    def test_serial_results_in_order(self):
        points = _points()
        results = api.run_sweep(points, jobs=1)
        assert len(results) == len(points)
        for point_results in results:
            assert len(point_results) == 1
            assert point_results[0].mode == "serve"
            assert point_results[0].peak_reserved_bytes > 0

    def test_parallel_matches_serial(self):
        """The acceptance property: jobs changes wall-clock only."""
        points = _points()
        serial = api.run_sweep(points, jobs=1)
        parallel = api.run_sweep(points, jobs=2)
        for s_results, p_results in zip(serial, parallel):
            for s, p in zip(s_results, p_results):
                assert s.peak_active_bytes == p.peak_active_bytes
                assert s.peak_reserved_bytes == p.peak_reserved_bytes
                assert s.throughput == p.throughput
                assert s.extras() == p.extras()

    def test_accepts_dict_points(self):
        spec = _points(rates=(2.0,))[0]
        results = api.run_sweep([spec.to_dict()], jobs=1)
        assert results[0][0].allocator_name == "caching"

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            api.run_sweep(_points(), jobs=0)


class TestSweepRows:
    def test_rows_carry_point_labels(self):
        points = _points()
        results = api.run_sweep(points, jobs=1)
        rows = api.sweep_rows(points, results)
        assert len(rows) == 2
        assert rows[0]["point"] == "serve opt-1.3b poisson rate=2/s x1"
        assert {"allocator", "reserved (GB)", "utilization",
                "thru (/s)", "OOM"} <= set(rows[0])

    def test_replay_label(self):
        spec = api.ExperimentSpec(mode="replay", allocators=["caching"])
        assert api.sweep_point_label(spec).startswith("replay opt-13b")
