"""Autoscalers: queue-depth hysteresis and dispatch integration."""

import pytest

from repro.serve import (
    AutoscalerSpec,
    NoAutoscaler,
    PoissonArrivals,
    QueueDepthAutoscaler,
    dispatch_requests,
    resolve_autoscaler,
    run_serving_cluster,
)
from repro.units import GB


class TestResolve:
    def test_names(self):
        assert resolve_autoscaler("none").name == "none"
        assert resolve_autoscaler("queue-depth").name == "queue-depth"

    def test_instance_passes_through(self):
        scaler = QueueDepthAutoscaler(high=100.0, low=10.0)
        assert resolve_autoscaler(scaler) is scaler

    def test_spec_params(self):
        scaler = AutoscalerSpec.parse(
            "queue-depth?high=6000&low=800&min=2").build()
        assert scaler.high == 6000.0 and scaler.low == 800.0
        assert scaler.min_replicas == 2


class TestQueueDepthController:
    def test_scales_up_past_high(self):
        scaler = QueueDepthAutoscaler(high=100.0, low=10.0)
        assert scaler.decide([150.0, 0.0, 0.0], 1, 3) == 2

    def test_holds_between_thresholds(self):
        scaler = QueueDepthAutoscaler(high=100.0, low=10.0)
        assert scaler.decide([50.0, 30.0, 0.0], 2, 3) == 2

    def test_scales_down_when_tail_replica_drained(self):
        scaler = QueueDepthAutoscaler(high=100.0, low=10.0)
        assert scaler.decide([5.0, 0.0, 0.0], 2, 3) == 1

    def test_never_retires_a_loaded_replica(self):
        scaler = QueueDepthAutoscaler(high=100.0, low=10.0)
        # Mean is below `low` but the tail replica still holds work.
        assert scaler.decide([0.0, 15.0, 0.0], 2, 3) == 2

    def test_respects_bounds(self):
        scaler = QueueDepthAutoscaler(high=100.0, low=10.0, min_replicas=2)
        assert scaler.initial_replicas(4) == 2
        assert scaler.decide([1e9] * 4, 4, 4) == 4      # cap at fleet size
        assert scaler.decide([0.0] * 4, 2, 4) == 2      # floor at min

    def test_ctor_validation(self):
        with pytest.raises(ValueError):
            QueueDepthAutoscaler(high=10.0, low=10.0)
        with pytest.raises(ValueError):
            QueueDepthAutoscaler(high=10.0, low=1.0, min_replicas=0)


class TestDispatchIntegration:
    def test_none_is_byte_identical_to_no_autoscaler(self):
        stream = PoissonArrivals(rate_per_s=6.0).generate(80, seed=2)
        plain = dispatch_requests(stream, 3)
        scaled = dispatch_requests(stream, 3, autoscaler=NoAutoscaler())
        assert [[r.req_id for r in shard] for shard in plain] \
            == [[r.req_id for r in shard] for shard in scaled]

    def test_queue_depth_concentrates_light_load(self):
        """Under light load the autoscaled fleet routes everything to
        fewer replicas than the always-on dispatcher uses."""
        stream = PoissonArrivals(rate_per_s=0.5).generate(40, seed=1)
        scaler = QueueDepthAutoscaler(high=5000.0, low=100.0)
        shards = dispatch_requests(stream, 4, autoscaler=scaler)
        used = sum(1 for shard in shards if shard)
        plain_used = sum(1 for shard in dispatch_requests(stream, 4) if shard)
        assert used < plain_used
        assert sum(len(s) for s in shards) == 40

    def test_queue_depth_spreads_heavy_load(self):
        """Backlog pressure activates additional replicas."""
        stream = PoissonArrivals(rate_per_s=20.0).generate(200, seed=4)
        scaler = QueueDepthAutoscaler(high=800.0, low=100.0)
        shards = dispatch_requests(stream, 4, autoscaler=scaler)
        assert sum(1 for shard in shards if shard) >= 3

    def test_cluster_run_reports_autoscaler(self):
        stream = PoissonArrivals(rate_per_s=1.0).generate(20, seed=0)
        result = run_serving_cluster(
            stream, "opt-1.3b", n_replicas=3, allocator="caching",
            capacity=6 * GB,
            autoscaler="queue-depth?high=4000&low=200")
        extras = result.extras()
        assert extras["autoscaler"] == "queue-depth"
        assert 1 <= extras["active_replicas"] <= 3
        assert extras["completed"] == 20
        assert result.autoscaler_name == "queue-depth"

    def test_cluster_default_stays_none(self):
        stream = PoissonArrivals(rate_per_s=2.0).generate(10, seed=0)
        result = run_serving_cluster(stream, "opt-1.3b", n_replicas=2,
                                     allocator="caching", capacity=6 * GB)
        assert result.autoscaler_name == "none"
        assert "autoscaler" not in result.extras()
