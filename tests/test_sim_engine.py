"""Tests for the trace replay engine, metrics and timeline."""

import pytest

from repro.core import GMLakeConfig
from repro.gpu.device import GpuDevice
from repro.sim import (
    make_allocator,
    mem_reduction_ratio,
    render_timeline,
    run_trace,
    run_workload,
)
from repro.sim.engine import ALLOCATOR_FACTORIES, gmlake_factory
from repro.sim.metrics import compare_results
from repro.sim.timeline import TimelinePoint, downsample
from repro.units import GB, MB
from repro.workloads import TrainingWorkload
from repro.workloads.request import Trace


def tiny_trace():
    trace = Trace(meta={"global_batch": 4})
    trace.iter_start(0)
    trace.alloc("a", 10 * MB)
    trace.alloc("b", 20 * MB)
    trace.free("a")
    trace.free("b")
    trace.iter_end(0)
    trace.iter_start(1)
    trace.alloc("c", 30 * MB)
    trace.free("c")
    trace.iter_end(1)
    trace.compute_us_per_iter = [1000.0, 1000.0]
    return trace


class TestRunTrace:
    def test_basic_replay(self):
        device = GpuDevice(capacity=1 * GB)
        result = run_trace(make_allocator("caching", device), tiny_trace())
        assert result.iterations_completed == 2
        assert result.peak_active_bytes == 30 * MB
        assert not result.oom

    def test_compute_time_advances_clock(self):
        device = GpuDevice(capacity=1 * GB)
        result = run_trace(make_allocator("caching", device), tiny_trace())
        assert result.total_time_s >= 0.002  # two 1 ms iterations

    def test_oom_is_recorded_not_raised(self):
        device = GpuDevice(capacity=32 * MB)
        trace = Trace(meta={"global_batch": 1})
        trace.iter_start(0)
        trace.alloc("huge", 64 * MB)
        trace.iter_end(0)
        trace.compute_us_per_iter = [1.0]
        result = run_trace(make_allocator("gmlake", device), trace)
        assert result.oom
        assert result.oom_iteration == 0
        assert result.iterations_completed == 0

    def test_unknown_free_raises(self):
        device = GpuDevice(capacity=1 * GB)
        trace = Trace()
        trace.free("ghost")
        with pytest.raises(ValueError):
            run_trace(make_allocator("caching", device), trace)

    def test_timeline_recording(self):
        device = GpuDevice(capacity=1 * GB)
        result = run_trace(
            make_allocator("caching", device), tiny_trace(),
            record_timeline=True, timeline_every=1,
        )
        assert len(result.timeline) >= 5
        assert all(p.reserved_bytes >= p.active_bytes >= 0
                   for p in result.timeline)

    def test_throughput_uses_steady_state(self):
        device = GpuDevice(capacity=1 * GB)
        result = run_trace(make_allocator("caching", device), tiny_trace())
        assert result.throughput_samples_per_s > 0

    def test_utilization_properties(self):
        device = GpuDevice(capacity=1 * GB)
        result = run_trace(make_allocator("caching", device), tiny_trace())
        assert 0.0 < result.utilization_ratio <= 1.0
        assert result.fragmentation_ratio == pytest.approx(
            1 - result.utilization_ratio
        )

    def test_summary_line(self):
        device = GpuDevice(capacity=1 * GB)
        result = run_trace(make_allocator("gmlake", device), tiny_trace())
        assert "gmlake" in result.summary()


class TestFactories:
    def test_known_names(self):
        device = GpuDevice(capacity=64 * MB)
        for name in ALLOCATOR_FACTORIES:
            allocator = make_allocator(name, device if name == "caching"
                                       else GpuDevice(capacity=64 * MB))
            assert allocator.malloc(1 * MB)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            make_allocator("tcmalloc", GpuDevice(capacity=64 * MB))

    def test_callable_factory_passthrough(self):
        factory = gmlake_factory(GMLakeConfig(enable_stitch=False))
        allocator = make_allocator(factory, GpuDevice(capacity=64 * MB))
        assert allocator.config.enable_stitch is False

    def test_pytorch_alias_is_caching(self):
        allocator = make_allocator("pytorch", GpuDevice(capacity=64 * MB))
        assert allocator.name == "caching"


class TestRunWorkload:
    def test_end_to_end(self):
        workload = TrainingWorkload("opt-1.3b", batch_size=2, iterations=2)
        result = run_workload(workload, "caching")
        assert result.iterations_completed == 2
        assert result.meta["model"] == "opt-1.3b"

    def test_custom_capacity(self):
        workload = TrainingWorkload("opt-1.3b", batch_size=2, iterations=2)
        result = run_workload(workload, "caching", capacity=8 * GB)
        assert result.oom  # 1.3B full fine-tune cannot fit 8 GB


class TestMetrics:
    def test_mem_reduction_ratio(self):
        assert mem_reduction_ratio([100, 100], [80, 60]) == pytest.approx(0.3)

    def test_mem_reduction_empty(self):
        assert mem_reduction_ratio([], []) == 0.0

    def test_comparison_row(self):
        device_a = GpuDevice(capacity=1 * GB)
        device_b = GpuDevice(capacity=1 * GB)
        base = run_trace(make_allocator("caching", device_a), tiny_trace())
        gml = run_trace(make_allocator("gmlake", device_b), tiny_trace())
        row = compare_results("tiny", base, gml)
        assert row.label == "tiny"
        assert isinstance(row.reserved_saving_gb, float)
        assert row.throughput_ratio is not None
        assert set(row.as_dict()) >= {"workload", "saving (GB)"}


class TestTimelineRendering:
    def test_downsample_limits_points(self):
        points = [TimelinePoint(float(i), i, i * 2) for i in range(1000)]
        assert len(downsample(points, 50)) == 50

    def test_downsample_keeps_short_series(self):
        points = [TimelinePoint(0.0, 1, 2)]
        assert downsample(points, 50) == points

    def test_render_contains_curves(self):
        points = [
            TimelinePoint(float(i), i * 10 * MB, i * 15 * MB) for i in range(100)
        ]
        art = render_timeline(points, width=40, height=8, capacity=2 * GB)
        assert "#" in art and "-" in art

    def test_render_empty(self):
        assert "empty" in render_timeline([])

    def test_downsample_bad_count(self):
        with pytest.raises(ValueError):
            downsample([], 0)
