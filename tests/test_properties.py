"""Property-based tests: allocator correctness under arbitrary request
sequences (hypothesis drives alloc/free interleavings)."""

from hypothesis import given, settings, strategies as st

from repro.allocators import CachingAllocator, VmmNaiveAllocator
from repro.core import GMLakeAllocator
from repro.errors import OutOfMemoryError
from repro.gpu.device import GpuDevice
from repro.units import GB, MB

# Each step is (is_alloc, size_selector, free_index_selector).
STEP = st.tuples(
    st.booleans(),
    st.integers(min_value=1, max_value=96 * MB),
    st.integers(min_value=0, max_value=10_000),
)

# Deadline/health-check policy comes from the shared profile in
# conftest.py; tests only size their example budget.
COMMON_SETTINGS = settings(max_examples=40)


def replay(allocator, steps):
    """Apply a step sequence; returns a reference ledger of live bytes."""
    live = []
    live_bytes = 0
    for is_alloc, size, free_index in steps:
        if is_alloc or not live:
            try:
                alloc = allocator.malloc(size)
            except OutOfMemoryError:
                continue
            live.append(alloc)
            live_bytes += alloc.rounded_size
        else:
            alloc = live.pop(free_index % len(live))
            allocator.free(alloc)
            live_bytes -= alloc.rounded_size
    return live, live_bytes


class TestGMLakeProperties:
    @COMMON_SETTINGS
    @given(st.lists(STEP, max_size=60))
    def test_invariants_under_arbitrary_interleaving(self, steps):
        allocator = GMLakeAllocator(GpuDevice(capacity=2 * GB))
        live, live_bytes = replay(allocator, steps)
        allocator.check_invariants()
        assert allocator.active_bytes == live_bytes
        assert allocator.reserved_bytes >= 0
        # Reserved memory never exceeds device capacity.
        assert allocator.device.used_memory <= allocator.device.capacity

    @COMMON_SETTINGS
    @given(st.lists(STEP, max_size=50))
    def test_free_all_returns_to_zero_active(self, steps):
        allocator = GMLakeAllocator(GpuDevice(capacity=2 * GB))
        live, _ = replay(allocator, steps)
        for alloc in live:
            allocator.free(alloc)
        assert allocator.active_bytes == 0
        allocator.check_invariants()
        # Everything inactive: empty_cache must return all physical bytes.
        allocator.empty_cache()
        assert allocator.device.used_memory == 0

    @COMMON_SETTINGS
    @given(st.lists(STEP, max_size=40))
    def test_pointers_of_live_allocations_are_unique(self, steps):
        allocator = GMLakeAllocator(GpuDevice(capacity=2 * GB))
        live, _ = replay(allocator, steps)
        ptrs = [alloc.ptr for alloc in live]
        assert len(ptrs) == len(set(ptrs))

    @COMMON_SETTINGS
    @given(st.lists(STEP, max_size=40))
    def test_no_physical_chunk_shared_by_two_live_tensors(self, steps):
        allocator = GMLakeAllocator(GpuDevice(capacity=2 * GB))
        live, _ = replay(allocator, steps)
        # Map every live large allocation to its backing chunk handles.
        seen = {}
        for alloc in live:
            block = allocator._assigned.get(alloc.ptr)
            if block is None:
                continue  # small-pool allocation
            members = [block] if hasattr(block, "handles") else block.members
            for member in members:
                for handle in member.handles:
                    assert handle not in seen, (
                        f"chunk {handle} backs tensors {seen[handle]} "
                        f"and {alloc.alloc_id}"
                    )
                    seen[handle] = alloc.alloc_id


class TestIndexedPoolFuzz:
    """The PR-4 indexed pools maintain live inactive views, back-indexes
    and running byte counters; ``check_invariants`` re-derives all of
    them from scratch.  Checking *mid-sequence* (not just at the end)
    catches transient drift that a final check could miss after
    compensating operations."""

    @COMMON_SETTINGS
    @given(st.lists(STEP, max_size=60))
    def test_gmlake_indexes_consistent_mid_sequence(self, steps):
        allocator = GMLakeAllocator(GpuDevice(capacity=2 * GB))
        live = []
        for i, (is_alloc, size, free_index) in enumerate(steps):
            if is_alloc or not live:
                try:
                    live.append(allocator.malloc(size))
                except OutOfMemoryError:
                    pass
            else:
                allocator.free(live.pop(free_index % len(live)))
            if i % 5 == 0:
                allocator.check_invariants()
        allocator.check_invariants()

    @COMMON_SETTINGS
    @given(st.lists(STEP, max_size=60))
    def test_caching_cached_bytes_counter_mid_sequence(self, steps):
        allocator = CachingAllocator(GpuDevice(capacity=2 * GB))
        live = []
        for i, (is_alloc, size, free_index) in enumerate(steps):
            if is_alloc or not live:
                try:
                    live.append(allocator.malloc(size))
                except OutOfMemoryError:
                    pass
            else:
                allocator.free(live.pop(free_index % len(live)))
            if i % 5 == 0:
                allocator.check_invariants()
        allocator.check_invariants()
        # Cached plus live-block bytes tile every segment exactly.
        # (cached_bytes == reserved - active does NOT hold in general:
        # a best-fit block whose remainder was too small to split is
        # handed out whole, so allocated blocks can exceed the rounded
        # request — internal fragmentation the paper's §2.2 describes.)
        live_block_bytes = sum(
            b.size for b in allocator._blocks_by_ptr.values() if b.allocated)
        assert (allocator.cached_bytes() + live_block_bytes
                == allocator.reserved_bytes)


class TestCachingProperties:
    @COMMON_SETTINGS
    @given(st.lists(STEP, max_size=60))
    def test_invariants_under_arbitrary_interleaving(self, steps):
        allocator = CachingAllocator(GpuDevice(capacity=2 * GB))
        live, live_bytes = replay(allocator, steps)
        allocator.check_invariants()
        assert allocator.active_bytes == live_bytes
        assert allocator.reserved_bytes >= allocator.active_bytes

    @COMMON_SETTINGS
    @given(st.lists(STEP, max_size=50))
    def test_empty_cache_after_free_all(self, steps):
        allocator = CachingAllocator(GpuDevice(capacity=2 * GB))
        live, _ = replay(allocator, steps)
        for alloc in live:
            allocator.free(alloc)
        allocator.empty_cache()
        assert allocator.device.used_memory == 0
        allocator.check_invariants()

    @COMMON_SETTINGS
    @given(st.lists(STEP, max_size=40))
    def test_live_pointers_unique(self, steps):
        allocator = CachingAllocator(GpuDevice(capacity=2 * GB))
        live, _ = replay(allocator, steps)
        ptrs = [alloc.ptr for alloc in live]
        assert len(ptrs) == len(set(ptrs))


class TestCrossAllocatorEquivalence:
    @COMMON_SETTINGS
    @given(st.lists(STEP, max_size=40))
    def test_gmlake_reserved_at_most_caching_plus_rounding(self, steps):
        """On identical OOM-free sequences GMLake never reserves more
        than the caching allocator beyond chunk-rounding slack."""
        caching = CachingAllocator(GpuDevice(capacity=4 * GB))
        gmlake = GMLakeAllocator(GpuDevice(capacity=4 * GB))
        live_c, _ = replay(caching, steps)
        live_g, _ = replay(gmlake, steps)
        if len(live_c) != len(live_g):
            return  # an OOM diverged the sequences; not comparable
        n_allocs = caching.stats().malloc_count
        rounding_slack = (n_allocs + 1) * 2 * MB + 20 * MB
        assert gmlake.peak_reserved_bytes <= (
            caching.peak_reserved_bytes + rounding_slack
        )

    @COMMON_SETTINGS
    @given(st.lists(STEP, max_size=30))
    def test_vmm_naive_reserved_equals_active(self, steps):
        allocator = VmmNaiveAllocator(GpuDevice(capacity=2 * GB))
        replay(allocator, steps)
        assert allocator.reserved_bytes == allocator.active_bytes
