"""Tests for the trace event model."""

import pytest

from repro.units import MB
from repro.workloads.request import Op, Trace, TraceEvent


def simple_trace():
    trace = Trace()
    trace.iter_start(0)
    trace.alloc("a", 10 * MB)
    trace.alloc("b", 20 * MB)
    trace.free("a")
    trace.iter_end(0)
    trace.iter_start(1)
    trace.alloc("c", 5 * MB)
    trace.free("b")
    trace.free("c")
    trace.iter_end(1)
    return trace


class TestBuilder:
    def test_alloc_free_events(self):
        trace = simple_trace()
        kinds = [e.op for e in trace]
        assert kinds.count(Op.ALLOC) == 3
        assert kinds.count(Op.FREE) == 3

    def test_zero_size_alloc_rejected(self):
        with pytest.raises(ValueError):
            Trace().alloc("x", 0)

    def test_len_counts_all_events(self):
        assert len(simple_trace()) == 10


class TestValidate:
    def test_valid_trace_passes(self):
        simple_trace().validate()

    def test_double_alloc_rejected(self):
        trace = Trace()
        trace.alloc("x", 1 * MB)
        trace.alloc("x", 1 * MB)
        with pytest.raises(ValueError):
            trace.validate()

    def test_free_unknown_rejected(self):
        trace = Trace()
        trace.free("ghost")
        with pytest.raises(ValueError):
            trace.validate()

    def test_nested_iterations_rejected(self):
        trace = Trace()
        trace.iter_start(0)
        trace.iter_start(1)
        with pytest.raises(ValueError):
            trace.validate()

    def test_unclosed_iteration_rejected(self):
        trace = Trace()
        trace.iter_start(0)
        with pytest.raises(ValueError):
            trace.validate()

    def test_end_without_start_rejected(self):
        trace = Trace()
        trace.events.append(TraceEvent(Op.ITER_END, "0"))
        with pytest.raises(ValueError):
            trace.validate()


class TestStats:
    def test_counts(self):
        stats = simple_trace().stats()
        assert stats.n_allocs == 3
        assert stats.n_frees == 3
        assert stats.n_iterations == 2

    def test_mean_size(self):
        stats = simple_trace().stats()
        assert stats.mean_alloc_bytes == pytest.approx(35 * MB / 3)

    def test_peak_live(self):
        stats = simple_trace().stats()
        assert stats.peak_live_bytes == 30 * MB  # a + b live together

    def test_empty_trace(self):
        stats = Trace().stats()
        assert stats.n_allocs == 0
        assert stats.mean_alloc_bytes == 0.0

    def test_str_mentions_counts(self):
        assert "3 allocations" in str(simple_trace().stats())


class TestSubset:
    def test_subset_truncates_iterations(self):
        trace = simple_trace()
        trace.compute_us_per_iter = [100.0, 200.0]
        sub = trace.subset_iterations(1)
        assert sub.stats().n_iterations == 1
        assert sub.compute_us_per_iter == [100.0]

    def test_subset_keeps_meta(self):
        trace = simple_trace()
        trace.meta["model"] = "test"
        assert trace.subset_iterations(1).meta["model"] == "test"
