"""Tests for the Table-1/Figure-6-calibrated latency model."""

import pytest

from repro.gpu.latency import LatencyModel
from repro.units import GB, MB


@pytest.fixture
def latency() -> LatencyModel:
    return LatencyModel()


class TestTable1Calibration:
    """The breakdown must regenerate the paper's Table 1 numbers."""

    def test_2mb_chunks_total(self, latency):
        rows = latency.vmm_breakdown(2 * GB, 2 * MB)
        assert rows["Total"] == pytest.approx(115.4, abs=0.5)

    def test_2mb_chunks_create(self, latency):
        rows = latency.vmm_breakdown(2 * GB, 2 * MB)
        assert rows["cuMemCreate"] == pytest.approx(18.1, rel=0.01)

    def test_2mb_chunks_set_access(self, latency):
        rows = latency.vmm_breakdown(2 * GB, 2 * MB)
        assert rows["cuMemSetAccess"] == pytest.approx(96.8, rel=0.01)

    def test_2mb_chunks_map(self, latency):
        rows = latency.vmm_breakdown(2 * GB, 2 * MB)
        assert rows["cuMemMap"] == pytest.approx(0.70, rel=0.01)

    def test_128mb_chunks_total(self, latency):
        rows = latency.vmm_breakdown(2 * GB, 128 * MB)
        assert rows["Total"] == pytest.approx(9.1, abs=0.1)

    def test_1gb_chunks_total(self, latency):
        rows = latency.vmm_breakdown(2 * GB, 1024 * MB)
        assert rows["Total"] == pytest.approx(1.5, abs=0.05)

    def test_reserve_is_cheap(self, latency):
        rows = latency.vmm_breakdown(2 * GB, 2 * MB)
        assert rows["cuMemReserve"] == pytest.approx(0.003, abs=0.001)


class TestFigure6Shape:
    """Latency vs chunk size must fall monotonically (the Fig. 6 curve)."""

    def test_smaller_chunks_cost_more(self, latency):
        chunks = [2 * MB * (1 << i) for i in range(10)]
        costs = [latency.vmm_alloc_total(2 * GB, c) for c in chunks]
        assert all(a > b for a, b in zip(costs, costs[1:]))

    def test_2mb_chunks_over_100x_native(self, latency):
        vmm = latency.vmm_alloc_total(2 * GB, 2 * MB)
        native = latency.cuda_malloc(2 * GB)
        assert vmm / native > 100

    def test_1gb_chunks_near_native(self, latency):
        vmm = latency.vmm_alloc_total(2 * GB, 1024 * MB)
        native = latency.cuda_malloc(2 * GB)
        assert vmm / native < 2.0

    def test_larger_blocks_cost_more_at_fixed_chunk(self, latency):
        assert latency.vmm_alloc_total(2 * GB, 2 * MB) > latency.vmm_alloc_total(
            1 * GB, 2 * MB
        )

    def test_total_scales_with_chunk_count(self, latency):
        one = latency.vmm_alloc_total(512 * MB, 2 * MB)
        two = latency.vmm_alloc_total(1 * GB, 2 * MB)
        # Twice the chunks, same single reserve: slightly less than 2x.
        assert 1.9 < two / one < 2.0


class TestRuntimeLatency:
    def test_cuda_malloc_affine_in_size(self, latency):
        small = latency.cuda_malloc(1 * MB)
        large = latency.cuda_malloc(10 * GB)
        assert large > small
        assert small >= latency.cuda_malloc_fixed_us

    def test_cuda_free_cheaper_than_malloc(self, latency):
        assert latency.cuda_free(1 * GB) < latency.cuda_malloc(1 * GB)

    def test_rescaling_unit_rescales_everything(self):
        base = LatencyModel()
        double = LatencyModel(cu_malloc_2gb_us=base.cu_malloc_2gb_us * 2)
        assert double.mem_create(2 * MB) == pytest.approx(
            2 * base.mem_create(2 * MB)
        )
        assert double.mem_set_access(128 * MB) == pytest.approx(
            2 * base.mem_set_access(128 * MB)
        )

    def test_release_cheaper_than_create(self, latency):
        assert latency.mem_release(2 * MB) < latency.mem_create(2 * MB)

    def test_unmap_matches_map(self, latency):
        assert latency.mem_unmap(64 * MB) == latency.mem_map(64 * MB)

    def test_interpolation_between_calibration_points(self, latency):
        # 16 MB sits between 2 MB and 128 MB: per-call create cost must
        # lie between the calibrated endpoints.
        lo = latency.mem_create(2 * MB)
        hi = latency.mem_create(128 * MB)
        mid = latency.mem_create(16 * MB)
        assert lo < mid < hi

    def test_bad_chunk_size_rejected(self, latency):
        with pytest.raises(ValueError):
            latency.vmm_alloc_total(1 * GB, 0)
