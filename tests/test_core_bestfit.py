"""Tests for Algorithm 1 (BestFit) as a pure function."""

from repro.core.bestfit import FitState, best_fit


class FakeBlock:
    """Size-only stand-in for pBlock/sBlock in pure-function tests."""

    def __init__(self, size):
        self.size = size

    def __repr__(self):
        return f"FakeBlock({self.size})"


def blocks(*sizes):
    """Descending-sorted fake block list (the algorithm's precondition)."""
    return [FakeBlock(s) for s in sorted(sizes, reverse=True)]


class TestExactMatch:
    def test_exact_pblock(self):
        result = best_fit(10, [], blocks(20, 10, 5))
        assert result.state is FitState.EXACT_MATCH
        assert result.candidates[0].size == 10

    def test_exact_sblock_preferred(self):
        sblocks = blocks(10)
        result = best_fit(10, sblocks, blocks(10))
        assert result.state is FitState.EXACT_MATCH
        assert result.candidates[0] is sblocks[0]

    def test_sblock_only_for_exact(self):
        """sBlocks larger than the request are never candidates."""
        result = best_fit(10, blocks(50), blocks(4, 4, 4))
        assert result.state is FitState.MULTIPLE_BLOCKS


class TestSingleBlock:
    def test_best_fit_is_smallest_sufficient(self):
        result = best_fit(10, [], blocks(40, 20, 12, 8))
        assert result.state is FitState.SINGLE_BLOCK
        assert result.candidates[0].size == 12

    def test_single_block_when_only_one_large(self):
        result = best_fit(10, [], blocks(30))
        assert result.state is FitState.SINGLE_BLOCK
        assert result.candidates[0].size == 30


class TestMultipleBlocks:
    def test_greedy_accumulates_descending(self):
        result = best_fit(20, [], blocks(9, 8, 7, 2))
        assert result.state is FitState.MULTIPLE_BLOCKS
        assert [b.size for b in result.candidates] == [9, 8, 7]

    def test_exact_sum(self):
        result = best_fit(17, [], blocks(9, 8))
        assert result.state is FitState.MULTIPLE_BLOCKS
        assert result.candidate_bytes == 17

    def test_overshoot_allowed(self):
        result = best_fit(15, [], blocks(9, 8))
        assert result.state is FitState.MULTIPLE_BLOCKS
        assert result.candidate_bytes == 17

    def test_min_stitch_size_filters_small_blocks(self):
        result = best_fit(20, [], blocks(9, 8, 7, 2), min_stitch_size=5)
        assert result.state is FitState.MULTIPLE_BLOCKS
        assert all(b.size >= 5 for b in result.candidates)

    def test_filtered_blocks_can_cause_insufficiency(self):
        result = best_fit(20, [], blocks(9, 2, 2, 2, 2, 2, 2, 2),
                          min_stitch_size=5)
        assert result.state is FitState.INSUFFICIENT_BLOCKS

    def test_small_block_still_serves_exact_match(self):
        result = best_fit(2, [], blocks(9, 2), min_stitch_size=5)
        assert result.state is FitState.EXACT_MATCH


class TestInsufficient:
    def test_empty_pools(self):
        result = best_fit(10, [], [])
        assert result.state is FitState.INSUFFICIENT_BLOCKS
        assert result.candidates == []

    def test_partial_candidates_returned(self):
        result = best_fit(100, [], blocks(30, 20))
        assert result.state is FitState.INSUFFICIENT_BLOCKS
        assert result.candidate_bytes == 50

    def test_boundary_sum_is_sufficient(self):
        result = best_fit(50, [], blocks(30, 20))
        assert result.state is FitState.MULTIPLE_BLOCKS


class TestPaperExample:
    """Figure 1: blocks 2 (free) and 5 (free) serve allocation 6."""

    def test_figure1_stitching(self):
        free_blocks = blocks(3, 2)  # sizes of freed blocks 2 and 5
        result = best_fit(5, [], free_blocks)
        assert result.state is FitState.MULTIPLE_BLOCKS
        assert result.candidate_bytes == 5

    def test_fitstate_values_match_paper_numbering(self):
        assert FitState.EXACT_MATCH.value == 1
        assert FitState.SINGLE_BLOCK.value == 2
        assert FitState.MULTIPLE_BLOCKS.value == 3
        assert FitState.INSUFFICIENT_BLOCKS.value == 4
        assert FitState.OOM.value == 5
