"""Smoke tests: the fast examples must run end to end.

Each example's ``main()`` is imported and executed (argv patched where
needed); slow figure-scale examples are exercised by the benches
instead.
"""

import importlib.util
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExampleSmoke:
    def test_quickstart(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["quickstart.py"])
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "invariants hold" in out
        assert "100.0%" in out

    def test_vmm_microbench(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["vmm_microbench.py"])
        load_example("vmm_microbench").main()
        out = capsys.readouterr().out
        assert "115" in out  # the headline 115x number

    def test_fragmentation_report(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["fragmentation_report.py"])
        load_example("fragmentation_report").main()
        out = capsys.readouterr().out
        assert "stitching headroom: 120 MB" in out

    def test_serving_small(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv",
                            ["serving_inference.py", "opt-1.3b", "30"])
        load_example("serving_inference").main()
        out = capsys.readouterr().out
        assert "gmlake" in out

    def test_finetune_small(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv",
                            ["finetune_llm.py", "opt-1.3b", "2"])
        load_example("finetune_llm").main()
        out = capsys.readouterr().out
        assert "Figure 10" in out

    def test_tiered_serving(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv",
                            ["tiered_serving.py", "opt-1.3b", "12", "60"])
        load_example("tiered_serving").main()
        out = capsys.readouterr().out
        assert "per-tier residency ledger" in out
        assert "demoted (MB)" in out
        assert "cxl?gb=16" in out

    def test_disagg_serving(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv",
                            ["disagg_serving.py", "opt-1.3b", "6", "30"])
        load_example("disagg_serving").main()
        out = capsys.readouterr().out
        assert "per-phase TTFT attribution" in out
        assert "1P+1D nvlink" in out
        assert "migrated (MB)" in out
