"""Fault-tolerant serving: fault models, retry policies, failover.

Four layers:

- unit tests for the ``faults`` / ``retry`` component registries and
  their mechanics (alias resolution, seeded crash windows, the
  ``DownCalendar`` the dispatcher consults, budget backoff, degraded
  interconnects);
- end-to-end fleet physics through ``run_serving_cluster``: crashes
  without retries fail requests permanently (``reject_reason="failed"``,
  availability < 1), a retry budget recovers them, and hedging beats
  plain backoff on p99 TTFT at identical seeds;
- observability: crash/recover/retry/hedge trace events, the chrome
  "down replicas" counter track, and ``GaugeSampler`` down points;
- a hypothesis ``RuleBasedStateMachine`` driving random inject/tick
  traffic over a crashing two-replica fleet with failover wired the
  way the cluster front-end wires it, asserting after every step that
  **every request is either terminal or resident on exactly one
  replica** and on drain that **no KV block leaks and no request is
  stranded** — the fault-tolerance analogue of the prefix-sharing
  ledger fuzz.
"""

import itertools

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.api.registry import SpecError
from repro.obs import GaugeSampler, TraceRecorder
from repro.obs.trace import validate_chrome_trace
from repro.serve import (
    BudgetRetry,
    FaultsSpec,
    HedgeRetry,
    LinkDegradeFaults,
    NoFaults,
    NoRetry,
    NvlinkInterconnect,
    PoissonArrivals,
    ReplicaCrashFaults,
    RequestState,
    RetrySpec,
    ServeRequest,
    ServingSimulator,
    StragglerFaults,
    faults_names,
    resolve_faults,
    resolve_retry,
    retry_names,
    run_serving_cluster,
)
from repro.serve.cluster import DownCalendar
from repro.units import GB

CLUSTER = dict(
    n_replicas=3, allocator="caching", capacity=6 * GB,
    kv_cache="paged?block_tokens=16", scheduler="memory-aware",
)
CRASHY = "replica-crash?mtbf_s=15&mttr_s=5"


def stream(n=400, rate=20.0, seed=7):
    return PoissonArrivals(rate_per_s=rate).generate(n, seed=seed)


def run_fleet(faults="none", retry="none", n=400, **kwargs):
    return run_serving_cluster(stream(n=n), "opt-1.3b", faults=faults,
                               retry=retry, **CLUSTER, **kwargs)


class TestRegistries:
    def test_registered_names(self):
        assert set(faults_names()) == {
            "none", "replica-crash", "straggler", "link-degrade"}
        assert set(retry_names()) == {"none", "budget", "hedge"}

    def test_crash_alias(self):
        model = FaultsSpec.parse("crash?mtbf_s=15&mttr_s=5").build()
        assert isinstance(model, ReplicaCrashFaults)
        assert model.mtbf_s == 15.0 and model.mttr_s == 5.0

    def test_degrade_alias(self):
        model = FaultsSpec.parse("degrade?factor=8").build()
        assert isinstance(model, LinkDegradeFaults)
        assert model.factor == 8.0

    def test_resolvers_accept_strings_specs_and_instances(self):
        assert isinstance(resolve_faults("none"), NoFaults)
        assert isinstance(resolve_faults("straggler?prob=0.2"),
                          StragglerFaults)
        model = ReplicaCrashFaults(mtbf_s=9.0)
        assert resolve_faults(model) is model
        assert isinstance(resolve_retry("none"), NoRetry)
        policy = HedgeRetry(after_s=1.0)
        assert resolve_retry(RetrySpec.parse("hedge?after_s=1").build()
                             ).after_s == 1.0
        assert resolve_retry(policy) is policy

    @pytest.mark.parametrize("spec_cls, spec", [
        (FaultsSpec, "replica-crash?mtbf_s=0"),
        (FaultsSpec, "straggler?prob=2"),
        (FaultsSpec, "link-degrade?factor=0.5"),
        (RetrySpec, "budget?max=0"),
        (RetrySpec, "hedge?after_s=0"),
    ])
    def test_bad_params_raise(self, spec_cls, spec):
        with pytest.raises((SpecError, ValueError)):
            spec_cls.parse(spec)


class TestCrashWindows:
    def test_windows_are_pure_in_seed_and_replica(self):
        model = ReplicaCrashFaults(mtbf_s=20.0, mttr_s=4.0, seed=11)
        first = list(itertools.islice(model.crash_windows(1), 6))
        again = list(itertools.islice(model.crash_windows(1), 6))
        other = list(itertools.islice(model.crash_windows(2), 6))
        assert first == again
        assert first != other

    def test_windows_are_ordered_and_disjoint(self):
        model = ReplicaCrashFaults(mtbf_s=10.0, mttr_s=3.0, seed=0)
        windows = list(itertools.islice(model.crash_windows(0), 20))
        last_end = 0.0
        for start_s, end_s in windows:
            assert start_s > last_end
            assert end_s > start_s
            last_end = end_s

    def test_down_calendar_answers_backwards_queries(self):
        model = ReplicaCrashFaults(mtbf_s=10.0, mttr_s=3.0, seed=0)
        (start_s, end_s) = next(model.crash_windows(0))
        calendar = DownCalendar(model, 1)
        mid = (start_s + end_s) / 2
        # Forward past the window, then back inside, then back before.
        assert not calendar.down_at(0, end_s + 1.0)
        assert calendar.down_at(0, mid)
        assert not calendar.down_at(0, start_s - 0.5)
        assert not calendar.down_at(0, end_s)       # recovery instant is up

    def test_no_faults_is_never_down(self):
        calendar = DownCalendar(NoFaults(), 2)
        assert not calendar.down_at(0, 1e9)
        assert not calendar.down_at(1, 0.0)


class TestBudgetRetry:
    def _request(self, req_id=0, retries=0):
        request = ServeRequest(req_id=req_id, arrival_s=0.0,
                               prompt_tokens=32, output_tokens=8)
        request.retries = retries
        return request

    def test_backoff_doubles_per_attempt(self):
        policy = BudgetRetry(max=4, backoff_s=0.5, jitter=0.0)
        delays = [policy.next_delay_s(self._request(retries=k))
                  for k in range(4)]
        assert delays == [0.5, 1.0, 2.0, 4.0]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = BudgetRetry(max=1, backoff_s=1.0, jitter=0.25, seed=3)
        d1 = policy.next_delay_s(self._request(req_id=7))
        d2 = policy.next_delay_s(self._request(req_id=7))
        other = policy.next_delay_s(self._request(req_id=8))
        assert d1 == d2
        assert d1 != other
        assert 1.0 <= d1 <= 1.25

    def test_budget_exhaustion_returns_none(self):
        policy = BudgetRetry(max=2, backoff_s=0.1)
        assert policy.next_delay_s(self._request(retries=1)) is not None
        assert policy.next_delay_s(self._request(retries=2)) is None

    def test_hedge_retries_immediately_and_arms_hedging(self):
        policy = HedgeRetry(after_s=1.5)
        assert policy.hedge_after_s == 1.5
        assert policy.next_delay_s(self._request()) == 0.0
        assert BudgetRetry().hedge_after_s is None
        assert NoRetry().next_delay_s(self._request()) is None


class TestDegradedInterconnect:
    def test_transfers_stretch_by_factor(self):
        inner = NvlinkInterconnect()
        wrapped = LinkDegradeFaults(factor=4.0).wrap_interconnect(inner)
        assert wrapped.name == "nvlink~degraded"
        assert wrapped.transfer_us(64 * 1024 * 1024, None) == pytest.approx(
            4.0 * inner.transfer_us(64 * 1024 * 1024, None))

    def test_other_models_leave_the_link_alone(self):
        inner = NvlinkInterconnect()
        assert NoFaults().wrap_interconnect(inner) is inner
        assert ReplicaCrashFaults().wrap_interconnect(inner) is inner


class TestClusterFaultTolerance:
    """End-to-end fleet physics at identical seeds."""

    def test_crashes_without_retries_fail_requests(self):
        result = run_fleet(faults=CRASHY, retry="none")
        report = result.report()
        assert report.failed > 0
        assert report.completed + report.rejected == 400
        assert report.availability < 1.0
        assert result.extras()["failed"] == report.failed
        failed = [r for replica in result.replicas for r in replica.requests
                  if r.reject_reason == "failed"]
        assert len(failed) == report.failed
        assert all(r.failed_s is not None for r in failed)

    def test_retry_budget_recovers_crash_victims(self):
        baseline = run_fleet(faults=CRASHY, retry="none")
        retried = run_fleet(faults=CRASHY, retry="budget?max=3")
        report = retried.report()
        assert report.failed == 0
        assert report.retries > 0
        assert report.availability == 1.0
        assert report.completed > baseline.report().completed

    def test_hedging_beats_backoff_on_tail_ttft(self):
        budget = run_fleet(faults=CRASHY, retry="budget?max=3")
        hedge = run_fleet(faults=CRASHY, retry="hedge?after_s=1")
        assert hedge.report().completed == budget.report().completed == 400
        assert hedge.report().p99_ttft_s < budget.report().p99_ttft_s

    def test_population_is_conserved_under_hedging(self):
        # Hedging clones requests; the merged population must still be
        # exactly one record per arrival, every one terminal.
        result = run_fleet(faults="straggler?slowdown=6&prob=0.2",
                           retry="hedge?after_s=0.5")
        population = [r for replica in result.replicas
                      for r in replica.requests]
        assert len(population) == 400
        assert len({r.req_id for r in population}) == 400
        assert all(r.state in (RequestState.FINISHED, RequestState.REJECTED)
                   for r in population)

    def test_fault_none_paths_are_identical(self):
        plain = run_serving_cluster(stream(n=120), "opt-1.3b", **CLUSTER)
        gated = run_fleet(n=120)        # explicit faults="none"/"none"
        assert gated.report().summary() == plain.report().summary()
        assert [r.makespan_s for r in gated.replicas] == \
            [r.makespan_s for r in plain.replicas]


class TestFaultObservability:
    def test_trace_and_down_counter(self):
        trace = TraceRecorder()
        gauges = GaugeSampler(every_s=0.5)
        result = run_fleet(faults=CRASHY, retry="budget?max=3",
                           trace=trace, gauges=gauges)
        assert result.report().retries > 0
        kinds = {event.kind for event in trace.events}
        assert {"crash", "recover", "retry"} <= kinds
        data = trace.chrome_trace()
        assert validate_chrome_trace(data) > 0
        names = {event.get("name") for event in data["traceEvents"]}
        assert {"crash", "recover", "down replicas"} <= names
        downs = [event["args"]["down"] for event in data["traceEvents"]
                 if event.get("name") == "down replicas"]
        assert max(downs) >= 1 and downs[-1] == 0
        assert any(n > 0 for _, n in gauges.down_points)
        assert gauges.down_points[-1][1] == 0

    def test_hedge_events_name_source_and_target(self):
        trace = TraceRecorder()
        run_fleet(faults=CRASHY, retry="hedge?after_s=1", trace=trace)
        hedges = [e for e in trace.events if e.kind == "hedge"]
        assert hedges
        assert all(e.args["source"] != e.args["target"] for e in hedges)


class FaultFleetMachine(RuleBasedStateMachine):
    """Random inject/tick traffic over a crashing two-replica fleet.

    Failover is wired exactly the way ``_co_simulate`` wires it: each
    replica's ``_fault_sink`` re-dispatches crash victims to the
    least-loaded healthy peer per the shared ``DownCalendar``.  After
    every rule, each tracked request must be terminal or resident on
    exactly one replica; teardown drains the fleet and asserts zero
    leaked KV and zero stranded requests.
    """

    N_REPLICAS = 2

    def __init__(self):
        super().__init__()
        self.faults = ReplicaCrashFaults(mtbf_s=6.0, mttr_s=2.0, seed=3)
        self.retry = BudgetRetry(max=2, backoff_s=0.05, jitter=0.1)
        self.calendar = DownCalendar(self.faults, self.N_REPLICAS)
        self.sims = [
            ServingSimulator(
                "opt-1.3b", allocator="caching", capacity=4 * GB,
                kv_cache="paged?block_tokens=16", scheduler="memory-aware",
                replica_id=i, faults=self.faults, retry=self.retry)
            for i in range(self.N_REPLICAS)
        ]
        for sim in self.sims:
            sim.start([])
            sim._fault_sink = self._redispatch
        # Model weights stay resident for the lifetime of a replica;
        # "zero leaked KV" means active bytes return to this baseline.
        self.baseline = [sim.allocator.stats().active_bytes
                         for sim in self.sims]
        self.requests = []
        self.next_id = 0

    def _redispatch(self, request, ready_s, failover):
        del failover
        healthy = [i for i in range(self.N_REPLICAS)
                   if not self.calendar.down_at(i, ready_s)]
        pool = healthy or list(range(self.N_REPLICAS))
        target = min(pool, key=lambda j: (self.sims[j].outstanding, j))
        request.replica = target
        self.sims[target].inject(request, ready_s)

    def _resident(self, sim, request):
        if id(request) in sim._gone:
            return False
        live = ({id(r) for r in sim._queue}
                | {id(r) for r in sim._running}
                | {id(r) for _, _, r in sim._injected})
        return id(request) in live

    # -- rules ----------------------------------------------------------
    @rule(prompt_blocks=st.integers(1, 8), output=st.integers(1, 48),
          gap_ms=st.integers(0, 800))
    def inject_request(self, prompt_blocks, output, gap_ms):
        now = max(sim.session.elapsed_s for sim in self.sims)
        request = ServeRequest(
            req_id=self.next_id, arrival_s=now + gap_ms / 1000.0,
            prompt_tokens=prompt_blocks * 16, output_tokens=output)
        self.next_id += 1
        self._redispatch(request, request.arrival_s, failover=False)
        self.requests.append(request)

    @rule(steps=st.integers(1, 12))
    def tick_laggard(self, steps):
        for _ in range(steps):
            busy = [i for i in range(self.N_REPLICAS) if self.sims[i].busy]
            if not busy:
                return
            i = min(busy, key=lambda j: (self.sims[j].session.elapsed_s, j))
            self.sims[i].tick()

    # -- the invariant (checked after every rule) -----------------------
    @invariant()
    def each_request_terminal_or_on_one_replica(self):
        for request in self.requests:
            homes = sum(self._resident(sim, request) for sim in self.sims)
            if request.state in (RequestState.FINISHED,
                                 RequestState.REJECTED):
                assert homes == 0, f"terminal req {request.req_id} resident"
            else:
                assert homes == 1, (
                    f"req {request.req_id} ({request.state}) resident on "
                    f"{homes} replicas")

    @invariant()
    def kv_is_held_by_running_requests_only(self):
        for sim in self.sims:
            assert sim.kv.live_requests == len(sim._running)

    def teardown(self):
        guard = 0
        while any(sim.busy for sim in self.sims):
            busy = [i for i in range(self.N_REPLICAS) if self.sims[i].busy]
            i = min(busy, key=lambda j: (self.sims[j].session.elapsed_s, j))
            assert self.sims[i].tick(), "busy replica made no progress"
            guard += 1
            assert guard < 200_000, "fleet failed to drain"
        populations = [sim.finish().requests for sim in self.sims]
        merged = [r for population in populations for r in population]
        # Zero stranded requests: every injected request surfaces in
        # exactly one replica's population, in a terminal state.
        assert len(merged) == len(self.requests)
        assert {r.req_id for r in merged} == {r.req_id for r in self.requests}
        assert all(r.state in (RequestState.FINISHED, RequestState.REJECTED)
                   for r in merged)
        # Zero leaked KV: drained replicas hold no tables, and active
        # bytes are back to the resident-weights baseline.
        for sim, baseline in zip(self.sims, self.baseline):
            assert sim.kv.live_requests == 0
            assert sim.kv.live_kv_bytes == 0
            assert sim.allocator.stats().active_bytes == baseline


TestFaultFleetFuzz = FaultFleetMachine.TestCase
TestFaultFleetFuzz.settings = settings(
    max_examples=20, stateful_step_count=40)
