"""Tests for the KV-cache memory models (chunked vs. paged).

The acceptance-critical invariants: block accounting never leaks on
preempt/requeue, fixed-seed runs are byte-identical, and on a
fragmentation-heavy workload the paged layout's peak memory never
exceeds the chunked layout's under the splitting caching allocator.
"""

import dataclasses

import pytest

from repro.api import ExperimentSpec, ServingSpec, SpecError, run
from repro.serve import (
    KV_CACHE_MODELS,
    ChunkedKVCache,
    KVCacheSpec,
    PoissonArrivals,
    ServingConfig,
    ServingSimulator,
    kv_cache_names,
    resolve_kv_cache,
    run_serving,
)
from repro.serve.request import ServeRequest
from repro.units import GB, MB
from repro.workloads import get_model
from repro.workloads.inference import ServingWorkload, kv_bytes


def make_request(req_id, arrival, prompt, output):
    return ServeRequest(req_id=req_id, arrival_s=arrival,
                        prompt_tokens=prompt, output_tokens=output)


def churn_stream(n=40, rate=2.0, seed=1):
    return PoissonArrivals(rate_per_s=rate).generate(n, seed=seed)


class TestKVCacheSpec:
    def test_registry_names(self):
        assert kv_cache_names() == ["chunked", "paged", "paged-shared"]
        for name, info in KV_CACHE_MODELS.items():
            assert info.name == name
            assert info.params

    def test_parse_round_trip(self):
        spec = KVCacheSpec.parse("paged?block_tokens=32")
        assert spec.name == "paged"
        assert spec.params == {"block_tokens": 32}
        assert KVCacheSpec.parse(spec.spec_string()) == spec
        assert KVCacheSpec.from_dict(spec.to_dict()) == spec

    def test_bare_name(self):
        assert KVCacheSpec.parse("chunked").spec_string() == "chunked"

    def test_unknown_model_rejected(self):
        with pytest.raises(SpecError, match="unknown KV-cache"):
            KVCacheSpec.parse("slab?block_tokens=16")

    def test_unknown_param_rejected(self):
        with pytest.raises(SpecError, match="no parameter"):
            KVCacheSpec.parse("paged?page_mb=2")

    def test_ill_typed_param_rejected(self):
        with pytest.raises(SpecError, match="bad value"):
            KVCacheSpec.parse("paged?block_tokens=tiny")

    def test_non_positive_param_rejected(self):
        with pytest.raises(SpecError, match=">= 1"):
            KVCacheSpec.parse("paged?block_tokens=0")

    def test_chunked_inherits_config_granularity(self):
        model = get_model("opt-1.3b")
        kv = resolve_kv_cache("chunked", model, default_chunk_tokens=512)
        assert kv.chunk_tokens == 512
        pinned = resolve_kv_cache("chunked?chunk_tokens=64", model,
                                  default_chunk_tokens=512)
        assert pinned.chunk_tokens == 64

    def test_model_instance_passes_through(self):
        model = get_model("opt-1.3b")
        kv = resolve_kv_cache("paged", model)
        assert resolve_kv_cache(kv, model) is kv

    def test_model_instance_cannot_be_reused_across_runs(self):
        """A bound model carries per-run metrics; rebinding must fail
        loudly instead of leaking the first run's counters."""
        model = get_model("opt-1.3b")
        kv = resolve_kv_cache("paged", model)
        ServingSimulator(model, allocator="caching", kv_cache=kv)
        with pytest.raises(ValueError, match="already bound"):
            ServingSimulator(model, allocator="gmlake", kv_cache=kv)


class TestPagedAccounting:
    """Block accounting never leaks — on finish, preempt or reject."""

    def _pressure_cooker(self, kv_cache="paged?block_tokens=64"):
        model = get_model("opt-1.3b")
        # Each request peaks at ~365 MB of KV (1824 tokens at ~12.6 MB
        # per 64-token block); 600 MB of headroom holds one but not
        # two, so the growing requests collide mid-decode and one must
        # be preempted.  (Chunked needs less pressure because a growth
        # re-alloc transiently doubles a request's footprint; paged
        # never does, so the pool has to be genuinely full.)
        capacity = model.weight_bytes + 600 * MB
        config = ServingConfig(max_batch=4, kv_chunk_tokens=256,
                               queue_timeout_s=600.0)
        simulator = ServingSimulator(model, allocator="caching",
                                     capacity=capacity, config=config,
                                     scheduler="fcfs", kv_cache=kv_cache)
        requests = [
            make_request(0, 0.0, 1024, 800),
            make_request(1, 0.01, 1024, 800),
        ]
        return simulator, simulator.run(requests)

    def test_preemption_happens_and_everyone_finishes(self):
        _, result = self._pressure_cooker()
        assert result.preemptions >= 1
        assert all(r.finished for r in result.requests)

    def test_no_block_leak_after_preempt_and_requeue(self):
        simulator, result = self._pressure_cooker()
        kv = simulator.kv
        assert result.preemptions >= 1
        assert kv.live_requests == 0
        assert kv.live_blocks == 0
        assert kv.live_kv_bytes == 0
        assert kv.metrics.kv_allocs == kv.metrics.kv_frees
        # Only the resident weights survive the run in the session.
        assert set(simulator.session.live) == {"weights"}

    def test_no_leak_under_chunked_either(self):
        simulator, result = self._pressure_cooker(kv_cache="chunked")
        kv = simulator.kv
        assert result.preemptions >= 1
        assert kv.live_requests == 0
        assert kv.live_kv_bytes == 0
        assert kv.metrics.kv_allocs == kv.metrics.kv_frees
        assert set(simulator.session.live) == {"weights"}

    def test_too_large_request_rolls_back_partial_block_table(self):
        model = get_model("opt-1.3b")
        # Room for the weights plus only a handful of blocks: the giant
        # request OOMs mid-table and must give every block back.
        capacity = model.weight_bytes + 8 * kv_bytes(model, 64)
        simulator = ServingSimulator(model, allocator="caching",
                                     capacity=capacity,
                                     kv_cache="paged?block_tokens=64")
        requests = [
            make_request(0, 0.0, 2048, 512),  # needs ~40 blocks: impossible
            make_request(1, 0.2, 64, 32),     # 2 blocks: fits
        ]
        result = simulator.run(requests)
        by_id = {r.req_id: r for r in result.requests}
        assert by_id[0].reject_reason == "too-large"
        assert by_id[1].finished
        assert simulator.kv.live_blocks == 0
        assert simulator.kv.live_requests == 0

    def test_capacity_tracks_block_table(self):
        simulator = ServingSimulator("opt-1.3b", allocator="gmlake",
                                     kv_cache="paged?block_tokens=16")
        result = simulator.run([make_request(0, 0.0, 100, 60)])
        request = result.requests[0]
        assert request.finished
        # 100 + 60 = 160 tokens fit exactly in 10 sixteen-token blocks.
        assert simulator.kv.metrics.peak_blocks == 10


class TestDeterminism:
    """Fixed seed => byte-identical serving results and KV metrics."""

    @pytest.mark.parametrize("kv_cache", ["chunked", "paged?block_tokens=16"])
    def test_metrics_byte_identical(self, kv_cache):
        def once():
            return run_serving(churn_stream(seed=7), "opt-1.3b",
                               allocator="caching", capacity=4 * GB,
                               scheduler="memory-aware", kv_cache=kv_cache)

        a, b = once(), once()
        assert dataclasses.asdict(a.kv_metrics) == dataclasses.asdict(b.kv_metrics)
        assert [(r.finished_s, r.tokens_done, r.preemptions)
                for r in a.requests] == \
               [(r.finished_s, r.tokens_done, r.preemptions)
                for r in b.requests]
        assert a.makespan_s == b.makespan_s
        assert a.stats.peak_reserved_bytes == b.stats.peak_reserved_bytes


class TestChunkedVsPaged:
    """The head-to-head ordering the bench asserts, in miniature."""

    def _serve(self, kv_cache):
        # Fragmentation-heavy: heavy-tailed lengths churning a tight
        # pool under the splitting caching allocator.
        return run_serving(churn_stream(n=40, rate=2.0, seed=1), "opt-1.3b",
                           allocator="caching", capacity=4 * GB,
                           config=ServingConfig(max_batch=16,
                                                queue_timeout_s=30.0),
                           scheduler="memory-aware", kv_cache=kv_cache)

    def test_paged_peak_memory_never_exceeds_chunked(self):
        chunked = self._serve("chunked")
        paged = self._serve("paged?block_tokens=16")
        assert chunked.completed == paged.completed == 40
        assert paged.peak_reserved_bytes <= chunked.peak_reserved_bytes

    def test_fragmentation_moves_from_pool_to_cache(self):
        chunked = self._serve("chunked")
        paged = self._serve("paged?block_tokens=16")
        # Cache-level waste: paged's block tails are far tighter than
        # chunked's 256-token chunk tails.
        assert (paged.kv_metrics.internal_frag_ratio
                < chunked.kv_metrics.internal_frag_ratio)
        # Growth never copies under paged KV; chunked always re-allocs.
        assert paged.kv_metrics.grow_copy_bytes == 0
        assert chunked.kv_metrics.grow_copy_bytes > 0

    def test_offline_trace_paged_variant(self):
        chunked = ServingWorkload("opt-1.3b", n_requests=30, seed=3)
        paged = ServingWorkload("opt-1.3b", n_requests=30, seed=3,
                                kv_cache="paged?block_tokens=16")
        trace = paged.build_trace()
        trace.validate()
        assert trace.meta["kv_cache"] == "paged?block_tokens=16"
        model = get_model("opt-1.3b")
        kv_sizes = {e.size for e in trace.events
                    if e.tensor.startswith("kv") and e.op.value == "alloc"}
        # The pool only ever sees one KV allocation size.
        assert kv_sizes == {kv_bytes(model, 16)}
        # The chunked trace sees many (never-repeating) sizes.
        chunked_sizes = {e.size for e in chunked.build_trace().events
                         if e.tensor.startswith("kv") and e.op.value == "alloc"}
        assert len(chunked_sizes) > 5

    def test_bad_offline_kv_cache_rejected(self):
        with pytest.raises(SpecError):
            ServingWorkload("opt-1.3b", kv_cache="radix")


class TestClusterAggregation:
    def test_fleet_kv_metrics_merge_across_replicas(self):
        from repro.serve import run_serving_cluster

        result = run_serving_cluster(
            churn_stream(n=30, rate=6.0, seed=2), "opt-1.3b",
            n_replicas=2, allocator="caching", capacity=4 * GB,
            kv_cache="paged?block_tokens=16")
        merged = result.kv_metrics
        assert merged is not None
        assert merged.kv_cache == "paged"
        assert merged.kv_allocs == sum(
            r.kv_metrics.kv_allocs for r in result.replicas)
        assert merged.util_samples == sum(
            r.kv_metrics.util_samples for r in result.replicas)
        assert 0.0 <= merged.internal_frag_ratio < 1.0

    def test_shared_model_instance_rejected(self):
        from repro.serve import run_serving_cluster

        model = get_model("opt-1.3b")
        with pytest.raises(ValueError, match="own model"):
            run_serving_cluster(churn_stream(n=4), model, n_replicas=2,
                                kv_cache=resolve_kv_cache("paged", model))


class TestExperimentSpecIntegration:
    def test_serving_spec_validates_kv_cache(self):
        with pytest.raises(SpecError):
            ServingSpec(kv_cache="radix?x=1")

    def test_serve_mode_round_trips_and_runs(self):
        spec = ExperimentSpec(
            mode="serve",
            allocators=["caching"],
            capacity=4 * GB,
            serving=ServingSpec(model="opt-1.3b", n_requests=10,
                                rate_per_s=4.0,
                                kv_cache="paged?block_tokens=16"),
        )
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone.serving.kv_cache == "paged?block_tokens=16"
        results = run(clone)
        assert len(results) == 1
        assert results[0].extras()["kv_cache"] == "paged"
        assert results[0].extras()["completed"] == 10


class TestLiveCatalogue:
    def test_kv_cache_models_is_the_live_registry(self):
        """Direct insertion into KV_CACHE_MODELS (the pre-registry
        extension idiom) stays visible to the spec/lookup path."""
        from repro.api.registry import ComponentInfo, Param
        from repro.serve.kvcache import KV_CACHE_MODELS, get_kv_cache_info

        info = ComponentInfo(
            name="radix-test", cls=ChunkedKVCache, kind="kv-cache",
            params=(Param("chunk_tokens", int, 256),),
            description="live-catalogue test entry",
        )
        KV_CACHE_MODELS["radix-test"] = info
        try:
            assert get_kv_cache_info("radix-test") is info
            spec = KVCacheSpec.parse("radix-test?chunk_tokens=64")
            assert spec.params == {"chunk_tokens": 64}
        finally:
            del KV_CACHE_MODELS["radix-test"]
        with pytest.raises(SpecError):
            get_kv_cache_info("radix-test")
