"""Lifecycle tracing and gauges: recording, spans, exports, passivity.

The headline guarantees:

* tracing and gauges are **passive** — a run with them enabled
  produces the identical report to a run without;
* a swap-preemption run exports valid Chrome trace-event JSON with
  queued/running/preempted spans (the Perfetto acceptance criterion);
* sinks are registered ``trace`` components, reachable from the spec
  mini-DSL and the CLI.
"""

import dataclasses
import json

import pytest

from repro.cli import main
from repro.obs import (
    FRONTEND_REPLICA,
    GaugeSampler,
    TraceRecorder,
    TraceSpec,
    trace_sink_names,
    validate_chrome_trace,
)
from repro.serve import PoissonArrivals, run_serving, run_serving_cluster
from repro.serve.arrivals import LengthSampler
from repro.serve.simulator import ServingConfig

GB = 1 << 30


def pressure_stream(n=30, seed=0):
    """A stream hot enough to force preemptions on a 4 GB device."""
    lengths = LengthSampler(mean_prompt=1500, mean_output=900)
    return PoissonArrivals(rate_per_s=6.0).generate(n, lengths, seed=seed)


def pressure_run(trace=None, gauges=None, preemption="swap"):
    return run_serving(
        pressure_stream(), "opt-1.3b", allocator="caching",
        capacity=4 * GB, scheduler="fcfs",
        config=ServingConfig(max_batch=8, queue_timeout_s=3.0),
        preemption=preemption, trace=trace, gauges=gauges,
    )


class TestPassivity:
    def test_trace_and_gauges_change_nothing(self):
        baseline = pressure_run()
        traced = pressure_run(trace=TraceRecorder(),
                              gauges=GaugeSampler(0.5))
        plain = dataclasses.asdict(baseline.report())
        observed = dataclasses.asdict(traced.report())
        assert plain == observed
        assert [r.finished_s for r in baseline.requests] == \
               [r.finished_s for r in traced.requests]


class TestRecorder:
    def test_request_events_cover_lifecycle(self):
        recorder = TraceRecorder()
        result = pressure_run(trace=recorder)
        assert result.preemptions > 0
        kinds = {e.kind for e in recorder.events}
        assert {"arrival", "admit", "first_token", "finish",
                "preempt"} <= kinds
        assert "memory" in kinds  # allocator observer fired
        per_request = recorder.request_events()
        req = per_request[(0, result.requests[0].req_id)]
        assert req[0].kind == "arrival"

    def test_spans_include_preempted(self):
        recorder = TraceRecorder()
        pressure_run(trace=recorder)
        spans = recorder.spans()
        names = {s["name"] for s in spans}
        assert {"queued", "running", "preempted"} <= names
        for span in spans:
            assert span["end_s"] >= span["start_s"]

    def test_chrome_trace_is_valid_and_complete(self):
        """The acceptance criterion: a recorded swap-preemption trace
        is valid Chrome trace-event JSON with queued/running/preempted
        spans for at least one request."""
        recorder = TraceRecorder()
        pressure_run(trace=recorder)
        data = recorder.chrome_trace()
        assert validate_chrome_trace(data) > 0
        x_names = {e["name"] for e in data["traceEvents"]
                   if e.get("ph") == "X"}
        assert {"queued", "running", "preempted"} <= x_names
        # One request shows all three phases.
        by_tid = {}
        for event in data["traceEvents"]:
            if event.get("ph") == "X":
                by_tid.setdefault((event["pid"], event["tid"]),
                                  set()).add(event["name"])
        assert any({"queued", "running", "preempted"} <= names
                   for names in by_tid.values())

    def test_chrome_trace_roundtrips_through_json(self, tmp_path):
        recorder = TraceRecorder()
        pressure_run(trace=recorder)
        path = tmp_path / "trace.json"
        recorder.to_chrome(path)
        data = json.loads(path.read_text(encoding="utf-8"))
        assert validate_chrome_trace(data) > 0

    def test_jsonl_export(self, tmp_path):
        recorder = TraceRecorder()
        pressure_run(trace=recorder)
        path = tmp_path / "trace.jsonl"
        recorder.to_jsonl(path)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == len(recorder.events)
        first = json.loads(lines[0])
        assert {"t", "kind", "replica"} <= set(first)

    def test_validator_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"not": "a trace"})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "ts": 10.0, "dur": -1.0, "pid": 1, "tid": 1,
                 "name": "bad"}]})
        with pytest.raises(ValueError):  # timestamps must be monotone
            validate_chrome_trace({"traceEvents": [
                {"ph": "i", "ts": 10.0, "pid": 1, "tid": 1, "name": "b",
                 "s": "t"},
                {"ph": "i", "ts": 5.0, "pid": 1, "tid": 1, "name": "a",
                 "s": "t"}]})


class TestGauges:
    def test_sampler_records_series(self):
        gauges = GaugeSampler(every_s=0.5)
        result = pressure_run(gauges=gauges)
        assert result.gauges, "simulator must return its gauge series"
        times = [p.t_s for p in result.gauges]
        assert times == sorted(times)
        # Stride respected: consecutive samples at least ~every_s apart.
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(gap >= 0.5 - 1e-9 for gap in gaps)
        for point in result.gauges:
            assert point.reserved_bytes >= point.active_bytes >= 0
            assert 0.0 <= point.kv_utilization <= 1.0
            assert point.queue_depth >= 0 and point.running >= 0

    def test_sampler_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            GaugeSampler(every_s=0.0)


class TestCluster:
    def test_shared_recorder_tags_replicas(self):
        recorder = TraceRecorder()
        gauges = GaugeSampler(1.0)
        result = run_serving_cluster(
            pressure_stream(40), "opt-1.3b", n_replicas=2,
            allocator="caching", capacity=4 * GB,
            config=ServingConfig(max_batch=8, queue_timeout_s=3.0),
            autoscaler="queue-depth?high=2000&low=200",
            trace=recorder, gauges=gauges,
        )
        replicas = {e.replica for e in recorder.events}
        assert {0, 1} <= replicas or FRONTEND_REPLICA in replicas
        assert result.active_replica_points
        assert any(e.kind == "autoscale" and e.replica == FRONTEND_REPLICA
                   for e in recorder.events)
        data = recorder.chrome_trace()
        assert validate_chrome_trace(data) > 0
        assert {p.replica for p in result.gauge_points} <= {0, 1}
        # Per-replica series filter agrees with the merged view.
        merged = sorted(result.gauge_points, key=lambda p: (p.t_s, p.replica))
        assert [p.t_s for p in merged] == sorted(p.t_s
                                                 for p in result.gauge_points)

    def test_streaming_cluster_report_matches_exact_counters(self):
        result = run_serving_cluster(
            pressure_stream(40), "opt-1.3b", n_replicas=2,
            allocator="caching", capacity=4 * GB,
            config=ServingConfig(max_batch=8, queue_timeout_s=3.0),
        )
        exact = result.report()
        stream = result.report(streaming=True)
        for field in ("n_requests", "completed", "rejected", "timed_out",
                      "preemptions", "output_tokens", "on_time_tokens",
                      "slo_attainment"):
            assert getattr(stream, field) == getattr(exact, field), field
        # Means sum per replica before merging (vs. arrival order in
        # the exact path) — equal up to float association.
        for field in ("mean_ttft_s", "mean_tpot_s"):
            assert getattr(stream, field) == pytest.approx(
                getattr(exact, field), rel=1e-12), field


class TestTraceSpecs:
    def test_registered_sinks(self):
        assert set(trace_sink_names()) == {"chrome", "jsonl"}

    def test_spec_roundtrip(self):
        spec = TraceSpec.parse("chrome?path=/tmp/x.json")
        assert spec.name == "chrome"
        assert spec.params["path"] == "/tmp/x.json"
        assert TraceSpec.parse("perfetto").name == "chrome"

    def test_for_path_picks_sink_by_suffix(self):
        assert TraceSpec.for_path("out.jsonl").name == "jsonl"
        assert TraceSpec.for_path("out.json").name == "chrome"
        assert TraceSpec.for_path("anything.trace").name == "chrome"

    def test_empty_path_rejected(self):
        from repro.api.registry import SpecError
        with pytest.raises(SpecError):
            TraceSpec.parse("chrome?path=")


class TestCli:
    def test_serve_trace_and_gauges(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main([
            "serve", "--model", "opt-1.3b", "--allocator", "caching",
            "--capacity", "4GB", "--rate", "6.0", "--requests", "30",
            "--scheduler", "fcfs", "--mean-prompt", "1500",
            "--mean-output", "900", "--timeout", "3.0", "--max-batch", "8",
            "--preemption", "swap", "--trace", str(out), "--gauges",
            "--streaming",
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "gauges" in captured
        assert "trace events" in captured
        data = json.loads(out.read_text(encoding="utf-8"))
        assert validate_chrome_trace(data) > 0

    def test_serve_trace_refuses_multiple_allocators(self, tmp_path, capsys):
        code = main([
            "serve", "--model", "opt-1.3b", "--allocator", "caching,gmlake",
            "--capacity", "4GB", "--requests", "5",
            "--trace", str(tmp_path / "t.json"),
        ])
        assert code == 2
        assert "single allocator" in capsys.readouterr().err

    def test_list_components_has_trace_kind(self, capsys):
        assert main(["list-components", "--kind", "trace"]) == 0
        out = capsys.readouterr().out
        assert "chrome" in out and "jsonl" in out and "perfetto" in out
