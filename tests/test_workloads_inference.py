"""Tests for the inference serving workload and ZeRO stages 1/2."""

import pytest

from repro.sim import run_workload
from repro.api import resolve_allocator
from repro.sim.engine import run_trace
from repro.gpu.device import GpuDevice
from repro.workloads import TrainingWorkload, ZeroConfig, get_model
from repro.workloads.inference import ServingWorkload, kv_bytes


class TestKvBytes:
    def test_formula(self):
        model = get_model("opt-1.3b")
        assert kv_bytes(model, 100) == 2 * 24 * 100 * 2048 * 2

    def test_scales_with_seq(self):
        model = get_model("opt-13b")
        assert kv_bytes(model, 200) == 2 * kv_bytes(model, 100)


class TestServingTrace:
    def test_trace_validates(self):
        trace = ServingWorkload("opt-1.3b", n_requests=50).build_trace()
        trace.validate()

    def test_all_requests_served_and_freed(self):
        workload = ServingWorkload("opt-1.3b", n_requests=40, max_batch=8)
        trace = workload.build_trace()
        stats = trace.stats()
        # weights + 40 KV blocks + one workspace per decode step.
        kv_allocs = sum(
            1 for e in trace.events
            if e.tensor.startswith("kv") and e.op.value == "alloc"
        )
        assert kv_allocs == 40
        # Only the weights stay live at the end.
        assert stats.peak_live_bytes > workload.model.weight_bytes

    def test_deterministic(self):
        a = ServingWorkload("opt-1.3b", n_requests=30, seed=5).build_trace()
        b = ServingWorkload("opt-1.3b", n_requests=30, seed=5).build_trace()
        assert [(e.op, e.tensor, e.size) for e in a.events] == [
            (e.op, e.tensor, e.size) for e in b.events
        ]

    def test_seed_changes_lengths(self):
        a = ServingWorkload("opt-1.3b", n_requests=30, seed=1).build_trace()
        b = ServingWorkload("opt-1.3b", n_requests=30, seed=2).build_trace()
        assert a.stats().total_alloc_bytes != b.stats().total_alloc_bytes

    def test_batch_cap_respected(self):
        workload = ServingWorkload("opt-1.3b", n_requests=60, max_batch=4)
        trace = workload.build_trace()
        live_kv = 0
        max_live = 0
        for event in trace.events:
            if event.tensor.startswith("kv"):
                live_kv += 1 if event.op.value == "alloc" else -1
                max_live = max(max_live, live_kv)
        assert max_live <= 4

    def test_compute_time_tracks_tokens(self):
        trace = ServingWorkload("opt-1.3b", n_requests=20).build_trace()
        steps = trace.meta["decode_steps"]
        assert trace.compute_us_per_iter[0] > 0
        assert steps > 0

    def test_bad_configs_rejected(self):
        with pytest.raises(ValueError):
            ServingWorkload("opt-1.3b", n_requests=0)
        with pytest.raises(ValueError):
            ServingWorkload("opt-1.3b", max_batch=0)

    def test_gmlake_beats_caching_on_serving_churn(self):
        """Never-repeating KV sizes are the worst case for size caching;
        stitching still wins on reserved memory."""
        workload = ServingWorkload("opt-6.7b", n_requests=120, max_batch=16,
                                   seed=3)
        trace = workload.build_trace()
        base = run_trace(resolve_allocator("caching", GpuDevice()), trace)
        gml = run_trace(resolve_allocator("gmlake", GpuDevice()), trace)
        assert not base.oom and not gml.oom
        assert gml.utilization_ratio >= base.utilization_ratio
        assert gml.utilization_ratio > 0.9


class TestZeroStages:
    def test_stage_properties(self):
        stage1 = ZeroConfig(n_gpus=4, stage=1)
        stage2 = ZeroConfig(n_gpus=4, stage=2)
        stage3 = ZeroConfig(n_gpus=4, stage=3)
        assert stage1.shards_optimizer and not stage1.shards_grads
        assert stage2.shards_grads and not stage2.shards_params
        assert stage3.shards_params

    def test_single_gpu_never_shards(self):
        config = ZeroConfig(n_gpus=1, stage=3)
        assert not config.shards_optimizer

    def test_stage_memory_ordering(self):
        """Higher ZeRO stages hold strictly less persistent memory."""
        peaks = {}
        for stage in (0, 1, 2, 3):
            workload = TrainingWorkload("opt-1.3b", batch_size=2, n_gpus=4,
                                        strategies="R", iterations=2,
                                        zero_stage=stage)
            peaks[stage] = workload.build_trace().stats().peak_live_bytes
        assert peaks[1] < peaks[0]
        assert peaks[2] < peaks[1]
        assert peaks[3] < peaks[2]

    def test_stage2_has_no_gathers(self):
        workload = TrainingWorkload("opt-1.3b", batch_size=2, n_gpus=4,
                                    iterations=1, zero_stage=2)
        trace = workload.build_trace()
        assert not any(".f.g" in e.tensor for e in trace.events)

    def test_invalid_stage_rejected(self):
        with pytest.raises(ValueError):
            ZeroConfig(n_gpus=2, stage=5)

    def test_stage_override_threading(self):
        workload = TrainingWorkload("opt-1.3b", batch_size=2, n_gpus=4,
                                    iterations=1, zero_stage=1)
        assert workload.zero.stage == 1
        result = run_workload(workload, "gmlake")
        assert not result.oom
