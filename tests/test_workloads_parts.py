"""Tests for transformer shapes, strategies, ZeRO sharding, platforms."""

import pytest

from repro.units import MB
from repro.workloads import StrategySet, ZeroConfig, get_model, shard_bytes
from repro.workloads.platforms import Platform, profile_for, round_gather
from repro.workloads.strategies import LORA_RANKS
from repro.workloads.transformer import (
    checkpoint_bytes,
    dgrad_bytes,
    logits_bytes,
    recompute_piece_sizes,
    saved_activation_tensors,
    workspace_bytes,
)


class TestTransformerShapes:
    def test_saved_activations_count(self):
        model = get_model("opt-1.3b")
        tensors = saved_activation_tensors(model, 8, 2048)
        assert len(tensors) == 5

    def test_ffn_intermediate_is_largest(self):
        model = get_model("opt-1.3b")
        tensors = dict(saved_activation_tensors(model, 8, 2048))
        assert tensors["ffn_in"] == max(tensors.values())

    def test_checkpoint_is_single_unit(self):
        model = get_model("opt-1.3b")
        assert checkpoint_bytes(model, 8, 2048) == model.activation_bytes(8, 2048)

    def test_checkpoint_smaller_than_saved_set(self):
        model = get_model("opt-1.3b")
        saved = sum(s for _, s in saved_activation_tensors(model, 8, 2048))
        assert checkpoint_bytes(model, 8, 2048) < saved / 5

    def test_logits_scale_with_vocab(self):
        model = get_model("gpt-neox-20b")
        assert logits_bytes(model, 1, 2048) == 2048 * model.vocab_size * 2

    def test_workspace_and_dgrad_are_unit_sized(self):
        model = get_model("opt-13b")
        unit = model.activation_bytes(4, 2048)
        assert workspace_bytes(model, 4, 2048) == unit
        assert dgrad_bytes(model, 4, 2048) == unit


class TestRecomputePieces:
    def test_pieces_sum_to_total(self):
        for salt in range(50):
            pieces = recompute_piece_sizes(64 * MB, salt)
            assert sum(pieces) == 64 * MB

    def test_pieces_are_uneven_and_positive(self):
        pieces = recompute_piece_sizes(64 * MB, 3)
        assert all(p > 0 for p in pieces)

    def test_salt_changes_split(self):
        splits = {tuple(recompute_piece_sizes(64 * MB, s)) for s in range(20)}
        assert len(splits) > 5

    def test_deterministic_per_salt(self):
        assert recompute_piece_sizes(10 * MB, 7) == recompute_piece_sizes(10 * MB, 7)

    def test_tiny_total_survives(self):
        pieces = recompute_piece_sizes(1024, 1)
        assert sum(pieces) == 1024


class TestStrategySet:
    def test_label_roundtrip(self):
        for label in ("N", "R", "LR", "RO", "LRO"):
            assert StrategySet.from_label(label).label == label

    def test_label_order_insensitive(self):
        assert StrategySet.from_label("RL").label == "LR"

    def test_empty_label_is_none(self):
        strategies = StrategySet.from_label("N")
        assert not (strategies.recompute or strategies.lora or strategies.offload)

    def test_invalid_label_rejected(self):
        with pytest.raises(ValueError):
            StrategySet.from_label("XY")

    def test_irregularity_counts_sources(self):
        assert StrategySet.from_label("N").irregularity == 0
        assert StrategySet.from_label("LRO").irregularity == 3

    def test_lora_rank_cycles(self):
        strategies = StrategySet(lora=True)
        ranks = [strategies.lora_rank(layer) for layer in range(8)]
        assert ranks[:4] == LORA_RANKS
        assert ranks[4:] == LORA_RANKS

    def test_adapter_params_scale_with_rank(self):
        strategies = StrategySet(lora=True)
        assert strategies.adapter_params(1024, 3) > strategies.adapter_params(1024, 0)


class TestZeroSharding:
    def test_shard_divides_evenly(self):
        assert shard_bytes(1024, 4, alignment=1) == 256

    def test_shard_rounds_up(self):
        assert shard_bytes(1000, 3, alignment=256) == 512

    def test_single_gpu_no_sharding(self):
        config = ZeroConfig(n_gpus=1)
        assert not config.shards_params
        assert config.param_shard(1000) == 1000

    def test_stage3_shards(self):
        config = ZeroConfig(n_gpus=4, stage=3)
        assert config.shards_params
        assert config.param_shard(400 * MB) < 110 * MB

    def test_stage0_never_shards(self):
        config = ZeroConfig(n_gpus=4, stage=0)
        assert not config.shards_params

    def test_gather_is_full_layer(self):
        config = ZeroConfig(n_gpus=8)
        assert config.gather_bytes(100 * MB) == 100 * MB

    def test_bad_configs_rejected(self):
        with pytest.raises(ValueError):
            ZeroConfig(n_gpus=0)
        with pytest.raises(ValueError):
            ZeroConfig(n_gpus=2, stage=7)
        with pytest.raises(ValueError):
            shard_bytes(100, 0)


class TestPlatforms:
    def test_from_name_aliases(self):
        assert Platform.from_name("ds") is Platform.DEEPSPEED
        assert Platform.from_name("CAI") is Platform.COLOSSALAI
        assert Platform.from_name("fsdp") is Platform.FSDP

    def test_unknown_platform_rejected(self):
        with pytest.raises(ValueError):
            Platform.from_name("horovod")

    def test_profiles_differ(self):
        deepspeed = profile_for(Platform.DEEPSPEED)
        fsdp = profile_for(Platform.FSDP)
        assert deepspeed.prefetch_depth != fsdp.prefetch_depth

    def test_colossalai_rounds_gathers(self):
        rounded = round_gather(Platform.COLOSSALAI, 100 * MB)
        assert rounded >= 100 * MB
        assert rounded % (64 * MB) == 0

    def test_deepspeed_exact_gathers(self):
        assert round_gather(Platform.DEEPSPEED, 100 * MB) == 100 * MB
