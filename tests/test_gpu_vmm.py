"""Driver-contract tests for the simulated CUDA VMM API."""

import pytest

from repro.errors import (
    CudaInvalidAddressError,
    CudaInvalidValueError,
    CudaOutOfMemoryError,
)
from repro.gpu.device import GpuDevice
from repro.units import GB, MB


@pytest.fixture
def device():
    return GpuDevice(capacity=1 * GB)


@pytest.fixture
def vmm(device):
    return device.vmm


class TestReserve:
    def test_reserve_returns_address(self, vmm):
        va = vmm.mem_address_reserve(4 * MB)
        assert va > 0

    def test_reserve_counts_calls_and_time(self, vmm, device):
        t0 = device.clock.now_us
        vmm.mem_address_reserve(4 * MB)
        assert vmm.counters.reserve_calls == 1
        assert device.clock.now_us > t0

    def test_address_free_requires_no_mappings(self, vmm):
        va = vmm.mem_address_reserve(2 * MB)
        handle = vmm.mem_create(2 * MB)
        vmm.mem_map(va, 0, handle)
        with pytest.raises(CudaInvalidValueError):
            vmm.mem_address_free(va)

    def test_address_free_unknown_va(self, vmm):
        with pytest.raises(CudaInvalidAddressError):
            vmm.mem_address_free(0xDEAD)


class TestCreate:
    def test_create_commits_physical(self, vmm, device):
        vmm.mem_create(4 * MB)
        assert device.used_memory == 4 * MB

    def test_create_requires_granularity(self, vmm):
        with pytest.raises(CudaInvalidValueError):
            vmm.mem_create(3 * MB)

    def test_create_rejects_zero(self, vmm):
        with pytest.raises(CudaInvalidValueError):
            vmm.mem_create(0)

    def test_create_oom(self, vmm):
        with pytest.raises(CudaOutOfMemoryError):
            vmm.mem_create(2 * GB)


class TestMap:
    def test_map_within_reservation(self, vmm):
        va = vmm.mem_address_reserve(4 * MB)
        h1 = vmm.mem_create(2 * MB)
        h2 = vmm.mem_create(2 * MB)
        vmm.mem_map(va, 0, h1)
        vmm.mem_map(va, 2 * MB, h2)
        assert vmm.is_fully_mapped(va, 4 * MB)

    def test_map_beyond_reservation_rejected(self, vmm):
        va = vmm.mem_address_reserve(2 * MB)
        handle = vmm.mem_create(2 * MB)
        with pytest.raises(CudaInvalidAddressError):
            vmm.mem_map(va, 2 * MB, handle)

    def test_overlapping_map_rejected(self, vmm):
        va = vmm.mem_address_reserve(4 * MB)
        h1 = vmm.mem_create(2 * MB)
        h2 = vmm.mem_create(2 * MB)
        vmm.mem_map(va, 0, h1)
        with pytest.raises(CudaInvalidValueError):
            vmm.mem_map(va, 0, h2)

    def test_map_to_unreserved_va_rejected(self, vmm):
        handle = vmm.mem_create(2 * MB)
        with pytest.raises(CudaInvalidAddressError):
            vmm.mem_map(0xBEEF, 0, handle)

    def test_same_chunk_mappable_at_multiple_vas(self, vmm):
        """The aliasing property GMLake's stitching relies on."""
        handle = vmm.mem_create(2 * MB)
        va1 = vmm.mem_address_reserve(2 * MB)
        va2 = vmm.mem_address_reserve(2 * MB)
        vmm.mem_map(va1, 0, handle)
        vmm.mem_map(va2, 0, handle)
        assert vmm.is_fully_mapped(va1, 2 * MB)
        assert vmm.is_fully_mapped(va2, 2 * MB)

    def test_mappings_at_reports_layout(self, vmm):
        va = vmm.mem_address_reserve(4 * MB)
        h1 = vmm.mem_create(2 * MB)
        vmm.mem_map(va, 2 * MB, h1)
        assert vmm.mappings_at(va) == [(2 * MB, 2 * MB, h1)]


class TestSetAccess:
    def test_set_access_over_mapped_range(self, vmm):
        va = vmm.mem_address_reserve(4 * MB)
        for offset in (0, 2 * MB):
            vmm.mem_map(va, offset, vmm.mem_create(2 * MB))
        vmm.mem_set_access(va, 0, 4 * MB)
        assert vmm.counters.set_access_calls == 2  # one per chunk

    def test_set_access_over_hole_rejected(self, vmm):
        va = vmm.mem_address_reserve(4 * MB)
        vmm.mem_map(va, 0, vmm.mem_create(2 * MB))
        with pytest.raises(CudaInvalidAddressError):
            vmm.mem_set_access(va, 0, 4 * MB)

    def test_set_access_unknown_va(self, vmm):
        with pytest.raises(CudaInvalidAddressError):
            vmm.mem_set_access(0x123, 0, 2 * MB)


class TestUnmapRelease:
    def test_unmap_releases_physical_after_release(self, vmm, device):
        va = vmm.mem_address_reserve(2 * MB)
        handle = vmm.mem_create(2 * MB)
        vmm.mem_map(va, 0, handle)
        vmm.mem_release(handle)  # mapping still holds the chunk
        assert device.used_memory == 2 * MB
        vmm.mem_unmap(va, 0, 2 * MB)
        assert device.used_memory == 0

    def test_release_before_unmap_order_is_safe(self, vmm, device):
        """Either teardown order frees the chunk exactly once."""
        va = vmm.mem_address_reserve(2 * MB)
        handle = vmm.mem_create(2 * MB)
        vmm.mem_map(va, 0, handle)
        vmm.mem_unmap(va, 0, 2 * MB)
        assert device.used_memory == 2 * MB  # creation ref remains
        vmm.mem_release(handle)
        assert device.used_memory == 0

    def test_unmap_nothing_rejected(self, vmm):
        va = vmm.mem_address_reserve(2 * MB)
        with pytest.raises(CudaInvalidValueError):
            vmm.mem_unmap(va, 0, 2 * MB)

    def test_aliased_chunk_survives_one_unmap(self, vmm, device):
        handle = vmm.mem_create(2 * MB)
        va1 = vmm.mem_address_reserve(2 * MB)
        va2 = vmm.mem_address_reserve(2 * MB)
        vmm.mem_map(va1, 0, handle)
        vmm.mem_map(va2, 0, handle)
        vmm.mem_release(handle)
        vmm.mem_unmap(va1, 0, 2 * MB)
        assert device.used_memory == 2 * MB
        vmm.mem_unmap(va2, 0, 2 * MB)
        assert device.used_memory == 0

    def test_full_lifecycle_restores_device(self, vmm, device):
        va = vmm.mem_address_reserve(8 * MB)
        handles = []
        for offset in range(0, 8 * MB, 2 * MB):
            handle = vmm.mem_create(2 * MB)
            handles.append(handle)
            vmm.mem_map(va, offset, handle)
        vmm.mem_set_access(va, 0, 8 * MB)
        vmm.mem_unmap(va, 0, 8 * MB)
        for handle in handles:
            vmm.mem_release(handle)
        vmm.mem_address_free(va)
        assert device.used_memory == 0
        assert device.vaspace.live_count == 0


class TestRuntime:
    def test_cuda_malloc_free_cycle(self, device):
        runtime = device.runtime
        ptr = runtime.cuda_malloc(100 * MB)
        assert device.used_memory == 100 * MB
        assert runtime.size_of(ptr) == 100 * MB
        runtime.cuda_free(ptr)
        assert device.used_memory == 0

    def test_cuda_free_unknown_rejected(self, device):
        with pytest.raises(CudaInvalidAddressError):
            device.runtime.cuda_free(0x42)

    def test_cuda_malloc_oom(self, device):
        with pytest.raises(CudaOutOfMemoryError):
            device.runtime.cuda_malloc(2 * GB)

    def test_runtime_and_vmm_share_physical_budget(self, device):
        device.runtime.cuda_malloc(512 * MB)
        device.vmm.mem_create(256 * MB)
        assert device.used_memory == 768 * MB
        with pytest.raises(CudaOutOfMemoryError):
            device.vmm.mem_create(512 * MB)

    def test_counters_and_clock_advance(self, device):
        t0 = device.clock.now_us
        ptr = device.runtime.cuda_malloc(2 * MB)
        device.runtime.cuda_free(ptr)
        assert device.runtime.counters.malloc_calls == 1
        assert device.runtime.counters.free_calls == 1
        assert device.clock.now_us > t0

    def test_driver_time_accumulates(self, device):
        ptr = device.runtime.cuda_malloc(2 * MB)
        device.runtime.cuda_free(ptr)
        device.vmm.mem_create(2 * MB)
        assert device.driver_time_us() > 0
