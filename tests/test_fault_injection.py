"""Failure injection: allocators must stay consistent when the driver
throws OOM at arbitrary points inside multi-call operations.

GMLake's Alloc maps many chunks per block and its reclaim path tears
down and rebuilds state; a mid-operation ``cuMemCreate`` failure must
never leak chunks, strand VA reservations, or corrupt the pools.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.allocators import CachingAllocator, VmmNaiveAllocator
from repro.core import GMLakeAllocator
from repro.errors import OutOfMemoryError
from repro.testing import FlakyDevice
from repro.units import GB, MB


class TestGMLakeFaults:
    @pytest.mark.parametrize("fail_call", [1, 2, 5, 9, 10])
    def test_alloc_failure_mid_block_is_clean(self, fail_call):
        device = FlakyDevice(capacity=1 * GB, fail_on=[fail_call])
        allocator = GMLakeAllocator(device)
        # 20 MB = 10 chunks; the chosen create call fails. The reclaim
        # retry then succeeds (the failure is transient by injection).
        allocation = allocator.malloc(20 * MB)
        assert allocation.rounded_size == 20 * MB
        allocator.check_invariants()
        # No leaked chunks: reserved matches the pool exactly.
        assert device.used_memory == allocator.reserved_bytes

    def test_persistent_failure_surfaces_oom(self):
        device = FlakyDevice(capacity=1 * GB, fail_on=range(1, 1000))
        allocator = GMLakeAllocator(device)
        with pytest.raises(OutOfMemoryError):
            allocator.malloc(20 * MB)
        allocator.check_invariants()
        assert device.used_memory == 0
        assert device.vaspace.live_count == 0

    def test_failure_during_s4_shortfall_alloc(self):
        device = FlakyDevice(capacity=1 * GB, fail_on=[8])
        allocator = GMLakeAllocator(device)
        small = allocator.malloc(6 * MB)   # 3 chunks (calls 1-3)
        allocator.free(small)
        # 16 MB: stitches the 6 MB block with a new 10 MB block whose
        # 5 creates are calls 4-8 — call 8 fails mid-Alloc.
        allocation = allocator.malloc(16 * MB)
        assert allocation.rounded_size == 16 * MB
        allocator.check_invariants()

    @settings(max_examples=25)
    @given(st.sets(st.integers(1, 60), max_size=8))
    def test_random_fault_patterns_never_corrupt(self, fail_calls):
        device = FlakyDevice(capacity=1 * GB, fail_on=fail_calls)
        allocator = GMLakeAllocator(device)
        live = []
        for size in (10 * MB, 6 * MB, 30 * MB, 14 * MB, 22 * MB):
            try:
                live.append(allocator.malloc(size))
            except OutOfMemoryError:
                pass
            if len(live) > 2:
                allocator.free(live.pop(0))
        allocator.check_invariants()
        for allocation in live:
            allocator.free(allocation)
        allocator.check_invariants()
        allocator.empty_cache()
        assert device.used_memory == 0


class TestOtherAllocatorsFaults:
    def test_vmm_naive_mid_alloc_failure(self):
        device = FlakyDevice(capacity=1 * GB, fail_on=[3])
        allocator = VmmNaiveAllocator(device)
        with pytest.raises(OutOfMemoryError):
            allocator.malloc(10 * MB)  # 5 chunks, call 3 fails
        assert device.used_memory == 0
        assert device.vaspace.live_count == 0
        # The allocator remains usable afterwards.
        allocation = allocator.malloc(10 * MB)
        assert allocation.rounded_size == 10 * MB

    def test_caching_failure_then_reclaim(self):
        device = FlakyDevice(capacity=1 * GB, fail_on=[2])
        allocator = CachingAllocator(device)
        first = allocator.malloc(50 * MB)   # create call 1
        allocator.free(first)
        # Call 2 fails -> release_cached + retry (call 3) succeeds.
        allocation = allocator.malloc(100 * MB)
        assert allocation.rounded_size == 100 * MB
        allocator.check_invariants()
