"""Tests for model specs and the registry."""

import pytest

from repro.units import MB
from repro.workloads import MODELS, get_model


class TestRegistry:
    def test_contains_all_table2_models(self):
        for name in ("opt-1.3b", "gpt-2", "glm-10b", "opt-13b",
                     "vicuna-13b", "gpt-neox-20b"):
            assert name in MODELS

    def test_has_eight_models_for_summary(self):
        assert len(MODELS) == 8

    def test_get_model_case_insensitive(self):
        assert get_model("OPT-13B") is MODELS["opt-13b"]

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            get_model("bert-base")


class TestParameterArithmetic:
    """Parameter counts must land near the published model sizes."""

    @pytest.mark.parametrize("name,billions,tolerance", [
        ("opt-1.3b", 1.3, 0.25),
        ("gpt-2", 1.5, 0.3),
        ("opt-6.7b", 6.7, 0.8),
        ("llama-7b", 6.7, 1.0),
        ("glm-10b", 10.0, 1.5),
        ("opt-13b", 13.0, 1.5),
        ("vicuna-13b", 13.0, 1.5),
        ("gpt-neox-20b", 20.0, 2.0),
    ])
    def test_param_count_close_to_published(self, name, billions, tolerance):
        model = get_model(name)
        assert model.n_params / 1e9 == pytest.approx(billions, abs=tolerance)

    def test_params_split_layers_plus_embeddings(self):
        model = get_model("opt-13b")
        assert model.n_params == (
            model.n_layers * model.params_per_layer + model.embedding_params
        )

    def test_weight_bytes_fp16(self):
        model = get_model("opt-1.3b")
        assert model.weight_bytes == model.n_params * 2

    def test_activation_bytes(self):
        model = get_model("opt-1.3b")
        assert model.activation_bytes(8, 2048) == 8 * 2048 * 2048 * 2

    def test_layer_weight_bytes_positive_and_plausible(self):
        model = get_model("gpt-neox-20b")
        # 12·h² params ≈ 453M -> ~906 MB in fp16
        assert 800 * MB < model.layer_weight_bytes < 1000 * MB

    def test_str_mentions_size(self):
        assert "20." in str(get_model("gpt-neox-20b"))

    def test_specs_are_frozen(self):
        model = get_model("gpt-2")
        with pytest.raises(Exception):
            model.hidden = 1
