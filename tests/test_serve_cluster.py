"""Tests for the multi-replica serving front-end."""

import pytest

from repro.serve import (
    PoissonArrivals,
    ServingConfig,
    SloConfig,
    dispatch_requests,
    run_serving_cluster,
)
from repro.serve.request import ServeRequest


def make_request(req_id, arrival, prompt=256, output=128):
    return ServeRequest(req_id=req_id, arrival_s=arrival,
                        prompt_tokens=prompt, output_tokens=output)


class TestDispatch:
    def test_balances_equal_requests(self):
        requests = [make_request(i, 0.0) for i in range(4)]
        shards = dispatch_requests(requests, 2)
        assert [len(s) for s in shards] == [2, 2]

    def test_weighs_by_tokens(self):
        # One huge request saturates replica 0; the small ones go to 1.
        requests = [make_request(0, 0.0, prompt=2048, output=2048)]
        requests += [make_request(i, 0.0, prompt=64, output=16)
                     for i in range(1, 4)]
        shards = dispatch_requests(requests, 2)
        assert requests[0] in shards[0]
        assert len(shards[1]) >= 2

    def test_backlog_drains_over_time(self):
        # After a long quiet gap the backlogs equalize back to zero, so
        # dispatch returns to the first replica.
        requests = [make_request(0, 0.0, prompt=2048, output=2048),
                    make_request(1, 1000.0, prompt=64, output=16)]
        shards = dispatch_requests(requests, 2)
        assert requests[1] in shards[0]

    def test_single_replica_gets_everything(self):
        requests = [make_request(i, float(i)) for i in range(5)]
        shards = dispatch_requests(requests, 1)
        assert len(shards[0]) == 5

    def test_bad_replica_count(self):
        with pytest.raises(ValueError):
            dispatch_requests([], 0)


class TestClusterRun:
    def test_end_to_end(self):
        stream = PoissonArrivals(rate_per_s=4.0).generate(40, seed=2)
        result = run_serving_cluster(stream, "opt-1.3b", n_replicas=2,
                                     allocator="gmlake")
        assert result.n_replicas == 2
        assert len(result.requests) == 40
        assert {r.replica for r in result.requests} == {0, 1}
        report = result.report(SloConfig(ttft_s=60.0, tpot_s=60.0))
        assert report.completed == 40
        assert report.slo_attainment == 1.0

    def test_makespan_is_slowest_replica(self):
        stream = PoissonArrivals(rate_per_s=4.0).generate(30, seed=5)
        result = run_serving_cluster(stream, "opt-1.3b", n_replicas=3)
        assert result.makespan_s == max(
            r.makespan_s for r in result.replicas)

    def test_more_replicas_cut_latency_under_load(self):
        config = ServingConfig(max_batch=8)

        def p99(n_replicas):
            stream = PoissonArrivals(rate_per_s=12.0).generate(60, seed=4)
            result = run_serving_cluster(stream, "opt-1.3b",
                                         n_replicas=n_replicas,
                                         allocator="gmlake", config=config)
            return result.report().p99_latency_s

        assert p99(4) < p99(1)

    def test_memory_headlines_are_worst_replica(self):
        stream = PoissonArrivals(rate_per_s=4.0).generate(30, seed=6)
        result = run_serving_cluster(stream, "opt-1.3b", n_replicas=2)
        assert result.max_peak_reserved_gb == max(
            r.peak_reserved_gb for r in result.replicas)
        assert result.min_utilization == min(
            r.utilization for r in result.replicas)

    def test_summary_mentions_replicas(self):
        stream = PoissonArrivals(rate_per_s=2.0).generate(10, seed=0)
        result = run_serving_cluster(stream, "opt-1.3b", n_replicas=2)
        assert "2 replicas" in result.summary()
