"""Tests for the allocator memory-report module."""

import pytest

from repro.allocators import CachingAllocator, NativeAllocator
from repro.analysis import fragmentation_headroom, report_for
from repro.core import GMLakeAllocator
from repro.gpu.device import GpuDevice
from repro.units import GB, MB


@pytest.fixture
def device():
    return GpuDevice(capacity=2 * GB)


def strand_holes(allocator):
    """Allocate 8x40MB, free every other one: four 40 MB holes."""
    allocs = [allocator.malloc(40 * MB) for _ in range(8)]
    for alloc in allocs[::2]:
        allocator.free(alloc)
    return allocs[1::2]


class TestCachingReport:
    def test_accounts_free_blocks(self, device):
        allocator = CachingAllocator(device)
        strand_holes(allocator)
        report = report_for(allocator)
        assert report.free_block_count == 4
        assert report.free_bytes == 160 * MB
        assert report.largest_free_block == 40 * MB

    def test_max_servable_is_largest_hole(self, device):
        allocator = CachingAllocator(device)
        strand_holes(allocator)
        report = report_for(allocator)
        assert report.max_servable == 40 * MB  # holes cannot combine

    def test_headroom_zero_without_stitching(self, device):
        allocator = CachingAllocator(device)
        strand_holes(allocator)
        assert fragmentation_headroom(allocator) == 0

    def test_histogram_buckets(self, device):
        allocator = CachingAllocator(device)
        strand_holes(allocator)
        report = report_for(allocator)
        assert sum(report.free_histogram.values()) == 4

    def test_render_mentions_fields(self, device):
        allocator = CachingAllocator(device)
        strand_holes(allocator)
        text = report_for(allocator).render()
        assert "reserved" in text and "histogram" in text


class TestGMLakeReport:
    def test_max_servable_sums_stitchable(self, device):
        allocator = GMLakeAllocator(device)
        strand_holes(allocator)
        report = report_for(allocator)
        assert report.free_bytes == 160 * MB
        # Stitching fuses all four holes into one servable region.
        assert report.max_servable == 160 * MB

    def test_headroom_positive_with_stitching(self, device):
        allocator = GMLakeAllocator(device)
        strand_holes(allocator)
        assert fragmentation_headroom(allocator) == 120 * MB

    def test_headroom_matches_actual_allocability(self, device):
        """The reported headroom must be genuinely allocatable: a
        request of max_servable bytes succeeds without new physical
        memory."""
        allocator = GMLakeAllocator(device)
        strand_holes(allocator)
        report = report_for(allocator)
        used_before = device.used_memory
        allocator.malloc(report.max_servable)
        assert device.used_memory == used_before


class TestExpandableReport:
    def test_disjoint_holes_not_fused(self, device):
        from repro.allocators import ExpandableSegmentsAllocator
        allocator = ExpandableSegmentsAllocator(device)
        strand_holes(allocator)
        report = report_for(allocator)
        assert report.free_block_count == 4
        assert report.largest_free_block == 40 * MB
        assert report.max_servable == 40 * MB
        assert fragmentation_headroom(allocator) == 0


class TestGenericReport:
    def test_native_report(self, device):
        allocator = NativeAllocator(device, op_amplification=1)
        allocator.malloc(100 * MB)
        report = report_for(allocator)
        assert report.reserved_bytes == 100 * MB
        assert report.free_bytes == 0
        assert report.free_block_count == 0
