"""A minimal sorted-by-key collection built on ``bisect``.

Third-party ``sortedcontainers`` is not available offline, and both the
BFC caching allocator (free lists sorted by size then address) and the
GMLake pools (pBlocks/sBlocks sorted by size) need ordered sets with
O(log n) insert/remove/lookup.  This helper keeps a parallel key list so
``bisect`` can be used on arbitrary key functions across Python
versions.
"""

from __future__ import annotations

import bisect
from typing import Callable, Generic, Iterable, Iterator, List, Optional, Tuple, TypeVar

T = TypeVar("T")
K = TypeVar("K")


class SortedKeyList(Generic[T]):
    """A list of items kept sorted by ``key(item)``.

    Keys need not be unique; items with equal keys are kept in insertion
    order relative to each other.  ``remove`` matches by identity (``is``)
    among equal-key items, so mutable items are safe as long as their key
    does not change while they are in the list.
    """

    def __init__(self, key: Callable[[T], K], items: Optional[Iterable[T]] = None):
        self._key = key
        self._keys: List[K] = []
        self._items: List[T] = []
        if items is not None:
            for item in items:
                self.add(item)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __contains__(self, item: T) -> bool:
        idx = self._find(item)
        return idx is not None

    def __getitem__(self, index: int) -> T:
        return self._items[index]

    def _find(self, item: T) -> Optional[int]:
        key = self._key(item)
        lo = bisect.bisect_left(self._keys, key)
        while lo < len(self._keys) and self._keys[lo] == key:
            if self._items[lo] is item:
                return lo
            lo += 1
        return None

    def add(self, item: T) -> None:
        """Insert ``item`` in key order."""
        key = self._key(item)
        idx = bisect.bisect_right(self._keys, key)
        self._keys.insert(idx, key)
        self._items.insert(idx, item)

    def remove(self, item: T) -> None:
        """Remove ``item`` (matched by identity). Raises ValueError if absent."""
        idx = self._find(item)
        if idx is None:
            raise ValueError(f"item not in SortedKeyList: {item!r}")
        del self._keys[idx]
        del self._items[idx]

    def discard(self, item: T) -> bool:
        """Remove ``item`` if present; return whether it was removed."""
        idx = self._find(item)
        if idx is None:
            return False
        del self._keys[idx]
        del self._items[idx]
        return True

    def first_at_least(self, key: K) -> Optional[T]:
        """Smallest-keyed item with ``key(item) >= key`` (best fit)."""
        idx = bisect.bisect_left(self._keys, key)
        if idx < len(self._items):
            return self._items[idx]
        return None

    def index_at_least(self, key: K) -> int:
        """Index of the first item with key >= ``key`` (may be len)."""
        return bisect.bisect_left(self._keys, key)

    def pop_index(self, index: int) -> T:
        """Remove and return the item at ``index``."""
        item = self._items.pop(index)
        del self._keys[index]
        return item

    def items_descending(self) -> Iterator[T]:
        """Iterate items from largest key to smallest."""
        return reversed(self._items)

    def min(self) -> Optional[T]:
        """Smallest-keyed item, or None when empty."""
        return self._items[0] if self._items else None

    def max(self) -> Optional[T]:
        """Largest-keyed item, or None when empty."""
        return self._items[-1] if self._items else None

    def clear(self) -> None:
        """Remove every item."""
        self._keys.clear()
        self._items.clear()

    def as_list(self) -> List[T]:
        """A shallow copy of the items in key order."""
        return list(self._items)

    def check_sorted(self) -> bool:
        """Invariant check used by property tests."""
        return all(a <= b for a, b in zip(self._keys, self._keys[1:]))


def sorted_pairs(items: Iterable[Tuple[K, T]]) -> List[T]:
    """Sort ``(key, item)`` pairs by key and return the items."""
    return [item for _, item in sorted(items, key=lambda kv: kv[0])]
