"""Sorted-by-key collections built on ``bisect``.

Third-party ``sortedcontainers`` is not available offline, and both the
BFC caching allocator (free lists sorted by size then address) and the
GMLake pools (pBlocks/sBlocks sorted by size) need ordered sets with
cheap insert/remove/lookup.  Two implementations share one API:

* :class:`SortedKeyList` — a flat parallel key/item list.  ``bisect``
  makes lookups O(log n), but every insert/delete pays an O(n)
  ``list.insert`` memmove, which dominates once a free pool holds
  thousands of blocks.
* :class:`ChunkedSortedKeyList` — the same contract over fixed-load
  chunks (the ``sortedcontainers`` design): inserts and deletes touch
  one bounded chunk, so the memmove cost stays O(load) however large
  the pool grows.

The hot-path microbench (``benchmarks/hotpaths.py``, scenario
``caching_large_pool``) measured the chunked list against size-bucketed
bins for the allocator free pools; the chunked list won (bins degrade
to per-bin linear scans under the allocators' long-tailed size
distributions) and is what :class:`~repro.allocators.caching.
CachingAllocator` and the GMLake pools use.
"""

from __future__ import annotations

import bisect
from typing import Callable, Generic, Iterable, Iterator, List, Optional, Tuple, TypeVar

T = TypeVar("T")
K = TypeVar("K")


class SortedKeyList(Generic[T]):
    """A list of items kept sorted by ``key(item)``.

    Keys need not be unique; items with equal keys are kept in insertion
    order relative to each other.  ``remove`` matches by identity (``is``)
    among equal-key items, so mutable items are safe as long as their key
    does not change while they are in the list.
    """

    def __init__(self, key: Callable[[T], K], items: Optional[Iterable[T]] = None):
        self._key = key
        self._keys: List[K] = []
        self._items: List[T] = []
        if items is not None:
            for item in items:
                self.add(item)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __contains__(self, item: T) -> bool:
        idx = self._find(item)
        return idx is not None

    def __getitem__(self, index: int) -> T:
        return self._items[index]

    def _find(self, item: T) -> Optional[int]:
        key = self._key(item)
        lo = bisect.bisect_left(self._keys, key)
        while lo < len(self._keys) and self._keys[lo] == key:
            if self._items[lo] is item:
                return lo
            lo += 1
        return None

    def add(self, item: T) -> None:
        """Insert ``item`` in key order."""
        key = self._key(item)
        idx = bisect.bisect_right(self._keys, key)
        self._keys.insert(idx, key)
        self._items.insert(idx, item)

    def remove(self, item: T) -> None:
        """Remove ``item`` (matched by identity). Raises ValueError if absent."""
        idx = self._find(item)
        if idx is None:
            raise ValueError(f"item not in SortedKeyList: {item!r}")
        del self._keys[idx]
        del self._items[idx]

    def discard(self, item: T) -> bool:
        """Remove ``item`` if present; return whether it was removed."""
        idx = self._find(item)
        if idx is None:
            return False
        del self._keys[idx]
        del self._items[idx]
        return True

    def first_at_least(self, key: K) -> Optional[T]:
        """Smallest-keyed item with ``key(item) >= key`` (best fit)."""
        idx = bisect.bisect_left(self._keys, key)
        if idx < len(self._items):
            return self._items[idx]
        return None

    def index_at_least(self, key: K) -> int:
        """Index of the first item with key >= ``key`` (may be len)."""
        return bisect.bisect_left(self._keys, key)

    def pop_index(self, index: int) -> T:
        """Remove and return the item at ``index``."""
        item = self._items.pop(index)
        del self._keys[index]
        return item

    def items_descending(self) -> Iterator[T]:
        """Iterate items from largest key to smallest."""
        return reversed(self._items)

    def min(self) -> Optional[T]:
        """Smallest-keyed item, or None when empty."""
        return self._items[0] if self._items else None

    def max(self) -> Optional[T]:
        """Largest-keyed item, or None when empty."""
        return self._items[-1] if self._items else None

    def clear(self) -> None:
        """Remove every item."""
        self._keys.clear()
        self._items.clear()

    def as_list(self) -> List[T]:
        """A shallow copy of the items in key order."""
        return list(self._items)

    def check_sorted(self) -> bool:
        """Invariant check used by property tests."""
        return all(a <= b for a, b in zip(self._keys, self._keys[1:]))


class ChunkedSortedKeyList(Generic[T]):
    """A sorted-by-key collection over fixed-load chunks.

    Same contract as :class:`SortedKeyList` (equal keys keep insertion
    order, ``remove`` matches by identity, keys must not change while
    an item is held), but items live in chunks of at most ``2 * load``
    entries with a per-chunk ``max`` index — an insert or delete
    memmoves one chunk, not the whole collection, so per-op cost is
    O(log n + load) instead of O(n).
    """

    def __init__(self, key: Callable[[T], K],
                 items: Optional[Iterable[T]] = None, load: int = 512):
        if load < 1:
            raise ValueError(f"load must be >= 1, got {load}")
        self._key = key
        self._load = load
        self._keys: List[List[K]] = []
        self._items: List[List[T]] = []
        self._maxes: List[K] = []
        self._len = 0
        if items is not None:
            for item in items:
                self.add(item)

    def __len__(self) -> int:
        return self._len

    def __iter__(self) -> Iterator[T]:
        for chunk in self._items:
            yield from chunk

    def __contains__(self, item: T) -> bool:
        return self._locate(item) is not None

    def __getitem__(self, index: int) -> T:
        if index < 0:
            index += self._len
        if not 0 <= index < self._len:
            raise IndexError("ChunkedSortedKeyList index out of range")
        for chunk in self._items:
            if index < len(chunk):
                return chunk[index]
            index -= len(chunk)
        raise IndexError("ChunkedSortedKeyList index out of range")  # pragma: no cover

    # ------------------------------------------------------------------
    def _locate(self, item: T) -> Optional[Tuple[int, int]]:
        """(chunk, position) of ``item`` by identity, or None.

        Equal keys may spill across chunk boundaries, so the identity
        scan continues into following chunks while the key matches.
        """
        if not self._len:
            return None
        key = self._key(item)
        ci = bisect.bisect_left(self._maxes, key)
        while ci < len(self._maxes):
            keys = self._keys[ci]
            chunk = self._items[ci]
            pos = bisect.bisect_left(keys, key)
            while pos < len(keys) and keys[pos] == key:
                if chunk[pos] is item:
                    return ci, pos
                pos += 1
            if pos < len(keys):
                return None  # ran into a larger key: item absent
            ci += 1
        return None

    def _delete(self, ci: int, pos: int) -> T:
        item = self._items[ci].pop(pos)
        del self._keys[ci][pos]
        if self._keys[ci]:
            self._maxes[ci] = self._keys[ci][-1]
        else:
            del self._keys[ci]
            del self._items[ci]
            del self._maxes[ci]
        self._len -= 1
        return item

    # ------------------------------------------------------------------
    def add(self, item: T) -> None:
        """Insert ``item`` in key order (after equal keys)."""
        key = self._key(item)
        maxes = self._maxes
        if not maxes:
            self._keys.append([key])
            self._items.append([item])
            maxes.append(key)
            self._len = 1
            return
        if key >= maxes[-1]:
            ci = len(maxes) - 1
        else:
            ci = bisect.bisect_right(maxes, key)
        keys = self._keys[ci]
        pos = bisect.bisect_right(keys, key)
        keys.insert(pos, key)
        self._items[ci].insert(pos, item)
        maxes[ci] = keys[-1]
        self._len += 1
        if len(keys) > 2 * self._load:
            half = len(keys) // 2
            self._keys.insert(ci + 1, keys[half:])
            self._items.insert(ci + 1, self._items[ci][half:])
            del keys[half:]
            del self._items[ci][half:]
            maxes[ci] = keys[-1]
            maxes.insert(ci + 1, self._keys[ci + 1][-1])

    def remove(self, item: T) -> None:
        """Remove ``item`` (matched by identity). Raises ValueError if absent."""
        # Inlined _locate + _delete: this runs once per allocator free,
        # so the extra call layers are worth avoiding.
        key = self._key(item)
        maxes = self._maxes
        ci = bisect.bisect_left(maxes, key)
        while ci < len(maxes):
            keys = self._keys[ci]
            chunk = self._items[ci]
            pos = bisect.bisect_left(keys, key)
            while pos < len(keys) and keys[pos] == key:
                if chunk[pos] is item:
                    del chunk[pos]
                    del keys[pos]
                    if keys:
                        maxes[ci] = keys[-1]
                    else:
                        del self._keys[ci]
                        del self._items[ci]
                        del maxes[ci]
                    self._len -= 1
                    return
                pos += 1
            if pos < len(keys):
                break
            ci += 1
        raise ValueError(f"item not in ChunkedSortedKeyList: {item!r}")

    def discard(self, item: T) -> bool:
        """Remove ``item`` if present; return whether it was removed."""
        found = self._locate(item)
        if found is None:
            return False
        self._delete(*found)
        return True

    # ------------------------------------------------------------------
    def first_at_least(self, key: K) -> Optional[T]:
        """Smallest-keyed item with ``key(item) >= key`` (best fit)."""
        maxes = self._maxes
        if not maxes or key > maxes[-1]:
            return None
        ci = 0 if len(maxes) == 1 else bisect.bisect_left(maxes, key)
        pos = bisect.bisect_left(self._keys[ci], key)
        return self._items[ci][pos]

    def iter_from(self, key: K) -> Iterator[T]:
        """Iterate items with ``key(item) >= key`` in key order."""
        ci = bisect.bisect_left(self._maxes, key)
        if ci == len(self._maxes):
            return
        pos = bisect.bisect_left(self._keys[ci], key)
        yield from self._items[ci][pos:]
        for chunk in self._items[ci + 1:]:
            yield from chunk

    def index_at_least(self, key: K) -> int:
        """Index of the first item with key >= ``key`` (may be len)."""
        ci = bisect.bisect_left(self._maxes, key)
        if ci == len(self._maxes):
            return self._len
        pos = bisect.bisect_left(self._keys[ci], key)
        return sum(len(chunk) for chunk in self._items[:ci]) + pos

    def pop_index(self, index: int) -> T:
        """Remove and return the item at ``index``."""
        if index < 0:
            index += self._len
        if not 0 <= index < self._len:
            raise IndexError("ChunkedSortedKeyList index out of range")
        for ci, chunk in enumerate(self._items):
            if index < len(chunk):
                return self._delete(ci, index)
            index -= len(chunk)
        raise IndexError("ChunkedSortedKeyList index out of range")  # pragma: no cover

    def items_descending(self) -> Iterator[T]:
        """Iterate items from largest key to smallest."""
        for chunk in reversed(self._items):
            yield from reversed(chunk)

    def min(self) -> Optional[T]:
        """Smallest-keyed item, or None when empty."""
        return self._items[0][0] if self._len else None

    def max(self) -> Optional[T]:
        """Largest-keyed item, or None when empty."""
        return self._items[-1][-1] if self._len else None

    def clear(self) -> None:
        """Remove every item."""
        self._keys.clear()
        self._items.clear()
        self._maxes.clear()
        self._len = 0

    def as_list(self) -> List[T]:
        """A shallow copy of the items in key order."""
        out: List[T] = []
        for chunk in self._items:
            out.extend(chunk)
        return out

    def check_sorted(self) -> bool:
        """Invariant check used by property tests."""
        flat: List[K] = []
        for keys, chunk, chunk_max in zip(self._keys, self._items,
                                          self._maxes):
            if not keys or len(keys) != len(chunk):
                return False
            if keys[-1] != chunk_max:
                return False
            flat.extend(keys)
        if len(flat) != self._len:
            return False
        return all(a <= b for a, b in zip(flat, flat[1:]))


def sorted_pairs(items: Iterable[Tuple[K, T]]) -> List[T]:
    """Sort ``(key, item)`` pairs by key and return the items."""
    return [item for _, item in sorted(items, key=lambda kv: kv[0])]
