"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
compare          Run one workload under several allocator specs side by side.
run              Run a JSON experiment file (any mode) via ``repro.api``;
                 ``--sweep --jobs N`` fans the points over N processes.
sweep            Sweep one axis (strategies / gpus / batch) of a workload.
trace            Generate a workload's allocation trace to a JSONL file.
replay           Replay a JSONL trace against an allocator spec.
serve            Online serving simulation with live admission control.
microbench       Print the Figure 6 / Table 1 VMM latency tables.
models           List the model registry.
list-allocators  List the allocator registry with tunable parameters.
list-components  List every registered component kind (allocators,
                 KV caches, schedulers, arrivals, preemption policies,
                 autoscalers, trace sinks) with tunable parameters.

Anywhere a component is named, the full :class:`repro.api.ComponentSpec`
mini-DSL works — ``gmlake?chunk_mb=512&stitching=off`` configures GMLake,
``memory-aware?margin=1.5`` a scheduler, ``closed-loop?clients=8`` an
arrival process, ``nvlink?gb_per_s=300`` an interconnect,
``swap?interconnect=pcie?gb_per_s=12`` a preemption policy —
without any Python-side factory code.

Examples
--------
python -m repro compare --model opt-13b --batch 4 --gpus 4 --strategies LR \\
    --allocators "caching,gmlake?chunk_mb=512&stitching=off"
python -m repro run --spec experiment.json
python -m repro run --spec sweep.json --sweep --jobs 4
python -m repro sweep --axis gpus --model opt-13b --values 1,2,4,8,16
python -m repro trace --model gpt-2 --batch 8 --out /tmp/gpt2.jsonl
python -m repro replay --in /tmp/gpt2.jsonl --allocator "gmlake?spool=64"
python -m repro serve --model opt-13b --arrival poisson --rate 2.0 \\
    --allocator gmlake
python -m repro serve --model opt-1.3b --allocator caching --capacity 4GB \\
    --kv-cache "paged?block_tokens=16"
python -m repro serve --model opt-1.3b --allocator gmlake --capacity 6GB \\
    --arrivals "closed-loop?clients=8&think_s=0.5" --preemption swap
python -m repro serve --model opt-1.3b --allocator caching --capacity 4GB \\
    --trace /tmp/trace.json --gauges --streaming
python -m repro serve --model opt-1.3b --allocator gmlake --capacity 6GB \\
    --disagg --prefill-replicas 2 --decode-replicas 2 \\
    --interconnect "nvlink?gb_per_s=300"
python -m repro list-components --kind preemption
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import format_table
from repro.analysis.experiments import (
    batch_sweep,
    scaleout_sweep,
    strategy_sweep,
)
from repro.analysis.observability import format_gauges
from repro.analysis.serving import format_serving_summary, format_tenant_summary
from repro.api import (
    AllocatorSpec,
    ExperimentSpec,
    SpecError,
    allocator_names,
    component_kinds,
    expand_spec_points,
    iter_allocators,
    iter_components,
    kind_label,
    run_result_row,
    run_sweep,
    sweep_rows,
)
from repro.api import run as run_experiment
from repro.errors import AllocatorError
from repro.gpu.device import GpuDevice
from repro.obs import GaugeSampler, TraceRecorder, TraceSpec
from repro.serve import (
    KV_CACHE_MODELS,
    ArrivalSpec,
    AutoscalerSpec,
    FaultsSpec,
    InterconnectSpec,
    KVCacheSpec,
    LengthSampler,
    MMPPArrivals,
    PoissonArrivals,
    PreemptionSpec,
    ReplayArrivals,
    RetrySpec,
    SchedulerSpec,
    ServingConfig,
    SloConfig,
    interconnect_names,
    kv_cache_names,
    load_arrival_log,
    memory_tier_names,
    parse_memory_tiers,
    run_serving,
    run_serving_cluster,
    run_serving_disagg,
    scheduler_names,
)
from repro.sim.engine import run_trace, run_workload
from repro.units import GB, MB, parse_size
from repro.workloads import MODELS, TrainingWorkload
from repro.workloads.traceio import load_trace, save_trace


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default="opt-13b",
                        help="model registry name (see `models`)")
    parser.add_argument("--batch", type=int, default=4,
                        help="per-GPU micro-batch size")
    parser.add_argument("--gpus", type=int, default=4,
                        help="data-parallel world size")
    parser.add_argument("--strategies", default="LR",
                        help="strategy label: N, R, LR, RO, LRO, ...")
    parser.add_argument("--platform", default="deepspeed",
                        help="deepspeed | fsdp | colossalai")
    parser.add_argument("--iterations", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)


def _workload_from(args: argparse.Namespace) -> TrainingWorkload:
    return TrainingWorkload(
        args.model, batch_size=args.batch, n_gpus=args.gpus,
        strategies=args.strategies, platform=args.platform,
        iterations=args.iterations, seed=args.seed,
    )


def _parse_spec_list(text: str) -> List[AllocatorSpec]:
    """Parse a comma-separated list of allocator spec strings."""
    specs = [AllocatorSpec.parse(item)
             for item in text.split(",") if item.strip()]
    if not specs:
        raise SpecError(f"no allocator specs in {text!r}")
    return specs


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def _run_spec_file(path: str) -> int:
    """Run a JSON ``ExperimentSpec`` file and print the uniform table."""
    spec = ExperimentSpec.load(path)
    results = run_experiment(spec)
    rows = [run_result_row(result) for result in results]
    print(format_table(rows, title=f"experiment: mode={spec.mode}"))
    for result in results:
        extras = ", ".join(f"{k}={v:.3f}" if isinstance(v, float) else f"{k}={v}"
                           for k, v in result.extras().items())
        print(f"  {result.allocator_name}: {extras}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    if args.spec:
        return _run_spec_file(args.spec)
    workload = _workload_from(args)
    rows = []
    for spec in _parse_spec_list(args.allocators):
        result = run_workload(workload, spec, capacity=args.capacity)
        row = run_result_row(result)
        row["allocator"] = spec.label
        rows.append(row)
    print(format_table(rows, title=f"workload: {workload.label}"))
    return 0


def _run_sweep_file(path: str, jobs: Optional[int]) -> int:
    """Run a sweep file (a JSON list of experiments, or one experiment
    expanded into per-allocator points) across ``jobs`` processes."""
    import json as _json

    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        data = _json.loads(text)
    except _json.JSONDecodeError as exc:
        # Same clean SpecError path the non-sweep `run` takes.
        raise SpecError(f"invalid JSON in sweep spec: {exc}") from exc
    if jobs is not None and jobs < 1:
        if jobs == 0:
            jobs = None  # the benches' REPRO_SWEEP_JOBS=0 'auto' idiom
        else:
            raise SpecError(f"--jobs must be >= 1 (or 0 for auto), got {jobs}")
    if isinstance(data, list):
        specs = []
        for i, point in enumerate(data):
            if not isinstance(point, dict):
                raise SpecError(
                    f"sweep point #{i} must be a JSON object, "
                    f"got {type(point).__name__}")
            specs.append(ExperimentSpec.from_dict(point))
    elif isinstance(data, dict):
        specs = expand_spec_points(ExperimentSpec.from_dict(data))
    else:
        raise SpecError(
            "sweep spec must be a JSON object or list, "
            f"got {type(data).__name__}")
    results = run_sweep(specs, jobs=jobs)
    effective = jobs if jobs is not None else "auto"
    print(format_table(
        sweep_rows(specs, results),
        title=f"sweep: {len(specs)} points (jobs={effective})"))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    if args.sweep:
        return _run_sweep_file(args.spec, args.jobs)
    if args.jobs is not None:
        print("run: --jobs requires --sweep (a single experiment "
              "runs in-process)", file=sys.stderr)
        return 2
    return _run_spec_file(args.spec)


def cmd_sweep(args: argparse.Namespace) -> int:
    values = None
    if args.values and args.axis != "strategies":
        values = [int(v) for v in args.values.split(",")]
    if args.axis == "strategies":
        combos = args.values.split(",") if args.values else (
            "N", "R", "LR", "RO", "LRO")
        rows = strategy_sweep(args.model, batch_size=args.batch,
                              combos=combos, n_gpus=args.gpus,
                              iterations=args.iterations)
        key = "strategies"
    elif args.axis == "gpus":
        rows = scaleout_sweep(args.model, batch_size=args.batch,
                              gpu_counts=values or (1, 2, 4, 8, 16),
                              strategies=args.strategies,
                              iterations=args.iterations)
        key = "n_gpus"
    elif args.axis == "batch":
        rows = batch_sweep(args.model, batch_sizes=values or (4, 8, 16, 32),
                           n_gpus=args.gpus, strategies=args.strategies,
                           iterations=args.iterations)
        key = "batch_size"
    else:
        print(f"unknown sweep axis {args.axis!r}", file=sys.stderr)
        return 2
    table = []
    for row in rows:
        table.append({
            args.axis: row.baseline.meta[key],
            "UR caching": round(row.baseline.utilization_ratio, 3),
            "UR gmlake": round(row.gmlake.utilization_ratio, 3),
            "RM caching (GB)": round(row.baseline.peak_reserved_gb, 2),
            "RM gmlake (GB)": round(row.gmlake.peak_reserved_gb, 2),
            "caching OOM": row.baseline.oom,
            "gmlake OOM": row.gmlake.oom,
        })
    print(format_table(table, title=f"sweep {args.axis}: {args.model}"))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    workload = _workload_from(args)
    trace = workload.build_trace()
    trace.validate()
    save_trace(trace, args.out)
    stats = trace.stats()
    print(f"wrote {len(trace)} events to {args.out} ({stats})")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    trace = load_trace(args.infile)
    device = GpuDevice(capacity=args.capacity)
    allocator = AllocatorSpec.parse(args.allocator).build(device)
    result = run_trace(allocator, trace)
    print(result.summary())
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    try:
        return _cmd_serve(args)
    except (KeyError, ValueError) as exc:
        # Config errors (unknown allocator/model, bad rates, ...) are
        # user errors, not crashes.
        message = exc.args[0] if exc.args else exc
        print(f"serve: {message}", file=sys.stderr)
        return 2
    except AllocatorError as exc:
        # E.g. the model's weights alone exceed --capacity.
        print(f"serve: {exc}", file=sys.stderr)
        return 2


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.spec:
        return _run_spec_file(args.spec)
    if args.tenants:
        # --tenants is sugar over the multi-tenant arrivals component;
        # a full --arrivals spec already says everything.
        if args.arrivals:
            print("serve: --tenants conflicts with --arrivals; encode the "
                  "tenant count in the spec, e.g. "
                  "'multi-tenant?tenants=8&rate=4'", file=sys.stderr)
            return 2
        if args.tenants < 1:
            print(f"serve: --tenants must be >= 1, got {args.tenants}",
                  file=sys.stderr)
            return 2
        args.arrivals = (f"multi-tenant?tenants={args.tenants}"
                         f"&rate={args.rate:g}"
                         f"&shared_prefix_tokens={args.shared_prefix}")
    if args.arrivals:
        # One spec string names the whole arrival process — the
        # registry-validated path (replay/closed-loop live here too).
        arrival_spec = ArrivalSpec.parse(args.arrivals)
        arrivals = arrival_spec.build()
        shape = arrival_spec.label
    elif args.arrival == "poisson":
        arrivals = PoissonArrivals(rate_per_s=args.rate)
        shape = f"poisson rate={args.rate:g}/s"
    elif args.arrival == "mmpp":
        burst = args.burst_rate if args.burst_rate else 4.0 * args.rate
        arrivals = MMPPArrivals(rate_calm_per_s=args.rate,
                                rate_burst_per_s=burst,
                                mean_dwell_s=args.dwell)
        shape = f"mmpp rate={args.rate:g}/s"
    elif args.arrival == "replay":
        if not args.arrival_log:
            print("--arrival replay requires --arrival-log", file=sys.stderr)
            return 2
        arrivals = ReplayArrivals(load_arrival_log(args.arrival_log))
        shape = "replay"
    else:  # argparse choices make this unreachable
        print(f"unknown arrival process {args.arrival!r}", file=sys.stderr)
        return 2

    if args.gpus < 1:
        raise ValueError(f"--gpus must be >= 1, got {args.gpus}")
    n_requests = args.requests
    if isinstance(arrivals, ReplayArrivals):
        n_requests = min(n_requests, len(arrivals.times))
    lengths = LengthSampler(mean_prompt=args.mean_prompt,
                            mean_output=args.mean_output)
    config = ServingConfig(max_batch=args.max_batch,
                           queue_timeout_s=args.timeout)
    slo = SloConfig(ttft_s=args.slo_ttft, tpot_s=args.slo_tpot)

    # Parse every component spec up front: a typo fails before any
    # simulation runs, with the registry's known-names message.
    if args.prefix_sharing:
        kv = KVCacheSpec.parse(args.kv_cache)
        if kv.info.name == "paged" or args.kv_cache == "chunked":
            # Rewrite the paged model (or the untouched chunked
            # default) to the prefix-sharing variant, keeping params.
            query = "&".join(f"{k}={v}" for k, v in sorted(kv.params.items()))
            args.kv_cache = "paged-shared" + (f"?{query}" if query else "")
        elif kv.info.name != "paged-shared":
            print(f"serve: --prefix-sharing needs a paged KV cache, got "
                  f"--kv-cache {args.kv_cache!r} (use 'paged' or "
                  f"'paged-shared')", file=sys.stderr)
            return 2
    kv_spec = KVCacheSpec.parse(args.kv_cache)
    scheduler_spec = SchedulerSpec.parse(args.scheduler)
    preemption_spec = PreemptionSpec.parse(args.preemption)
    autoscaler_spec = AutoscalerSpec.parse(args.autoscaler)
    interconnect_spec = InterconnectSpec.parse(args.interconnect)
    faults_spec = FaultsSpec.parse(args.faults)
    retry_spec = RetrySpec.parse(args.retry)
    tier_specs = parse_memory_tiers(args.memory_tiers)
    memory_tiers = ",".join(t.spec_string() for t in tier_specs)
    if memory_tiers and preemption_spec.name == "swap":
        print("serve: --memory-tiers generalizes swap preemption's single "
              "host hop; use --preemption recompute (the default) with a "
              "tier hierarchy, or drop --memory-tiers to keep legacy swap",
              file=sys.stderr)
        return 2
    if args.disagg and args.gpus > 1:
        print("serve: --disagg sizes its fleets with --prefill-replicas/"
              "--decode-replicas; drop --gpus", file=sys.stderr)
        return 2
    if args.disagg and (args.prefill_replicas < 1
                        or args.decode_replicas < 1):
        print("serve: --prefill-replicas and --decode-replicas must be "
              ">= 1", file=sys.stderr)
        return 2
    if (autoscaler_spec.name != "none" and args.gpus < 2
            and not args.disagg):
        print("serve: --autoscaler needs --gpus >= 2 "
              "(a single replica has nothing to scale)", file=sys.stderr)
        return 2
    allocator_specs = _parse_spec_list(args.allocator)
    if args.trace and len(allocator_specs) > 1:
        print("serve: --trace records one run; pass a single allocator "
              "spec (or use an ExperimentSpec, which writes one trace "
              "file per allocator)", file=sys.stderr)
        return 2
    recorder = TraceRecorder() if args.trace else None
    gauges = GaugeSampler(args.gauge_every) if args.gauges else None
    reports = {}
    gauge_points = []
    phase_rows = []
    tenant_tables = []
    for spec in allocator_specs:
        # Regenerate per allocator: the simulator mutates the requests.
        stream = arrivals.generate(n_requests, lengths, seed=args.seed)
        if args.disagg:
            result = run_serving_disagg(
                stream, args.model,
                prefill_replicas=args.prefill_replicas,
                decode_replicas=args.decode_replicas, allocator=spec,
                capacity=args.capacity, scheduler=scheduler_spec,
                config=config, kv_cache=kv_spec,
                preemption=preemption_spec, autoscaler=autoscaler_spec,
                interconnect=interconnect_spec, trace=recorder,
                gauges=gauges, faults=faults_spec, retry=retry_spec,
                memory_tiers=memory_tiers)
            if gauges is not None:
                gauge_points.extend(result.gauge_points)
        elif args.gpus > 1:
            result = run_serving_cluster(
                stream, args.model, n_replicas=args.gpus, allocator=spec,
                capacity=args.capacity, scheduler=scheduler_spec,
                config=config, kv_cache=kv_spec,
                preemption=preemption_spec, autoscaler=autoscaler_spec,
                trace=recorder, gauges=gauges, faults=faults_spec,
                retry=retry_spec, memory_tiers=memory_tiers)
            if gauges is not None:
                gauge_points.extend(result.gauge_points)
        else:
            result = run_serving(
                stream, args.model, allocator=spec, capacity=args.capacity,
                scheduler=scheduler_spec, config=config, kv_cache=kv_spec,
                preemption=preemption_spec, trace=recorder, gauges=gauges,
                faults=faults_spec, retry=retry_spec,
                memory_tiers=memory_tiers)
            if gauges is not None:
                gauge_points.extend(result.gauges)
        reports[spec.label] = result.report(slo, streaming=args.streaming)
        population = getattr(result, "requests", [])
        if any(r.tenant for r in population):
            tenant_tables.append(format_tenant_summary(
                population, result.makespan_s,
                title=f"per-tenant serving summary ({spec.label})", slo=slo))
        if args.disagg:
            # Per-phase TTFT attribution: where first-token latency was
            # actually spent, plus the migration bill between fleets.
            report = reports[spec.label]
            phase_rows.append({
                "allocator": spec.label,
                "prefill wait (s)": round(report.prefill_wait_s, 4),
                "decode wait (s)": round(report.decode_wait_s, 4),
                "migrations": result.migrations,
                "migrated (MB)": round(result.migrated_bytes / MB, 1),
            })
        if gauges is not None:
            # One sampler per allocator run: reset so the next run's
            # points don't inherit this run's stride phase.
            gauges = GaugeSampler(args.gauge_every)

    if args.disagg:
        topology = (f"{args.prefill_replicas}P+{args.decode_replicas}D "
                    f"over {interconnect_spec.label}")
    else:
        topology = f"{args.gpus} GPU(s)"
    title = (f"serve {args.model}: {n_requests} req, {shape}, "
             f"{topology}, scheduler={scheduler_spec.label}, "
             f"kv={kv_spec.label}, preemption={preemption_spec.label}")
    if memory_tiers:
        title += f", tiers={memory_tiers}"
    if autoscaler_spec.name != "none" and (args.gpus > 1 or args.disagg):
        title += f", autoscaler={autoscaler_spec.label}"
    if faults_spec.name != "none":
        title += f", faults={faults_spec.label}"
    if retry_spec.name != "none":
        title += f", retry={retry_spec.label}"
    print(format_serving_summary(reports, title=title, slo=slo))
    for table in tenant_tables:
        print()
        print(table)
    if phase_rows:
        print()
        print(format_table(phase_rows,
                           title="per-phase TTFT attribution "
                                 "(mean queue wait by fleet)"))
    if gauge_points:
        print()
        print(format_gauges(gauge_points,
                            title=f"gauges (every {args.gauge_every:g}s)"))
    if recorder is not None:
        path = TraceSpec.for_path(args.trace).build().write(recorder)
        print(f"\nwrote {len(recorder.events)} trace events to {path}")
    return 0


def cmd_list_allocators(args: argparse.Namespace) -> int:
    del args
    rows = [
        {
            "name": info.name,
            "aliases": ",".join(info.aliases) or "-",
            "class": info.cls.__name__,
            "paper": info.paper_section or "-",
            "description": info.description,
        }
        for info in iter_allocators()
    ]
    rows.sort(key=lambda r: r["name"])
    print(format_table(rows, title="allocator registry"))

    params = [
        {
            "allocator": info.name,
            "parameter": param.name,
            "type": param.type_name,
            "default": param.default_str(),
            "spec keys": ",".join(k for k in param.keys if k != param.name) or "-",
            "description": param.doc or "-",
        }
        for info in sorted(iter_allocators(), key=lambda i: i.name)
        for param in info.params
    ]
    if params:
        print()
        print(format_table(
            params,
            title='tunable parameters (spec syntax: "name?key=value&key=value")',
        ))

    kv_rows = [
        {
            "name": info.name,
            "parameter": param.name,
            "default": param.default_str(),
            "description": info.description,
        }
        for info in KV_CACHE_MODELS.values()
        for param in info.params
    ]
    print()
    print(format_table(
        kv_rows,
        title="serving KV-cache models (serve --kv-cache \"name?key=value\")",
    ))
    return 0


def cmd_list_components(args: argparse.Namespace) -> int:
    """One catalogue for every registered component kind."""
    # Importing repro.serve (above) registered the serving-side kinds;
    # the allocator kind registers with repro.api.
    kinds = component_kinds()
    if args.kind:
        for requested in args.kind:
            if requested not in kinds:
                # Print the kind catalogue with the error so the fix is
                # one copy-paste away.
                catalogue = "\n".join(
                    f"  {kind:<12} {kind_label(kind)}"
                    for kind in sorted(kinds))
                print(f"unknown component kind {requested!r}; known "
                      f"kinds:\n{catalogue}", file=sys.stderr)
                return 2
        kinds = list(args.kind)
    for kind in kinds:
        rows = [
            {
                "name": info.name,
                "aliases": ",".join(info.aliases) or "-",
                "class": info.cls.__name__,
                "paper": info.paper_section or "-",
                "description": info.description,
            }
            for info in iter_components(kind)
        ]
        rows.sort(key=lambda r: r["name"])
        print(format_table(
            rows, title=f"component kind {kind!r} — {kind_label(kind)} registry"))
        params = [
            {
                "name": info.name,
                "parameter": param.name,
                "type": param.type_name,
                "default": param.default_str(),
                "spec keys": ",".join(
                    k for k in param.keys if k != param.name) or "-",
                "description": param.doc or "-",
            }
            for info in sorted(iter_components(kind), key=lambda i: i.name)
            for param in info.params
        ]
        if params:
            print(format_table(
                params,
                title=f'{kind} parameters '
                      f'(spec syntax: "name?key=value&key=value")'))
        print()
    return 0


def cmd_microbench(args: argparse.Namespace) -> int:
    del args
    latency = GpuDevice().latency
    rows = []
    for i in range(10):
        chunk = 2 * MB * (1 << i)
        row = {"chunk": f"{chunk // MB}MB"}
        for block in (512 * MB, 1 * GB, 2 * GB):
            row[f"{block // MB}MB"] = f"{latency.vmm_alloc_total(block, chunk) / 1e3:.2f}ms"
        rows.append(row)
    print(format_table(rows, title="Figure 6 — VMM allocation latency"))
    breakdown = []
    for chunk in (2 * MB, 128 * MB, 1024 * MB):
        row = {"chunk": f"{chunk // MB}MB"}
        row.update({k: round(v, 3)
                    for k, v in latency.vmm_breakdown(2 * GB, chunk).items()})
        breakdown.append(row)
    print()
    print(format_table(breakdown, title="Table 1 — 2 GB VMM breakdown"))
    return 0


def cmd_models(args: argparse.Namespace) -> int:
    del args
    rows = [
        {
            "name": spec.name,
            "layers": spec.n_layers,
            "hidden": spec.hidden,
            "params (B)": round(spec.n_params / 1e9, 1),
            "weights (GB)": round(spec.weight_bytes / GB, 1),
        }
        for spec in MODELS.values()
    ]
    print(format_table(rows, title="model registry"))
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="GMLake reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compare", help="run one workload under allocators")
    _add_workload_args(p)
    p.add_argument("--allocators", default="caching,gmlake",
                   help="comma list of allocator specs, e.g. "
                        "'caching,gmlake?chunk_mb=512&stitching=off' "
                        f"(names: {allocator_names()})")
    p.add_argument("--capacity", type=parse_size, default=80 * GB,
                   help="device memory, e.g. 80GB")
    p.add_argument("--spec", default="",
                   help="run a JSON ExperimentSpec file instead "
                        "(all other flags ignored)")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("run", help="run a JSON experiment file")
    p.add_argument("--spec", required=True,
                   help="path to an ExperimentSpec JSON file "
                        "(see repro.api.ExperimentSpec); with --sweep, "
                        "may also be a JSON list of experiments")
    p.add_argument("--sweep", action="store_true",
                   help="treat the file as a sweep: run one point per "
                        "experiment (or per allocator) in parallel")
    p.add_argument("--jobs", type=int, default=None,
                   help="sweep worker processes (default: cpu count)")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("sweep", help="sweep one workload axis")
    _add_workload_args(p)
    p.add_argument("--axis", choices=("strategies", "gpus", "batch"),
                   required=True)
    p.add_argument("--values", default="",
                   help="comma list of axis values (defaults per axis)")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("trace", help="write a workload trace to JSONL")
    _add_workload_args(p)
    p.add_argument("--out", required=True, help="output .jsonl path")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("replay", help="replay a JSONL trace")
    p.add_argument("--in", dest="infile", required=True)
    p.add_argument("--allocator", default="gmlake",
                   help=f"allocator spec (names: {allocator_names()})")
    p.add_argument("--capacity", type=parse_size, default=80 * GB)
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser("serve", help="online serving simulation")
    p.add_argument("--model", default="opt-13b",
                   help="model registry name (see `models`)")
    p.add_argument("--arrival", choices=("poisson", "mmpp", "replay"),
                   default="poisson", help="arrival process")
    p.add_argument("--rate", type=float, default=2.0,
                   help="mean arrival rate, requests/s (calm rate for mmpp)")
    p.add_argument("--burst-rate", type=float, default=0.0,
                   help="mmpp burst rate, requests/s (default 4x --rate)")
    p.add_argument("--dwell", type=float, default=10.0,
                   help="mmpp mean state dwell time, seconds")
    p.add_argument("--arrival-log", default="",
                   help="timestamp file for --arrival replay")
    p.add_argument("--requests", type=int, default=100,
                   help="number of requests to serve")
    p.add_argument("--allocator", default="gmlake",
                   help="comma list of allocator specs "
                        f"(names: {allocator_names()})")
    p.add_argument("--scheduler", default="memory-aware",
                   help="admission scheduler spec, e.g. 'fcfs', "
                        "'memory-aware?margin=1.5' "
                        f"(names: {scheduler_names()})")
    p.add_argument("--arrivals", default="",
                   help="arrival process spec overriding --arrival/--rate, "
                        "e.g. 'poisson?rate=4', 'closed-loop?clients=8', "
                        "'replay?path=log.txt'")
    p.add_argument("--kv-cache", default="chunked",
                   help="KV-cache memory model spec, e.g. 'chunked', "
                        "'paged?block_tokens=16' "
                        f"(names: {kv_cache_names()})")
    p.add_argument("--prefix-sharing", action="store_true",
                   help="share common prompt prefixes across requests "
                        "copy-on-write (switches --kv-cache to "
                        "'paged-shared'; needs a paged model)")
    p.add_argument("--tenants", type=int, default=0,
                   help="multi-tenant workload: N tenants with "
                        "Zipf-skewed traffic, each declaring a shared "
                        "per-tenant prompt prefix (sugar for --arrivals "
                        "'multi-tenant?tenants=N&...')")
    p.add_argument("--shared-prefix", type=int, default=256,
                   help="shared prompt-prefix length per tenant, tokens "
                        "(with --tenants)")
    p.add_argument("--preemption", default="recompute",
                   help="preemption policy spec: 'recompute' (free + "
                        "re-prefill) or 'swap' (host offload priced by an "
                        "interconnect component, e.g. "
                        "'swap?interconnect=pcie?gb_per_s=12')")
    p.add_argument("--memory-tiers", default="",
                   help="slow-memory hierarchy below HBM as a comma list "
                        "of memory-tier specs, e.g. 'dram?gb=64' or "
                        "'dram?gb=64,cxl?gb=256&gb_per_s=40,nvme' — cold "
                        "KV demotes down the hierarchy instead of being "
                        "recomputed "
                        f"(names: {memory_tier_names()})")
    p.add_argument("--autoscaler", default="none",
                   help="replica autoscaler spec (multi-GPU or disagg): "
                        "'none' or 'queue-depth?high=4000&low=500' "
                        "(under --disagg each fleet scales independently)")
    p.add_argument("--gpus", type=int, default=1,
                   help="number of serving replicas")
    p.add_argument("--disagg", action="store_true",
                   help="disaggregate prefill and decode onto separate "
                        "fleets with KV migration over --interconnect")
    p.add_argument("--prefill-replicas", type=int, default=1,
                   help="prefill fleet size (with --disagg)")
    p.add_argument("--decode-replicas", type=int, default=1,
                   help="decode fleet size (with --disagg)")
    p.add_argument("--faults", default="none",
                   help="replica fault model spec, e.g. "
                        "'replica-crash?mtbf_s=120&mttr_s=10', "
                        "'straggler?slowdown=4&prob=0.1', "
                        "'link-degrade?factor=4'")
    p.add_argument("--retry", default="none",
                   help="retry policy spec, e.g. 'budget?max=3&"
                        "backoff_s=0.25' or 'hedge?after_s=2' "
                        "(hedging needs --gpus >= 2)")
    p.add_argument("--interconnect", default="pcie",
                   help="interconnect spec pricing KV migration, e.g. "
                        "'pcie?gb_per_s=24' or 'nvlink?gb_per_s=300"
                        "&latency_us=1.5' "
                        f"(names: {interconnect_names()})")
    p.add_argument("--capacity", type=parse_size, default=80 * GB,
                   help="device memory per replica, e.g. 80GB")
    p.add_argument("--max-batch", type=int, default=16,
                   help="admission cap on running requests")
    p.add_argument("--mean-prompt", type=int, default=512)
    p.add_argument("--mean-output", type=int, default=256)
    p.add_argument("--timeout", type=float, default=60.0,
                   help="queueing timeout before rejection, seconds")
    p.add_argument("--slo-ttft", type=float, default=2.0,
                   help="TTFT SLO, seconds")
    p.add_argument("--slo-tpot", type=float, default=0.05,
                   help="time-per-output-token SLO, seconds")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace", default="",
                   help="write a request-lifecycle trace here; .jsonl "
                        "writes compact JSONL, anything else Chrome "
                        "trace-event JSON (open in Perfetto)")
    p.add_argument("--gauges", action="store_true",
                   help="sample time-series gauges (queue depth, memory, "
                        "KV utilization) and print them as a table")
    p.add_argument("--gauge-every", type=float, default=1.0,
                   help="gauge sampling stride, simulated seconds")
    p.add_argument("--streaming", action="store_true",
                   help="compute report percentiles from constant-memory "
                        "t-digest sketches instead of sorted sample lists")
    p.add_argument("--spec", default="",
                   help="run a JSON ExperimentSpec file instead "
                        "(all other flags ignored)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("microbench", help="VMM latency tables")
    p.set_defaults(func=cmd_microbench)

    p = sub.add_parser("models", help="list the model registry")
    p.set_defaults(func=cmd_models)

    p = sub.add_parser("list-allocators",
                       help="list the allocator registry")
    p.set_defaults(func=cmd_list_allocators)

    p = sub.add_parser("list-components",
                       help="list every registered component kind "
                            "(allocators, KV caches, schedulers, arrivals, "
                            "preemption, autoscalers)")
    p.add_argument("--kind", action="append", default=None,
                   help="only this kind (e.g. scheduler, preemption); "
                        "repeatable")
    p.set_defaults(func=cmd_list_components)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except SpecError as exc:
        # A malformed allocator/experiment spec is a user error.
        print(f"{args.command}: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"{args.command}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
