"""The unpooled virtual-memory allocator of §2.5.

Every ``malloc`` reserves a VA range, creates physical chunks, maps them
and sets access; every ``free`` unmaps, releases and frees the range.
No caching, no stitching.  It never fragments (chunks are returned to
the device immediately) but pays the full VMM API cost on every single
operation — over 100x ``cudaMalloc`` with 2 MB chunks (Figure 6), which
is what motivates GMLake's pooled design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.allocators.base import Allocation, BaseAllocator
from repro.errors import CudaOutOfMemoryError, OutOfMemoryError
from repro.gpu.device import GpuDevice
from repro.units import CHUNK_SIZE, align_up


@dataclass
class _VmmRegion:
    va: int
    size: int
    handles: List[int]
    chunk_size: int


class VmmNaiveAllocator(BaseAllocator):
    """Reserve/create/map/setAccess per allocation; full teardown per free.

    Parameters
    ----------
    device:
        Target device.
    chunk_size:
        Physical chunk size used to back each allocation; the Figure 6
        bench sweeps this from 2 MB to 1 GB.
    """

    def __init__(self, device: GpuDevice, chunk_size: int = CHUNK_SIZE):
        super().__init__(device, name="vmm-naive")
        if chunk_size <= 0 or chunk_size % CHUNK_SIZE != 0:
            raise ValueError(
                f"chunk_size must be a positive multiple of {CHUNK_SIZE}, "
                f"got {chunk_size}"
            )
        self.chunk_size = chunk_size
        self._regions: Dict[int, _VmmRegion] = {}
        self._reserved = 0

    @property
    def reserved_bytes(self) -> int:
        return self._reserved

    def _malloc_impl(self, size: int) -> "tuple[int, int]":
        rounded = align_up(size, self.chunk_size)
        vmm = self.device.vmm
        va = vmm.mem_address_reserve(rounded)
        handles: List[int] = []
        try:
            for offset in range(0, rounded, self.chunk_size):
                handle = vmm.mem_create(self.chunk_size)
                handles.append(handle)
                vmm.mem_map(va, offset, handle)
        except CudaOutOfMemoryError as exc:
            # Roll back partial work so the device is left consistent.
            # Only mem_create can raise OOM, so every handle in the list
            # completed its map in a previous iteration.
            if handles:
                vmm.mem_unmap(va, 0, len(handles) * self.chunk_size)
                for handle in handles:
                    vmm.mem_release(handle)
            vmm.mem_address_free(va)
            raise OutOfMemoryError(
                requested=size,
                reserved=self._reserved,
                active=self.active_bytes,
                capacity=self.device.capacity,
            ) from exc
        vmm.mem_set_access(va, 0, rounded)
        self._regions[va] = _VmmRegion(va=va, size=rounded, handles=handles,
                                       chunk_size=self.chunk_size)
        self._reserved += rounded
        return va, rounded

    def _free_impl(self, allocation: Allocation) -> None:
        region = self._regions.pop(allocation.ptr)
        vmm = self.device.vmm
        vmm.mem_unmap(region.va, 0, region.size)
        for handle in region.handles:
            vmm.mem_release(handle)
        vmm.mem_address_free(region.va)
        self._reserved -= region.size
