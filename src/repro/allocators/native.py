"""The native allocator baseline: one ``cudaMalloc`` per tensor.

This is the §2.2 strawman.  Every allocation and deallocation goes to
the synchronizing runtime API, so throughput collapses (the paper
measures 9.7x lower end-to-end training throughput than the caching
allocator), but there is *no* pool-level fragmentation: reserved bytes
always equal active bytes.
"""

from __future__ import annotations

from repro.allocators.base import Allocation, BaseAllocator
from repro.errors import CudaOutOfMemoryError, OutOfMemoryError
from repro.gpu.device import GpuDevice


class NativeAllocator(BaseAllocator):
    """Direct pass-through to ``cudaMalloc``/``cudaFree``.

    Parameters
    ----------
    device:
        Target device.
    op_amplification:
        How many CUDA-level (de)allocations one coarse trace tensor
        stands for.  The trace generators model a training step with a
        few hundred representative tensors, but a framework running
        *without* a caching layer hits the driver for every per-op
        output, workspace and temporary — roughly 64x more calls.  The
        default is calibrated so the §2.2 reference measurement
        (OPT-1.3B, 4 GPUs) reproduces the paper's ~9.7x end-to-end
        slowdown; set to 1 to time exactly one call per trace event.
    """

    def __init__(self, device: GpuDevice, op_amplification: int = 40):
        super().__init__(device, name="native")
        if op_amplification < 1:
            raise ValueError("op_amplification must be >= 1")
        self.op_amplification = op_amplification
        self._reserved = 0

    @property
    def reserved_bytes(self) -> int:
        return self._reserved

    def _amplified_stall(self, per_call_us: float) -> None:
        """Time for the amplified small (de)allocations and their syncs."""
        extra_calls = self.op_amplification - 1
        if extra_calls:
            stall = self.device.latency.sync_stall_us
            self._spend_host_time(extra_calls * (per_call_us + stall))

    def _malloc_impl(self, size: int) -> "tuple[int, int]":
        latency = self.device.latency
        try:
            ptr = self.device.runtime.cuda_malloc(size)
        except CudaOutOfMemoryError as exc:
            raise OutOfMemoryError(
                requested=size,
                reserved=self._reserved,
                active=self.active_bytes,
                capacity=self.device.capacity,
            ) from exc
        self._spend_host_time(latency.sync_stall_us)
        self._amplified_stall(latency.cuda_malloc_fixed_us)
        self._reserved += size
        return ptr, size

    def _free_impl(self, allocation: Allocation) -> None:
        latency = self.device.latency
        self.device.runtime.cuda_free(allocation.ptr)
        self._spend_host_time(latency.sync_stall_us)
        self._amplified_stall(latency.cuda_free_fixed_us)
        self._reserved -= allocation.size
