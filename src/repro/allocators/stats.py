"""Allocator statistics — the quantities the paper's figures plot.

Terminology follows §5.1 of the paper:

* **active memory** — bytes currently allocated to live tensors.
* **reserved memory** — bytes of physical GPU memory the allocator holds
  (segments for the caching allocator, physical chunks for GMLake).
* **utilization ratio** — peak active / peak reserved.
* **fragmentation ratio** — 1 − utilization ratio.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class AllocatorStats:
    """Point-in-time statistics snapshot of one allocator."""

    active_bytes: int
    reserved_bytes: int
    peak_active_bytes: int
    peak_reserved_bytes: int
    malloc_count: int
    free_count: int
    #: Driver-API (cudaMalloc / cuMem*) time spent by this allocator, us.
    driver_time_us: float = 0.0
    #: Host-side bookkeeping time (cached-path ops), us.
    host_time_us: float = 0.0

    @property
    def utilization_ratio(self) -> float:
        """Peak active / peak reserved (1.0 when nothing was reserved)."""
        if self.peak_reserved_bytes == 0:
            return 1.0
        return self.peak_active_bytes / self.peak_reserved_bytes

    @property
    def fragmentation_ratio(self) -> float:
        """1 − utilization ratio, the paper's fragmentation metric."""
        return 1.0 - self.utilization_ratio

    @property
    def instantaneous_utilization(self) -> float:
        """Current active / current reserved (for timeline plots)."""
        if self.reserved_bytes == 0:
            return 1.0
        return self.active_bytes / self.reserved_bytes
