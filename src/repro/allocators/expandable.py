"""Expandable-segments allocator — PyTorch's follow-up to GMLake.

After GMLake (and its sibling projects), PyTorch gained
``expandable_segments:True``: instead of many fixed ``cudaMalloc``
segments, the caching allocator reserves one huge virtual address range
per pool and *grows it in place* by mapping 2 MB physical chunks at the
tail through the same VMM API GMLake uses.  Freed blocks coalesce
across the whole arena (there are no segment boundaries), and the tail
can be trimmed by unmapping.

Compared to GMLake it cannot *stitch*: a request larger than every hole
still forces the arena to grow even when the holes sum to enough space.
Expected ordering, which the extension bench verifies:

    caching (BFC)  <=  expandable segments  <=  GMLake   (utilization)

This is an extension beyond the paper's evaluation (the paper predates
the PyTorch feature); it doubles as an ablation of stitching with an
independently-designed mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.allocators.base import Allocation, BaseAllocator
from repro.allocators.caching import MIN_BLOCK_SIZE, SMALL_SIZE, round_size
from repro.errors import CudaOutOfMemoryError, OutOfMemoryError
from repro.gpu.device import GpuDevice
from repro.sortedlist import SortedKeyList
from repro.units import CHUNK_SIZE, align_up


@dataclass
class _ArenaBlock:
    """A contiguous range inside an arena's mapped frontier."""

    offset: int
    size: int
    allocated: bool = False
    prev: Optional["_ArenaBlock"] = field(default=None, repr=False)
    next: Optional["_ArenaBlock"] = field(default=None, repr=False)


class _Arena:
    """One expandable segment: a huge VA reservation mapped up to a
    moving frontier, tiled by split/coalesce blocks."""

    def __init__(self, device: GpuDevice, va_size: int):
        self.device = device
        self.va = device.vmm.mem_address_reserve(va_size)
        self.va_size = va_size
        self.mapped = 0
        self.handles: List[int] = []  # one per mapped chunk, in order
        self.free_blocks: SortedKeyList[_ArenaBlock] = SortedKeyList(
            key=lambda b: (b.size, b.offset)
        )
        self.tail: Optional[_ArenaBlock] = None  # last block (by offset)
        self.blocks_by_offset: Dict[int, _ArenaBlock] = {}

    # ------------------------------------------------------------------
    def grow(self, need: int) -> None:
        """Map enough new chunks at the frontier to add ``need`` bytes.

        Raises CudaOutOfMemoryError when the device cannot commit them;
        partially created chunks are rolled back.
        """
        grow_bytes = align_up(need, CHUNK_SIZE)
        if self.mapped + grow_bytes > self.va_size:
            raise CudaOutOfMemoryError(
                grow_bytes, self.va_size - self.mapped, self.va_size
            )
        vmm = self.device.vmm
        new_handles: List[int] = []
        offset = self.mapped
        try:
            for _ in range(grow_bytes // CHUNK_SIZE):
                handle = vmm.mem_create(CHUNK_SIZE)
                new_handles.append(handle)
                vmm.mem_map(self.va, offset, handle)
                offset += CHUNK_SIZE
        except CudaOutOfMemoryError:
            if new_handles:
                vmm.mem_unmap(self.va, self.mapped,
                              len(new_handles) * CHUNK_SIZE)
                for handle in new_handles:
                    vmm.mem_release(handle)
            raise
        vmm.mem_set_access(self.va, self.mapped, grow_bytes)
        self.handles.extend(new_handles)

        # Extend (or create) the tail block with the new bytes.
        if self.tail is not None and not self.tail.allocated:
            self.free_blocks.remove(self.tail)
            self.tail.size += grow_bytes
            self.free_blocks.add(self.tail)
        else:
            block = _ArenaBlock(offset=self.mapped, size=grow_bytes,
                                prev=self.tail)
            if self.tail is not None:
                self.tail.next = block
            self.tail = block
            self.blocks_by_offset[block.offset] = block
            self.free_blocks.add(block)
        self.mapped += grow_bytes

    def trim_tail(self) -> int:
        """Unmap whole free chunks at the frontier; returns bytes freed."""
        if self.tail is None or self.tail.allocated:
            return 0
        tail = self.tail
        # Only whole chunks above the last allocated byte can go.
        keep_until = align_up(tail.offset, CHUNK_SIZE)
        trim_bytes = self.mapped - keep_until
        if trim_bytes <= 0:
            return 0
        vmm = self.device.vmm
        n_chunks = trim_bytes // CHUNK_SIZE
        vmm.mem_unmap(self.va, keep_until, trim_bytes)
        for handle in self.handles[-n_chunks:]:
            vmm.mem_release(handle)
        del self.handles[-n_chunks:]
        self.mapped = keep_until
        # Shrink or drop the tail block.
        self.free_blocks.remove(tail)
        remaining = keep_until - tail.offset
        if remaining > 0:
            tail.size = remaining
            self.free_blocks.add(tail)
        else:
            del self.blocks_by_offset[tail.offset]
            self.tail = tail.prev
            if self.tail is not None:
                self.tail.next = None
        return trim_bytes


class ExpandableSegmentsAllocator(BaseAllocator):
    """BFC over two in-place-growable VMM arenas (small / large pools)."""

    def __init__(self, device: GpuDevice):
        super().__init__(device, name="expandable")
        va_size = align_up(device.capacity, CHUNK_SIZE)
        self._arenas = {
            "small": _Arena(device, va_size),
            "large": _Arena(device, va_size),
        }
        self._alloc_arena: Dict[int, str] = {}  # ptr -> arena key

    # ------------------------------------------------------------------
    @property
    def reserved_bytes(self) -> int:
        return sum(a.mapped for a in self._arenas.values())

    def mapped_bytes(self, pool: str) -> int:
        """Mapped frontier of one arena (introspection)."""
        return self._arenas[pool].mapped

    # ------------------------------------------------------------------
    def _malloc_impl(self, size: int) -> "tuple[int, int]":
        rounded = round_size(size)
        pool = "small" if rounded <= SMALL_SIZE else "large"
        arena = self._arenas[pool]
        self._spend_host_time(self.device.latency.cached_op_us)

        block = arena.free_blocks.first_at_least((rounded, 0))
        if block is None:
            block = self._grow(arena, rounded)
        else:
            arena.free_blocks.remove(block)
        block = self._maybe_split(arena, block, rounded)
        block.allocated = True
        ptr = arena.va + block.offset
        self._alloc_arena[ptr] = pool
        return ptr, rounded

    def _grow(self, arena: _Arena, rounded: int) -> _ArenaBlock:
        """Extend the arena so its tail can serve ``rounded`` bytes."""
        tail_free = (
            arena.tail.size
            if arena.tail is not None and not arena.tail.allocated
            else 0
        )
        need = rounded - tail_free
        try:
            arena.grow(need)
        except CudaOutOfMemoryError:
            if self._trim_all() == 0:
                self._raise_oom(rounded)
            try:
                arena.grow(need)
            except CudaOutOfMemoryError:
                self._raise_oom(rounded)
        block = arena.tail
        assert block is not None and not block.allocated
        arena.free_blocks.remove(block)
        return block

    def _raise_oom(self, rounded: int) -> None:
        raise OutOfMemoryError(
            requested=rounded,
            reserved=self.reserved_bytes,
            active=self.active_bytes,
            capacity=self.device.capacity,
        )

    def _maybe_split(self, arena: _Arena, block: _ArenaBlock,
                     rounded: int) -> _ArenaBlock:
        remaining = block.size - rounded
        if remaining < MIN_BLOCK_SIZE:
            return block
        rest = _ArenaBlock(offset=block.offset + rounded, size=remaining,
                           prev=block, next=block.next)
        if block.next is not None:
            block.next.prev = rest
        else:
            arena.tail = rest
        block.next = rest
        block.size = rounded
        arena.blocks_by_offset[rest.offset] = rest
        arena.free_blocks.add(rest)
        return block

    # ------------------------------------------------------------------
    def _free_impl(self, allocation: Allocation) -> None:
        self._spend_host_time(self.device.latency.cached_op_us)
        pool = self._alloc_arena.pop(allocation.ptr)
        arena = self._arenas[pool]
        block = arena.blocks_by_offset[allocation.ptr - arena.va]
        block.allocated = False
        block = self._coalesce(arena, block)
        arena.free_blocks.add(block)

    def _coalesce(self, arena: _Arena, block: _ArenaBlock) -> _ArenaBlock:
        nxt = block.next
        if nxt is not None and not nxt.allocated:
            arena.free_blocks.remove(nxt)
            del arena.blocks_by_offset[nxt.offset]
            block.size += nxt.size
            block.next = nxt.next
            if nxt.next is not None:
                nxt.next.prev = block
            if arena.tail is nxt:
                arena.tail = block
        prv = block.prev
        if prv is not None and not prv.allocated:
            arena.free_blocks.remove(prv)
            del arena.blocks_by_offset[block.offset]
            prv.size += block.size
            prv.next = block.next
            if block.next is not None:
                block.next.prev = prv
            if arena.tail is block:
                arena.tail = prv
            block = prv
        return block

    # ------------------------------------------------------------------
    def _trim_all(self) -> int:
        return sum(a.trim_tail() for a in self._arenas.values())

    def _empty_cache_impl(self) -> None:
        """Trim the free tail of both arenas back to the device."""
        self._trim_all()

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Arena bookkeeping consistency (used by property tests)."""
        for pool, arena in self._arenas.items():
            covered = 0
            block = arena.blocks_by_offset.get(0)
            if arena.mapped == 0:
                assert not arena.blocks_by_offset
                continue
            assert block is not None, f"{pool}: no block at offset 0"
            last = None
            while block is not None:
                assert block.offset == covered, f"{pool}: gap at {covered}"
                covered += block.size
                assert block.prev is last
                last = block
                block = block.next
            assert covered == arena.mapped, (
                f"{pool}: blocks cover {covered} of {arena.mapped}"
            )
            assert arena.tail is last
            free_offsets = {b.offset for b in arena.free_blocks}
            expected = {b.offset for b in arena.blocks_by_offset.values()
                        if not b.allocated}
            assert free_offsets == expected, f"{pool}: free list out of sync"
