"""Allocator implementations.

All allocators share the :class:`~repro.allocators.base.BaseAllocator`
interface (``malloc`` / ``free`` / ``stats`` / ``empty_cache``) so the
simulation engine and every experiment treat them interchangeably —
mirroring the paper's claim that GMLake is a transparent drop-in for the
PyTorch caching allocator.

Implementations:

- :class:`~repro.allocators.native.NativeAllocator` — one
  ``cudaMalloc``/``cudaFree`` per tensor (§2.2 "native allocator").
- :class:`~repro.allocators.caching.CachingAllocator` — the PyTorch /
  TensorFlow best-fit-with-coalescing (BFC) caching allocator (§2.2),
  the baseline of every figure.
- :class:`~repro.allocators.vmm_naive.VmmNaiveAllocator` — the unpooled
  VMM allocator of §2.5, used for the Figure 6 / Table 1 microbenches.
- :class:`repro.core.allocator.GMLakeAllocator` — the paper's
  contribution (lives in :mod:`repro.core`).
"""

from repro.allocators.base import Allocation, AllocatorObserver, BaseAllocator
from repro.allocators.caching import CachingAllocator
from repro.allocators.expandable import ExpandableSegmentsAllocator
from repro.allocators.native import NativeAllocator
from repro.allocators.stats import AllocatorStats
from repro.allocators.vmm_naive import VmmNaiveAllocator

__all__ = [
    "Allocation",
    "AllocatorObserver",
    "BaseAllocator",
    "AllocatorStats",
    "NativeAllocator",
    "CachingAllocator",
    "ExpandableSegmentsAllocator",
    "VmmNaiveAllocator",
]
