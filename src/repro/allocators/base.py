"""Common allocator interface and bookkeeping.

Subclasses implement ``_malloc_impl`` / ``_free_impl`` and a
``reserved_bytes`` property; the base class owns the live-allocation
table, active-byte accounting, peak tracking, and the double-free /
foreign-pointer contract checks, so every allocator reports statistics
identically.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.allocators.stats import AllocatorStats
from repro.errors import (
    AllocatorError,
    DoubleFreeError,
    OutOfMemoryError,
    UnknownAllocationError,
)
from repro.gpu.device import GpuDevice


@dataclass(frozen=True, slots=True)
class Allocation:
    """A live allocation handed to a client (one tensor's storage).

    Attributes
    ----------
    ptr:
        Virtual device address of the storage.
    size:
        Size the client requested, in bytes.
    rounded_size:
        Size the allocator accounts for this allocation (after rounding
        to its internal granularity); ``active_bytes`` sums these, like
        PyTorch's ``allocated_bytes`` statistic.
    alloc_id:
        Monotonically increasing identifier, unique per allocator.
    """

    ptr: int
    size: int
    rounded_size: int
    alloc_id: int


@dataclass
class _OpCounters:
    malloc_count: int = 0
    free_count: int = 0
    host_time_us: float = 0.0


class AllocatorObserver:
    """Event-hook interface over one allocator's lifecycle.

    Subscribers (timeline recorders, memory reports, custom telemetry)
    attach with :meth:`BaseAllocator.add_observer` and override the
    hooks they care about; every hook is a no-op by default.  Hooks
    fire *after* the allocator's bookkeeping, so ``allocator.stats()``
    seen from a hook is consistent with the event.

    In-tree subscribers: :class:`repro.sim.timeline.TimelineRecorder`
    (per-event memory timelines),
    :class:`repro.analysis.PeakMemoryObserver` (peak breakdowns) and
    :class:`repro.obs.AllocatorTraceObserver` (allocator events inside
    a serving lifecycle trace).
    """

    def on_alloc(self, allocator: "BaseAllocator", allocation: Allocation) -> None:
        """A malloc succeeded."""

    def on_free(self, allocator: "BaseAllocator", allocation: Allocation) -> None:
        """An allocation was returned."""

    def on_empty_cache(self, allocator: "BaseAllocator") -> None:
        """``empty_cache`` released the allocator's cached memory."""

    def on_oom(self, allocator: "BaseAllocator", size: int,
               error: OutOfMemoryError) -> None:
        """A malloc of ``size`` bytes failed even after reclaim."""


class BaseAllocator(ABC):
    """Abstract allocator over one :class:`~repro.gpu.device.GpuDevice`."""

    def __init__(self, device: GpuDevice, name: Optional[str] = None):
        self.device = device
        self.name = name if name is not None else type(self).__name__
        self._live: Dict[int, Allocation] = {}
        self._next_id = 1
        self._counters = _OpCounters()
        self.active_bytes = 0
        self.peak_active_bytes = 0
        self.peak_reserved_bytes = 0
        self._driver_time_at_start = device.driver_time_us()
        self._observers: List[AllocatorObserver] = []

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def malloc(self, size: int) -> Allocation:
        """Allocate ``size`` bytes of device memory for a tensor.

        Raises :class:`~repro.errors.OutOfMemoryError` when the request
        cannot be satisfied even after the allocator's reclaim fallback.
        """
        if size <= 0:
            raise AllocatorError(f"malloc size must be positive, got {size}")
        try:
            ptr, rounded = self._malloc_impl(size)
        except OutOfMemoryError as exc:
            for observer in self._observers:
                observer.on_oom(self, size, exc)
            raise
        alloc = Allocation(ptr=ptr, size=size, rounded_size=rounded,
                           alloc_id=self._next_id)
        self._next_id += 1
        self._live[alloc.alloc_id] = alloc
        self._counters.malloc_count += 1
        self.active_bytes += rounded
        self.peak_active_bytes = max(self.peak_active_bytes, self.active_bytes)
        self._update_reserved_peak()
        for observer in self._observers:
            observer.on_alloc(self, alloc)
        return alloc

    def free(self, allocation: Allocation) -> None:
        """Return an allocation to the allocator."""
        live = self._live.get(allocation.alloc_id)
        if live is None:
            if allocation.alloc_id < self._next_id:
                raise DoubleFreeError(
                    f"allocation #{allocation.alloc_id} already freed"
                )
            raise UnknownAllocationError(
                f"allocation #{allocation.alloc_id} was not issued by {self.name}"
            )
        del self._live[allocation.alloc_id]
        self._free_impl(allocation)
        self._counters.free_count += 1
        self.active_bytes -= allocation.rounded_size
        # No reserved-peak update here: freeing never commits new
        # physical memory, so the peak (a ratchet over reserved_bytes,
        # which only grows inside _malloc_impl) cannot move.
        for observer in self._observers:
            observer.on_free(self, allocation)

    def empty_cache(self) -> None:
        """Release every cached (unused) physical byte back to the device."""
        self._empty_cache_impl()
        for observer in self._observers:
            observer.on_empty_cache(self)

    def _empty_cache_impl(self) -> None:
        """Subclass hook behind :meth:`empty_cache`.

        The default implementation is a no-op for allocators that cache
        nothing (the native allocator).
        """

    # ------------------------------------------------------------------
    # Observers
    # ------------------------------------------------------------------
    def add_observer(self, observer: AllocatorObserver) -> AllocatorObserver:
        """Subscribe ``observer`` to this allocator's events."""
        self._observers.append(observer)
        return observer

    def remove_observer(self, observer: AllocatorObserver) -> None:
        """Unsubscribe ``observer`` (no-op if not subscribed)."""
        if observer in self._observers:
            self._observers.remove(observer)

    def stats(self) -> AllocatorStats:
        """Snapshot of this allocator's statistics."""
        return AllocatorStats(
            active_bytes=self.active_bytes,
            reserved_bytes=self.reserved_bytes,
            peak_active_bytes=self.peak_active_bytes,
            peak_reserved_bytes=self.peak_reserved_bytes,
            malloc_count=self._counters.malloc_count,
            free_count=self._counters.free_count,
            driver_time_us=self.device.driver_time_us() - self._driver_time_at_start,
            host_time_us=self._counters.host_time_us,
        )

    @property
    def live_allocation_count(self) -> int:
        """Number of outstanding (not yet freed) allocations."""
        return len(self._live)

    @property
    @abstractmethod
    def reserved_bytes(self) -> int:
        """Physical bytes this allocator currently holds on the device."""

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def _malloc_impl(self, size: int) -> "tuple[int, int]":
        """Allocate and return ``(ptr, rounded_size)``."""

    @abstractmethod
    def _free_impl(self, allocation: Allocation) -> None:
        """Release the storage behind ``allocation``."""

    # ------------------------------------------------------------------
    def _update_reserved_peak(self) -> None:
        self.peak_reserved_bytes = max(self.peak_reserved_bytes, self.reserved_bytes)

    def _spend_host_time(self, us: float) -> None:
        """Account host-side bookkeeping time (advances the sim clock)."""
        self.device.clock.advance(us)
        self._counters.host_time_us += us

    def __repr__(self) -> str:
        return (
            f"{self.name}(active={self.active_bytes}, "
            f"reserved={self.reserved_bytes}, live={len(self._live)})"
        )
