"""The best-fit-with-coalescing (BFC) caching allocator.

A faithful reimplementation of the PyTorch CUDA caching allocator
described in the paper's §2.2 and Figure 2(b), with PyTorch's constants:

* sizes are rounded to 512 B;
* requests ≤ 1 MB come from *small* segments of 2 MB;
* requests in (1 MB, 10 MB) come from *large* segments of 20 MB;
* larger requests allocate a dedicated segment rounded to 2 MB;
* a best-fit free block is **split** when the remainder is large enough
  (≥ 512 B in the small pool, > 1 MB in the large pool);
* ``free`` marks the block inactive and **coalesces** it with free
  neighbours inside the same segment;
* segments are obtained with ``cudaMalloc`` and returned with
  ``cudaFree`` only when wholly free — on allocation failure the
  allocator first releases all wholly-free cached segments and retries
  (PyTorch's ``release_cached_blocks`` fallback), then reports OOM.

External fragmentation arises exactly as the paper describes: splitting
under an irregular request stream strands free sub-blocks inside
segments that can never be returned to the device nor merged across
segment boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.allocators.base import Allocation, BaseAllocator
from repro.errors import CudaOutOfMemoryError, OutOfMemoryError
from repro.gpu.device import GpuDevice
from repro.sortedlist import ChunkedSortedKeyList
from repro.units import MB, align_up

# PyTorch CUDACachingAllocator constants.
MIN_BLOCK_SIZE = 512
SMALL_SIZE = 1 * MB
SMALL_BUFFER = 2 * MB
LARGE_BUFFER = 20 * MB
MIN_LARGE_ALLOC = 10 * MB
ROUND_LARGE = 2 * MB


@dataclass
class Segment:
    """One ``cudaMalloc``-ed region that blocks are carved from."""

    ptr: int
    size: int
    pool: str  # "small" | "large"
    n_blocks: int = 0


@dataclass
class Block:
    """A contiguous range inside a segment.

    Doubly linked to its address-adjacent neighbours within the same
    segment (the paper's "bidirectional link") so coalescing is O(1).
    """

    ptr: int
    size: int
    segment: Segment
    allocated: bool = False
    prev: Optional["Block"] = field(default=None, repr=False)
    next: Optional["Block"] = field(default=None, repr=False)

    def is_whole_segment(self) -> bool:
        """True when this free block spans its entire segment."""
        return self.prev is None and self.next is None and self.size == self.segment.size


def round_size(size: int) -> int:
    """Round a request to the allocator's 512 B granularity."""
    if size < MIN_BLOCK_SIZE:
        return MIN_BLOCK_SIZE
    return align_up(size, MIN_BLOCK_SIZE)


def segment_size_for(rounded: int) -> int:
    """Size of the segment ``cudaMalloc``-ed to serve a rounded request."""
    if rounded <= SMALL_SIZE:
        return SMALL_BUFFER
    if rounded < MIN_LARGE_ALLOC:
        return LARGE_BUFFER
    return align_up(rounded, ROUND_LARGE)


def pool_for(rounded: int) -> str:
    """Which free pool a rounded request is served from."""
    return "small" if rounded <= SMALL_SIZE else "large"


def should_split(block_size: int, rounded: int, pool: str) -> bool:
    """PyTorch's split policy: keep the remainder only if it is usable."""
    remaining = block_size - rounded
    if pool == "small":
        return remaining >= MIN_BLOCK_SIZE
    return remaining > SMALL_SIZE


class CachingAllocator(BaseAllocator):
    """PyTorch-style BFC caching allocator (the paper's baseline)."""

    def __init__(self, device: GpuDevice):
        super().__init__(device, name="caching")
        self._free_pools: Dict[str, ChunkedSortedKeyList[Block]] = {
            "small": ChunkedSortedKeyList(key=lambda b: (b.size, b.ptr)),
            "large": ChunkedSortedKeyList(key=lambda b: (b.size, b.ptr)),
        }
        self._blocks_by_ptr: Dict[int, Block] = {}
        self._segments: Dict[int, Segment] = {}
        self._reserved = 0
        self._cached_bytes = 0

    # ------------------------------------------------------------------
    @property
    def reserved_bytes(self) -> int:
        return self._reserved

    @property
    def segment_count(self) -> int:
        """Number of live ``cudaMalloc``-ed segments."""
        return len(self._segments)

    def free_block_count(self, pool: Optional[str] = None) -> int:
        """Number of free blocks cached (optionally in one pool)."""
        if pool is not None:
            return len(self._free_pools[pool])
        return sum(len(p) for p in self._free_pools.values())

    def cached_bytes(self) -> int:
        """Total bytes of free (inactive) blocks held in the pools.

        Maintained incrementally by :meth:`_pool_add` /
        :meth:`_pool_remove` instead of re-summing the pools per query.
        """
        return self._cached_bytes

    # -- every pool entry/exit goes through these two, so the byte
    # -- counter can never drift from the pool contents.
    def _pool_add(self, pool: str, block: Block) -> None:
        self._free_pools[pool].add(block)
        self._cached_bytes += block.size

    def _pool_remove(self, pool: str, block: Block) -> None:
        self._free_pools[pool].remove(block)
        self._cached_bytes -= block.size

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def _malloc_impl(self, size: int) -> "tuple[int, int]":
        rounded = round_size(size)
        pool = pool_for(rounded)
        self._spend_host_time(self.device.latency.cached_op_us)

        block = self._find_best_fit(pool, rounded)
        if block is None:
            block = self._alloc_new_segment(rounded, pool)
        if should_split(block.size, rounded, pool):
            block = self._split(block, rounded)
        block.allocated = True
        return block.ptr, rounded

    def _find_best_fit(self, pool: str, rounded: int) -> Optional[Block]:
        """Step 1 of the BFC algorithm: smallest free block >= request."""
        best = self._free_pools[pool].first_at_least((rounded, 0))
        if best is None:
            return None
        self._pool_remove(pool, best)
        return best

    def _alloc_new_segment(self, rounded: int, pool: str) -> Block:
        """No cached candidate: ``cudaMalloc`` a fresh segment."""
        seg_size = segment_size_for(rounded)
        try:
            ptr = self.device.runtime.cuda_malloc(seg_size)
        except CudaOutOfMemoryError:
            released = self._release_cached_segments()
            if released == 0:
                self._raise_oom(rounded)
            try:
                ptr = self.device.runtime.cuda_malloc(seg_size)
            except CudaOutOfMemoryError:
                self._raise_oom(rounded)
        segment = Segment(ptr=ptr, size=seg_size, pool=pool, n_blocks=1)
        self._segments[ptr] = segment
        self._reserved += seg_size
        block = Block(ptr=ptr, size=seg_size, segment=segment)
        self._blocks_by_ptr[ptr] = block
        return block

    def _raise_oom(self, rounded: int) -> None:
        raise OutOfMemoryError(
            requested=rounded,
            reserved=self._reserved,
            active=self.active_bytes,
            capacity=self.device.capacity,
        )

    def _split(self, block: Block, rounded: int) -> Block:
        """Step 2: split the best-fit block; remainder stays cached."""
        remainder = Block(
            ptr=block.ptr + rounded,
            size=block.size - rounded,
            segment=block.segment,
            prev=block,
            next=block.next,
        )
        if block.next is not None:
            block.next.prev = remainder
        block.next = remainder
        block.size = rounded
        block.segment.n_blocks += 1
        self._blocks_by_ptr[remainder.ptr] = remainder
        self._pool_add(block.segment.pool, remainder)
        return block

    # ------------------------------------------------------------------
    # Deallocation
    # ------------------------------------------------------------------
    def _free_impl(self, allocation: Allocation) -> None:
        """Steps 3-4: mark inactive, coalesce with free neighbours."""
        self._spend_host_time(self.device.latency.cached_op_us)
        block = self._blocks_by_ptr.get(allocation.ptr)
        if block is None or not block.allocated:
            raise AssertionError(
                f"internal error: freeing unknown block at {allocation.ptr:#x}"
            )
        block.allocated = False
        block = self._coalesce(block)
        self._pool_add(block.segment.pool, block)

    def _coalesce(self, block: Block) -> Block:
        """Merge ``block`` with free address-adjacent neighbours."""
        pool = block.segment.pool
        nxt = block.next
        if nxt is not None and not nxt.allocated:
            self._pool_remove(pool, nxt)
            del self._blocks_by_ptr[nxt.ptr]
            block.size += nxt.size
            block.next = nxt.next
            if nxt.next is not None:
                nxt.next.prev = block
            block.segment.n_blocks -= 1
        prv = block.prev
        if prv is not None and not prv.allocated:
            self._pool_remove(pool, prv)
            del self._blocks_by_ptr[block.ptr]
            prv.size += block.size
            prv.next = block.next
            if block.next is not None:
                block.next.prev = prv
            prv.segment.n_blocks -= 1
            block = prv
        return block

    # ------------------------------------------------------------------
    # Cache release
    # ------------------------------------------------------------------
    def _empty_cache_impl(self) -> None:
        """Release every wholly-free segment back to the device."""
        self._release_cached_segments()

    def _release_cached_segments(self) -> int:
        """``cudaFree`` each segment whose single block is free.

        Returns the number of bytes released.
        """
        released = 0
        for pool_name, pool in self._free_pools.items():
            for block in pool.as_list():
                if block.is_whole_segment():
                    self._pool_remove(pool_name, block)
                    del self._blocks_by_ptr[block.ptr]
                    del self._segments[block.segment.ptr]
                    self.device.runtime.cuda_free(block.segment.ptr)
                    self._reserved -= block.segment.size
                    released += block.segment.size
        return released

    # ------------------------------------------------------------------
    # Invariant checks (for property tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError if internal bookkeeping is inconsistent."""
        # Every segment's blocks tile it exactly.
        seg_bytes: Dict[int, int] = {ptr: 0 for ptr in self._segments}
        for block in self._blocks_by_ptr.values():
            seg_bytes[block.segment.ptr] += block.size
        for ptr, seg in self._segments.items():
            assert seg_bytes[ptr] == seg.size, (
                f"segment {ptr:#x}: blocks cover {seg_bytes[ptr]} of {seg.size} bytes"
            )
        # Free pools contain exactly the non-allocated blocks.
        free_ptrs = {b.ptr for p in self._free_pools.values() for b in p}
        expected = {b.ptr for b in self._blocks_by_ptr.values() if not b.allocated}
        assert free_ptrs == expected, "free pools out of sync with block table"
        # No two adjacent free blocks (coalescing happened).
        for block in self._blocks_by_ptr.values():
            if not block.allocated and block.next is not None:
                assert block.next.allocated, "adjacent free blocks not coalesced"
        # Reserved equals the sum of segment sizes.
        assert self._reserved == sum(s.size for s in self._segments.values())
        # The incremental cached-bytes counter matches a full re-sum.
        assert self._cached_bytes == sum(
            b.size for p in self._free_pools.values() for b in p
        ), "cached_bytes counter out of sync with the free pools"
        for pool in self._free_pools.values():
            assert pool.check_sorted()
