"""GMLake: the paper's primary contribution.

The allocator (§3) is built from three layers, mirroring Figure 7:

1. **Virtual memory API** — the simulated driver in :mod:`repro.gpu.vmm`.
2. **Virtual memory pool** — :class:`~repro.core.pblock.PBlock` /
   :class:`~repro.core.sblock.SBlock` cached in the primitive and
   stitched pools (:mod:`repro.core.pools`).
3. **GMLake allocator** — :class:`~repro.core.allocator.GMLakeAllocator`
   implementing the BestFit states S1–S4 (Algorithm 1), the allocation
   strategy of Figure 9, and the Update / StitchFree deallocation module.
"""

from repro.core.allocator import GMLakeAllocator
from repro.core.bestfit import BestFitResult, FitState, best_fit
from repro.core.config import GMLakeConfig
from repro.core.pblock import PBlock
from repro.core.pools import PPool, SPool
from repro.core.sblock import SBlock

__all__ = [
    "GMLakeAllocator",
    "GMLakeConfig",
    "PBlock",
    "SBlock",
    "PPool",
    "SPool",
    "FitState",
    "BestFitResult",
    "best_fit",
]
