"""pBlock — GMLake's primitive memory block (§3.2, Figure 8).

A pBlock is the smallest unit visible to high-level tensors: a
contiguous virtual address range backed by uniform 2 MB physical chunks
created through the VMM API.  pBlocks own their physical chunks; sBlocks
only alias them.
"""

from __future__ import annotations

import itertools
from typing import List, Tuple

from repro.errors import CudaInvalidValueError
from repro.gpu.device import GpuDevice
from repro.units import fmt_bytes, is_aligned

_pblock_ids = itertools.count(1)


class PBlock:
    """A primitive block: one VA reservation mapping its own chunks.

    Attributes
    ----------
    id:
        Unique identifier (process-global, for logging and pool keys).
    va:
        Start of the block's virtual address reservation.
    size:
        Block size in bytes (a multiple of ``chunk_size``).
    chunk_size:
        Size of each backing physical chunk.
    handles:
        Physical chunk handles, in VA order.  This pBlock holds the
        *creation* reference of every handle.
    active:
        True while a tensor occupies this block's chunks — either
        directly or through an sBlock that contains this pBlock.
    owner_id:
        ``alloc_id`` of the tensor occupying the block, or None.
    last_used:
        Allocator tick of the last (de)allocation touching this block.
    sblock_refs:
        How many live sBlocks stitch over this pBlock.  Exact-match
        allocation prefers unreferenced pBlocks so that converged
        stitch compositions are not invalidated by size-colliding
        requests (the steady state of §4.2.2 depends on this).
    """

    __slots__ = ("id", "va", "size", "chunk_size", "handles", "active",
                 "owner_id", "last_used", "sblock_refs")

    def __init__(self, va: int, size: int, chunk_size: int, handles: List[int]):
        self.id = next(_pblock_ids)
        self.va = va
        self.size = size
        self.chunk_size = chunk_size
        self.handles = handles
        self.active = False
        self.owner_id: "int | None" = None
        self.last_used = 0
        self.sblock_refs = 0

    # ------------------------------------------------------------------
    @classmethod
    def allocate(cls, device: GpuDevice, size: int, chunk_size: int) -> "PBlock":
        """The ``Alloc`` function (§3.3.1): reserve VA, create chunks,
        map them, enable access.

        The exclusive way new physical memory enters GMLake.  ``size``
        must be a positive multiple of ``chunk_size``.

        Raises :class:`~repro.errors.CudaOutOfMemoryError` if the device
        cannot commit the chunks; partially created chunks are rolled
        back by the caller-visible exception path in the allocator.
        """
        if size <= 0 or not is_aligned(size, chunk_size):
            raise CudaInvalidValueError(
                f"pBlock size must be a positive multiple of {chunk_size}, got {size}"
            )
        vmm = device.vmm
        va = vmm.mem_address_reserve(size)
        handles: List[int] = []
        try:
            for offset in range(0, size, chunk_size):
                handle = vmm.mem_create(chunk_size)
                handles.append(handle)
                vmm.mem_map(va, offset, handle)
        except Exception:
            # Roll back so a failed Alloc leaves the device unchanged.
            if handles:
                vmm.mem_unmap(va, 0, len(handles) * chunk_size)
                for handle in handles:
                    vmm.mem_release(handle)
            vmm.mem_address_free(va)
            raise
        vmm.mem_set_access(va, 0, size)
        return cls(va=va, size=size, chunk_size=chunk_size, handles=handles)

    # ------------------------------------------------------------------
    def split(self, device: GpuDevice, left_size: int) -> "Tuple[PBlock, PBlock]":
        """The ``Split`` function (§3.3.1).

        Divides this pBlock into two new pBlocks of ``left_size`` and
        ``size - left_size`` bytes, each with its own virtual address
        and remapped physical chunks; the original pBlock is destroyed
        (its VA is freed, its chunks live on under the new blocks).

        ``left_size`` must be a chunk multiple strictly inside the block.
        The block must be inactive.
        """
        if self.active:
            raise CudaInvalidValueError(f"cannot split active pBlock {self.id}")
        if not is_aligned(left_size, self.chunk_size):
            raise CudaInvalidValueError(
                f"split size {left_size} is not a multiple of {self.chunk_size}"
            )
        if not 0 < left_size < self.size:
            raise CudaInvalidValueError(
                f"split size {left_size} outside (0, {self.size})"
            )
        vmm = device.vmm
        n_left = left_size // self.chunk_size
        left = self._remap(device, self.handles[:n_left])
        right = self._remap(device, self.handles[n_left:])
        # Tear down the original VA; the new mappings keep chunks alive.
        vmm.mem_unmap(self.va, 0, self.size)
        vmm.mem_address_free(self.va)
        self.handles = []
        return left, right

    def _remap(self, device: GpuDevice, handles: List[int]) -> "PBlock":
        """Build a new pBlock over existing chunks (helper for split)."""
        vmm = device.vmm
        size = len(handles) * self.chunk_size
        va = vmm.mem_address_reserve(size)
        for i, handle in enumerate(handles):
            vmm.mem_map(va, i * self.chunk_size, handle)
        vmm.mem_set_access(va, 0, size)
        return PBlock(va=va, size=size, chunk_size=self.chunk_size, handles=handles)

    # ------------------------------------------------------------------
    def destroy(self, device: GpuDevice) -> None:
        """Release physical chunks and the VA reservation.

        Only called by the allocator's reclaim fallback (OOM path) and
        teardown; during normal operation pBlocks cache their physical
        memory for the lifetime of training.
        """
        if self.active:
            raise CudaInvalidValueError(f"cannot destroy active pBlock {self.id}")
        vmm = device.vmm
        vmm.mem_unmap(self.va, 0, self.size)
        for handle in self.handles:
            vmm.mem_release(handle)
        vmm.mem_address_free(self.va)
        self.handles = []

    @property
    def n_chunks(self) -> int:
        """Number of physical chunks backing this block."""
        return self.size // self.chunk_size

    def __repr__(self) -> str:
        state = "active" if self.active else "inactive"
        return f"PBlock(id={self.id}, size={fmt_bytes(self.size)}, {state})"
