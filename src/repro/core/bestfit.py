"""The BestFit function — Algorithm 1 of the paper, verbatim.

Given a request size and the inactive blocks of both pools (sorted in
descending size order), classify the situation into one of four states
and return the candidate blocks the allocation strategy (Figure 9) will
post-process:

* **S1 exact match** — a block (sBlock or pBlock) of exactly the
  requested size exists; the only state that may return an sBlock.
* **S2 single block** — the best-fit (smallest sufficient) pBlock is
  larger than the request; it will be split.
* **S3 multiple blocks** — no single pBlock suffices but several
  together do; they will be stitched.
* **S4 insufficient blocks** — even all candidates together fall short;
  a new pBlock must be allocated (and stitched with the candidates).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence, Union

from repro.core.pblock import PBlock
from repro.core.sblock import SBlock


class FitState(enum.IntEnum):
    """Outcome states of Algorithm 1 plus the OOM terminal state S5."""

    EXACT_MATCH = 1
    SINGLE_BLOCK = 2
    MULTIPLE_BLOCKS = 3
    INSUFFICIENT_BLOCKS = 4
    OOM = 5


@dataclass
class BestFitResult:
    """State and candidate blocks returned by :func:`best_fit`.

    ``candidates`` holds pBlocks except in the EXACT_MATCH state, where
    the single entry may be an sBlock.
    """

    state: FitState
    candidates: List[Union[PBlock, SBlock]]

    @property
    def candidate_bytes(self) -> int:
        """Total size of the candidate blocks."""
        return sum(b.size for b in self.candidates)


def best_fit(
    bsize: int,
    inactive_sblocks: Sequence[SBlock],
    inactive_pblocks: Sequence[PBlock],
    min_stitch_size: int = 0,
) -> BestFitResult:
    """Algorithm 1: classify a request against the inactive blocks.

    Parameters
    ----------
    bsize:
        Requested allocation size (already rounded to chunk granularity).
    inactive_sblocks / inactive_pblocks:
        Inactive blocks sorted in **descending** size order, as the paper
        assumes ("both sPool and pPool are sorted in descending order").
    min_stitch_size:
        The fragmentation limit (§4.3): pBlocks smaller than this are
        skipped when gathering multi-block stitching candidates, though
        they may still serve an exact match.

    Returns
    -------
    BestFitResult
        State S1–S4 and the candidate block list.
    """
    # S1: exact match over the union of both pools (lines 2-4).
    for block in list(inactive_sblocks) + list(inactive_pblocks):
        if block.size == bsize:
            return BestFitResult(FitState.EXACT_MATCH, [block])

    # Candidate gathering over pBlocks only (lines 5-15).
    cb: List[PBlock] = []
    cb_size = 0
    for block in inactive_pblocks:
        if block.size >= bsize:
            # Descending scan: each sufficient block replaces the last,
            # leaving the *smallest* sufficient block — the best fit.
            cb = [block]
            cb_size = block.size
        elif cb_size < bsize:
            if block.size < min_stitch_size:
                continue
            cb.append(block)
            cb_size += block.size
        else:
            break

    if len(cb) == 1 and cb_size > bsize:
        return BestFitResult(FitState.SINGLE_BLOCK, list(cb))
    if cb_size >= bsize:
        return BestFitResult(FitState.MULTIPLE_BLOCKS, list(cb))
    return BestFitResult(FitState.INSUFFICIENT_BLOCKS, list(cb))
