"""The primitive and stitched memory pools (§3.2, Figure 8).

Both pools are ordered sets sorted by block size — the paper sorts
descending; the pPool's *inactive index* is stored descending outright
so BestFit's scan order is a straight copy.  The pools hold *all*
blocks (active and inactive) plus live **indexes** maintained
incrementally so the per-malloc hot path never re-filters or re-sorts:

* ``PPool`` keeps an inactive view keyed ``(-size, sblock_refs, id)``
  (BestFit's exact scan order) and running ``total_bytes`` /
  ``inactive_bytes`` counters;
* ``SPool`` keeps a pBlock→sBlocks back-index (``referencing`` without
  scanning every sBlock), a per-sBlock active-member count, and an
  inactive view keyed ``(size, id)``.

State changes must flow through the pool API (``mark_active`` /
``mark_inactive`` / ``adjust_refs`` on the pPool, ``member_activated``
/ ``member_deactivated`` / ``replace_member`` on the sPool) so the
indexes can never drift from the block flags — ``check_invariants``
re-derives everything from scratch and asserts agreement.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.core.pblock import PBlock
from repro.core.sblock import SBlock
from repro.sortedlist import ChunkedSortedKeyList


class PPool:
    """The primitive memory pool: every live pBlock, sorted by size.

    "The pPool represents a strict one-to-one mapping of GPU memory,
    with each pBlock being distinct from others" (§4.2.1) — enforced by
    :meth:`check_invariants`.
    """

    def __init__(self):
        self._blocks: ChunkedSortedKeyList[PBlock] = ChunkedSortedKeyList(
            key=lambda b: (b.size, b.id)
        )
        # Live inactive view in BestFit scan order: largest first, then
        # fewest sBlock references, then id.  ``sblock_refs`` is part of
        # the key, so every refs change must go through ``adjust_refs``.
        self._inactive: ChunkedSortedKeyList[PBlock] = ChunkedSortedKeyList(
            key=lambda b: (-b.size, b.sblock_refs, b.id)
        )
        self._total_bytes = 0
        self._inactive_bytes = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[PBlock]:
        return iter(self._blocks)

    def add(self, block: PBlock) -> None:
        """Insert a pBlock (after Alloc or Split)."""
        self._blocks.add(block)
        self._total_bytes += block.size
        if not block.active:
            self._inactive.add(block)
            self._inactive_bytes += block.size

    def remove(self, block: PBlock) -> None:
        """Remove a pBlock (before Split rebuilds it, or on release)."""
        self._blocks.remove(block)
        self._total_bytes -= block.size
        if not block.active:
            self._inactive.remove(block)
            self._inactive_bytes -= block.size

    # ------------------------------------------------------------------
    # State transitions — the only way flags may change while pooled
    # ------------------------------------------------------------------
    def mark_active(self, block: PBlock) -> None:
        """Flip ``block`` to active, maintaining the inactive index."""
        if block.active:
            return
        self._inactive.remove(block)
        self._inactive_bytes -= block.size
        block.active = True

    def mark_inactive(self, block: PBlock) -> None:
        """Flip ``block`` to inactive, maintaining the inactive index."""
        if not block.active:
            return
        block.active = False
        self._inactive.add(block)
        self._inactive_bytes += block.size

    def adjust_refs(self, block: PBlock, delta: int) -> None:
        """Change ``block.sblock_refs`` (part of the inactive key)."""
        if not block.active:
            self._inactive.remove(block)
            block.sblock_refs += delta
            self._inactive.add(block)
        else:
            block.sblock_refs += delta

    # ------------------------------------------------------------------
    def inactive_descending(self) -> List[PBlock]:
        """Inactive pBlocks, largest first — BestFit's scan order.

        Equal-size blocks are ordered unreferenced-first so stitching
        and splitting consume blocks that no existing sBlock depends on
        before cannibalizing converged stitch compositions.  A straight
        copy of the live index — no filtering, no sorting.
        """
        return self._inactive.as_list()

    def exact_inactive(self, size: int) -> Optional[PBlock]:
        """An inactive pBlock of exactly ``size`` bytes, if any.

        Among equal-size candidates, pBlocks that no sBlock references
        are preferred: taking an sBlock member would mark the sBlock
        active and force the next request for its stitched size back
        into S2/S3 churn instead of the converged exact-match path.
        Falls back to the lowest-id candidate, like the pre-index scan.
        """
        fallback: Optional[PBlock] = None
        for block in self._inactive.iter_from((-size,)):
            if block.size != size:
                break
            if block.sblock_refs == 0:
                return block
            if fallback is None or block.id < fallback.id:
                fallback = block
        return fallback

    @property
    def total_bytes(self) -> int:
        """Physical bytes owned by all pBlocks (running counter)."""
        return self._total_bytes

    @property
    def inactive_bytes(self) -> int:
        """Physical bytes in inactive pBlocks (running counter)."""
        return self._inactive_bytes

    def check_invariants(self) -> None:
        """pPool holds no duplicates, stays sorted, and every index and
        counter matches a from-scratch recomputation."""
        ids = [b.id for b in self._blocks]
        assert len(ids) == len(set(ids)), "duplicate pBlock in pPool"
        assert self._blocks.check_sorted(), "pPool not sorted"
        assert self._inactive.check_sorted(), "pPool inactive index not sorted"
        inactive_ids = {b.id for b in self._inactive}
        expected = {b.id for b in self._blocks if not b.active}
        assert inactive_ids == expected, (
            "pPool inactive index out of sync with block flags"
        )
        assert self._total_bytes == sum(b.size for b in self._blocks), (
            "pPool total_bytes counter drifted"
        )
        assert self._inactive_bytes == sum(
            b.size for b in self._blocks if not b.active
        ), "pPool inactive_bytes counter drifted"


class SPool:
    """The stitched memory pool: every live sBlock, sorted by size.

    "The sPool is considered a subset of the pPool" (§4.2.1): every
    member of every sBlock must be present in the pPool.
    """

    def __init__(self):
        self._blocks: ChunkedSortedKeyList[SBlock] = ChunkedSortedKeyList(
            key=lambda b: (b.size, b.id)
        )
        self._inactive: ChunkedSortedKeyList[SBlock] = ChunkedSortedKeyList(
            key=lambda b: (b.size, b.id)
        )
        # pBlock id -> sBlocks stitched over it (the back-index behind
        # ``referencing``).  Per-sBlock active-member counts live on
        # ``SBlock.pool_active_members`` (O(1) activity instead of an
        # any() chain per query).
        self._by_member: Dict[int, List[SBlock]] = {}
        self._va_bytes = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[SBlock]:
        return iter(self._blocks)

    def add(self, block: SBlock) -> None:
        """Insert an sBlock (only Stitch creates these)."""
        self._blocks.add(block)
        self._va_bytes += block.size
        for member in block.members:
            self._by_member.setdefault(member.id, []).append(block)
        active = sum(1 for m in block.members if m.active)
        block.pool_active_members = active
        if active == 0:
            self._inactive.add(block)

    def remove(self, block: SBlock) -> None:
        """Remove an sBlock (StitchFree)."""
        self._blocks.remove(block)
        self._va_bytes -= block.size
        for member in block.members:
            holders = self._by_member[member.id]
            holders.remove(block)
            if not holders:
                del self._by_member[member.id]
        if block.pool_active_members == 0:
            self._inactive.remove(block)

    # ------------------------------------------------------------------
    # Member-state notifications (fired by the allocator's Update path)
    # ------------------------------------------------------------------
    def member_activated(self, pblock: PBlock) -> None:
        """A member pBlock went active: update every referencing sBlock."""
        holders = self._by_member.get(pblock.id)
        if holders is None:
            return
        for sblock in holders:
            count = sblock.pool_active_members
            if count == 0:
                self._inactive.remove(sblock)
            sblock.pool_active_members = count + 1

    def member_deactivated(self, pblock: PBlock) -> None:
        """A member pBlock went inactive: update referencing sBlocks."""
        holders = self._by_member.get(pblock.id)
        if holders is None:
            return
        for sblock in holders:
            count = sblock.pool_active_members - 1
            sblock.pool_active_members = count
            if count == 0:
                self._inactive.add(sblock)

    def replace_member(self, sblock: SBlock, old: PBlock,
                       new_parts: List[PBlock]) -> None:
        """Swap ``old`` for the pBlocks it was split into, keeping the
        back-index current.  Split requires ``old`` inactive and the
        parts inherit that state, so activity counts are unchanged."""
        sblock.replace_member(old, new_parts)
        holders = self._by_member[old.id]
        holders.remove(sblock)
        if not holders:
            del self._by_member[old.id]
        for part in new_parts:
            self._by_member.setdefault(part.id, []).append(sblock)

    # ------------------------------------------------------------------
    def exact_inactive(self, size: int) -> Optional[SBlock]:
        """An inactive sBlock of exactly ``size`` bytes, if any.

        This is the only way an sBlock is ever handed to a tensor (S1:
        "This is the sole situation where an sBlock can be assigned").
        """
        block = self._inactive.first_at_least((size, 0))
        if block is not None and block.size == size:
            return block
        return None

    def inactive_blocks(self) -> List[SBlock]:
        """All inactive sBlocks (StitchFree candidates)."""
        return self._inactive.as_list()

    def referencing(self, pblock: PBlock) -> List[SBlock]:
        """Every sBlock that stitches over ``pblock``, in (size, id)
        order (the pre-index scan order)."""
        holders = self._by_member.get(pblock.id)
        if not holders:
            return []
        return sorted(holders, key=lambda s: (s.size, s.id))

    def lru_inactive(self) -> Optional[SBlock]:
        """Least-recently-used inactive sBlock (StitchFree victim)."""
        victim: Optional[SBlock] = None
        for block in self._inactive:
            if victim is None or block.last_used < victim.last_used:
                victim = block
        return victim

    @property
    def total_va_bytes(self) -> int:
        """Virtual address bytes consumed by all sBlocks (counter)."""
        return self._va_bytes

    def check_invariants(self, ppool: PPool) -> None:
        """Every sBlock member is a live pPool block; every index and
        count matches a from-scratch recomputation."""
        live = {id(b) for b in ppool}
        for sblock in self._blocks:
            assert len(sblock.members) >= 2, f"sBlock {sblock.id} has <2 members"
            for member in sblock.members:
                assert id(member) in live, (
                    f"sBlock {sblock.id} references pBlock {member.id} "
                    "that is not in the pPool"
                )
            assert sblock.pool_active_members == sum(
                1 for m in sblock.members if m.active
            ), f"sBlock {sblock.id} active-member count drifted"
        assert self._blocks.check_sorted(), "sPool not sorted"
        assert self._inactive.check_sorted(), "sPool inactive index not sorted"
        inactive_ids = {b.id for b in self._inactive}
        expected = {b.id for b in self._blocks if not b.active}
        assert inactive_ids == expected, (
            "sPool inactive index out of sync with member activity"
        )
        edges = {(pid, id(s)) for pid, holders in self._by_member.items()
                 for s in holders}
        expected_edges = {(m.id, id(s)) for s in self._blocks
                          for m in s.members}
        assert edges == expected_edges, "sPool member back-index drifted"
        assert self._va_bytes == sum(b.size for b in self._blocks), (
            "sPool total_va_bytes counter drifted"
        )
