"""The primitive and stitched memory pools (§3.2, Figure 8).

Both pools are ordered sets sorted by block size — the paper sorts
descending; we store ascending and iterate in reverse where the
algorithm wants largest-first.  The pools hold *all* blocks (active and
inactive); BestFit filters to inactive ones, mirroring the paper's
"Inactive sBlocks and pBlocks" input.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.core.pblock import PBlock
from repro.core.sblock import SBlock
from repro.sortedlist import SortedKeyList


class PPool:
    """The primitive memory pool: every live pBlock, sorted by size.

    "The pPool represents a strict one-to-one mapping of GPU memory,
    with each pBlock being distinct from others" (§4.2.1) — enforced by
    :meth:`check_invariants`.
    """

    def __init__(self):
        self._blocks: SortedKeyList[PBlock] = SortedKeyList(
            key=lambda b: (b.size, b.id)
        )

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[PBlock]:
        return iter(self._blocks)

    def add(self, block: PBlock) -> None:
        """Insert a pBlock (after Alloc or Split)."""
        self._blocks.add(block)

    def remove(self, block: PBlock) -> None:
        """Remove a pBlock (before Split rebuilds it, or on release)."""
        self._blocks.remove(block)

    def inactive_descending(self) -> List[PBlock]:
        """Inactive pBlocks, largest first — BestFit's scan order.

        Equal-size blocks are ordered unreferenced-first so stitching
        and splitting consume blocks that no existing sBlock depends on
        before cannibalizing converged stitch compositions.
        """
        blocks = [b for b in self._blocks.items_descending() if not b.active]
        blocks.sort(key=lambda b: (-b.size, b.sblock_refs, b.id))
        return blocks

    def exact_inactive(self, size: int) -> Optional[PBlock]:
        """An inactive pBlock of exactly ``size`` bytes, if any.

        Among equal-size candidates, pBlocks that no sBlock references
        are preferred: taking an sBlock member would mark the sBlock
        active and force the next request for its stitched size back
        into S2/S3 churn instead of the converged exact-match path.
        """
        idx = self._blocks.index_at_least((size, 0))
        fallback: Optional[PBlock] = None
        while idx < len(self._blocks) and self._blocks[idx].size == size:
            block = self._blocks[idx]
            if not block.active:
                if block.sblock_refs == 0:
                    return block
                if fallback is None:
                    fallback = block
            idx += 1
        return fallback

    @property
    def total_bytes(self) -> int:
        """Physical bytes owned by all pBlocks."""
        return sum(b.size for b in self._blocks)

    @property
    def inactive_bytes(self) -> int:
        """Physical bytes in inactive pBlocks (reusable without Alloc)."""
        return sum(b.size for b in self._blocks if not b.active)

    def check_invariants(self) -> None:
        """pPool holds no duplicates and stays sorted."""
        ids = [b.id for b in self._blocks]
        assert len(ids) == len(set(ids)), "duplicate pBlock in pPool"
        assert self._blocks.check_sorted(), "pPool not sorted"


class SPool:
    """The stitched memory pool: every live sBlock, sorted by size.

    "The sPool is considered a subset of the pPool" (§4.2.1): every
    member of every sBlock must be present in the pPool.
    """

    def __init__(self):
        self._blocks: SortedKeyList[SBlock] = SortedKeyList(
            key=lambda b: (b.size, b.id)
        )

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[SBlock]:
        return iter(self._blocks)

    def add(self, block: SBlock) -> None:
        """Insert an sBlock (only Stitch creates these)."""
        self._blocks.add(block)

    def remove(self, block: SBlock) -> None:
        """Remove an sBlock (StitchFree)."""
        self._blocks.remove(block)

    def exact_inactive(self, size: int) -> Optional[SBlock]:
        """An inactive sBlock of exactly ``size`` bytes, if any.

        This is the only way an sBlock is ever handed to a tensor (S1:
        "This is the sole situation where an sBlock can be assigned").
        """
        idx = self._blocks.index_at_least((size, 0))
        while idx < len(self._blocks) and self._blocks[idx].size == size:
            block = self._blocks[idx]
            if not block.active:
                return block
            idx += 1
        return None

    def inactive_blocks(self) -> List[SBlock]:
        """All inactive sBlocks (StitchFree candidates)."""
        return [b for b in self._blocks if not b.active]

    def referencing(self, pblock: PBlock) -> List[SBlock]:
        """Every sBlock that stitches over ``pblock``."""
        return [s for s in self._blocks if s.contains(pblock)]

    def lru_inactive(self) -> Optional[SBlock]:
        """Least-recently-used inactive sBlock (StitchFree victim)."""
        candidates = self.inactive_blocks()
        if not candidates:
            return None
        return min(candidates, key=lambda s: s.last_used)

    @property
    def total_va_bytes(self) -> int:
        """Virtual address bytes consumed by all sBlocks."""
        return sum(b.size for b in self._blocks)

    def check_invariants(self, ppool: PPool) -> None:
        """Every sBlock member is a live pPool block; sPool is sorted."""
        live = {id(b) for b in ppool}
        for sblock in self._blocks:
            assert len(sblock.members) >= 2, f"sBlock {sblock.id} has <2 members"
            for member in sblock.members:
                assert id(member) in live, (
                    f"sBlock {sblock.id} references pBlock {member.id} "
                    "that is not in the pPool"
                )
        assert self._blocks.check_sorted(), "sPool not sorted"
