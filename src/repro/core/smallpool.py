"""Small-allocation pool for requests below the 2 MB chunk size.

"GMLake uses VMM to tackle allocation larger than 2MB.  For memory
allocation less than 2MB, we use the original PyTorch splitting method
of the caching allocator to deal with its internal fragmentation
issues.  Moreover, allocation < 2MB is rare in LLM training." (§3.1)

We embed a private BFC caching allocator restricted to small requests;
its reserved segments count toward GMLake's reserved bytes.
"""

from __future__ import annotations

from typing import Dict

from repro.allocators.base import Allocation
from repro.allocators.caching import CachingAllocator
from repro.gpu.device import GpuDevice


class SmallPool:
    """Splitting pool for sub-chunk requests (delegates to BFC)."""

    def __init__(self, device: GpuDevice):
        self._inner = CachingAllocator(device)
        self._by_ptr: Dict[int, Allocation] = {}

    def malloc(self, size: int) -> "tuple[int, int]":
        """Allocate; returns ``(ptr, rounded_size)``."""
        alloc = self._inner.malloc(size)
        self._by_ptr[alloc.ptr] = alloc
        return alloc.ptr, alloc.rounded_size

    def free(self, ptr: int) -> None:
        """Free by pointer."""
        alloc = self._by_ptr.pop(ptr)
        self._inner.free(alloc)

    def owns(self, ptr: int) -> bool:
        """True if ``ptr`` is a live small-pool allocation."""
        return ptr in self._by_ptr

    @property
    def reserved_bytes(self) -> int:
        """Physical bytes held by the small pool's segments."""
        return self._inner.reserved_bytes

    def empty_cache(self) -> None:
        """Release wholly-free small segments."""
        self._inner.empty_cache()

    @property
    def live_count(self) -> int:
        """Outstanding small allocations."""
        return len(self._by_ptr)
