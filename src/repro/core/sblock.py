"""sBlock — GMLake's stitched memory block (§3.2–3.3, Figure 8).

An sBlock fuses several non-contiguous pBlocks behind one contiguous
virtual address range.  It never creates physical chunks: ``cuMemMap``
simply points its VA at the member pBlocks' existing chunks (the same
physical chunk may be mapped by many sBlocks simultaneously).  Whether
an sBlock is usable is derived from its members: if any member pBlock is
active the sBlock is active too, which guarantees each physical chunk is
used by at most one tensor.
"""

from __future__ import annotations

import itertools
from typing import List, Sequence

from repro.errors import CudaInvalidValueError
from repro.gpu.device import GpuDevice
from repro.core.pblock import PBlock
from repro.units import fmt_bytes

_sblock_ids = itertools.count(1)


class SBlock:
    """A stitched block: one VA aliasing the chunks of several pBlocks.

    Attributes
    ----------
    id:
        Unique identifier.
    va:
        Start of the stitched virtual address reservation.
    size:
        Total size (sum of member pBlock sizes).
    members:
        The stitched pBlocks, in VA order.
    last_used:
        Allocator tick of the last (de)allocation touching this block,
        used by the LRU ``StitchFree`` policy.
    owner_id:
        ``alloc_id`` of the tensor occupying this sBlock, or None.
    """

    __slots__ = ("id", "va", "size", "members", "last_used", "owner_id",
                 "pool_active_members")

    def __init__(self, va: int, size: int, members: List[PBlock]):
        self.id = next(_sblock_ids)
        self.va = va
        self.size = size
        self.members = members
        self.last_used = 0
        self.owner_id: "int | None" = None
        # Maintained by the owning SPool: count of currently-active
        # members, so pool activity checks are O(1) instead of an
        # any() chain over the members (see SPool.member_activated).
        self.pool_active_members = 0

    # ------------------------------------------------------------------
    @classmethod
    def stitch(cls, device: GpuDevice, members: Sequence[PBlock]) -> "SBlock":
        """The ``Stitch`` function (§3.3.1).

        Reserves a VA covering all members and maps every member chunk
        into it, in member order.  No physical memory is created; the
        map calls add references so member chunks outlive any single
        owner.
        """
        if len(members) < 2:
            raise CudaInvalidValueError(
                f"stitch needs at least 2 pBlocks, got {len(members)}"
            )
        total = sum(p.size for p in members)
        vmm = device.vmm
        va = vmm.mem_address_reserve(total)
        offset = 0
        for pblock in members:
            for handle in pblock.handles:
                vmm.mem_map(va, offset, handle)
                offset += pblock.chunk_size
        vmm.mem_set_access(va, 0, total)
        return cls(va=va, size=total, members=list(members))

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Paper rule: "if even one pBlock is active, all corresponding
        sBlocks are labeled as active"."""
        return any(p.active for p in self.members)

    @property
    def is_allocated(self) -> bool:
        """True when a tensor currently occupies this very sBlock."""
        return self.owner_id is not None

    def contains(self, pblock: PBlock) -> bool:
        """True if ``pblock`` is one of this sBlock's members."""
        return any(p is pblock for p in self.members)

    def replace_member(self, old: PBlock, new_parts: Sequence[PBlock]) -> None:
        """Swap member ``old`` for the pBlocks it was split into.

        An sBlock's virtual mappings point at physical *chunks*, which a
        pBlock split leaves untouched; only the active-state bookkeeping
        moves to the finer-grained parts.  ``new_parts`` must cover
        exactly ``old``'s size, in chunk order.
        """
        total = sum(p.size for p in new_parts)
        if total != old.size:
            raise CudaInvalidValueError(
                f"replacement parts cover {total} bytes, expected {old.size}"
            )
        idx = next(
            (i for i, p in enumerate(self.members) if p is old), None
        )
        if idx is None:
            raise CudaInvalidValueError(
                f"pBlock {old.id} is not a member of sBlock {self.id}"
            )
        self.members[idx : idx + 1] = list(new_parts)

    def destroy(self, device: GpuDevice) -> None:
        """The ``StitchFree`` release: unmap and drop the VA.

        Member pBlocks and their physical chunks are untouched — only
        the aliasing mappings (and their chunk references) go away.
        """
        if self.is_allocated:
            raise CudaInvalidValueError(f"cannot destroy allocated sBlock {self.id}")
        vmm = device.vmm
        vmm.mem_unmap(self.va, 0, self.size)
        vmm.mem_address_free(self.va)
        self.members = []

    def __repr__(self) -> str:
        ids = [p.id for p in self.members]
        return f"SBlock(id={self.id}, size={fmt_bytes(self.size)}, members={ids})"
