"""GMLake configuration knobs.

Defaults follow §3–§4 of the paper; every knob is swept by an ablation
bench (``benchmarks/bench_ablation_*.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import MB


@dataclass(frozen=True)
class GMLakeConfig:
    """Tunable parameters of the GMLake allocator.

    Attributes
    ----------
    chunk_size:
        Uniform physical chunk size.  The paper fixes 2 MB ("we apply a
        uniform chunk size of 2 MB across all chunks", §3.1) and
        mitigates the per-chunk API cost with pooling.
    small_threshold:
        Requests strictly below this go to the embedded splitting small
        pool instead of the VMM path ("For memory allocation less than
        2MB, we use the original PyTorch splitting method", §3.1).
    fragmentation_limit:
        Blocks smaller than this are neither split nor used as stitching
        candidates (§4.3, "e.g., 128 MB").  The default here equals the
        chunk size — i.e. the filter is off — because stitching is the
        only coalescing mechanism GMLake has: with a large limit, split
        remainders below the limit become permanently unusable and
        reserved memory leaks a little every iteration (demonstrated by
        ``benchmarks/bench_ablation_fragmentation_limit.py``).  The
        paper can afford 128 MB because its real traces allocate
        multi-GB blocks; the knob is kept for the ablation.
    max_spool_blocks:
        StitchFree releases least-recently-used inactive sBlocks once the
        stitched pool exceeds this many entries (§4.3 robustness
        fallback).  Must comfortably exceed the number of distinct
        stitched sizes per training iteration or the LRU thrashes.
    va_oversubscription:
        Cap on total live virtual address reservations, as a multiple of
        device capacity; sBlocks alias pBlock chunks so VA use exceeds
        physical use, but it cannot grow without bound (§4.3).  GPU VA
        space is 48-bit (hundreds of TB), so the default is generous —
        a tight cap forces StitchFree to evict converged compositions
        and re-stitch every iteration (see the sPool ablation bench).
    stitch_after_split:
        Figure 9 state S2 stitches the two halves of a split back into an
        sBlock so the original size can be served by exact match later.
    enable_stitch:
        Ablation switch: with stitching disabled the allocator degrades
        to a pooled VMM allocator that can only split (S3 and the S4
        stitch are skipped).
    """

    chunk_size: int = 2 * MB
    small_threshold: int = 2 * MB
    fragmentation_limit: int = 2 * MB
    max_spool_blocks: int = 4096
    va_oversubscription: float = 64.0
    stitch_after_split: bool = True
    enable_stitch: bool = True

    def __post_init__(self):
        if self.chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {self.chunk_size}")
        if self.small_threshold < 0:
            raise ValueError("small_threshold must be non-negative")
        if self.fragmentation_limit < self.chunk_size:
            raise ValueError(
                "fragmentation_limit must be at least one chunk "
                f"({self.chunk_size}), got {self.fragmentation_limit}"
            )
        if self.max_spool_blocks < 0:
            raise ValueError("max_spool_blocks must be non-negative")
        if self.va_oversubscription < 1.0:
            raise ValueError("va_oversubscription must be >= 1.0")
