"""The GMLake allocator (§3.3, §4) — a transparent drop-in replacement
for the BFC caching allocator built on virtual memory stitching.

Allocation follows Figure 9's strategy over the BestFit states:

* **S1 exact match** — return the existing pBlock/sBlock unchanged; the
  steady state after convergence (§4.2.2).
* **S2 single block** — Split the best-fit pBlock, allocate the exact
  half, and (optionally) Stitch the two halves back into an sBlock so
  the original size stays servable.
* **S3 multiple blocks** — Stitch several inactive pBlocks (splitting
  the last one if the sum overshoots) into an sBlock.
* **S4 insufficient blocks** — Alloc a new pBlock for the shortfall and
  stitch it with the candidates; Alloc is the only operation that
  commits new physical memory.
* **S5 OOM** — after the reclaim fallback (StitchFree every inactive
  sBlock, then release every inactive pBlock's physical chunks) the
  request still cannot be satisfied.

Deallocation is the Update function: flip active states, never touch
physical memory.  StitchFree trims the sPool by LRU when it exceeds the
configured capacity or the VA oversubscription cap (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Union

from repro.allocators.base import Allocation, BaseAllocator
from repro.core.bestfit import BestFitResult, FitState, best_fit
from repro.core.config import GMLakeConfig
from repro.core.pblock import PBlock
from repro.core.pools import PPool, SPool
from repro.core.sblock import SBlock
from repro.core.smallpool import SmallPool
from repro.errors import CudaOutOfMemoryError, OutOfMemoryError
from repro.gpu.device import GpuDevice
from repro.units import align_up

Block = Union[PBlock, SBlock]


@dataclass
class GMLakeCounters:
    """Operation counts, used by the convergence and overhead analyses."""

    state_hits: Dict[int, int] = field(
        default_factory=lambda: {s.value: 0 for s in FitState}
    )
    alloc_pblocks: int = 0
    splits: int = 0
    stitches: int = 0
    stitch_frees: int = 0
    reclaims: int = 0

    def record_state(self, state: FitState) -> None:
        self.state_hits[state.value] += 1


class GMLakeAllocator(BaseAllocator):
    """GPU memory lake allocator over one simulated device."""

    def __init__(self, device: GpuDevice, config: GMLakeConfig = GMLakeConfig()):
        super().__init__(device, name="gmlake")
        self.config = config
        self.ppool = PPool()
        self.spool = SPool()
        self.counters = GMLakeCounters()
        self._small = SmallPool(device)
        self._assigned: Dict[int, Block] = {}
        self._pblock_bytes = 0
        self._tick = 0

    # ------------------------------------------------------------------
    @property
    def reserved_bytes(self) -> int:
        return self._pblock_bytes + self._small.reserved_bytes

    # ------------------------------------------------------------------
    # Allocation module
    # ------------------------------------------------------------------
    def _malloc_impl(self, size: int) -> "tuple[int, int]":
        if size < self.config.small_threshold:
            return self._small.malloc(size)
        rounded = align_up(size, self.config.chunk_size)
        self._tick += 1
        self._spend_host_time(self.device.latency.cached_op_us)
        try:
            return self._malloc_large(rounded)
        except CudaOutOfMemoryError:
            self._reclaim()
            try:
                return self._malloc_large(rounded)
            except CudaOutOfMemoryError:
                self.counters.record_state(FitState.OOM)
                raise OutOfMemoryError(
                    requested=rounded,
                    reserved=self.reserved_bytes,
                    active=self.active_bytes,
                    capacity=self.device.capacity,
                ) from None

    def _malloc_large(self, rounded: int) -> "tuple[int, int]":
        # Fast path: exact match by sorted lookup — the converged steady
        # state where GMLake behaves like a perfect cache (§4.2.2).
        sblock = self.spool.exact_inactive(rounded) if self.config.enable_stitch else None
        if sblock is not None:
            self.counters.record_state(FitState.EXACT_MATCH)
            return self._assign(sblock, rounded)
        pblock = self.ppool.exact_inactive(rounded)
        if pblock is not None:
            self.counters.record_state(FitState.EXACT_MATCH)
            return self._assign(pblock, rounded)

        result = self._run_best_fit(rounded)
        self.counters.record_state(result.state)
        if result.state is FitState.EXACT_MATCH:
            return self._assign(result.candidates[0], rounded)
        if result.state is FitState.SINGLE_BLOCK:
            return self._handle_single_block(result.candidates[0], rounded)
        if result.state is FitState.MULTIPLE_BLOCKS:
            return self._handle_multiple_blocks(list(result.candidates), rounded)
        return self._handle_insufficient(list(result.candidates), rounded)

    def _run_best_fit(self, rounded: int) -> BestFitResult:
        inactive_s: List[SBlock] = []
        if self.config.enable_stitch:
            inactive_s = sorted(
                self.spool.inactive_blocks(), key=lambda b: b.size, reverse=True
            )
        inactive_p = self.ppool.inactive_descending()
        min_stitch = (
            self.config.fragmentation_limit
            if self.config.enable_stitch
            else 1 << 62  # no block qualifies: stitching disabled
        )
        return best_fit(rounded, inactive_s, inactive_p, min_stitch_size=min_stitch)

    # ------------------------------------------------------------------
    def _handle_single_block(self, block: PBlock, rounded: int) -> "tuple[int, int]":
        """S2: split the best-fit block (unless below the fragmentation
        limit) and allocate the exact-size half."""
        if (
            block.size >= self.config.fragmentation_limit
            and block.size - rounded >= self.config.chunk_size
        ):
            left, right = self._split(block, rounded)
            if self.config.stitch_after_split and self.config.enable_stitch:
                self._stitch([left, right])
            return self._assign(left, rounded)
        # Below the limit: hand out the whole block; the slack is
        # internal and bounded by the fragmentation limit.
        return self._assign(block, rounded)

    def _handle_multiple_blocks(
        self, candidates: List[PBlock], rounded: int
    ) -> "tuple[int, int]":
        """S3: stitch the candidates, splitting the last on overshoot."""
        total = sum(p.size for p in candidates)
        excess = total - rounded
        last = candidates[-1]
        if (
            excess >= self.config.chunk_size
            and last.size >= self.config.fragmentation_limit
            and last.size - excess >= self.config.chunk_size
        ):
            kept, _rest = self._split(last, last.size - excess)
            candidates[-1] = kept
        sblock = self._stitch(candidates)
        return self._assign(sblock, rounded)

    def _handle_insufficient(
        self, candidates: List[PBlock], rounded: int
    ) -> "tuple[int, int]":
        """S4: Alloc a new pBlock for the shortfall; stitch if partial
        candidates exist, otherwise allocate the new block directly."""
        if not self.config.enable_stitch:
            candidates = []
        shortfall = rounded - sum(p.size for p in candidates)
        new_block = self._alloc_pblock(align_up(shortfall, self.config.chunk_size))
        if not candidates:
            return self._assign(new_block, rounded)
        sblock = self._stitch(candidates + [new_block])
        return self._assign(sblock, rounded)

    # ------------------------------------------------------------------
    # Primitive operations (the §4.2.1 interface: Alloc, Split, Stitch)
    # ------------------------------------------------------------------
    def _alloc_pblock(self, size: int) -> PBlock:
        """Alloc — the only creator of physical memory."""
        block = PBlock.allocate(self.device, size, self.config.chunk_size)
        self.ppool.add(block)
        self._pblock_bytes += size
        self.counters.alloc_pblocks += 1
        return block

    def _split(self, block: PBlock, left_size: int) -> "tuple[PBlock, PBlock]":
        """Split — never changes the amount of allocated memory.

        sBlocks stitched over the original block survive: their virtual
        mappings address physical chunks, which the split leaves in
        place, so each referencing sBlock just swaps the member for the
        two halves.  This stability is what lets the sPool converge to a
        fixed set of compositions (§4.2.2 / §5.4).
        """
        referencing = self.spool.referencing(block)
        self.ppool.remove(block)
        left, right = block.split(self.device, left_size)
        left.last_used = right.last_used = self._tick
        self.ppool.add(left)
        self.ppool.add(right)
        for sblock in referencing:
            self.spool.replace_member(sblock, block, [left, right])
            self.ppool.adjust_refs(left, +1)
            self.ppool.adjust_refs(right, +1)
        self.counters.splits += 1
        return left, right

    def _stitch(self, members: List[PBlock]) -> SBlock:
        """Stitch — the only creator of sBlocks; no physical memory."""
        sblock = SBlock.stitch(self.device, members)
        sblock.last_used = self._tick
        for member in members:
            self.ppool.adjust_refs(member, +1)
        self.spool.add(sblock)
        self.counters.stitches += 1
        # The new sBlock is not yet assigned (its members are still
        # inactive), so the LRU must not be allowed to evict it.
        self._enforce_spool_limits(protect=sblock)
        return sblock

    def _stitch_free(self, sblock: SBlock) -> None:
        """StitchFree — drop one sBlock structure (VA only)."""
        self.spool.remove(sblock)
        for member in sblock.members:
            self.ppool.adjust_refs(member, -1)
        sblock.destroy(self.device)
        self.counters.stitch_frees += 1

    def _enforce_spool_limits(self, protect: "SBlock | None" = None) -> None:
        """LRU eviction per §4.3: cap sPool entries and VA use.

        ``protect`` exempts a freshly stitched, not-yet-assigned sBlock
        from eviction.
        """
        va_cap = int(self.config.va_oversubscription * self.device.capacity)
        while len(self.spool) > self.config.max_spool_blocks or (
            self.device.vaspace.total_reserved > va_cap and len(self.spool) > 0
        ):
            victim = self.spool.lru_inactive()
            if victim is protect:
                candidates = [
                    s for s in self.spool.inactive_blocks() if s is not protect
                ]
                victim = min(candidates, key=lambda s: s.last_used) if candidates else None
            if victim is None:
                break
            self._stitch_free(victim)

    # ------------------------------------------------------------------
    # Assignment and deallocation module
    # ------------------------------------------------------------------
    def _activate(self, pblock: PBlock) -> None:
        """Flip one pBlock active, notifying both pool indexes."""
        if not pblock.active:
            self.ppool.mark_active(pblock)
            self.spool.member_activated(pblock)

    def _deactivate(self, pblock: PBlock) -> None:
        """Flip one pBlock inactive, notifying both pool indexes."""
        if pblock.active:
            self.ppool.mark_inactive(pblock)
            self.spool.member_deactivated(pblock)

    def _assign(self, block: Block, rounded: int) -> "tuple[int, int]":
        block.last_used = self._tick
        block.owner_id = self._next_id  # the Allocation id BaseAllocator will use
        if isinstance(block, PBlock):
            self._activate(block)
        else:
            for member in block.members:
                self._activate(member)
                member.last_used = self._tick
        self._assigned[block.va] = block
        return block.va, rounded

    def _free_impl(self, allocation: Allocation) -> None:
        """Update — release the tensor-block link; physical memory stays
        under the corresponding pBlocks."""
        if self._small.owns(allocation.ptr):
            self._small.free(allocation.ptr)
            return
        self._tick += 1
        self._spend_host_time(self.device.latency.cached_op_us)
        block = self._assigned.pop(allocation.ptr)
        block.owner_id = None
        block.last_used = self._tick
        if isinstance(block, PBlock):
            self._deactivate(block)
        else:
            for member in block.members:
                self._deactivate(member)
                member.last_used = self._tick

    # ------------------------------------------------------------------
    # Reclaim fallback and cache control
    # ------------------------------------------------------------------
    def _reclaim(self) -> None:
        """OOM fallback: StitchFree every unowned sBlock, then release
        every inactive pBlock's physical memory."""
        self.counters.reclaims += 1
        for sblock in list(self.spool):
            if not sblock.is_allocated:
                self._stitch_free(sblock)
        for pblock in [p for p in self.ppool if not p.active]:
            self.ppool.remove(pblock)
            self._pblock_bytes -= pblock.size
            pblock.destroy(self.device)
        self._small.empty_cache()

    def _empty_cache_impl(self) -> None:
        """Release all cached (inactive) memory back to the device."""
        self._reclaim()
        self.counters.reclaims -= 1  # user-requested, not an OOM event

    # ------------------------------------------------------------------
    # Introspection & invariants
    # ------------------------------------------------------------------
    @property
    def converged(self) -> bool:
        """True once the last allocations all hit S1 (the §4.2.2 claim
        that after a few iterations only exact matches occur) — defined
        here as: the pools can serve every currently-freed size."""
        return self.counters.state_hits[FitState.EXACT_MATCH.value] > 0

    def state_histogram(self) -> Dict[str, int]:
        """BestFit state counts keyed by state name."""
        return {FitState(v).name: n for v, n in self.counters.state_hits.items()}

    def check_invariants(self) -> None:
        """Verify the §4.2.1 data-structure guarantees."""
        self.ppool.check_invariants()
        self.spool.check_invariants(self.ppool)
        # Physical accounting matches the pool contents.
        assert self._pblock_bytes == self.ppool.total_bytes, (
            f"pblock byte accounting drifted: {self._pblock_bytes} != "
            f"{self.ppool.total_bytes}"
        )
        # Each physical chunk is owned by exactly one pBlock.
        seen: Dict[int, int] = {}
        for pblock in self.ppool:
            for handle in pblock.handles:
                assert handle not in seen, (
                    f"chunk handle {handle} owned by pBlocks "
                    f"{seen[handle]} and {pblock.id}"
                )
                seen[handle] = pblock.id
        # A tensor-owned sBlock is intact and keeps all members active.
        for block in self._assigned.values():
            if isinstance(block, SBlock):
                assert len(block.members) >= 2, (
                    f"owned sBlock {block.id} was destroyed while assigned"
                )
                assert all(m.active for m in block.members), (
                    f"owned sBlock {block.id} has inactive members"
                )
        # Active memory can never exceed reserved memory.
        assert self.active_bytes <= self.reserved_bytes, (
            f"active {self.active_bytes} exceeds reserved {self.reserved_bytes}"
        )
        # No reservation overlap at the VA layer.
        assert not self.device.vaspace.overlaps()
