"""Exception hierarchy for the GMLake reproduction.

The simulated CUDA driver raises :class:`CudaError` subclasses that mirror
the driver-API error codes an allocator would see on real hardware; the
allocator layer raises :class:`AllocatorError` subclasses for contract
violations of its own (double free, freeing a foreign pointer, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class CudaError(ReproError):
    """Base class for simulated CUDA driver/runtime errors."""


class CudaOutOfMemoryError(CudaError):
    """Raised when a physical allocation exceeds remaining device memory.

    Mirrors ``CUDA_ERROR_OUT_OF_MEMORY`` / ``cudaErrorMemoryAllocation``.
    """

    def __init__(self, requested: int, free: int, total: int):
        self.requested = requested
        self.free = free
        self.total = total
        super().__init__(
            f"CUDA out of memory: tried to allocate {requested} bytes "
            f"({free} bytes free of {total} total)"
        )


class CudaInvalidValueError(CudaError):
    """Mirrors ``CUDA_ERROR_INVALID_VALUE`` — bad size/alignment/handle use."""


class CudaInvalidAddressError(CudaError):
    """An operation referenced a virtual address that is not reserved/mapped."""


class AllocatorError(ReproError):
    """Base class for allocator-level contract violations."""


class OutOfMemoryError(AllocatorError):
    """Allocator-level OOM: the request cannot be satisfied even after
    releasing every cached/inactive block.

    This is the error a training job observes (PyTorch's
    ``torch.cuda.OutOfMemoryError`` equivalent); experiments catch it to
    record the OOM point in batch-size sweeps (Fig. 13, Fig. 14).
    """

    def __init__(self, requested: int, reserved: int, active: int, capacity: int):
        self.requested = requested
        self.reserved = reserved
        self.active = active
        self.capacity = capacity
        super().__init__(
            f"allocator out of memory: requested {requested} bytes "
            f"(reserved {reserved}, active {active}, capacity {capacity})"
        )


class DoubleFreeError(AllocatorError):
    """The same allocation was freed twice."""


class UnknownAllocationError(AllocatorError):
    """``free`` was called with an allocation this allocator never issued."""
