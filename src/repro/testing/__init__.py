"""Reusable test doubles for exercising failure paths.

The production fault models (:mod:`repro.serve.faults`) inject failures
at the *serving* layer — replicas crash, links degrade.  The doubles
here inject failures one layer down, at the *driver* boundary, so
allocator invariants can be checked under arbitrary mid-operation OOM.
They live in the package (not under ``tests/``) so every test module —
and downstream users writing their own allocators — can import them.
"""

import itertools

from repro.errors import CudaOutOfMemoryError
from repro.gpu.device import GpuDevice

__all__ = ["FlakyDevice"]


class FlakyDevice(GpuDevice):
    """A device whose physical allocator fails on chosen call numbers.

    ``fail_on`` is an iterable of 1-based ``cuMemCreate`` call indices;
    each listed call raises :class:`CudaOutOfMemoryError` instead of
    mapping memory.  Failures are transient by construction — the next
    non-listed call succeeds — which is exactly the shape allocator
    reclaim/retry paths must survive without leaking chunks or
    stranding VA reservations.
    """

    def __init__(self, capacity, fail_on=()):
        super().__init__(capacity=capacity)
        self._create_calls = itertools.count(1)
        self._fail_on = set(fail_on)
        original_create = self.phys.create

        def flaky_create(size):
            call = next(self._create_calls)
            if call in self._fail_on:
                raise CudaOutOfMemoryError(size, self.phys.free, capacity)
            return original_create(size)

        self.phys.create = flaky_create
