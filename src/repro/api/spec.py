"""``ComponentSpec`` — one way to name a *configured* component.

A spec is a canonical component name plus validated parameter values,
parseable from a URL-query-style mini-DSL::

    caching
    gmlake?chunk_mb=512&stitching=off
    gmlake?chunk_size=512MB&enable_stitch=false     # same thing
    memory-aware?margin=1.5                         # a scheduler
    closed-loop?clients=8&think_s=2.0               # an arrival process

CLI flags, benchmark sweeps, JSON experiment files and the serving
simulator all speak this one language, so a configured component needs
no Python-side factory code anywhere.  Specs round-trip losslessly
through ``to_dict``/``from_dict`` (JSON-safe) and :meth:`spec_string`.

:class:`ComponentSpec` is the generic parser; each component kind
exposes a typed view fixing the ``kind`` (``AllocatorSpec`` here,
``KVCacheSpec`` / ``SchedulerSpec`` / ``ArrivalSpec`` /
``PreemptionSpec`` / ``AutoscalerSpec`` next to their registries in
:mod:`repro.serve`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Dict, Optional, Tuple, Union

from repro.allocators.base import BaseAllocator
from repro.api.registry import (
    ComponentInfo,
    SpecError,
    get_component_info,
    kind_label,
    parse_param_value,
)
from repro.gpu.device import GpuDevice
from repro.units import MB


def parse_query(text: str) -> Tuple[str, Dict[str, Any]]:
    """Split a ``"name?key=value&key=value"`` mini-DSL string.

    Returns ``(name, raw_params)`` without validating either — the
    caller's registry does that.  Shared by every :class:`ComponentSpec`
    view so every spec string in the toolkit has one grammar.
    """
    text = text.strip()
    if not text:
        raise SpecError("empty spec")
    name, _, query = text.partition("?")
    params: Dict[str, Any] = {}
    if query:
        for item in query.split("&"):
            if not item:
                continue
            key, sep, value = item.partition("=")
            if not sep or not key:
                raise SpecError(
                    f"malformed spec item {item!r} in {text!r} "
                    "(expected key=value)"
                )
            if key in params:
                raise SpecError(f"duplicate parameter {key!r} in {text!r}")
            params[key] = value
    return name, params


@dataclass(frozen=True)
class ComponentSpec:
    """A validated, immutable (component, parameters) pair of one kind.

    ``params`` holds only *explicitly set* parameters, keyed by their
    canonical names — defaults are left to the component so a spec
    stays minimal and stable under serialization.  Subclasses pin
    ``kind`` to a registry kind; parsing validates the name against
    that kind's registry and every value against its declared
    :class:`~repro.api.registry.Param` metadata, then runs the
    component's ``check`` hook (group validation — e.g. a non-positive
    rate) so bad specs fail at parse time, not mid-run.
    """

    name: str
    params: Dict[str, Any] = field(default_factory=dict)

    #: The registry kind this spec class addresses.
    kind: ClassVar[str] = "allocator"

    def __post_init__(self):
        info = get_component_info(self.kind, self.name)  # raises on unknown
        object.__setattr__(self, "name", info.name)
        validated = {}
        for key, raw in self.params.items():
            param, scale = info.find_param(str(key))
            if param.name in validated:
                raise SpecError(
                    f"parameter {param.name!r} set twice in {self.name} spec "
                    f"(key {key!r} is an alias)"
                )
            validated[param.name] = parse_param_value(
                info.owner, param, raw, scale)
        if info.check is not None:
            info.check(validated)
        object.__setattr__(self, "params", validated)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text):
        """Parse ``"name"`` or ``"name?key=value&key=value"``."""
        if isinstance(text, cls):
            return text
        name, params = parse_query(text)
        return cls(name, params)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ComponentSpec":
        """Inverse of :meth:`to_dict`."""
        label = kind_label(cls.kind)
        if "name" not in data:
            raise SpecError(f"{label} spec dict needs a 'name': {data!r}")
        unknown = set(data) - {"name", "params"}
        if unknown:
            raise SpecError(f"unknown {label} spec keys {sorted(unknown)}")
        return cls(str(data["name"]), dict(data.get("params") or {}))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation; round-trips via :meth:`from_dict`."""
        out: Dict[str, Any] = {"name": self.name}
        if self.params:
            out["params"] = dict(self.params)
        return out

    def spec_string(self) -> str:
        """The canonical mini-DSL string; ``parse`` round-trips it."""
        if not self.params:
            return self.name
        info = self.info
        items = []
        for key, value in sorted(self.params.items()):
            param, _ = info.find_param(key)
            if isinstance(value, bool):
                rendered = str(value).lower()
            elif param.kind == "size" and value % MB == 0:
                rendered = f"{value // MB}MB"
            else:
                rendered = str(value)
            items.append(f"{key}={rendered}")
        return f"{self.name}?{'&'.join(items)}"

    @property
    def label(self) -> str:
        """Short display label for tables (name, or name+params)."""
        return self.spec_string()

    # ------------------------------------------------------------------
    # Use
    # ------------------------------------------------------------------
    @property
    def info(self) -> ComponentInfo:
        """The registry entry this spec builds."""
        return get_component_info(self.kind, self.name)

    def resolved_params(self) -> Dict[str, Any]:
        """Full parameter dict: defaults overlaid with this spec's values."""
        info = self.info
        resolved = {p.name: p.default for p in info.params}
        resolved.update(info.resolve_params(self.params))
        return resolved

    def build(self, *args: Any) -> Any:
        """Instantiate the configured component (positional ``args``
        are whatever the kind's constructors require up front)."""
        return self.info.build(*args, params=self.params)

    def __str__(self) -> str:
        return self.spec_string()


@dataclass(frozen=True)
class AllocatorSpec(ComponentSpec):
    """A validated, immutable (allocator, parameters) pair.

    The typed allocator view of :class:`ComponentSpec`::

        caching
        gmlake?chunk_mb=512&stitching=off
        vmm-naive?chunk_size=64MB
        native?op_amplification=1
    """

    kind: ClassVar[str] = "allocator"

    def build(self, device: GpuDevice) -> BaseAllocator:
        """Instantiate the configured allocator on ``device``."""
        return self.info.build(device, params=self.params)


#: Anything the toolkit accepts where an allocator is named: a spec
#: string, a parsed spec, or a bare ``device -> allocator`` callable.
AllocatorLike = Union[str, AllocatorSpec, Callable[[GpuDevice], BaseAllocator]]


def resolve_allocator(kind: AllocatorLike, device: GpuDevice) -> BaseAllocator:
    """Build an allocator from a spec string, spec, or factory callable."""
    if isinstance(kind, AllocatorSpec):
        return kind.build(device)
    if callable(kind):
        return kind(device)
    return AllocatorSpec.parse(kind).build(device)


def spec_label(kind: AllocatorLike) -> Optional[str]:
    """Display label for ``kind`` when derivable (None for callables)."""
    if isinstance(kind, AllocatorSpec):
        return kind.label
    if isinstance(kind, str):
        return AllocatorSpec.parse(kind).label
    return None
