"""``ExperimentSpec`` + :func:`run` — one entry point for every mode.

An experiment is: a **mode** (``replay`` — offline trace replay on one
device; ``cluster`` — every training rank simulated; ``serve`` — the
online serving simulator, multi-replica when ``serving.replicas > 1``),
a **workload**, a device **capacity**, and one or more
:class:`~repro.api.spec.AllocatorSpec`.  :func:`run` dispatches all
modes through one code path and returns one
:class:`~repro.api.result.ExperimentResult` per allocator, so tables
and scripts consume every mode uniformly::

    from repro import api

    spec = api.ExperimentSpec(
        mode="replay",
        allocators=["caching", "gmlake?chunk_mb=512&stitching=off"],
        workload=api.WorkloadSpec(model="opt-13b", batch_size=4),
    )
    for result in api.run(spec):
        print(result.summary())

Specs serialize to JSON (``to_dict``/``from_dict``, ``save``/``load``)
so whole experiments ship as files: ``python -m repro run --spec
experiment.json``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.api.registry import SpecError
from repro.api.result import ExperimentResult
from repro.api.spec import AllocatorSpec
from repro.units import A100_80GB, parse_size

MODES = ("replay", "cluster", "serve")


@dataclass(frozen=True)
class WorkloadSpec:
    """A training workload, as :class:`repro.workloads.TrainingWorkload`
    names it (used by the ``replay`` and ``cluster`` modes)."""

    model: str = "opt-13b"
    batch_size: int = 4
    n_gpus: int = 4
    strategies: str = "LR"
    platform: str = "deepspeed"
    iterations: int = 8
    seed: int = 0

    def build(self):
        from repro.workloads.training import TrainingWorkload

        return TrainingWorkload(
            self.model, batch_size=self.batch_size, n_gpus=self.n_gpus,
            strategies=self.strategies, platform=self.platform,
            iterations=self.iterations, seed=self.seed,
        )


@dataclass(frozen=True)
class DisaggSpec:
    """A disaggregated prefill/decode topology (``serve`` mode).

    Present on a :class:`ServingSpec` as its ``disagg`` block, this
    routes the run through
    :func:`repro.serve.disagg.run_serving_disagg`: ``prefill_replicas``
    prompt-pass replicas, ``decode_replicas`` token-streaming replicas,
    and an ``interconnect`` component spec pricing each request's KV
    migration between the fleets (``"pcie?gb_per_s=12"``,
    ``"nvlink?gb_per_s=300&latency_us=1.5"``).  Validated — and the
    interconnect canonicalized — at spec-construction time.
    """

    prefill_replicas: int = 1
    decode_replicas: int = 1
    interconnect: str = "pcie"

    def __post_init__(self):
        from repro.serve.interconnect import InterconnectSpec

        if self.prefill_replicas < 1:
            raise SpecError(
                f"prefill_replicas must be >= 1, got "
                f"{self.prefill_replicas}")
        if self.decode_replicas < 1:
            raise SpecError(
                f"decode_replicas must be >= 1, got "
                f"{self.decode_replicas}")
        object.__setattr__(
            self, "interconnect",
            InterconnectSpec.parse(self.interconnect).spec_string())


@dataclass(frozen=True)
class ServingSpec:
    """An online serving scenario (used by the ``serve`` mode).

    Every pluggable policy is named in the same mini-DSL as
    allocators and validated against the component registry at
    spec-construction time:

    - ``kv_cache`` — the KV-cache memory model (``"chunked"``,
      ``"paged?block_tokens=16"``);
    - ``scheduler`` — the admission policy (``"fcfs"``,
      ``"memory-aware?margin=1.5"``);
    - ``arrivals`` — the arrival process as one spec string
      (``"poisson?rate=4"``, ``"mmpp?rate=1&burst=6"``,
      ``"replay?path=log.txt"``, ``"closed-loop?clients=8"``).  When
      empty, the legacy ``arrival`` + ``rate_per_s`` /
      ``burst_rate_per_s`` / ``mean_dwell_s`` fields are used instead;
    - ``preemption`` — what an OOM eviction does to the victim's KV
      (``"recompute"``, ``"swap?pcie_gb_per_s=12"``);
    - ``autoscaler`` — the replica-count policy when ``replicas > 1``
      (``"none"``, ``"queue-depth?high=6000&low=800"``);
    - ``trace`` — an optional trace-export sink for the request
      lifecycle (``"chrome?path=trace.json"``, ``"jsonl?path=t.jsonl"``;
      empty disables tracing);
    - ``faults`` — the replica fault model (``"none"``,
      ``"replica-crash?mtbf_s=120&mttr_s=10"``, ``"straggler"``,
      ``"link-degrade?factor=4"``);
    - ``retry`` — what the front-end does about faults (``"none"``,
      ``"budget?max=3&backoff_s=0.25"``, ``"hedge?after_s=2"``);
    - ``disagg`` — an optional :class:`DisaggSpec` block (also
      accepted as its dict form in JSON) switching the run to a
      disaggregated prefill/decode topology; mutually exclusive with
      ``replicas > 1`` (the fleets are sized by the block's
      ``prefill_replicas`` / ``decode_replicas``, and ``autoscaler``
      then scales each fleet independently).

    Observability knobs (all default-off; a spec without them runs
    byte-identically to one predating them): ``trace`` as above,
    ``gauge_every_s > 0`` samples time-series gauges at that simulated
    stride, and ``streaming=True`` computes report percentiles from
    constant-memory t-digest sketches (see :mod:`repro.obs`).

    ``memory_tiers`` names an ordered slow-memory hierarchy below the
    device's HBM as a comma-separated list of ``memory-tier`` specs
    (``"dram?gb=64"``, ``"dram?gb=64,cxl?gb=256&gb_per_s=40"``).  Cold
    KV demotes down the hierarchy instead of being dropped and
    promotes back on first touch (see :mod:`repro.serve.memtier`);
    empty means no tiering and runs byte-identically to a spec
    predating the field.  Mutually exclusive with ``preemption:
    "swap"`` — the hierarchy generalizes swap's single host hop.

    ``prefix_sharing=True`` switches the paged KV model to its
    radix-trie prefix-sharing variant (``kv_cache: "paged"`` becomes
    ``"paged-shared"``, block size preserved; a bare default
    ``"chunked"`` upgrades to ``"paged-shared"``) so requests
    declaring a shared prompt prefix — e.g. from the
    ``"multi-tenant?…"`` arrivals generator — reference the same
    ref-counted blocks copy-on-write.  Naming ``"paged-shared"``
    directly in ``kv_cache`` is equivalent.
    """

    model: str = "opt-13b"
    arrival: str = "poisson"          # legacy: poisson | mmpp
    rate_per_s: float = 2.0
    burst_rate_per_s: float = 0.0     # mmpp only; 0 -> 4x rate
    mean_dwell_s: float = 10.0        # mmpp only
    n_requests: int = 100
    mean_prompt: int = 512
    mean_output: int = 256
    scheduler: str = "memory-aware"
    max_batch: int = 16
    queue_timeout_s: float = 60.0
    replicas: int = 1
    slo_ttft_s: float = 2.0
    slo_tpot_s: float = 0.05
    kv_cache: str = "chunked"
    arrivals: str = ""                # full arrival spec; "" -> legacy fields
    preemption: str = "recompute"
    autoscaler: str = "none"
    faults: str = "none"              # replica fault model
    retry: str = "none"               # retry / hedging policy
    trace: str = ""                   # trace sink spec; "" -> no tracing
    gauge_every_s: float = 0.0        # gauge stride; 0 -> no gauges
    streaming: bool = False           # sketch-backed report percentiles
    disagg: Optional[DisaggSpec] = None  # prefill/decode disaggregation
    prefix_sharing: bool = False      # paged -> paged-shared (radix trie)
    memory_tiers: str = ""            # tier hierarchy; "" -> no tiering
    seed: int = 0

    def __post_init__(self):
        from repro.obs.trace import TraceSpec
        from repro.serve.arrivals import ArrivalSpec
        from repro.serve.autoscale import AutoscalerSpec
        from repro.serve.faults import FaultsSpec, RetrySpec
        from repro.serve.kvcache import KVCacheSpec
        from repro.serve.preemption import PreemptionSpec
        from repro.serve.scheduler import SchedulerSpec

        # Validate (and canonicalize) every component spec eagerly so a
        # bad string fails at spec-construction time, like a bad
        # allocator spec — not mid-run.
        for attr, spec_cls in (("kv_cache", KVCacheSpec),
                               ("scheduler", SchedulerSpec),
                               ("preemption", PreemptionSpec),
                               ("autoscaler", AutoscalerSpec),
                               ("faults", FaultsSpec),
                               ("retry", RetrySpec)):
            object.__setattr__(
                self, attr, spec_cls.parse(getattr(self, attr)).spec_string())
        if self.prefix_sharing:
            # Sugar over naming "paged-shared" directly: rewrite the
            # paged model (or the untouched chunked default) to the
            # prefix-sharing variant, preserving any block size.
            kv = KVCacheSpec.parse(self.kv_cache)
            if kv.info.name == "paged" or self.kv_cache == "chunked":
                query = "&".join(f"{k}={v}"
                                 for k, v in sorted(kv.params.items()))
                shared = "paged-shared" + (f"?{query}" if query else "")
                object.__setattr__(
                    self, "kv_cache",
                    KVCacheSpec.parse(shared).spec_string())
            elif kv.info.name != "paged-shared":
                raise SpecError(
                    f"prefix_sharing needs a paged KV cache, got "
                    f"{self.kv_cache!r} (use kv_cache: \"paged\" or "
                    f"\"paged-shared\")")
        if self.trace:
            object.__setattr__(
                self, "trace", TraceSpec.parse(self.trace).spec_string())
        if self.memory_tiers:
            from repro.serve.memtier import parse_memory_tiers
            from repro.serve.preemption import PreemptionSpec as _PSpec

            tiers = parse_memory_tiers(self.memory_tiers)
            object.__setattr__(
                self, "memory_tiers",
                ",".join(t.spec_string() for t in tiers))
            if _PSpec.parse(self.preemption).info.name == "swap":
                raise SpecError(
                    "memory_tiers generalizes swap preemption's single "
                    "host hop; pass preemption: \"recompute\" (the "
                    "default) with a tier hierarchy, or drop "
                    "memory_tiers to keep legacy swap")
        if self.gauge_every_s < 0:
            raise SpecError(
                f"gauge_every_s must be >= 0, got {self.gauge_every_s}")
        if self.arrivals:
            object.__setattr__(
                self, "arrivals",
                ArrivalSpec.parse(self.arrivals).spec_string())
        else:
            # The legacy arrival fields get the same parse-time
            # validation the spec-string path enjoys.
            if self.arrival not in ("poisson", "mmpp"):
                raise SpecError(
                    f"unknown arrival process {self.arrival!r} "
                    "(expected poisson or mmpp; use the 'arrivals' field "
                    "for replay/closed-loop spec strings)"
                )
            if self.rate_per_s <= 0:
                raise SpecError(
                    f"rate_per_s must be positive, got {self.rate_per_s}")
            if self.burst_rate_per_s < 0:
                raise SpecError(
                    f"burst_rate_per_s must be >= 0, got "
                    f"{self.burst_rate_per_s}")
            if self.mean_dwell_s <= 0:
                raise SpecError(
                    f"mean_dwell_s must be positive, got {self.mean_dwell_s}")
        if self.n_requests < 1:
            raise SpecError(
                f"n_requests must be >= 1, got {self.n_requests}")
        if self.mean_prompt < 1 or self.mean_output < 1:
            raise SpecError("mean_prompt and mean_output must be >= 1")
        if self.max_batch < 1:
            raise SpecError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.queue_timeout_s <= 0:
            raise SpecError(
                f"queue_timeout_s must be positive, got "
                f"{self.queue_timeout_s}")
        if self.replicas < 1:
            raise SpecError(f"replicas must be >= 1, got {self.replicas}")
        if self.disagg is not None:
            if isinstance(self.disagg, dict):
                try:
                    object.__setattr__(self, "disagg",
                                       DisaggSpec(**self.disagg))
                except TypeError as exc:
                    raise SpecError(f"bad disagg spec: {exc}") from exc
            elif not isinstance(self.disagg, DisaggSpec):
                raise SpecError(
                    f"disagg must be a DisaggSpec (or its dict form), "
                    f"got {type(self.disagg).__name__}")
            if self.replicas > 1:
                raise SpecError(
                    "disagg and replicas > 1 are mutually exclusive; "
                    "size the fleets with the disagg block's "
                    "prefill_replicas / decode_replicas")
        elif self.autoscaler != "none" and self.replicas < 2:
            # With disagg, the autoscaler scales each fleet on its own
            # queue signal, so the replicas >= 2 floor does not apply.
            raise SpecError(
                f"autoscaler {self.autoscaler!r} needs replicas >= 2 "
                "(a single replica has nothing to scale)")

    def build_arrivals(self):
        """The configured arrival process (spec string or legacy fields)."""
        from repro.serve.arrivals import (
            ArrivalSpec,
            MMPPArrivals,
            PoissonArrivals,
        )

        if self.arrivals:
            return ArrivalSpec.parse(self.arrivals).build()
        if self.arrival == "poisson":
            return PoissonArrivals(rate_per_s=self.rate_per_s)
        burst = self.burst_rate_per_s or 4.0 * self.rate_per_s
        return MMPPArrivals(rate_calm_per_s=self.rate_per_s,
                            rate_burst_per_s=burst,
                            mean_dwell_s=self.mean_dwell_s)

    def build_stream(self):
        from repro.serve.arrivals import LengthSampler

        lengths = LengthSampler(mean_prompt=self.mean_prompt,
                                mean_output=self.mean_output)
        return self.build_arrivals().generate(
            self.n_requests, lengths, seed=self.seed)

    def slo(self):
        from repro.serve.metrics import SloConfig

        return SloConfig(ttft_s=self.slo_ttft_s, tpot_s=self.slo_tpot_s)


@dataclass(frozen=True)
class ExperimentSpec:
    """A complete, serializable experiment description."""

    mode: str = "replay"
    allocators: Sequence[Union[str, AllocatorSpec]] = ("caching", "gmlake")
    capacity: int = A100_80GB
    workload: Optional[WorkloadSpec] = None
    serving: Optional[ServingSpec] = None
    record_timeline: bool = False

    def __post_init__(self):
        if self.mode not in MODES:
            raise SpecError(
                f"unknown experiment mode {self.mode!r}; known: {MODES}"
            )
        specs = tuple(AllocatorSpec.parse(a) for a in self.allocators)
        if not specs:
            raise SpecError("experiment needs at least one allocator")
        object.__setattr__(self, "allocators", specs)
        capacity = self.capacity
        if isinstance(capacity, str):
            capacity = parse_size(capacity)
        if capacity <= 0:
            raise SpecError(f"capacity must be positive, got {capacity}")
        object.__setattr__(self, "capacity", int(capacity))
        if self.mode in ("replay", "cluster") and self.workload is None:
            object.__setattr__(self, "workload", WorkloadSpec())
        if self.mode == "serve" and self.serving is None:
            object.__setattr__(self, "serving", ServingSpec())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict; round-trips via :meth:`from_dict`."""
        out: Dict[str, Any] = {
            "mode": self.mode,
            "allocators": [spec.to_dict() for spec in self.allocators],
            "capacity": self.capacity,
        }
        if self.record_timeline:
            out["record_timeline"] = True
        if self.workload is not None:
            out["workload"] = asdict(self.workload)
        if self.serving is not None:
            out["serving"] = asdict(self.serving)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentSpec":
        """Inverse of :meth:`to_dict` (tolerates spec-string allocators)."""
        unknown = set(data) - {"mode", "allocators", "capacity",
                               "workload", "serving", "record_timeline"}
        if unknown:
            raise SpecError(f"unknown experiment spec keys {sorted(unknown)}")
        allocators = [
            AllocatorSpec.from_dict(a) if isinstance(a, dict)
            else AllocatorSpec.parse(a)
            for a in data.get("allocators", ("caching", "gmlake"))
        ]
        try:
            workload = (WorkloadSpec(**data["workload"])
                        if data.get("workload") else None)
            serving = (ServingSpec(**data["serving"])
                       if data.get("serving") else None)
        except TypeError as exc:
            raise SpecError(f"bad experiment spec: {exc}") from exc
        return cls(
            mode=data.get("mode", "replay"),
            allocators=allocators,
            capacity=data.get("capacity", A100_80GB),
            workload=workload,
            serving=serving,
            record_timeline=bool(data.get("record_timeline", False)),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid JSON in experiment spec: {exc}") from exc
        if not isinstance(data, dict):
            raise SpecError(
                f"experiment spec must be a JSON object, got {type(data).__name__}"
            )
        return cls.from_dict(data)

    def save(self, path: str) -> None:
        """Write the spec as a JSON experiment file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "ExperimentSpec":
        """Read a JSON experiment file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


# ----------------------------------------------------------------------
# The one entry point
# ----------------------------------------------------------------------
def run(
    spec: Union[ExperimentSpec, Dict[str, Any], str],
) -> List[ExperimentResult]:
    """Run one experiment, any mode, one result per allocator.

    ``spec`` may be an :class:`ExperimentSpec`, its dict form, or a
    path to a JSON experiment file.  Each allocator runs on a fresh
    simulated device, exactly as the mode's native runner would — a
    ``replay`` run of a workload is byte-for-byte identical to calling
    :func:`repro.sim.engine.run_workload` directly.
    """
    if isinstance(spec, str):
        spec = ExperimentSpec.load(spec)
    elif isinstance(spec, dict):
        spec = ExperimentSpec.from_dict(spec)
    runner = {"replay": _run_replay, "cluster": _run_cluster,
              "serve": _run_serve}[spec.mode]
    return [runner(spec, allocator) for allocator in spec.allocators]


def _run_replay(spec: ExperimentSpec, allocator: AllocatorSpec) -> ExperimentResult:
    from repro.sim.engine import run_workload

    result = run_workload(
        spec.workload.build(), allocator, capacity=spec.capacity,
        record_timeline=spec.record_timeline,
    )
    return ExperimentResult.from_engine(result, label=allocator.label)


def _run_cluster(spec: ExperimentSpec, allocator: AllocatorSpec) -> ExperimentResult:
    from repro.sim.cluster import run_cluster

    result = run_cluster(spec.workload.build(), allocator,
                         capacity=spec.capacity,
                         record_timeline=spec.record_timeline)
    return ExperimentResult.from_cluster(result, label=allocator.label)


def _labelled_trace_path(path: str, label: str) -> str:
    """``trace.json`` → ``trace.<label>.json`` for multi-allocator runs."""
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in label)
    stem, dot, ext = path.rpartition(".")
    return f"{stem}.{safe}.{ext}" if dot else f"{path}.{safe}"


def _run_serve(spec: ExperimentSpec, allocator: AllocatorSpec) -> ExperimentResult:
    from repro.obs.gauges import GaugeSampler
    from repro.obs.trace import TraceRecorder, TraceSpec
    from repro.serve.cluster import run_serving_cluster
    from repro.serve.disagg import run_serving_disagg
    from repro.serve.simulator import ServingConfig, run_serving

    serving = spec.serving
    stream = serving.build_stream()
    config = ServingConfig(max_batch=serving.max_batch,
                           queue_timeout_s=serving.queue_timeout_s,
                           record_timeline=spec.record_timeline)
    recorder = TraceRecorder() if serving.trace else None
    gauges = (GaugeSampler(serving.gauge_every_s)
              if serving.gauge_every_s > 0 else None)
    if serving.disagg is not None:
        result = run_serving_disagg(
            stream, serving.model,
            prefill_replicas=serving.disagg.prefill_replicas,
            decode_replicas=serving.disagg.decode_replicas,
            allocator=allocator, capacity=spec.capacity,
            scheduler=serving.scheduler, config=config,
            kv_cache=serving.kv_cache, preemption=serving.preemption,
            autoscaler=serving.autoscaler,
            interconnect=serving.disagg.interconnect,
            trace=recorder, gauges=gauges,
            faults=serving.faults, retry=serving.retry,
            memory_tiers=serving.memory_tiers,
        )
        outcome = ExperimentResult.from_serve_disagg(
            result, slo=serving.slo(), label=allocator.label,
            streaming=serving.streaming)
    elif serving.replicas > 1:
        result = run_serving_cluster(
            stream, serving.model, n_replicas=serving.replicas,
            allocator=allocator, capacity=spec.capacity,
            scheduler=serving.scheduler, config=config,
            kv_cache=serving.kv_cache, preemption=serving.preemption,
            autoscaler=serving.autoscaler, trace=recorder, gauges=gauges,
            faults=serving.faults, retry=serving.retry,
            memory_tiers=serving.memory_tiers,
        )
        outcome = ExperimentResult.from_serve_cluster(
            result, slo=serving.slo(), label=allocator.label,
            streaming=serving.streaming)
    else:
        result = run_serving(
            stream, serving.model, allocator=allocator,
            capacity=spec.capacity, scheduler=serving.scheduler,
            config=config, kv_cache=serving.kv_cache,
            preemption=serving.preemption, trace=recorder, gauges=gauges,
            faults=serving.faults, retry=serving.retry,
            memory_tiers=serving.memory_tiers,
        )
        outcome = ExperimentResult.from_serving(
            result, slo=serving.slo(), label=allocator.label,
            streaming=serving.streaming)
    if recorder is not None:
        sink = TraceSpec.parse(serving.trace).build()
        if len(spec.allocators) > 1:
            # One trace file per allocator, or the sweep's runs would
            # silently overwrite each other.
            sink.path = _labelled_trace_path(sink.path, allocator.label)
        sink.write(recorder)
    return outcome
