"""The allocator registry — one catalogue for every pluggable allocator.

The paper sells GMLake as a *transparent drop-in* for the caching
allocator; this module makes the repo's own plumbing equally drop-in.
Every allocator registers once, with metadata (canonical name, aliases,
paper section, tunable parameters), and every consumer — the CLI, the
replay engine, the serving simulator, the benchmarks — resolves
allocators through the same catalogue instead of hand-rolled dicts and
factory closures.

Registering a new allocator::

    @register_allocator(
        "myalloc",
        aliases=("ma",),
        paper_section="§X",
        params=(Param("chunk_size", int, 2 * MB, kind="size"),),
    )
    class MyAllocator(BaseAllocator):
        def __init__(self, device, chunk_size=2 * MB): ...

Parameters may be declared explicitly (as above), pulled from a config
dataclass (``config_cls=GMLakeConfig`` — construction then passes one
config object), or introspected from the constructor signature when
omitted.  :class:`~repro.api.spec.AllocatorSpec` consumes this metadata
to parse and validate ``"name?key=value&..."`` spec strings.
"""

from __future__ import annotations

import dataclasses
import inspect
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.allocators.base import BaseAllocator
from repro.errors import ReproError
from repro.gpu.device import GpuDevice
from repro.units import GB, KB, MB, fmt_bytes, parse_size


class SpecError(ReproError, ValueError):
    """A malformed allocator/experiment spec (bad name, param or value)."""


class UnknownAllocatorError(SpecError, KeyError):
    """The spec names an allocator the registry does not know.

    Inherits :class:`KeyError` so legacy callers of the deprecated
    ``make_allocator`` shim keep catching the same exception type.
    """

    def __str__(self) -> str:  # KeyError.__str__ repr()s the message
        return self.args[0] if self.args else ""


#: Value kinds a parameter can declare.  ``size`` parameters accept byte
#: counts, human strings ("512MB"), and unit-suffixed key aliases
#: (``chunk_mb=512``); ``bool`` parameters accept on/off/true/false/1/0.
_KINDS = ("int", "float", "bool", "str", "size")


@dataclass(frozen=True)
class Param:
    """One tunable parameter of a registered allocator.

    Attributes
    ----------
    name:
        Canonical parameter name (a constructor or config-field name).
    type:
        Python type of the validated value.
    default:
        Default value when the spec does not mention the parameter.
    kind:
        Value syntax: ``int`` / ``float`` / ``bool`` / ``str`` /
        ``size`` (bytes, accepts ``"512MB"`` strings and ``*_mb`` keys).
    aliases:
        Alternative spec keys (e.g. ``stitching`` for
        ``enable_stitch``).
    doc:
        One-line description shown by ``repro list-allocators``.
    """

    name: str
    type: type
    default: Any
    kind: str = "int"
    aliases: Tuple[str, ...] = ()
    doc: str = ""

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown param kind {self.kind!r}")
        expected = {"int": int, "size": int, "float": float,
                    "bool": bool, "str": str}[self.kind]
        if self.type is not expected:
            raise ValueError(
                f"param {self.name!r}: kind {self.kind!r} requires type "
                f"{expected.__name__}, got {self.type.__name__}"
            )

    @property
    def keys(self) -> Tuple[str, ...]:
        """Every spec key that resolves to this parameter.

        Size parameters additionally accept ``<base>_kb/_mb/_gb`` keys
        (``base`` is the name minus a trailing ``_size``), whose numeric
        value is scaled by the unit — so ``chunk_mb=512`` means a
        512 MB ``chunk_size``.
        """
        keys = [self.name, *self.aliases]
        if self.kind == "size":
            base = self.name[: -len("_size")] if self.name.endswith("_size") else self.name
            keys += [f"{base}_kb", f"{base}_mb", f"{base}_gb"]
        return tuple(dict.fromkeys(keys))

    def default_str(self) -> str:
        """The default rendered for the registry listing."""
        if self.kind == "size":
            return fmt_bytes(self.default)
        return str(self.default)

    @property
    def type_name(self) -> str:
        return "size" if self.kind == "size" else self.type.__name__


def find_param(
    params: Sequence[Param], owner: str, key: str
) -> Tuple[Param, float]:
    """Resolve a spec key to ``(param, value_scale)`` among ``params``.

    ``owner`` names the thing being configured (e.g. ``allocator
    'gmlake'``) for error messages.  Shared by the allocator registry
    and the serving KV-cache registry so every ``name?key=value``
    mini-DSL validates keys the same way.  Raises :class:`SpecError`
    for unknown keys.
    """
    for param in params:
        for candidate in param.keys:
            if candidate == key:
                scale = 1.0
                if param.kind == "size" and key != param.name:
                    scale = {"_kb": KB, "_mb": MB, "_gb": GB}.get(key[-3:], 1.0)
                return param, scale
    known = ", ".join(p.name for p in params) or "(none)"
    raise SpecError(
        f"{owner} has no parameter {key!r}; known parameters: {known}"
    )


_BOOL_WORDS = {
    "1": True, "true": True, "yes": True, "on": True,
    "0": False, "false": False, "no": False, "off": False,
}


def parse_param_value(owner: str, param: Param, raw: Any, scale: float = 1.0) -> Any:
    """Coerce one raw spec value to the parameter's declared type.

    ``owner`` names the configured thing for error messages; ``scale``
    multiplies numeric ``size`` values (unit-suffixed keys).  Raises
    :class:`SpecError` on malformed values.
    """
    try:
        if param.kind == "bool":
            if isinstance(raw, bool):
                return raw
            word = str(raw).strip().lower()
            if word not in _BOOL_WORDS:
                raise ValueError(f"expected on/off/true/false, got {raw!r}")
            return _BOOL_WORDS[word]
        if param.kind == "size":
            if isinstance(raw, str) and not raw.strip().replace(".", "", 1).isdigit():
                value = parse_size(raw)
            else:
                value = int(float(raw) * scale)
            if value <= 0:
                raise ValueError("sizes must be positive")
            return value
        if param.kind == "int":
            return int(str(raw), 0)
        if param.kind == "float":
            return float(raw)
        return str(raw)
    except (TypeError, ValueError) as exc:
        raise SpecError(
            f"bad value {raw!r} for {owner} parameter "
            f"{param.name!r} ({param.type_name}): {exc}"
        ) from exc


@dataclass(frozen=True)
class AllocatorInfo:
    """Registry metadata for one allocator."""

    name: str
    cls: Type[BaseAllocator]
    aliases: Tuple[str, ...] = ()
    params: Tuple[Param, ...] = ()
    config_cls: Optional[type] = None
    paper_section: str = ""
    description: str = ""
    #: Optional hook: given the explicitly-set params, return derived
    #: defaults for params the user left unset (e.g. GMLake raises its
    #: fragmentation limit to a non-default chunk size).
    derive: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None

    def find_param(self, key: str) -> Tuple[Param, float]:
        """Resolve a spec key to ``(param, value_scale)``.

        Raises :class:`SpecError` for unknown keys.
        """
        return find_param(self.params, f"allocator {self.name!r}", key)

    def resolve_params(self, explicit: Dict[str, Any]) -> Dict[str, Any]:
        """Fill derived defaults around the explicitly-set parameters."""
        resolved = dict(explicit)
        if self.derive is not None:
            for key, value in self.derive(explicit).items():
                resolved.setdefault(key, value)
        return resolved

    def build(self, device: GpuDevice, params: Optional[Dict[str, Any]] = None) -> BaseAllocator:
        """Instantiate the allocator on ``device`` with ``params``."""
        resolved = self.resolve_params(params or {})
        try:
            if self.config_cls is not None:
                return self.cls(device, self.config_cls(**resolved))
            return self.cls(device, **resolved)
        except (TypeError, ValueError) as exc:
            raise SpecError(
                f"cannot construct allocator {self.name!r} "
                f"with params {resolved!r}: {exc}"
            ) from exc


_REGISTRY: Dict[str, AllocatorInfo] = {}
_ALIASES: Dict[str, str] = {}


def _params_from_config(config_cls: type) -> Tuple[Param, ...]:
    """Derive :class:`Param` metadata from a config dataclass."""
    params = []
    for field in dataclasses.fields(config_cls):
        default = field.default
        kind = {bool: "bool", float: "float", str: "str"}.get(type(default), "int")
        params.append(Param(field.name, type(default), default, kind=kind))
    return tuple(params)


def _params_from_init(cls: type) -> Tuple[Param, ...]:
    """Derive :class:`Param` metadata from a constructor signature.

    Keyword parameters after ``device`` with a simple-typed default
    become tunables; anything else is not spec-addressable.
    """
    params = []
    for parameter in list(inspect.signature(cls.__init__).parameters.values())[2:]:
        default = parameter.default
        if default is inspect.Parameter.empty:
            continue
        if isinstance(default, bool):
            kind: str = "bool"
        elif isinstance(default, int):
            kind = "int"
        elif isinstance(default, float):
            kind = "float"
        elif isinstance(default, str):
            kind = "str"
        else:
            continue
        params.append(Param(parameter.name, type(default), default, kind=kind))
    return tuple(params)


def register_allocator(
    name: str,
    *,
    aliases: Sequence[str] = (),
    params: Optional[Sequence[Param]] = None,
    config_cls: Optional[type] = None,
    paper_section: str = "",
    description: str = "",
    derive: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None,
) -> Callable[[Type[BaseAllocator]], Type[BaseAllocator]]:
    """Class decorator registering an allocator under ``name``.

    ``aliases`` are alternative names resolving to the same entry (the
    registry keeps one canonical entry; listings print aliases as
    metadata, not as extra allocators).  ``params`` declares the
    tunables explicitly; when omitted they are derived from
    ``config_cls``'s dataclass fields (construction then passes a
    single config object) or, failing that, introspected from the
    constructor signature.
    """

    def decorate(cls: Type[BaseAllocator]) -> Type[BaseAllocator]:
        if name in _REGISTRY or name in _ALIASES:
            raise ValueError(f"allocator {name!r} registered twice")
        if params is not None:
            tunables = tuple(params)
        elif config_cls is not None:
            tunables = _params_from_config(config_cls)
        else:
            tunables = _params_from_init(cls)
        doc = description or (cls.__doc__ or "").strip().splitlines()[0]
        info = AllocatorInfo(
            name=name, cls=cls, aliases=tuple(aliases), params=tunables,
            config_cls=config_cls, paper_section=paper_section,
            description=doc, derive=derive,
        )
        _REGISTRY[name] = info
        for alias in info.aliases:
            if alias in _REGISTRY or alias in _ALIASES:
                raise ValueError(f"allocator alias {alias!r} registered twice")
            _ALIASES[alias] = name
        return cls

    return decorate


def canonical_name(name: str) -> str:
    """Map a name or alias to the canonical registry name."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in _REGISTRY:
        known = ", ".join(sorted(set(_REGISTRY) | set(_ALIASES)))
        raise UnknownAllocatorError(
            f"unknown allocator {name!r}; known: {known}"
        )
    return key


def get_allocator_info(name: str) -> AllocatorInfo:
    """Look up registry metadata by canonical name or alias."""
    return _REGISTRY[canonical_name(name)]


def allocator_registry() -> Dict[str, AllocatorInfo]:
    """The canonical-name → :class:`AllocatorInfo` catalogue (a copy)."""
    return dict(_REGISTRY)


def allocator_names(include_aliases: bool = False) -> List[str]:
    """Registered allocator names, optionally with aliases."""
    names = list(_REGISTRY)
    if include_aliases:
        names += list(_ALIASES)
    return sorted(names)


def iter_allocators() -> Iterable[AllocatorInfo]:
    """Iterate registry entries in registration order."""
    return iter(_REGISTRY.values())


# ----------------------------------------------------------------------
# Built-in registrations
# ----------------------------------------------------------------------
def _register_builtins() -> None:
    from repro.allocators.caching import CachingAllocator
    from repro.allocators.expandable import ExpandableSegmentsAllocator
    from repro.allocators.native import NativeAllocator
    from repro.allocators.vmm_naive import VmmNaiveAllocator
    from repro.core.allocator import GMLakeAllocator
    from repro.core.config import GMLakeConfig

    def gmlake_derive(explicit: Dict[str, Any]) -> Dict[str, Any]:
        # A non-default chunk size drags the dependent knobs with it
        # (the config requires fragmentation_limit >= chunk_size, and
        # the ablations sweep all three together), unless they are
        # pinned explicitly.
        chunk = explicit.get("chunk_size")
        if chunk is None:
            return {}
        return {"small_threshold": chunk, "fragmentation_limit": chunk}

    register_allocator(
        "gmlake",
        params=(
            Param("chunk_size", int, 2 * MB, kind="size",
                  doc="uniform physical chunk size (§3.1)"),
            Param("small_threshold", int, 2 * MB, kind="size",
                  doc="requests below this use the splitting small pool"),
            Param("fragmentation_limit", int, 2 * MB, kind="size",
                  doc="blocks below this are never split/stitched (§4.3)"),
            Param("max_spool_blocks", int, 4096, aliases=("spool",),
                  doc="LRU cap on cached stitched sBlocks (§4.3)"),
            Param("va_oversubscription", float, 64.0, kind="float",
                  doc="virtual-address budget, x device capacity"),
            Param("stitch_after_split", bool, True, kind="bool",
                  doc="re-fuse split halves into an sBlock (Fig. 9 S2)"),
            Param("enable_stitch", bool, True, kind="bool",
                  aliases=("stitching",),
                  doc="virtual memory stitching on/off (ablation)"),
        ),
        config_cls=GMLakeConfig,
        paper_section="§3–§4",
        description="GMLake: pooled VMM allocator with virtual memory stitching",
        derive=gmlake_derive,
    )(GMLakeAllocator)

    register_allocator(
        "caching",
        aliases=("pytorch",),
        paper_section="§2.2",
        description="PyTorch best-fit caching allocator with split/coalesce (BFC)",
    )(CachingAllocator)

    register_allocator(
        "native",
        params=(
            Param("op_amplification", int, 40,
                  doc="CUDA calls one trace tensor stands for"),
        ),
        paper_section="§2.2",
        description="one cudaMalloc/cudaFree per tensor (no pooling)",
    )(NativeAllocator)

    register_allocator(
        "vmm-naive",
        params=(
            Param("chunk_size", int, 2 * MB, kind="size",
                  doc="physical chunk size backing each allocation"),
        ),
        paper_section="§2.5",
        description="unpooled VMM: full reserve/map per malloc, teardown per free",
    )(VmmNaiveAllocator)

    register_allocator(
        "expandable",
        paper_section="extension",
        description="PyTorch expandable segments: growable VMM arenas, no stitching",
    )(ExpandableSegmentsAllocator)


_register_builtins()
