"""The component registry — one catalogue for every pluggable piece.

The paper sells GMLake as a *transparent drop-in* for the caching
allocator; this module makes the repo's own plumbing equally drop-in,
and not just for allocators.  Every pluggable component — allocators,
serving KV-cache models, admission schedulers, arrival processes,
preemption policies, autoscalers — registers once under a **kind**,
with metadata (canonical name, aliases, paper section, tunable
parameters), and every consumer — the CLI, the replay engine, the
serving simulator, the benchmarks — resolves components through the
same catalogue instead of hand-rolled dicts and factory closures.

Registering a new component::

    @register_component(
        "scheduler", "priority",
        aliases=("prio",),
        params=(Param("levels", int, 4),),
    )
    class PriorityScheduler(Scheduler): ...

Allocators keep their dedicated decorator (:func:`register_allocator`,
a thin wrapper fixing ``kind="allocator"``).  Parameters may be
declared explicitly, pulled from a config dataclass
(``config_cls=GMLakeConfig`` — construction then passes one config
object), or introspected from the constructor signature when omitted.
:class:`~repro.api.spec.ComponentSpec` (and its typed views like
:class:`~repro.api.spec.AllocatorSpec`) consume this metadata to parse
and validate ``"name?key=value&..."`` spec strings.
"""

from __future__ import annotations

import dataclasses
import inspect
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.errors import ReproError
from repro.units import GB, KB, MB, fmt_bytes, parse_size


class SpecError(ReproError, ValueError):
    """A malformed component/experiment spec (bad name, param or value)."""


class UnknownComponentError(SpecError, KeyError):
    """The spec names a component the registry does not know.

    Inherits :class:`KeyError` so legacy callers of the deprecated
    ``make_allocator`` / ``make_scheduler`` shims keep catching the
    same exception type.
    """

    def __str__(self) -> str:  # KeyError.__str__ repr()s the message
        return self.args[0] if self.args else ""


class UnknownAllocatorError(UnknownComponentError):
    """The spec names an allocator the registry does not know."""


#: Value kinds a parameter can declare.  ``size`` parameters accept byte
#: counts, human strings ("512MB"), and unit-suffixed key aliases
#: (``chunk_mb=512``); ``bool`` parameters accept on/off/true/false/1/0.
_KINDS = ("int", "float", "bool", "str", "size")


@dataclass(frozen=True)
class Param:
    """One tunable parameter of a registered component.

    Attributes
    ----------
    name:
        Canonical parameter name (a constructor or config-field name).
    type:
        Python type of the validated value.
    default:
        Default value when the spec does not mention the parameter.
    kind:
        Value syntax: ``int`` / ``float`` / ``bool`` / ``str`` /
        ``size`` (bytes, accepts ``"512MB"`` strings and ``*_mb`` keys).
    aliases:
        Alternative spec keys (e.g. ``stitching`` for
        ``enable_stitch``).
    doc:
        One-line description shown by ``repro list-components``.
    """

    name: str
    type: type
    default: Any
    kind: str = "int"
    aliases: Tuple[str, ...] = ()
    doc: str = ""

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown param kind {self.kind!r}")
        expected = {"int": int, "size": int, "float": float,
                    "bool": bool, "str": str}[self.kind]
        if self.type is not expected:
            raise ValueError(
                f"param {self.name!r}: kind {self.kind!r} requires type "
                f"{expected.__name__}, got {self.type.__name__}"
            )

    @property
    def keys(self) -> Tuple[str, ...]:
        """Every spec key that resolves to this parameter.

        Size parameters additionally accept ``<base>_kb/_mb/_gb`` keys
        (``base`` is the name minus a trailing ``_size``), whose numeric
        value is scaled by the unit — so ``chunk_mb=512`` means a
        512 MB ``chunk_size``.
        """
        keys = [self.name, *self.aliases]
        if self.kind == "size":
            base = self.name[: -len("_size")] if self.name.endswith("_size") else self.name
            keys += [f"{base}_kb", f"{base}_mb", f"{base}_gb"]
        return tuple(dict.fromkeys(keys))

    def default_str(self) -> str:
        """The default rendered for the registry listing."""
        if self.kind == "size":
            return fmt_bytes(self.default)
        return str(self.default)

    @property
    def type_name(self) -> str:
        return "size" if self.kind == "size" else self.type.__name__


def find_param(
    params: Sequence[Param], owner: str, key: str
) -> Tuple[Param, float]:
    """Resolve a spec key to ``(param, value_scale)`` among ``params``.

    ``owner`` names the thing being configured (e.g. ``allocator
    'gmlake'``) for error messages.  Shared by every component kind so
    each ``name?key=value`` mini-DSL validates keys the same way.
    Raises :class:`SpecError` for unknown keys.
    """
    for param in params:
        for candidate in param.keys:
            if candidate == key:
                scale = 1.0
                if param.kind == "size" and key != param.name:
                    scale = {"_kb": KB, "_mb": MB, "_gb": GB}.get(key[-3:], 1.0)
                return param, scale
    known = ", ".join(p.name for p in params) or "(none)"
    raise SpecError(
        f"{owner} has no parameter {key!r}; known parameters: {known}"
    )


_BOOL_WORDS = {
    "1": True, "true": True, "yes": True, "on": True,
    "0": False, "false": False, "no": False, "off": False,
}


def parse_param_value(owner: str, param: Param, raw: Any, scale: float = 1.0) -> Any:
    """Coerce one raw spec value to the parameter's declared type.

    ``owner`` names the configured thing for error messages; ``scale``
    multiplies numeric ``size`` values (unit-suffixed keys).  Raises
    :class:`SpecError` on malformed values.
    """
    try:
        if param.kind == "bool":
            if isinstance(raw, bool):
                return raw
            word = str(raw).strip().lower()
            if word not in _BOOL_WORDS:
                raise ValueError(f"expected on/off/true/false, got {raw!r}")
            return _BOOL_WORDS[word]
        if param.kind == "size":
            if isinstance(raw, str) and not raw.strip().replace(".", "", 1).isdigit():
                value = parse_size(raw)
            else:
                value = int(float(raw) * scale)
            if value <= 0:
                raise ValueError("sizes must be positive")
            return value
        if param.kind == "int":
            return int(str(raw), 0)
        if param.kind == "float":
            return float(raw)
        return str(raw)
    except (TypeError, ValueError) as exc:
        raise SpecError(
            f"bad value {raw!r} for {owner} parameter "
            f"{param.name!r} ({param.type_name}): {exc}"
        ) from exc


@dataclass(frozen=True)
class ComponentInfo:
    """Registry metadata for one component of one kind."""

    name: str
    cls: type
    kind: str = "allocator"
    aliases: Tuple[str, ...] = ()
    params: Tuple[Param, ...] = ()
    config_cls: Optional[type] = None
    paper_section: str = ""
    description: str = ""
    #: Optional hook: given the explicitly-set params, return derived
    #: defaults for params the user left unset (e.g. GMLake raises its
    #: fragmentation limit to a non-default chunk size).
    derive: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None
    #: Optional hook: validate the explicitly-set params as a group at
    #: spec-parse time (raise :class:`SpecError` on bad combinations —
    #: e.g. a non-positive arrival rate) instead of failing mid-run.
    check: Optional[Callable[[Dict[str, Any]], None]] = None
    #: Optional construction override: ``factory(*args, **params)``
    #: instead of ``cls(*args, **params)`` (e.g. replay arrivals load
    #: their log file from a ``path`` param).
    factory: Optional[Callable[..., Any]] = None

    @property
    def owner(self) -> str:
        """How error messages name this component."""
        return f"{kind_label(self.kind)} {self.name!r}"

    def find_param(self, key: str) -> Tuple[Param, float]:
        """Resolve a spec key to ``(param, value_scale)``.

        Raises :class:`SpecError` for unknown keys.
        """
        return find_param(self.params, self.owner, key)

    def resolve_params(self, explicit: Dict[str, Any]) -> Dict[str, Any]:
        """Fill derived defaults around the explicitly-set parameters."""
        resolved = dict(explicit)
        if self.derive is not None:
            for key, value in self.derive(explicit).items():
                resolved.setdefault(key, value)
        return resolved

    def build(self, *args: Any, params: Optional[Dict[str, Any]] = None) -> Any:
        """Instantiate the component with ``params`` (plus positional
        ``args`` the kind requires — e.g. the device for allocators)."""
        resolved = self.resolve_params(params or {})
        try:
            if self.factory is not None:
                return self.factory(*args, **resolved)
            if self.config_cls is not None:
                return self.cls(*args, self.config_cls(**resolved))
            return self.cls(*args, **resolved)
        except (TypeError, ValueError) as exc:
            raise SpecError(
                f"cannot construct {self.owner} "
                f"with params {resolved!r}: {exc}"
            ) from exc


#: Backwards-compatible name — allocator registry entries are plain
#: :class:`ComponentInfo` records with ``kind="allocator"``.
AllocatorInfo = ComponentInfo


#: kind -> canonical name -> info, in registration order per kind.
_COMPONENTS: Dict[str, Dict[str, ComponentInfo]] = {}
#: kind -> alias -> canonical name.
_COMPONENT_ALIASES: Dict[str, Dict[str, str]] = {}
#: kind -> display label used in error messages and listings.
_KIND_LABELS: Dict[str, str] = {}
#: kind -> unknown-name error class (kind-specific subclasses keep
#: legacy ``except`` clauses working).
_KIND_ERRORS: Dict[str, Type[UnknownComponentError]] = {}


def _kind_registry(kind: str) -> Dict[str, ComponentInfo]:
    if kind not in _COMPONENTS:
        raise SpecError(
            f"unknown component kind {kind!r}; known: {sorted(_COMPONENTS)}"
        )
    return _COMPONENTS[kind]


def kind_label(kind: str) -> str:
    """Display label for ``kind`` (e.g. ``KV-cache model``)."""
    return _KIND_LABELS.get(kind, kind)


def _params_from_config(config_cls: type) -> Tuple[Param, ...]:
    """Derive :class:`Param` metadata from a config dataclass."""
    params = []
    for field in dataclasses.fields(config_cls):
        default = field.default
        kind = {bool: "bool", float: "float", str: "str"}.get(type(default), "int")
        params.append(Param(field.name, type(default), default, kind=kind))
    return tuple(params)


def _params_from_init(cls: type) -> Tuple[Param, ...]:
    """Derive :class:`Param` metadata from a constructor signature.

    Keyword parameters with a simple-typed default become tunables;
    anything else (``self``, required positionals like the allocators'
    ``device``, complex defaults) is not spec-addressable.
    """
    params = []
    for parameter in list(inspect.signature(cls.__init__).parameters.values())[1:]:
        default = parameter.default
        if default is inspect.Parameter.empty:
            continue
        if isinstance(default, bool):
            kind: str = "bool"
        elif isinstance(default, int):
            kind = "int"
        elif isinstance(default, float):
            kind = "float"
        elif isinstance(default, str):
            kind = "str"
        else:
            continue
        params.append(Param(parameter.name, type(default), default, kind=kind))
    return tuple(params)


def register_kind(
    kind: str,
    label: Optional[str] = None,
    error: Optional[Type[UnknownComponentError]] = None,
) -> Dict[str, ComponentInfo]:
    """Declare a component kind (idempotent).

    ``label`` is the display name used in error messages and listings;
    ``error`` is the unknown-name exception class (defaults to
    :class:`UnknownComponentError`).  Returns the kind's **live**
    catalogue dict (canonical name → :class:`ComponentInfo`) — the
    same object later registrations fill in, so a kind's home module
    can expose it (the allocator kind's ``_REGISTRY``, the serving
    side's ``KV_CACHE_MODELS``).
    """
    registry = _COMPONENTS.setdefault(kind, {})
    _COMPONENT_ALIASES.setdefault(kind, {})
    if label is not None:
        _KIND_LABELS.setdefault(kind, label)
    if error is not None:
        _KIND_ERRORS.setdefault(kind, error)
    return registry


def register_component(
    kind: str,
    name: str,
    *,
    aliases: Sequence[str] = (),
    params: Optional[Sequence[Param]] = None,
    config_cls: Optional[type] = None,
    paper_section: str = "",
    description: str = "",
    derive: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None,
    check: Optional[Callable[[Dict[str, Any]], None]] = None,
    factory: Optional[Callable[..., Any]] = None,
) -> Callable[[type], type]:
    """Class decorator registering a component under ``(kind, name)``.

    ``aliases`` are alternative names resolving to the same entry (the
    registry keeps one canonical entry; listings print aliases as
    metadata, not as extra components).  ``params`` declares the
    tunables explicitly; when omitted they are derived from
    ``config_cls``'s dataclass fields (construction then passes a
    single config object) or, failing that, introspected from the
    constructor signature.  ``check`` validates explicitly-set params
    at spec-parse time; ``factory`` overrides construction.
    """
    register_kind(kind)
    registry = _COMPONENTS[kind]
    alias_map = _COMPONENT_ALIASES[kind]

    def decorate(cls: type) -> type:
        if name in registry or name in alias_map:
            raise ValueError(f"{kind_label(kind)} {name!r} registered twice")
        if params is not None:
            tunables = tuple(params)
        elif config_cls is not None:
            tunables = _params_from_config(config_cls)
        else:
            tunables = _params_from_init(cls)
        doc = description or (cls.__doc__ or "").strip().splitlines()[0]
        info = ComponentInfo(
            name=name, cls=cls, kind=kind, aliases=tuple(aliases),
            params=tunables, config_cls=config_cls,
            paper_section=paper_section, description=doc,
            derive=derive, check=check, factory=factory,
        )
        registry[name] = info
        for alias in info.aliases:
            if alias in registry or alias in alias_map:
                raise ValueError(
                    f"{kind_label(kind)} alias {alias!r} registered twice")
            alias_map[alias] = name
        return cls

    return decorate


def component_canonical_name(kind: str, name: str) -> str:
    """Map a name or alias to the canonical registry name of ``kind``."""
    registry = _kind_registry(kind)
    key = name.strip().lower()
    key = _COMPONENT_ALIASES[kind].get(key, key)
    if key not in registry:
        known = ", ".join(sorted(set(registry) | set(_COMPONENT_ALIASES[kind])))
        error = _KIND_ERRORS.get(kind, UnknownComponentError)
        raise error(f"unknown {kind_label(kind)} {name!r}; known: {known}")
    return key


def get_component_info(kind: str, name: str) -> ComponentInfo:
    """Look up registry metadata by canonical name or alias."""
    return _COMPONENTS[kind][component_canonical_name(kind, name)]


def component_kinds() -> List[str]:
    """Registered component kinds, in registration order."""
    return list(_COMPONENTS)


def component_registry(kind: str) -> Dict[str, ComponentInfo]:
    """The canonical-name → :class:`ComponentInfo` catalogue (a copy)."""
    return dict(_kind_registry(kind))


def component_names(kind: str, include_aliases: bool = False) -> List[str]:
    """Registered component names of ``kind``, optionally with aliases."""
    names = list(_kind_registry(kind))
    if include_aliases:
        names += list(_COMPONENT_ALIASES[kind])
    return sorted(names)


def iter_components(kind: str) -> Iterable[ComponentInfo]:
    """Iterate ``kind``'s registry entries in registration order."""
    return iter(_kind_registry(kind).values())


# ----------------------------------------------------------------------
# The allocator kind (the original registry, now a thin view)
# ----------------------------------------------------------------------
#: The allocator catalogue — shared storage with the kind-aware
#: registry (``_COMPONENTS["allocator"]`` is this very dict).
_REGISTRY: Dict[str, ComponentInfo] = register_kind(
    "allocator", label="allocator", error=UnknownAllocatorError)
_ALIASES: Dict[str, str] = _COMPONENT_ALIASES["allocator"]


def register_allocator(
    name: str,
    *,
    aliases: Sequence[str] = (),
    params: Optional[Sequence[Param]] = None,
    config_cls: Optional[type] = None,
    paper_section: str = "",
    description: str = "",
    derive: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None,
) -> Callable[[type], type]:
    """Class decorator registering an allocator under ``name``.

    A thin wrapper over :func:`register_component` with
    ``kind="allocator"`` — kept because allocators predate the
    kind-aware registry and register from several modules.
    """
    return register_component(
        "allocator", name, aliases=aliases, params=params,
        config_cls=config_cls, paper_section=paper_section,
        description=description, derive=derive,
    )


def canonical_name(name: str) -> str:
    """Map an allocator name or alias to the canonical registry name."""
    return component_canonical_name("allocator", name)


def get_allocator_info(name: str) -> ComponentInfo:
    """Look up allocator registry metadata by canonical name or alias."""
    return get_component_info("allocator", name)


def allocator_registry() -> Dict[str, ComponentInfo]:
    """The canonical-name → :class:`AllocatorInfo` catalogue (a copy)."""
    return component_registry("allocator")


def allocator_names(include_aliases: bool = False) -> List[str]:
    """Registered allocator names, optionally with aliases."""
    return component_names("allocator", include_aliases)


def iter_allocators() -> Iterable[ComponentInfo]:
    """Iterate allocator registry entries in registration order."""
    return iter_components("allocator")


# ----------------------------------------------------------------------
# Built-in allocator registrations
# ----------------------------------------------------------------------
def _register_builtins() -> None:
    from repro.allocators.caching import CachingAllocator
    from repro.allocators.expandable import ExpandableSegmentsAllocator
    from repro.allocators.native import NativeAllocator
    from repro.allocators.vmm_naive import VmmNaiveAllocator
    from repro.core.allocator import GMLakeAllocator
    from repro.core.config import GMLakeConfig

    def gmlake_derive(explicit: Dict[str, Any]) -> Dict[str, Any]:
        # A non-default chunk size drags the dependent knobs with it
        # (the config requires fragmentation_limit >= chunk_size, and
        # the ablations sweep all three together), unless they are
        # pinned explicitly.
        chunk = explicit.get("chunk_size")
        if chunk is None:
            return {}
        return {"small_threshold": chunk, "fragmentation_limit": chunk}

    register_allocator(
        "gmlake",
        params=(
            Param("chunk_size", int, 2 * MB, kind="size",
                  doc="uniform physical chunk size (§3.1)"),
            Param("small_threshold", int, 2 * MB, kind="size",
                  doc="requests below this use the splitting small pool"),
            Param("fragmentation_limit", int, 2 * MB, kind="size",
                  doc="blocks below this are never split/stitched (§4.3)"),
            Param("max_spool_blocks", int, 4096, aliases=("spool",),
                  doc="LRU cap on cached stitched sBlocks (§4.3)"),
            Param("va_oversubscription", float, 64.0, kind="float",
                  doc="virtual-address budget, x device capacity"),
            Param("stitch_after_split", bool, True, kind="bool",
                  doc="re-fuse split halves into an sBlock (Fig. 9 S2)"),
            Param("enable_stitch", bool, True, kind="bool",
                  aliases=("stitching",),
                  doc="virtual memory stitching on/off (ablation)"),
        ),
        config_cls=GMLakeConfig,
        paper_section="§3–§4",
        description="GMLake: pooled VMM allocator with virtual memory stitching",
        derive=gmlake_derive,
    )(GMLakeAllocator)

    register_allocator(
        "caching",
        aliases=("pytorch",),
        paper_section="§2.2",
        description="PyTorch best-fit caching allocator with split/coalesce (BFC)",
    )(CachingAllocator)

    register_allocator(
        "native",
        params=(
            Param("op_amplification", int, 40,
                  doc="CUDA calls one trace tensor stands for"),
        ),
        paper_section="§2.2",
        description="one cudaMalloc/cudaFree per tensor (no pooling)",
    )(NativeAllocator)

    register_allocator(
        "vmm-naive",
        params=(
            Param("chunk_size", int, 2 * MB, kind="size",
                  doc="physical chunk size backing each allocation"),
        ),
        paper_section="§2.5",
        description="unpooled VMM: full reserve/map per malloc, teardown per free",
    )(VmmNaiveAllocator)

    register_allocator(
        "expandable",
        paper_section="extension",
        description="PyTorch expandable segments: growable VMM arenas, no stitching",
    )(ExpandableSegmentsAllocator)


_register_builtins()
