"""``repro.api`` — the public surface for building and running experiments.

Three layers, each usable alone:

* **Registry** (:mod:`repro.api.registry`) — every allocator registers
  once with :func:`register_allocator` (canonical name, aliases, paper
  section, tunable parameters).  The CLI, benchmarks and simulators all
  resolve allocators here; plugging in a new allocator is one decorator.
* **Specs** (:mod:`repro.api.spec`) — :class:`AllocatorSpec` parses the
  ``"gmlake?chunk_mb=512&stitching=off"`` mini-DSL into a validated,
  JSON-round-trippable configuration; :class:`ExperimentSpec` does the
  same for a whole experiment (mode + workload + allocators).
* **Runner** (:mod:`repro.api.experiment`) — :func:`run` dispatches
  offline replay, multi-rank cluster runs and online serving through
  one code path, returning :class:`ExperimentResult` adapters that all
  satisfy the :class:`RunResult` protocol.
* **Sweeps** (:mod:`repro.api.sweep`) — :func:`run_sweep` fans
  independent experiment points over worker processes (results are
  byte-identical at any job count) and :func:`sweep_rows` merges any
  mix of modes into uniform tables via the :class:`RunResult` surface.

Quick start::

    from repro import api

    allocator = api.AllocatorSpec.parse("gmlake?chunk_mb=512")
    results = api.run(api.ExperimentSpec(
        mode="replay",
        allocators=["caching", allocator],
        workload=api.WorkloadSpec(model="opt-1.3b", batch_size=2),
    ))
    print(results[-1].summary())

The legacy entry points (``repro.sim.engine.make_allocator``,
``ALLOCATOR_FACTORIES``, ``gmlake_factory``) remain as thin
deprecation shims over this package.
"""

from repro.api.experiment import (
    MODES,
    DisaggSpec,
    ExperimentSpec,
    ServingSpec,
    WorkloadSpec,
    run,
)
from repro.api.registry import (
    AllocatorInfo,
    ComponentInfo,
    Param,
    SpecError,
    UnknownAllocatorError,
    UnknownComponentError,
    allocator_names,
    allocator_registry,
    canonical_name,
    component_kinds,
    component_names,
    component_registry,
    get_allocator_info,
    get_component_info,
    iter_allocators,
    iter_components,
    kind_label,
    register_allocator,
    register_component,
    register_kind,
)
from repro.api.result import (
    ExperimentResult,
    RunResult,
    WorstMemberRunResult,
    run_result_row,
)
from repro.api.spec import (
    AllocatorLike,
    AllocatorSpec,
    ComponentSpec,
    resolve_allocator,
    spec_label,
)
from repro.api.sweep import (
    expand_spec_points,
    run_sweep,
    sweep_point_label,
    sweep_rows,
)

__all__ = [
    "AllocatorInfo",
    "AllocatorLike",
    "AllocatorSpec",
    "ComponentInfo",
    "ComponentSpec",
    "DisaggSpec",
    "ExperimentResult",
    "ExperimentSpec",
    "MODES",
    "Param",
    "RunResult",
    "ServingSpec",
    "SpecError",
    "UnknownAllocatorError",
    "UnknownComponentError",
    "WorkloadSpec",
    "WorstMemberRunResult",
    "allocator_names",
    "allocator_registry",
    "canonical_name",
    "component_kinds",
    "component_names",
    "component_registry",
    "expand_spec_points",
    "get_allocator_info",
    "get_component_info",
    "iter_allocators",
    "iter_components",
    "kind_label",
    "register_allocator",
    "register_component",
    "register_kind",
    "resolve_allocator",
    "run",
    "run_result_row",
    "run_sweep",
    "spec_label",
    "sweep_point_label",
    "sweep_rows",
]
