"""``run_sweep`` — fan independent experiment points across cores.

A *sweep* is a list of :class:`~repro.api.experiment.ExperimentSpec`
points (rate sweeps, allocator grids, workload grids).  Every point is
a self-contained simulation on its own simulated device with its own
fixed seed, so points are embarrassingly parallel: ``run_sweep`` ships
each point's JSON form to a ``multiprocessing`` worker and collects the
:class:`~repro.api.result.ExperimentResult` lists back in order.

Results are byte-identical whatever ``jobs`` is — parallelism changes
wall-clock only.  The merge side leans on the :class:`RunResult`
protocol: :func:`sweep_rows` renders any mix of modes into uniform
table rows.

CLI::

    python -m repro run --spec sweep.json --sweep --jobs 4

where ``sweep.json`` is either a JSON *list* of experiment objects
(one point each) or a single experiment object whose allocators are
expanded into one point per allocator.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.api.experiment import ExperimentSpec, run
from repro.api.result import ExperimentResult, run_result_row

SweepPointLike = Union[ExperimentSpec, Dict[str, Any], str]


def _normalize(point: SweepPointLike) -> ExperimentSpec:
    if isinstance(point, ExperimentSpec):
        return point
    if isinstance(point, dict):
        return ExperimentSpec.from_dict(point)
    return ExperimentSpec.load(point)


def expand_spec_points(spec: ExperimentSpec) -> List[ExperimentSpec]:
    """Split a multi-allocator experiment into one point per allocator.

    This is the unit of sweep parallelism: each allocator of each
    experiment runs on a fresh device anyway, so a two-allocator spec
    is exactly two independent points.
    """
    return [replace(spec, allocators=(allocator,))
            for allocator in spec.allocators]


def _run_point(payload: Dict[str, Any]) -> List[ExperimentResult]:
    """Worker entry: rebuild the spec from JSON form and run it."""
    return run(ExperimentSpec.from_dict(payload))


def run_sweep(
    points: Sequence[SweepPointLike],
    jobs: Optional[int] = None,
) -> List[List[ExperimentResult]]:
    """Run every sweep point, ``jobs`` at a time; results stay in order.

    Parameters
    ----------
    points:
        Experiment points (specs, their dict forms, or file paths).
    jobs:
        Worker processes.  ``None`` uses ``os.cpu_count()``; ``1`` (or
        a single point) runs serially in-process — handy under
        profilers and debuggers, and bit-for-bit the same results.

    Returns
    -------
    One ``List[ExperimentResult]`` per point (one entry per allocator
    of that point), in the order the points were given.
    """
    specs = [_normalize(point) for point in points]
    payloads = [spec.to_dict() for spec in specs]
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    jobs = min(jobs, len(payloads)) or 1
    if jobs == 1:
        return [_run_point(payload) for payload in payloads]
    with multiprocessing.get_context().Pool(processes=jobs) as pool:
        return pool.map(_run_point, payloads)


def sweep_point_label(spec: ExperimentSpec) -> str:
    """Short human label for one sweep point (the table's left column)."""
    if spec.mode == "serve":
        serving = spec.serving
        return (f"serve {serving.model} {serving.arrival} "
                f"rate={serving.rate_per_s:g}/s x{serving.replicas}")
    workload = spec.workload
    return (f"{spec.mode} {workload.model} bs={workload.batch_size} "
            f"g={workload.n_gpus} {workload.strategies}")


def sweep_rows(
    specs: Sequence[ExperimentSpec],
    results: Sequence[Sequence[ExperimentResult]],
) -> List[Dict[str, Any]]:
    """Uniform table rows over a whole sweep, any mix of modes.

    Each row is a (point, allocator) cell rendered through the shared
    :class:`RunResult` surface via :func:`run_result_row`.
    """
    rows: List[Dict[str, Any]] = []
    for spec, point_results in zip(specs, results):
        for result in point_results:
            rows.append({"point": sweep_point_label(spec),
                         **run_result_row(result)})
    return rows
