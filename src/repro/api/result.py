"""``RunResult`` — the uniform shape every experiment mode reports.

Offline replay returns an :class:`~repro.sim.engine.EngineResult`,
online serving a :class:`~repro.serve.simulator.ServingResult`, cluster
runs their aggregate types — four shapes with four vocabularies.  The
:class:`RunResult` protocol names the quantities all of them share
(allocator, peak bytes, utilization/fragmentation, throughput, OOM),
and :class:`ExperimentResult` adapts any mode-specific result to it, so
``analysis`` tables and the CLI consume every mode through one row
builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Protocol, runtime_checkable

from repro.units import GB


@runtime_checkable
class RunResult(Protocol):
    """What every experiment result exposes, whatever the mode.

    ``throughput`` is mode-appropriate (training samples/s for replay,
    completed requests/s for serving); ``extras()`` carries the
    mode-specific remainder (SLO metrics, per-rank peaks, ...).
    """

    allocator_name: str

    @property
    def peak_active_bytes(self) -> int: ...

    @property
    def peak_reserved_bytes(self) -> int: ...

    @property
    def utilization_ratio(self) -> float: ...

    @property
    def fragmentation_ratio(self) -> float: ...

    @property
    def throughput(self) -> float: ...

    @property
    def oom(self) -> bool: ...

    def extras(self) -> Dict[str, Any]: ...


class WorstMemberRunResult:
    """Mixin: the :class:`RunResult` memory surface of an aggregate.

    Both cluster aggregates (training ranks, serving replicas) report
    memory from the *worst member* — the one with the highest reserved
    peak, what capacity planning sees.  All three memory figures come
    from that same member, so a row's utilization always matches its
    reported peaks.  Subclasses implement :meth:`_result_members`.
    """

    def _result_members(self) -> list:
        raise NotImplementedError

    def _worst_member(self):
        return max(self._result_members(),
                   key=lambda r: r.peak_reserved_bytes)

    @property
    def allocator_name(self) -> str:
        members = self._result_members()
        return members[0].allocator_name if members else ""

    @property
    def peak_active_bytes(self) -> int:
        return self._worst_member().peak_active_bytes

    @property
    def peak_reserved_bytes(self) -> int:
        return self._worst_member().peak_reserved_bytes

    @property
    def utilization_ratio(self) -> float:
        return self._worst_member().utilization_ratio

    @property
    def fragmentation_ratio(self) -> float:
        return 1.0 - self.utilization_ratio


@dataclass
class ExperimentResult:
    """A mode-agnostic result adapter satisfying :class:`RunResult`.

    ``raw`` keeps the full mode-specific result for callers that need
    more than the shared surface.
    """

    allocator_name: str
    mode: str
    peak_active_bytes: int
    peak_reserved_bytes: int
    throughput: float
    oom: bool
    raw: Any = None
    _extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def utilization_ratio(self) -> float:
        """Peak active / peak reserved — the paper's §5.1 metric."""
        if self.peak_reserved_bytes == 0:
            return 1.0
        return self.peak_active_bytes / self.peak_reserved_bytes

    @property
    def fragmentation_ratio(self) -> float:
        """1 − utilization ratio."""
        return 1.0 - self.utilization_ratio

    @property
    def peak_reserved_gb(self) -> float:
        return self.peak_reserved_bytes / GB

    @property
    def peak_active_gb(self) -> float:
        return self.peak_active_bytes / GB

    def extras(self) -> Dict[str, Any]:
        """Mode-specific metrics beyond the shared surface."""
        return dict(self._extras)

    def summary(self) -> str:
        """One-line report, uniform across modes."""
        oom = " OOM" if self.oom else ""
        return (
            f"{self.allocator_name:24s} [{self.mode}] "
            f"reserved={self.peak_reserved_gb:6.2f}GB "
            f"active={self.peak_active_gb:6.2f}GB "
            f"util={self.utilization_ratio:5.1%} "
            f"thru={self.throughput:8.2f}/s{oom}"
        )

    # ------------------------------------------------------------------
    # Adapters, one per experiment mode
    # ------------------------------------------------------------------
    @classmethod
    def from_engine(cls, result, label: str = "") -> "ExperimentResult":
        """Adapt an offline-replay :class:`EngineResult`."""
        return cls(
            allocator_name=label or result.allocator_name,
            mode="replay",
            peak_active_bytes=result.peak_active_bytes,
            peak_reserved_bytes=result.peak_reserved_bytes,
            throughput=result.throughput_samples_per_s,
            oom=result.oom,
            raw=result,
            _extras=result.extras(),
        )

    @classmethod
    def from_cluster(cls, result, label: str = "") -> "ExperimentResult":
        """Adapt a multi-rank training :class:`ClusterResult`.

        Peaks are worst-rank (what capacity planning sees); throughput
        is the synchronous job's (slowest rank).  Everything delegates
        to the cluster result's own :class:`RunResult` surface so the
        two paths can never disagree.
        """
        return cls(
            allocator_name=label or result.allocator_name,
            mode="cluster",
            peak_active_bytes=result.peak_active_bytes,
            peak_reserved_bytes=result.peak_reserved_bytes,
            throughput=result.throughput,
            oom=result.oom,
            raw=result,
            _extras=result.extras(),
        )

    @classmethod
    def from_serving(cls, result, slo=None, label: str = "",
                     streaming: bool = False) -> "ExperimentResult":
        """Adapt a single-replica :class:`ServingResult`; the result's
        own :class:`RunResult` surface is extended with the SLO metrics
        only a report (which needs an :class:`SloConfig`) can compute.
        ``streaming=True`` computes report percentiles from t-digest
        sketches instead of materialized sample lists."""
        report = result.report(slo, streaming=streaming)
        return cls(
            allocator_name=label or result.allocator_name,
            mode="serve",
            peak_active_bytes=result.peak_active_bytes,
            peak_reserved_bytes=result.peak_reserved_bytes,
            throughput=result.throughput,
            oom=result.oom,  # serving preempts instead of crashing
            raw=result,
            _extras={**result.extras(), **_slo_extras(report)},
        )

    @classmethod
    def from_serve_cluster(cls, result, slo=None, label: str = "",
                           streaming: bool = False) -> "ExperimentResult":
        """Adapt a multi-replica :class:`ServeClusterResult`.

        Memory headlines are worst-replica, SLO metrics fleet-wide.
        ``streaming=True`` merges per-replica accumulators instead of
        reporting over the merged request list.
        """
        report = result.report(slo, streaming=streaming)
        return cls(
            allocator_name=label or result.allocator_name,
            mode="serve-cluster",
            peak_active_bytes=result.peak_active_bytes,
            peak_reserved_bytes=result.peak_reserved_bytes,
            throughput=result.throughput,
            oom=result.oom,
            raw=result,
            _extras={**result.extras(), **_slo_extras(report)},
        )

    @classmethod
    def from_serve_disagg(cls, result, slo=None, label: str = "",
                          streaming: bool = False) -> "ExperimentResult":
        """Adapt a :class:`~repro.serve.disagg.DisaggServingResult`.

        Memory headlines are worst-replica across both fleets; SLO
        metrics cover the merged original-request population, extended
        with the per-phase TTFT attribution (mean prefill-queue and
        decode-queue wait) only a disaggregated run can report.
        """
        report = result.report(slo, streaming=streaming)
        return cls(
            allocator_name=label or result.allocator_name,
            mode="serve-disagg",
            peak_active_bytes=result.peak_active_bytes,
            peak_reserved_bytes=result.peak_reserved_bytes,
            throughput=result.throughput,
            oom=result.oom,
            raw=result,
            _extras={
                **result.extras(),
                **_slo_extras(report),
                "prefill_wait_s": report.prefill_wait_s,
                "decode_wait_s": report.decode_wait_s,
            },
        )


def _slo_extras(report) -> Dict[str, Any]:
    """The report-only serving metrics layered over ``result.extras()``."""
    return {
        "goodput_req_s": report.goodput_req_s,
        "slo_attainment": report.slo_attainment,
        "p99_ttft_s": report.p99_ttft_s,
        "mean_tpot_s": report.mean_tpot_s,
        "token_slo_attainment": report.token_slo_attainment,
        "token_goodput_tok_s": report.token_goodput_tok_s,
    }


def run_result_row(result: RunResult) -> Dict[str, Any]:
    """One table row (for :func:`repro.analysis.format_table`) from any
    :class:`RunResult`, whatever the experiment mode."""
    return {
        "allocator": result.allocator_name,
        "reserved (GB)": round(result.peak_reserved_bytes / GB, 2),
        "active (GB)": round(result.peak_active_bytes / GB, 2),
        "utilization": round(result.utilization_ratio, 3),
        "thru (/s)": round(result.throughput, 2),
        "OOM": result.oom,
    }
