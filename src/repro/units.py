"""Size units and formatting helpers used across the simulator.

All memory quantities in this codebase are plain ``int`` byte counts; the
constants here exist so call sites read like the paper ("2 MB chunks",
"80 GB HBM") instead of raw powers of two.
"""

from __future__ import annotations

KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB

#: Granularity of CUDA VMM physical chunks (cuMemCreate minimum on A100).
CHUNK_SIZE: int = 2 * MB

#: Capacity of one NVIDIA A100-80GB device, as used throughout the paper.
A100_80GB: int = 80 * GB


def align_up(size: int, alignment: int) -> int:
    """Round ``size`` up to the next multiple of ``alignment``.

    >>> align_up(5, 4)
    8
    >>> align_up(8, 4)
    8
    >>> align_up(0, 4)
    0
    """
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    return (size + alignment - 1) // alignment * alignment


def align_down(size: int, alignment: int) -> int:
    """Round ``size`` down to the previous multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    return size // alignment * alignment


def is_aligned(size: int, alignment: int) -> bool:
    """Return True if ``size`` is a multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return size % alignment == 0


def chunks_for(size: int, chunk_size: int = CHUNK_SIZE) -> int:
    """Number of fixed-size physical chunks needed to back ``size`` bytes."""
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    return (size + chunk_size - 1) // chunk_size


def fmt_bytes(size: int) -> str:
    """Human-readable byte count, e.g. ``fmt_bytes(3 * GB)`` -> ``'3.00 GB'``.

    Negative values are formatted with a leading minus sign.
    """
    sign = "-" if size < 0 else ""
    size = abs(size)
    if size >= GB:
        return f"{sign}{size / GB:.2f} GB"
    if size >= MB:
        return f"{sign}{size / MB:.2f} MB"
    if size >= KB:
        return f"{sign}{size / KB:.2f} KB"
    return f"{sign}{size} B"


def parse_size(text: str) -> int:
    """Parse a human-readable size string such as ``'2MB'`` or ``'1.5 GB'``.

    Accepted suffixes (case-insensitive): B, KB, MB, GB.

    >>> parse_size("2MB") == 2 * MB
    True
    >>> parse_size("1.5 GB") == int(1.5 * GB)
    True
    """
    text = text.strip().upper()
    multipliers = {"GB": GB, "MB": MB, "KB": KB, "B": 1}
    for suffix, mult in multipliers.items():
        if text.endswith(suffix):
            number = text[: -len(suffix)].strip()
            return int(float(number) * mult)
    # Bare number: bytes.
    return int(float(text))
