"""Trace replay engine.

``run_trace`` feeds a :class:`~repro.workloads.request.Trace` to an
allocator on a fresh simulated device, advancing the clock by both the
allocator's driver/host costs and the workload's per-iteration compute
time, and records everything the paper's figures need: peak
active/reserved memory, utilization, OOM events, per-iteration wall
times and a memory timeline.

:class:`ReplaySession` is the stepping layer underneath ``run_trace``:
it owns the live-tensor table, OOM-tolerant allocation, and timeline
sampling, but leaves the *event loop* to the caller.  Offline replay
(``run_trace``) walks a pre-built trace; the online serving simulator
(:mod:`repro.serve`) drives the same session one decision at a time,
so scheduler policy can react to live allocator state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.allocators.base import Allocation, BaseAllocator
from repro.api.registry import allocator_names, get_allocator_info
from repro.api.spec import AllocatorLike, resolve_allocator
from repro.core.allocator import GMLakeAllocator
from repro.core.config import GMLakeConfig
from repro.errors import OutOfMemoryError
from repro.gpu.device import GpuDevice
from repro.sim.timeline import TimelinePoint, TimelineRecorder
from repro.units import A100_80GB, GB
from repro.workloads.request import Op, Trace
from repro.workloads.training import TrainingWorkload

AllocatorFactory = Callable[[GpuDevice], BaseAllocator]

#: Deprecated shim — the allocator catalogue now lives in
#: :mod:`repro.api.registry`; this dict mirrors it (aliases included)
#: for callers that predate :class:`repro.api.AllocatorSpec`.
ALLOCATOR_FACTORIES: Dict[str, AllocatorFactory] = {
    name: get_allocator_info(name).cls
    for name in allocator_names(include_aliases=True)
}


def make_allocator(
    kind: Union[AllocatorLike, AllocatorFactory], device: GpuDevice
) -> BaseAllocator:
    """Instantiate an allocator by spec, name, or factory on ``device``.

    .. deprecated::
        Thin shim over :func:`repro.api.resolve_allocator`; new code
        should build allocators from a :class:`repro.api.AllocatorSpec`.
        Kept because the name/factory calling convention predates the
        registry.  Unknown names still raise :class:`KeyError`.
    """
    return resolve_allocator(kind, device)


def gmlake_factory(config: GMLakeConfig) -> AllocatorFactory:
    """A factory for GMLake with a specific config.

    .. deprecated::
        Use an :class:`repro.api.AllocatorSpec` instead, e.g.
        ``AllocatorSpec("gmlake", {"chunk_size": 512 * MB})`` or the
        spec string ``"gmlake?chunk_mb=512"`` — both carry the config
        through CLI flags and JSON experiment files, which a closure
        cannot.
    """
    import warnings

    warnings.warn(
        "gmlake_factory is deprecated; use repro.api.AllocatorSpec "
        "(e.g. 'gmlake?chunk_mb=512')",
        DeprecationWarning, stacklevel=2,
    )
    return lambda device: GMLakeAllocator(device, config)


@dataclass
class EngineResult:
    """Everything measured from one trace replay."""

    allocator_name: str
    meta: Dict[str, object]
    peak_active_bytes: int = 0
    peak_reserved_bytes: int = 0
    oom: bool = False
    oom_iteration: Optional[int] = None
    oom_time_s: Optional[float] = None
    iterations_completed: int = 0
    total_time_s: float = 0.0
    iter_times_s: List[float] = field(default_factory=list)
    throughput_samples_per_s: float = 0.0
    driver_time_us: float = 0.0
    host_time_us: float = 0.0
    malloc_count: int = 0
    timeline: List[TimelinePoint] = field(default_factory=list)

    @property
    def utilization_ratio(self) -> float:
        """Peak active / peak reserved — the paper's §5.1 metric."""
        if self.peak_reserved_bytes == 0:
            return 1.0
        return self.peak_active_bytes / self.peak_reserved_bytes

    @property
    def fragmentation_ratio(self) -> float:
        """1 − utilization ratio."""
        return 1.0 - self.utilization_ratio

    @property
    def peak_reserved_gb(self) -> float:
        """Peak reserved memory in GB (the figures' RM axis)."""
        return self.peak_reserved_bytes / GB

    @property
    def peak_active_gb(self) -> float:
        """Peak active memory in GB."""
        return self.peak_active_bytes / GB

    @property
    def throughput(self) -> float:
        """Training samples/s — the :class:`repro.api.RunResult` name."""
        return self.throughput_samples_per_s

    def extras(self) -> Dict[str, object]:
        """Replay-specific metrics beyond the shared
        :class:`repro.api.RunResult` surface."""
        return {
            "iterations_completed": self.iterations_completed,
            "oom_iteration": self.oom_iteration,
            "total_time_s": self.total_time_s,
            "driver_time_us": self.driver_time_us,
            "malloc_count": self.malloc_count,
        }

    def summary(self) -> str:
        """One-line report used by the benches."""
        oom = f" OOM@iter{self.oom_iteration}" if self.oom else ""
        return (
            f"{self.allocator_name:8s} reserved={self.peak_reserved_gb:6.2f}GB "
            f"active={self.peak_active_gb:6.2f}GB "
            f"util={self.utilization_ratio:5.1%} "
            f"thru={self.throughput_samples_per_s:7.2f} samp/s{oom}"
        )


class ReplaySession:
    """A stepping interface over one allocator for event-driven loops.

    The session tracks live tensors by name, converts allocator OOMs
    into a boolean outcome (:meth:`try_alloc`) for callers that recover
    instead of crashing, and samples the memory timeline on demand.
    ``run_trace`` drives it from a pre-built trace; the online serving
    simulator (:mod:`repro.serve`) drives it one admission / KV-growth
    / retirement decision at a time.
    """

    def __init__(self, allocator: BaseAllocator):
        self.allocator = allocator
        self.clock = allocator.device.clock
        self.start_s = self.clock.now_s
        self.live: Dict[str, Allocation] = {}
        self.timeline: List[TimelinePoint] = []
        self._live_bytes = 0

    # ------------------------------------------------------------------
    @property
    def elapsed_s(self) -> float:
        """Seconds of simulated time since the session started."""
        return self.clock.now_s - self.start_s

    @property
    def live_bytes(self) -> int:
        """Sum of the rounded sizes of live tensors in this session.

        A running counter updated by :meth:`alloc` / :meth:`free` — a
        serving scheduler may query this per admission decision, and
        re-summing every live tensor each time made that quadratic over
        a run.
        """
        return self._live_bytes

    def holds(self, tensor: str) -> bool:
        """True if ``tensor`` is currently live in this session."""
        return tensor in self.live

    # ------------------------------------------------------------------
    def alloc(self, tensor: str, size: int) -> Allocation:
        """Allocate ``size`` bytes for ``tensor``; OOM propagates."""
        if tensor in self.live:
            raise ValueError(f"tensor {tensor!r} allocated twice")
        allocation = self.allocator.malloc(size)
        self.live[tensor] = allocation
        self._live_bytes += allocation.rounded_size
        return allocation

    def try_alloc(self, tensor: str, size: int) -> bool:
        """Allocate for ``tensor``; return ``False`` on OOM.

        The failed driver/host time still elapses on the clock — a real
        allocator burns time before discovering it cannot satisfy a
        request, and online schedulers should pay for that.
        """
        try:
            self.alloc(tensor, size)
            return True
        except OutOfMemoryError:
            return False

    def free(self, tensor: str) -> None:
        """Free the live tensor named ``tensor``."""
        allocation = self.live.pop(tensor, None)
        if allocation is None:
            raise ValueError(f"trace frees unknown tensor {tensor!r}")
        self._live_bytes -= allocation.rounded_size
        self.allocator.free(allocation)

    def advance(self, duration_us: float) -> None:
        """Advance the simulated clock (compute time between events)."""
        self.clock.advance(duration_us)

    def sample(self) -> None:
        """Append one memory timeline point at the current time."""
        self.timeline.append(TimelinePoint(
            time_s=self.elapsed_s,
            active_bytes=self.allocator.active_bytes,
            reserved_bytes=self.allocator.reserved_bytes,
        ))

    def finish(self, result: EngineResult) -> None:
        """Fill allocator-side statistics into ``result``."""
        stats = self.allocator.stats()
        result.peak_active_bytes = stats.peak_active_bytes
        result.peak_reserved_bytes = stats.peak_reserved_bytes
        result.driver_time_us = stats.driver_time_us
        result.host_time_us = stats.host_time_us
        result.malloc_count = stats.malloc_count
        result.total_time_s = self.elapsed_s
        result.timeline = self.timeline


def run_trace(
    allocator: BaseAllocator,
    trace: Trace,
    record_timeline: bool = False,
    timeline_every: int = 32,
) -> EngineResult:
    """Replay ``trace`` against ``allocator`` and measure the outcome.

    An allocator OOM aborts the replay (like the training job crashing)
    and is recorded in the result rather than raised — batch-size sweeps
    (Fig. 13) and the memory trace (Fig. 14) rely on observing it.

    Timeline capture subscribes to the allocator's event hooks
    (:class:`~repro.sim.timeline.TimelineRecorder`) rather than being
    baked into this loop; ``timeline_every`` counts alloc/free events.
    """
    session = ReplaySession(allocator)
    clock = session.clock
    result = EngineResult(
        allocator_name=allocator.name,
        meta=dict(trace.meta),
    )
    recorder: Optional[TimelineRecorder] = None
    if record_timeline:
        recorder = allocator.add_observer(
            TimelineRecorder(allocator, every=timeline_every))
    iter_start_s = session.start_s
    current_iter = 0

    for event in trace.events:
        if event.op is Op.ALLOC:
            if not session.try_alloc(event.tensor, event.size):
                result.oom = True
                result.oom_iteration = current_iter
                result.oom_time_s = session.elapsed_s
                break
        elif event.op is Op.FREE:
            session.free(event.tensor)
        elif event.op is Op.ITER_START:
            current_iter = int(event.tensor)
            iter_start_s = clock.now_s
        elif event.op is Op.ITER_END:
            compute_list = trace.compute_us_per_iter
            if current_iter < len(compute_list):
                clock.advance(compute_list[current_iter])
            result.iterations_completed += 1
            result.iter_times_s.append(clock.now_s - iter_start_s)

    if recorder is not None:
        recorder.sample(allocator)
        allocator.remove_observer(recorder)
        session.timeline = recorder.points
    session.finish(result)
    global_batch = int(trace.meta.get("global_batch", 0) or 0)
    if result.iterations_completed > 0 and global_batch:
        # Steady-state throughput: skip warm-up iterations (GMLake's
        # stitching converges within ~4 iterations, Fig. 14; the paper
        # reports converged samples/s).
        warmup = min(4, result.iterations_completed - 1)
        steady = result.iter_times_s[warmup:]
        if steady and sum(steady) > 0:
            samples = global_batch * len(steady)
            result.throughput_samples_per_s = samples / sum(steady)
    return result


def run_workload(
    workload: TrainingWorkload,
    allocator: Union[AllocatorLike, AllocatorFactory] = "caching",
    capacity: int = A100_80GB,
    record_timeline: bool = False,
) -> EngineResult:
    """Build the workload's trace and replay it on a fresh device.

    ``allocator`` is anything :func:`repro.api.resolve_allocator`
    accepts: a name, a spec string (``"gmlake?chunk_mb=512"``), an
    :class:`repro.api.AllocatorSpec`, or a factory callable.
    """
    device = GpuDevice(capacity=capacity)
    alloc = resolve_allocator(allocator, device)
    trace = workload.build_trace()
    return run_trace(alloc, trace, record_timeline=record_timeline)
