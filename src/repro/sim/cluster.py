"""Multi-rank cluster simulation.

The figure benches replay rank 0's allocation stream, which is exact
for symmetric data parallelism.  :func:`run_cluster` simulates *every*
rank with per-rank trace seeds (real ranks diverge slightly: different
data shards, different kernel autotuning) and aggregates the way a real
job does:

* the job OOMs iff **any** rank OOMs (collectives deadlock without it);
* the job's step time is the **slowest** rank's (synchronous SGD);
* reserved/active peaks are reported per-rank and fleet-wide.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Union

from repro.api.result import WorstMemberRunResult
from repro.api.spec import AllocatorLike, resolve_allocator
from repro.sim.engine import AllocatorFactory, EngineResult, run_trace
from repro.gpu.device import GpuDevice
from repro.units import A100_80GB
from repro.workloads.training import TrainingWorkload


@dataclass
class ClusterResult(WorstMemberRunResult):
    """Aggregated outcome of one multi-rank run."""

    ranks: List[EngineResult] = field(default_factory=list)

    @property
    def n_ranks(self) -> int:
        return len(self.ranks)

    @property
    def oom(self) -> bool:
        """A synchronous job fails as soon as one rank fails."""
        return any(rank.oom for rank in self.ranks)

    @property
    def max_peak_reserved_bytes(self) -> int:
        """The worst rank's reserved peak — what capacity planning sees."""
        return max(rank.peak_reserved_bytes for rank in self.ranks)

    @property
    def min_utilization(self) -> float:
        """The worst rank's utilization ratio."""
        return min(rank.utilization_ratio for rank in self.ranks)

    @property
    def mean_utilization(self) -> float:
        """Fleet-average utilization ratio."""
        return sum(r.utilization_ratio for r in self.ranks) / len(self.ranks)

    @property
    def throughput_samples_per_s(self) -> float:
        """Synchronous training runs at the slowest rank's pace."""
        return min(r.throughput_samples_per_s for r in self.ranks)

    # -- the :class:`repro.api.RunResult` shared surface ---------------
    # Memory figures delegate to WorstMemberRunResult (worst rank).
    def _result_members(self) -> List[EngineResult]:
        return self.ranks

    @property
    def throughput(self) -> float:
        return self.throughput_samples_per_s

    def extras(self) -> Dict[str, object]:
        """Cluster-specific metrics beyond the shared surface."""
        return {
            "n_ranks": self.n_ranks,
            "min_utilization": self.min_utilization,
            "mean_utilization": self.mean_utilization,
        }

    def summary(self) -> str:
        """One-line fleet report."""
        oom = " OOM" if self.oom else ""
        return (
            f"{self.n_ranks} ranks: util min={self.min_utilization:.3f} "
            f"mean={self.mean_utilization:.3f}, "
            f"max reserved={self.max_peak_reserved_bytes / (1 << 30):.2f} GB, "
            f"thru={self.throughput_samples_per_s:.2f} samp/s{oom}"
        )


def run_cluster(
    workload: TrainingWorkload,
    allocator: Union[AllocatorLike, AllocatorFactory] = "caching",
    capacity: int = A100_80GB,
    record_timeline: bool = False,
) -> ClusterResult:
    """Simulate every rank of ``workload`` on its own device.

    Each rank replays the same workload with a rank-salted seed, so
    strategy-induced irregularity (offload buckets, sequence jitter if
    enabled) diverges slightly across ranks, as on a real cluster.
    With ``record_timeline`` every rank carries its own memory timeline.
    """
    result = ClusterResult()
    for rank in range(workload.n_gpus):
        rank_workload = replace(workload, seed=workload.seed + 1009 * rank)
        trace = rank_workload.build_trace()
        device = GpuDevice(capacity=capacity)
        rank_result = run_trace(resolve_allocator(allocator, device), trace,
                                record_timeline=record_timeline)
        result.ranks.append(rank_result)
    return result
