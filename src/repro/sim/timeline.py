"""Memory-over-time sampling — the data behind the paper's Figure 14.

:class:`TimelineRecorder` subscribes to an allocator's event hooks
(:class:`~repro.allocators.base.AllocatorObserver`) and records
``(time, active, reserved)`` samples as the allocator works — no replay
loop involvement needed; :func:`render_timeline` draws the two curves
as ASCII so benches can print the memory-trace figure in a terminal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.allocators.base import Allocation, AllocatorObserver, BaseAllocator
from repro.units import GB


@dataclass(frozen=True)
class TimelinePoint:
    """One sample of the memory trace."""

    time_s: float
    active_bytes: int
    reserved_bytes: int


class TimelineRecorder(AllocatorObserver):
    """Observer that samples an allocator's memory curve on its events.

    Attach with ``allocator.add_observer(TimelineRecorder(allocator))``
    (or let ``run_trace(record_timeline=True)`` do it): every ``every``
    alloc/free events — and on every OOM and ``empty_cache``, which are
    exactly the cliffs Figure 14 cares about — one
    :class:`TimelinePoint` is appended to :attr:`points`.  Time is
    measured from the recorder's attach point on the allocator's own
    simulated clock.
    """

    def __init__(self, allocator: BaseAllocator, every: int = 32):
        if every <= 0:
            raise ValueError(f"every must be positive, got {every}")
        self.every = every
        self._clock = allocator.device.clock
        self.start_s = self._clock.now_s
        self.points: List[TimelinePoint] = []
        self._events = 0

    def sample(self, allocator: BaseAllocator) -> None:
        """Append one point at the allocator's current state."""
        self.points.append(TimelinePoint(
            time_s=self._clock.now_s - self.start_s,
            active_bytes=allocator.active_bytes,
            reserved_bytes=allocator.reserved_bytes,
        ))

    def _tick(self, allocator: BaseAllocator) -> None:
        self._events += 1
        if self._events % self.every == 0:
            self.sample(allocator)

    # -- AllocatorObserver hooks ---------------------------------------
    def on_alloc(self, allocator: BaseAllocator, allocation: Allocation) -> None:
        self._tick(allocator)

    def on_free(self, allocator: BaseAllocator, allocation: Allocation) -> None:
        self._tick(allocator)

    def on_empty_cache(self, allocator: BaseAllocator) -> None:
        self.sample(allocator)

    def on_oom(self, allocator: BaseAllocator, size: int, error) -> None:
        self.sample(allocator)


def downsample(points: Sequence[TimelinePoint], max_points: int) -> List[TimelinePoint]:
    """Evenly thin a timeline to at most ``max_points`` samples."""
    if max_points <= 0:
        raise ValueError("max_points must be positive")
    if len(points) <= max_points:
        return list(points)
    step = len(points) / max_points
    return [points[int(i * step)] for i in range(max_points)]


def render_timeline(
    points: Sequence[TimelinePoint],
    width: int = 72,
    height: int = 16,
    capacity: int = 80 * GB,
) -> str:
    """ASCII plot of active (``#``) and reserved (``-``) memory vs time.

    Mirrors Figure 14: reserved sits above active, and the gap between
    the curves is the fragmentation the allocator carries.
    """
    if not points:
        return "(empty timeline)"
    samples = downsample(points, width)
    top = max(max(p.reserved_bytes for p in samples), 1)
    top = max(top, capacity // 2)
    grid = [[" "] * len(samples) for _ in range(height)]
    for x, p in enumerate(samples):
        ry = min(height - 1, int(p.reserved_bytes / top * (height - 1)))
        ay = min(height - 1, int(p.active_bytes / top * (height - 1)))
        grid[ry][x] = "-"
        grid[ay][x] = "#"
    lines = []
    for y in range(height - 1, -1, -1):
        label = f"{top * (y + 1) / height / GB:5.1f}G |"
        lines.append(label + "".join(grid[y]))
    t0, t1 = samples[0].time_s, samples[-1].time_s
    lines.append(" " * 7 + "+" + "-" * len(samples))
    lines.append(
        " " * 8 + f"t = {t0:.1f}s .. {t1:.1f}s   (#: active, -: reserved)"
    )
    return "\n".join(lines)
