"""Paper metrics and baseline-vs-GMLake comparison rows (§5.1).

* utilization ratio  = peak active / peak reserved
* fragmentation ratio = 1 − utilization ratio
* memory reduction ratio = (Σ reserved − Σ GMLake reserved) / Σ reserved
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.sim.engine import EngineResult
from repro.units import GB


def mem_reduction_ratio(
    baseline_reserved: Sequence[int], gmlake_reserved: Sequence[int]
) -> float:
    """The paper's MemReductionRatio over a set of workloads."""
    total_base = sum(baseline_reserved)
    total_gml = sum(gmlake_reserved)
    if total_base == 0:
        return 0.0
    return (total_base - total_gml) / total_base


@dataclass
class ComparisonRow:
    """One workload measured under the baseline and under GMLake."""

    label: str
    baseline: EngineResult
    gmlake: EngineResult

    @property
    def reserved_saving_gb(self) -> float:
        """Reserved-memory saving in GB (positive = GMLake uses less)."""
        return (
            self.baseline.peak_reserved_bytes - self.gmlake.peak_reserved_bytes
        ) / GB

    @property
    def fragmentation_reduction(self) -> float:
        """Absolute fragmentation-ratio reduction (paper's "15% avg")."""
        return (
            self.baseline.fragmentation_ratio - self.gmlake.fragmentation_ratio
        )

    @property
    def utilization_gain(self) -> float:
        """Utilization-ratio gain of GMLake over the baseline."""
        return self.gmlake.utilization_ratio - self.baseline.utilization_ratio

    @property
    def throughput_ratio(self) -> Optional[float]:
        """GMLake / baseline throughput (None if baseline OOMed)."""
        if self.baseline.throughput_samples_per_s == 0:
            return None
        return (
            self.gmlake.throughput_samples_per_s
            / self.baseline.throughput_samples_per_s
        )

    def as_dict(self) -> dict:
        """Flat dict for table rendering."""
        return {
            "workload": self.label,
            "RM base (GB)": round(self.baseline.peak_reserved_gb, 2),
            "RM gml (GB)": round(self.gmlake.peak_reserved_gb, 2),
            "UR base": round(self.baseline.utilization_ratio, 3),
            "UR gml": round(self.gmlake.utilization_ratio, 3),
            "saving (GB)": round(self.reserved_saving_gb, 2),
            "base OOM": self.baseline.oom,
            "gml OOM": self.gmlake.oom,
        }


def compare_results(
    label: str, baseline: EngineResult, gmlake: EngineResult
) -> ComparisonRow:
    """Bundle two engine results into a comparison row."""
    return ComparisonRow(label=label, baseline=baseline, gmlake=gmlake)
