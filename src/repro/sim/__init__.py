"""Simulation engine: replay allocation traces against allocators.

- :mod:`repro.sim.engine` — the replay loop, OOM handling, clocking.
- :mod:`repro.sim.metrics` — the paper's evaluation metrics
  (utilization / fragmentation ratio, memory reduction ratio).
- :mod:`repro.sim.timeline` — memory-over-time sampling and ASCII
  rendering (Figure 14).
"""

from repro.sim.cluster import ClusterResult, run_cluster
from repro.sim.engine import (
    EngineResult,
    ReplaySession,
    make_allocator,
    run_trace,
    run_workload,
)
from repro.sim.metrics import ComparisonRow, compare_results, mem_reduction_ratio
from repro.sim.timeline import TimelinePoint, TimelineRecorder, render_timeline

__all__ = [
    "EngineResult",
    "ReplaySession",
    "run_trace",
    "run_workload",
    "make_allocator",
    "ClusterResult",
    "run_cluster",
    "ComparisonRow",
    "compare_results",
    "mem_reduction_ratio",
    "TimelinePoint",
    "TimelineRecorder",
    "render_timeline",
]
