"""Per-layer tensor shapes of a transformer training step.

Only sizes matter to an allocator, so each layer is reduced to a small
representative set of tensors whose byte counts follow the standard
transformer arithmetic.  Attention-score (seq × seq) buffers are not
materialized — the paper's workloads run fused attention kernels — so
activation memory scales with ``batch × seq × hidden``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workloads.models import ModelSpec

#: (name, multiple-of-hidden) pairs of the activations one layer saves
#: for backward when recomputation is off: layer-norm output, fused QKV,
#: attention output, FFN intermediate, FFN output.
_SAVED_ACTIVATIONS: List[Tuple[str, int]] = [
    ("ln1", 1),
    ("qkv", 3),
    ("attn_out", 1),
    ("ffn_in", 4),
    ("ffn_out", 1),
]


def saved_activation_tensors(
    spec: ModelSpec, batch: int, seq: int
) -> List[Tuple[str, int]]:
    """Activations one layer keeps alive until its backward pass."""
    unit = spec.activation_bytes(batch, seq)
    out = []
    for name, mult in _SAVED_ACTIVATIONS:
        mult_eff = mult if name != "ffn_in" else spec.ffn_mult
        out.append((name, mult_eff * unit))
    return out


def checkpoint_bytes(spec: ModelSpec, batch: int, seq: int) -> int:
    """Size of the per-layer checkpoint kept under recomputation:
    the layer's input hidden states."""
    return spec.activation_bytes(batch, seq)


def workspace_bytes(spec: ModelSpec, batch: int, seq: int) -> int:
    """Transient kernel workspace allocated and freed inside one layer
    (fused-attention scratch, dropout state)."""
    return spec.activation_bytes(batch, seq)


def dgrad_bytes(spec: ModelSpec, batch: int, seq: int) -> int:
    """Transient input-gradient buffer of one layer's backward."""
    return spec.activation_bytes(batch, seq)


def logits_bytes(spec: ModelSpec, batch: int, seq: int) -> int:
    """The final ``batch × seq × vocab`` logits tensor (often the single
    largest activation of the whole model)."""
    return batch * seq * spec.vocab_size * spec.dtype_bytes


def recompute_piece_sizes(total: int, salt: int) -> List[int]:
    """Split a recomputed activation into two uneven pieces.

    Recomputation replays a layer's forward in finer-grained segments,
    producing more and smaller allocations than the original forward
    (the paper's Figure 5 statistics: +65% allocations, −9% mean size).
    The split point is a deterministic function of ``salt`` (derived
    from layer index and tensor name) so that sizes *differ across the
    model* — defeating simple size reuse within one iteration — yet
    *repeat across iterations*, preserving the periodicity GMLake's
    convergence argument (§4.2.2) relies on.
    """
    frac = 0.3 + 0.4 * ((salt * 2654435761) % 1000) / 1000.0  # in [0.3, 0.7)
    first = max(1, int(total * frac))
    # Keep 256-byte alignment so traces look like real tensor sizes.
    first = max(256, (first // 256) * 256)
    if first >= total:
        first = total // 2
    return [first, total - first]
