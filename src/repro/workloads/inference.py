"""LLM inference serving workloads — the §6 vLLM-adjacent scenario.

The paper positions GMLake as orthogonal to vLLM: vLLM defragments
*inside* the attention KV cache, GMLake defragments the *memory pool*
under any workload.  Serving is the harshest pool workload there is —
requests with wildly different prompt/output lengths arrive and retire
continuously, so KV-cache tensors of many sizes churn forever and a
splitting allocator shreds its pool.

This generator models a continuous-batching server:

* model weights resident (no sharding — single-GPU serving);
* per-request KV cache: ``2 (K,V) × layers × seq × hidden`` bytes,
  allocated at admission for the request's full context length;
* per-step activation workspace for the running batch;
* requests retire after their (sampled) output length, freeing their
  KV block — out of order with respect to admission.

Sequence lengths are sampled from a seeded log-normal-ish mixture, like
production traces; sizes therefore *never* repeat exactly, which is the
worst case for exact-match caching and a stress test beyond the paper's
training workloads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Union

from repro.units import align_up
from repro.workloads.models import ModelSpec, get_model
from repro.workloads.request import Trace

#: Serving decode throughput used for the compute model (tokens/s/GPU,
#: conservative A100 figure for a mid-size model).
DECODE_TOKENS_PER_S = 3000.0


def kv_bytes(model: ModelSpec, seq: int) -> int:
    """KV-cache bytes for one request with ``seq`` total tokens."""
    return 2 * model.n_layers * seq * model.hidden * model.dtype_bytes


def decode_workspace_bytes(model: ModelSpec, batch: int) -> int:
    """Transient activation workspace of one decode step for ``batch``
    running requests (a few live layer activations; never zero so the
    allocation is always valid).  Shared by the offline serving trace
    generator and the online simulator so their churn matches."""
    return model.activation_bytes(batch, 1) * 4 or 1


@dataclass
class ServingWorkload:
    """A continuous-batching inference server trace.

    Attributes
    ----------
    model:
        Model spec or registry name.
    n_requests:
        Total requests served.
    max_batch:
        Admission cap on concurrently running requests.
    mean_prompt / mean_output:
        Means of the sampled prompt and output token counts.
    kv_cache:
        KV-cache layout spec (:class:`repro.serve.kvcache.KVCacheSpec`
        mini-DSL).  ``"chunked"`` (default) allocates one contiguous KV
        tensor per request — sizes never repeat, the pool-fragmentation
        stress case.  ``"paged?block_tokens=16"`` allocates fixed-size
        blocks per request instead — every allocation is the same size,
        so the offline replay shows what cache-level defragmentation
        does to pool metrics.
    seed:
        RNG seed; the trace is a deterministic function of the config.
    """

    model: Union[ModelSpec, str]
    n_requests: int = 200
    max_batch: int = 16
    mean_prompt: int = 512
    mean_output: int = 256
    kv_cache: str = "chunked"
    seed: int = 0

    def __post_init__(self):
        if isinstance(self.model, str):
            self.model = get_model(self.model)
        if self.n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        # Validate and canonicalize the KV layout spec up front (lazy
        # import: repro.serve pulls in this module for kv_bytes).
        from repro.serve.kvcache import KVCacheSpec, get_kv_cache_info

        spec = KVCacheSpec.parse(self.kv_cache)
        if spec.name == "paged-shared":
            # Prefix sharing needs request identity (who shares what),
            # which a pre-built offline trace doesn't carry.
            from repro.api.registry import SpecError
            raise SpecError(
                "paged-shared is an online-serving KV model; offline "
                "traces use 'chunked' or 'paged' (run mode=serve for "
                "prefix sharing)")
        self.kv_cache = spec.spec_string()
        self._block_tokens = 0
        if spec.name == "paged":
            default = next(p.default
                           for p in get_kv_cache_info("paged").params
                           if p.name == "block_tokens")
            self._block_tokens = spec.params.get("block_tokens", default)

    def _sample_len(self, rng: random.Random, mean: int) -> int:
        """Heavy-tailed length sample, clamped to the model context."""
        value = int(rng.lognormvariate(0.0, 0.6) * mean)
        return max(16, min(self.model.seq_len, align_up(value, 16)))

    def build_trace(self) -> Trace:
        """Generate the serving allocation trace.

        The trace interleaves admissions (KV allocation) and
        retirements (KV free) exactly as continuous batching does:
        whenever a slot frees up, the next request is admitted.
        """
        model = self.model
        rng = random.Random(self.seed * 6151 + 17)
        trace = Trace(meta={
            "model": model.name,
            "kind": "serving",
            "n_requests": self.n_requests,
            "max_batch": self.max_batch,
            "global_batch": self.max_batch,
            "kv_cache": self.kv_cache,
            "label": f"{model.name}/serving/{self.n_requests}req",
        })
        trace.alloc("weights", model.weight_bytes)

        def admit_kv(req_id: int, tokens: int) -> None:
            if self._block_tokens:
                # Paged layout: fixed-size blocks, one per block-table
                # slot — the pool only ever sees one allocation size.
                blocks = -(-tokens // self._block_tokens)
                for j in range(blocks):
                    trace.alloc(f"kv{req_id}.b{j}",
                                kv_bytes(model, self._block_tokens))
            else:
                trace.alloc(f"kv{req_id}", kv_bytes(model, tokens))

        def retire_kv(req_id: int, tokens: int) -> None:
            if self._block_tokens:
                blocks = -(-tokens // self._block_tokens)
                for j in range(blocks):
                    trace.free(f"kv{req_id}.b{j}")
            else:
                trace.free(f"kv{req_id}")

        # Pre-sample every request's lifetime.
        requests = []
        for i in range(self.n_requests):
            prompt = self._sample_len(rng, self.mean_prompt)
            output = self._sample_len(rng, self.mean_output)
            requests.append((i, prompt, output))
        total_by_id = {i: prompt + output for i, prompt, output in requests}

        running: List[List[int]] = []  # [request id, remaining steps]
        admitted = 0
        step = 0
        total_tokens = 0
        trace.iter_start(0)
        while admitted < self.n_requests or running:
            # Admit up to the batch cap.
            while admitted < self.n_requests and len(running) < self.max_batch:
                req_id, prompt, output = requests[admitted]
                admit_kv(req_id, prompt + output)
                running.append([req_id, output])
                admitted += 1
            # One decode step for the whole batch.
            workspace = f"ws{step}"
            trace.alloc(workspace, decode_workspace_bytes(model, len(running)))
            trace.free(workspace)
            total_tokens += len(running)
            # Retire finished requests (out of admission order).
            for entry in list(running):
                entry[1] -= 1
                if entry[1] <= 0:
                    retire_kv(entry[0], total_by_id[entry[0]])
                    running.remove(entry)
            step += 1
        trace.iter_end(0)
        trace.compute_us_per_iter.append(
            total_tokens / DECODE_TOKENS_PER_S * 1e6
        )
        trace.meta["decode_steps"] = step
        return trace
