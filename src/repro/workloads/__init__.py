"""DNN-training workload generation.

The allocator under test only ever sees an *allocation request stream*;
this subpackage generates streams with the structure and statistics of
the paper's fine-tuning workloads (Table 2):

- :mod:`repro.workloads.models` — transformer model specs (OPT-1.3B …
  GPT-NeoX-20B) with parameter-count arithmetic.
- :mod:`repro.workloads.transformer` — per-layer tensor shapes.
- :mod:`repro.workloads.strategies` — the memory-reduction strategies
  (LoRA / recomputation / offload) and their allocation-pattern effects.
- :mod:`repro.workloads.zero` — ZeRO-3 style sharding and gather
  buffers vs. device count.
- :mod:`repro.workloads.platforms` — DeepSpeed / FSDP / Colossal-AI
  presets.
- :mod:`repro.workloads.training` — the trace builder that assembles a
  full fine-tuning run (setup + forward/backward/step per iteration).
- :mod:`repro.workloads.request` — the trace event model.
"""

from repro.workloads.models import MODELS, ModelSpec, get_model
from repro.workloads.platforms import Platform
from repro.workloads.request import Op, Trace, TraceEvent, TraceStats
from repro.workloads.strategies import StrategySet
from repro.workloads.training import TrainingWorkload, estimate_compute_us
from repro.workloads.zero import ZeroConfig, shard_bytes

__all__ = [
    "MODELS",
    "ModelSpec",
    "get_model",
    "Platform",
    "Op",
    "Trace",
    "TraceEvent",
    "TraceStats",
    "StrategySet",
    "TrainingWorkload",
    "estimate_compute_us",
    "ZeroConfig",
    "shard_bytes",
]
