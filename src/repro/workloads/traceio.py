"""Trace serialization: save and load allocation traces as JSONL.

Lets users capture a workload's allocation stream once and replay it
against any allocator (or ship it as a bug report), the way the paper's
authors captured real PyTorch allocator traces for Figure 5.

Format: one JSON object per line.
- line 1: ``{"kind": "meta", "meta": {...}, "compute_us_per_iter": [...]}``
- then one line per event:
  ``{"kind": "event", "op": "alloc", "tensor": "w0", "size": 123}``
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.workloads.request import Op, Trace, TraceEvent


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` as JSONL."""
    path = Path(path)
    with path.open("w") as handle:
        header = {
            "kind": "meta",
            "meta": trace.meta,
            "compute_us_per_iter": trace.compute_us_per_iter,
        }
        handle.write(json.dumps(header) + "\n")
        for event in trace.events:
            record = {"kind": "event", "op": event.op.value,
                      "tensor": event.tensor}
            if event.op is Op.ALLOC:
                record["size"] = event.size
            handle.write(json.dumps(record) + "\n")


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a JSONL trace written by :func:`save_trace`.

    Raises ``ValueError`` on malformed input.
    """
    path = Path(path)
    trace = Trace()
    with path.open() as handle:
        first = handle.readline()
        if not first:
            raise ValueError(f"{path}: empty trace file")
        header = json.loads(first)
        if header.get("kind") != "meta":
            raise ValueError(f"{path}: first line must be the meta header")
        trace.meta = dict(header.get("meta", {}))
        trace.compute_us_per_iter = [
            float(x) for x in header.get("compute_us_per_iter", [])
        ]
        for line_no, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") != "event":
                raise ValueError(f"{path}:{line_no}: expected an event line")
            op = Op(record["op"])
            size = int(record.get("size", 0))
            trace.events.append(TraceEvent(op, record["tensor"], size))
    return trace
