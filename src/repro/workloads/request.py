"""Allocation trace model: the requests an allocator actually sees.

A trace is a flat list of events — tensor allocations and frees plus
iteration boundary markers.  Traces are deterministic functions of a
workload spec and a seed, so every experiment is reproducible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List


class Op(enum.Enum):
    """Trace event kinds."""

    ALLOC = "alloc"
    FREE = "free"
    ITER_START = "iter_start"
    ITER_END = "iter_end"


@dataclass(frozen=True)
class TraceEvent:
    """One event in an allocation trace.

    ``tensor`` names the logical tensor for ALLOC/FREE events (unique per
    allocation lifetime); for iteration markers it carries the iteration
    index as a string and ``size`` is 0.
    """

    op: Op
    tensor: str
    size: int = 0


@dataclass
class TraceStats:
    """Aggregate statistics of a trace — the Figure 5 quantities."""

    n_allocs: int
    n_frees: int
    total_alloc_bytes: int
    mean_alloc_bytes: float
    n_iterations: int
    peak_live_bytes: int

    def __str__(self) -> str:
        mb = self.mean_alloc_bytes / (1024 * 1024)
        return (
            f"{self.n_allocs} allocations, mean size {mb:.1f} MB, "
            f"{self.n_iterations} iterations"
        )


@dataclass
class Trace:
    """A full allocation trace plus workload metadata.

    Attributes
    ----------
    events:
        The event list, in program order.
    meta:
        Free-form workload description (model, batch, strategies, ...).
    compute_us_per_iter:
        Simulated compute time of each iteration, added to the clock by
        the engine at iteration end; drives throughput measurements.
    """

    events: List[TraceEvent] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)
    compute_us_per_iter: List[float] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Builder helpers used by the trace generators
    # ------------------------------------------------------------------
    def alloc(self, tensor: str, size: int) -> None:
        """Append an allocation of ``size`` bytes for ``tensor``."""
        if size <= 0:
            raise ValueError(f"alloc size must be positive, got {size} for {tensor}")
        self.events.append(TraceEvent(Op.ALLOC, tensor, size))

    def free(self, tensor: str) -> None:
        """Append a free of ``tensor``."""
        self.events.append(TraceEvent(Op.FREE, tensor))

    def iter_start(self, index: int) -> None:
        """Mark the start of training iteration ``index``."""
        self.events.append(TraceEvent(Op.ITER_START, str(index)))

    def iter_end(self, index: int) -> None:
        """Mark the end of training iteration ``index``."""
        self.events.append(TraceEvent(Op.ITER_END, str(index)))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def validate(self) -> None:
        """Check trace well-formedness: every FREE matches a live ALLOC,
        no double-alloc of a live tensor, markers nest properly."""
        live: Dict[str, int] = {}
        in_iter = False
        for event in self.events:
            if event.op is Op.ALLOC:
                if event.tensor in live:
                    raise ValueError(f"tensor {event.tensor!r} allocated twice")
                live[event.tensor] = event.size
            elif event.op is Op.FREE:
                if event.tensor not in live:
                    raise ValueError(f"tensor {event.tensor!r} freed while not live")
                del live[event.tensor]
            elif event.op is Op.ITER_START:
                if in_iter:
                    raise ValueError("nested ITER_START")
                in_iter = True
            elif event.op is Op.ITER_END:
                if not in_iter:
                    raise ValueError("ITER_END without ITER_START")
                in_iter = False
        if in_iter:
            raise ValueError("trace ends inside an iteration")

    def stats(self) -> TraceStats:
        """Aggregate statistics (allocation count, mean size, peak)."""
        n_allocs = 0
        n_frees = 0
        total = 0
        live: Dict[str, int] = {}
        live_bytes = 0
        peak = 0
        iters = 0
        for event in self.events:
            if event.op is Op.ALLOC:
                n_allocs += 1
                total += event.size
                live[event.tensor] = event.size
                live_bytes += event.size
                peak = max(peak, live_bytes)
            elif event.op is Op.FREE:
                n_frees += 1
                live_bytes -= live.pop(event.tensor)
            elif event.op is Op.ITER_START:
                iters += 1
        mean = total / n_allocs if n_allocs else 0.0
        return TraceStats(
            n_allocs=n_allocs,
            n_frees=n_frees,
            total_alloc_bytes=total,
            mean_alloc_bytes=mean,
            n_iterations=iters,
            peak_live_bytes=peak,
        )

    def peak_live_bytes(self) -> int:
        """Peak of the sum of live tensor sizes (ideal reserved memory)."""
        return self.stats().peak_live_bytes

    def subset_iterations(self, n: int) -> "Trace":
        """A copy of this trace truncated after ``n`` iterations
        (setup events included)."""
        out = Trace(meta=dict(self.meta),
                    compute_us_per_iter=self.compute_us_per_iter[:n])
        done = 0
        for event in self.events:
            out.events.append(event)
            if event.op is Op.ITER_END:
                done += 1
                if done >= n:
                    break
        return out
