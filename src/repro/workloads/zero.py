"""ZeRO-3 style sharded data parallelism (§2.4).

With ZeRO-3 every rank stores only ``1/N`` of each layer's parameters,
gradients and optimizer state, and materializes full layers on demand:
an all-gather buffer before a layer's forward/backward, a
reduce-scatter buffer for its gradients.  As N grows the persistent
shards shrink while the transient full-size buffers stay, which is the
irregularity mechanism behind the paper's Figure 4 utilization decline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import align_up


def shard_bytes(total: int, n_gpus: int, alignment: int = 256) -> int:
    """Per-rank shard of a ``total``-byte tensor across ``n_gpus``.

    Shards are padded to ``alignment`` like real flat-parameter shards.
    """
    if n_gpus <= 0:
        raise ValueError(f"n_gpus must be positive, got {n_gpus}")
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    return align_up((total + n_gpus - 1) // n_gpus, alignment)


@dataclass(frozen=True)
class ZeroConfig:
    """Distributed training configuration.

    Attributes
    ----------
    n_gpus:
        Data-parallel world size.
    stage:
        ZeRO stage: 0 = plain DDP (everything replicated); 1 = shard
        optimizer state only; 2 = shard optimizer state and gradients;
        3 = shard parameters too (the paper's setting, the only stage
        that needs gather buffers).
    prefetch_depth:
        How many layer all-gathers are kept in flight; 2 matches
        DeepSpeed's default prefetching and creates the overlapping
        transient lifetimes that fragment the caching allocator.
    """

    n_gpus: int = 1
    stage: int = 3
    prefetch_depth: int = 2

    def __post_init__(self):
        if self.n_gpus < 1:
            raise ValueError(f"n_gpus must be >= 1, got {self.n_gpus}")
        if self.stage not in (0, 1, 2, 3):
            raise ValueError(f"ZeRO stage must be 0-3, got {self.stage}")
        if self.prefetch_depth < 1:
            raise ValueError("prefetch_depth must be >= 1")

    @property
    def shards_params(self) -> bool:
        """True when parameters are sharded (gathers are needed)."""
        return self.stage == 3 and self.n_gpus > 1

    @property
    def shards_grads(self) -> bool:
        """True when gradients are sharded (stages 2 and 3)."""
        return self.stage >= 2 and self.n_gpus > 1

    @property
    def shards_optimizer(self) -> bool:
        """True when optimizer state is sharded (stages 1-3)."""
        return self.stage >= 1 and self.n_gpus > 1

    def param_shard(self, layer_bytes: int) -> int:
        """Bytes of one rank's parameter shard for a layer."""
        if not self.shards_params:
            return layer_bytes
        return shard_bytes(layer_bytes, self.n_gpus)

    def grad_shard(self, layer_bytes: int) -> int:
        """Bytes of one rank's gradient shard for a layer."""
        if not self.shards_grads:
            return layer_bytes
        return shard_bytes(layer_bytes, self.n_gpus)

    def optimizer_shard(self, state_bytes: int) -> int:
        """Bytes of one rank's optimizer-state shard."""
        if not self.shards_optimizer:
            return state_bytes
        return shard_bytes(state_bytes, self.n_gpus)

    def gather_bytes(self, layer_bytes: int) -> int:
        """Transient all-gather buffer: the full layer."""
        return layer_bytes

    def reduce_bytes(self, layer_bytes: int) -> int:
        """Transient gradient reduce-scatter buffer: the full layer."""
        return layer_bytes
