"""Training-platform presets: DeepSpeed, FSDP, Colossal-AI (§5.2.3).

The three platforms drive the same model math but differ in how they
organize distributed memory traffic, which changes the allocation
pattern the allocator sees:

* **DeepSpeed ZeRO-3** — per-layer all-gather with prefetch depth 2,
  many reduce buckets.
* **FSDP** — one flat-parameter unit per layer, gather prefetch depth 1,
  full-unit reduce-scatter.
* **Colossal-AI** — chunk-based memory management: gathers are rounded
  up to fixed-size chunks, so transient buffers come in a few repeated
  sizes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.units import MB, align_up


class Platform(enum.Enum):
    """Supported training platforms."""

    DEEPSPEED = "deepspeed"
    FSDP = "fsdp"
    COLOSSALAI = "colossalai"

    @classmethod
    def from_name(cls, name: str) -> "Platform":
        """Parse a platform by name (case-insensitive, accepts aliases
        ``ds`` and ``cai``)."""
        key = name.strip().lower()
        aliases = {"ds": "deepspeed", "cai": "colossalai"}
        key = aliases.get(key, key)
        for platform in cls:
            if platform.value == key:
                return platform
        raise ValueError(f"unknown platform {name!r}")


@dataclass(frozen=True)
class PlatformProfile:
    """Allocation-relevant behaviour of a platform.

    Attributes
    ----------
    prefetch_depth:
        All-gather buffers kept in flight during forward/backward.
    gather_rounding:
        Transient gather buffers are rounded up to a multiple of this
        (Colossal-AI's chunk size; 1 = exact layer size).
    offload_buckets:
        Optimizer-offload transfer buckets per step.
    """

    prefetch_depth: int
    gather_rounding: int
    offload_buckets: int


_PROFILES = {
    Platform.DEEPSPEED: PlatformProfile(
        prefetch_depth=2, gather_rounding=1, offload_buckets=8
    ),
    Platform.FSDP: PlatformProfile(
        prefetch_depth=1, gather_rounding=1, offload_buckets=4
    ),
    Platform.COLOSSALAI: PlatformProfile(
        prefetch_depth=2, gather_rounding=64 * MB, offload_buckets=8
    ),
}


def profile_for(platform: Platform) -> PlatformProfile:
    """The allocation profile of ``platform``."""
    return _PROFILES[platform]


def round_gather(platform: Platform, size: int) -> int:
    """Apply the platform's gather-buffer rounding to ``size``."""
    rounding = profile_for(platform).gather_rounding
    if rounding <= 1:
        return size
    return align_up(size, rounding)
