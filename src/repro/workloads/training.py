"""Fine-tuning trace builder: assembles a full training run.

The builder emits the allocation stream one GPU rank observes while
fine-tuning a transformer: persistent setup allocations (weight /
gradient / optimizer shards), then per iteration a forward pass,
backward pass and optimizer step, shaped by the active memory-reduction
strategies and the distributed configuration.

Two properties of real fine-tuning matter for fragmentation and are
modelled explicitly:

1. **Size variation** — batches are padded to the longest sequence in
   the batch, so activation sizes wobble between iterations
   (``seq_jitter``).
2. **Lifetime interleaving** — plain training allocates activations in
   forward order and frees them in reverse (LIFO), which a coalescing
   allocator handles perfectly; recomputation, LoRA, offload and ZeRO-3
   gathers interleave short transient allocations with long-lived ones,
   which is what strands free sub-blocks inside caching-allocator
   segments (the paper's Observations 1 and 2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.workloads.models import ModelSpec, get_model
from repro.workloads.platforms import Platform, profile_for, round_gather
from repro.workloads.request import Trace
from repro.workloads.strategies import StrategySet
from repro.workloads.transformer import (
    checkpoint_bytes,
    dgrad_bytes,
    logits_bytes,
    recompute_piece_sizes,
    saved_activation_tensors,
    workspace_bytes,
)
from repro.workloads.zero import ZeroConfig

#: fp32 Adam state per fp16 parameter byte: master copy + momentum +
#: variance, each 4 bytes per 2-byte parameter.
OPTIMIZER_STATE_FACTOR = 6

#: Sustained compute throughput of one simulated A100 (fp16 FLOP/s).
GPU_FLOPS = 312e12 * 0.45

#: Interconnect bandwidths (bytes/s) and overlap factors.
NVLINK_BW = 200e9
PCIE_BW = 25e9
COMM_EXPOSED_FRACTION = 0.4
OFFLOAD_EXPOSED_FRACTION = 0.4


def estimate_compute_us(
    model: ModelSpec,
    batch: int,
    seq: int,
    strategies: StrategySet,
    zero: ZeroConfig,
) -> float:
    """Simulated compute+communication time of one iteration, in µs.

    Uses the standard 6·N·tokens training-FLOPs rule (8·N with
    recomputation's extra forward), plus exposed ZeRO all-gather time
    and exposed optimizer-offload transfer time.
    """
    tokens = batch * seq
    flops_per_token = 6 * model.n_params
    if strategies.recompute:
        flops_per_token = 8 * model.n_params
    t_compute = flops_per_token * tokens / GPU_FLOPS

    t_comm = 0.0
    if zero.shards_params:
        # Each layer is gathered once forward and once backward.
        gathered = 2 * model.weight_bytes * (zero.n_gpus - 1) / zero.n_gpus
        t_comm = gathered / NVLINK_BW * COMM_EXPOSED_FRACTION

    t_offload = 0.0
    if strategies.offload:
        trainable = _trainable_bytes(model, strategies)
        per_rank = trainable * OPTIMIZER_STATE_FACTOR / zero.n_gpus
        t_offload = per_rank / PCIE_BW * OFFLOAD_EXPOSED_FRACTION

    return (t_compute + t_comm + t_offload) * 1e6


def _trainable_bytes(model: ModelSpec, strategies: StrategySet) -> int:
    """Bytes of trainable parameters at training precision."""
    if not strategies.lora:
        return model.weight_bytes
    total = 0
    for layer in range(model.n_layers):
        total += strategies.adapter_params(model.hidden, layer) * model.dtype_bytes
    return total


class _GatherWindow:
    """ZeRO-3 all-gather buffers with prefetching.

    Keeps up to ``depth`` per-layer gather buffers live; requesting
    layer ``l`` allocates buffers for ``l .. l+depth-1`` and frees
    everything older — the overlapping transient lifetimes DeepSpeed's
    prefetcher creates.
    """

    def __init__(self, trace: Trace, prefix: str, sizes: List[int], depth: int):
        self._trace = trace
        self._prefix = prefix
        self._sizes = sizes
        self._depth = depth
        self._live: List[int] = []

    def require(self, layer: int, order: "List[int]") -> None:
        """Ensure gathers for ``layer`` and its prefetch successors are
        live; ``order`` is the traversal order of remaining layers."""
        pos = order.index(layer)
        wanted = order[pos : pos + self._depth]
        for l in wanted:
            if l not in self._live:
                self._trace.alloc(f"{self._prefix}.g{l}", self._sizes[l])
                self._live.append(l)
        for l in list(self._live):
            if l not in wanted:
                self._trace.free(f"{self._prefix}.g{l}")
                self._live.remove(l)

    def drain(self) -> None:
        """Free every remaining gather buffer."""
        for l in self._live:
            self._trace.free(f"{self._prefix}.g{l}")
        self._live.clear()


@dataclass
class TrainingWorkload:
    """One fine-tuning configuration — a cell of the paper's grids.

    Attributes
    ----------
    model:
        Model spec or registry name (``"opt-13b"``).
    batch_size:
        Per-GPU micro-batch size.
    n_gpus:
        Data-parallel world size (ZeRO-3 when > 1).
    strategies:
        Memory-reduction strategies, as a :class:`StrategySet` or a
        paper-style label (``"LR"``).
    platform:
        DeepSpeed / FSDP / Colossal-AI preset.
    iterations:
        Training iterations to emit (the paper's runs converge within
        ~4; 8 leaves room to observe the steady state).
    seed:
        RNG seed for sequence-length jitter and bucket wobble.
    seq_jitter:
        Per-iteration sequence length factor range.  The default (1, 1)
        models the common practice of padding every batch to the
        maximum length — the regular stream of the paper's Figure 5
        left; pass e.g. ``(0.7, 1.0)`` to model longest-in-batch
        padding.  The memory-reduction strategies inject their own
        irregularity regardless.
    """

    model: Union[ModelSpec, str]
    batch_size: int
    n_gpus: int = 1
    strategies: Union[StrategySet, str] = field(default_factory=StrategySet)
    platform: Platform = Platform.DEEPSPEED
    iterations: int = 8
    seed: int = 0
    seq_jitter: Tuple[float, float] = (1.0, 1.0)
    #: ZeRO stage override; None selects stage 3 for multi-GPU runs and
    #: stage 0 (plain DDP) for single-GPU runs, the paper's settings.
    zero_stage: Optional[int] = None

    def __post_init__(self):
        if isinstance(self.model, str):
            self.model = get_model(self.model)
        if isinstance(self.strategies, str):
            self.strategies = StrategySet.from_label(self.strategies)
        if isinstance(self.platform, str):
            self.platform = Platform.from_name(self.platform)
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {self.iterations}")

    # ------------------------------------------------------------------
    @property
    def zero(self) -> ZeroConfig:
        """Distributed configuration implied by the GPU count."""
        profile = profile_for(self.platform)
        if self.zero_stage is not None:
            stage = self.zero_stage
        else:
            stage = 3 if self.n_gpus > 1 else 0
        return ZeroConfig(n_gpus=self.n_gpus, stage=stage,
                          prefetch_depth=profile.prefetch_depth)

    @property
    def label(self) -> str:
        """Human-readable workload id used in reports."""
        return (
            f"{self.model.name}/{self.strategies.label}/bs{self.batch_size}"
            f"/{self.n_gpus}gpu/{self.platform.value}"
        )

    # ------------------------------------------------------------------
    def build_trace(self) -> Trace:
        """Generate the allocation trace for this workload."""
        model = self.model
        strategies = self.strategies
        zero = self.zero
        rng = random.Random(self.seed * 7919 + len(self.label))
        trace = Trace(meta={
            "model": model.name,
            "batch_size": self.batch_size,
            "n_gpus": self.n_gpus,
            "strategies": strategies.label,
            "platform": self.platform.value,
            "iterations": self.iterations,
            "global_batch": self.batch_size * self.n_gpus,
            "label": self.label,
        })

        self._emit_setup(trace)
        order_fwd = list(range(model.n_layers))
        order_bwd = list(reversed(order_fwd))
        for it in range(self.iterations):
            lo, hi = self.seq_jitter
            seq_t = max(16, int(model.seq_len * rng.uniform(lo, hi)) // 16 * 16)
            trace.iter_start(it)
            self._emit_forward(trace, it, seq_t, rng, order_fwd)
            self._emit_backward(trace, it, seq_t, rng, order_bwd)
            self._emit_step(trace, it, rng)
            trace.iter_end(it)
            trace.compute_us_per_iter.append(
                estimate_compute_us(model, self.batch_size, seq_t, strategies, zero)
            )
        return trace

    # ------------------------------------------------------------------
    # Setup: persistent parameter / gradient / optimizer storage
    # ------------------------------------------------------------------
    def _emit_setup(self, trace: Trace) -> None:
        model = self.model
        strategies = self.strategies
        zero = self.zero
        for layer in range(model.n_layers):
            layer_bytes = model.layer_weight_bytes
            trace.alloc(f"w{layer}", zero.param_shard(layer_bytes))
            if strategies.lora:
                adapter = strategies.adapter_params(model.hidden, layer)
                adapter_bytes = adapter * model.dtype_bytes
                trace.alloc(f"ada{layer}", adapter_bytes)
                trace.alloc(f"adag{layer}", adapter_bytes)
                if not strategies.offload:
                    trace.alloc(f"opt{layer}",
                                adapter_bytes * OPTIMIZER_STATE_FACTOR)
            else:
                trace.alloc(f"grad{layer}", zero.grad_shard(layer_bytes))
                if not strategies.offload:
                    trace.alloc(
                        f"opt{layer}",
                        zero.optimizer_shard(layer_bytes * OPTIMIZER_STATE_FACTOR),
                    )
        trace.alloc("emb", zero.param_shard(model.embedding_bytes))
        if not strategies.lora:
            trace.alloc("embgrad", zero.grad_shard(model.embedding_bytes))
            if not strategies.offload:
                trace.alloc(
                    "embopt",
                    zero.optimizer_shard(
                        model.embedding_bytes * OPTIMIZER_STATE_FACTOR
                    ),
                )

    # ------------------------------------------------------------------
    # Forward pass
    # ------------------------------------------------------------------
    def _gather_sizes(self) -> List[int]:
        return [
            round_gather(self.platform, self.model.layer_weight_bytes)
            for _ in range(self.model.n_layers)
        ]

    def _emit_forward(self, trace: Trace, it: int, seq: int,
                      rng: random.Random, order: List[int]) -> None:
        model = self.model
        strategies = self.strategies
        batch = self.batch_size
        window: Optional[_GatherWindow] = None
        if self.zero.shards_params:
            window = _GatherWindow(
                trace, f"i{it}.f", self._gather_sizes(),
                self.zero.prefetch_depth,
            )
        trace.alloc(f"i{it}.embout", model.activation_bytes(batch, seq))
        for layer in order:
            if window is not None:
                window.require(layer, order)
            ws = f"i{it}.ws{layer}"
            trace.alloc(ws, workspace_bytes(model, batch, seq))
            if strategies.recompute:
                trace.alloc(f"i{it}.ckpt{layer}",
                            checkpoint_bytes(model, batch, seq))
            else:
                for name, size in saved_activation_tensors(model, batch, seq):
                    trace.alloc(f"i{it}.a{layer}.{name}", size)
            trace.free(ws)
        if window is not None:
            window.drain()
        trace.alloc(f"i{it}.logits", logits_bytes(model, batch, seq))

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def _emit_backward(self, trace: Trace, it: int, seq: int,
                       rng: random.Random, order: List[int]) -> None:
        model = self.model
        strategies = self.strategies
        batch = self.batch_size
        window: Optional[_GatherWindow] = None
        if self.zero.shards_params:
            window = _GatherWindow(
                trace, f"i{it}.b", self._gather_sizes(),
                self.zero.prefetch_depth,
            )
        trace.alloc(f"i{it}.dlogits", logits_bytes(model, batch, seq))
        trace.free(f"i{it}.logits")
        prev_dgrad: Optional[str] = None
        # Seed the gradient chain from the loss.
        dgrad0 = f"i{it}.dg.top"
        trace.alloc(dgrad0, dgrad_bytes(model, batch, seq))
        trace.free(f"i{it}.dlogits")
        prev_dgrad = dgrad0

        for layer in order:
            if window is not None:
                window.require(layer, order)
            recompute_names: List[str] = []
            if strategies.recompute:
                # Re-materialize this layer's activations in uneven
                # pieces — more, smaller allocations than the forward.
                for t_idx, (name, size) in enumerate(
                    saved_activation_tensors(model, batch, seq)
                ):
                    for k, piece in enumerate(
                        recompute_piece_sizes(size, layer * 37 + t_idx)
                    ):
                        piece_name = f"i{it}.r{layer}.{name}.{k}"
                        trace.alloc(piece_name, piece)
                        recompute_names.append(piece_name)
            dgrad = f"i{it}.dg{layer}"
            trace.alloc(dgrad, dgrad_bytes(model, batch, seq))
            if prev_dgrad is not None:
                trace.free(prev_dgrad)
            prev_dgrad = dgrad
            # Weight gradients.
            if strategies.lora:
                rank = strategies.lora_rank(layer)
                wgrad = f"i{it}.awg{layer}"
                trace.alloc(wgrad, 4 * 2 * model.hidden * rank * model.dtype_bytes)
                trace.free(wgrad)
            elif self.zero.shards_params:
                # Full-layer fp16 gradient lives until reduce-scatter.
                wgrad = f"i{it}.wg{layer}"
                trace.alloc(wgrad, model.layer_weight_bytes)
                trace.free(wgrad)
            # Release the recomputed pieces and this layer's stash.
            for name in recompute_names:
                trace.free(name)
            if strategies.recompute:
                trace.free(f"i{it}.ckpt{layer}")
            else:
                for name, _ in saved_activation_tensors(model, batch, seq):
                    trace.free(f"i{it}.a{layer}.{name}")
        if window is not None:
            window.drain()
        if prev_dgrad is not None:
            trace.free(prev_dgrad)
        if not strategies.lora:
            # Embedding gradient materializes once at the end.
            eg = f"i{it}.embg"
            trace.alloc(eg, self.zero.param_shard(model.embedding_bytes))
            trace.free(eg)
        trace.free(f"i{it}.embout")

    # ------------------------------------------------------------------
    # Optimizer step
    # ------------------------------------------------------------------
    def _emit_step(self, trace: Trace, it: int, rng: random.Random) -> None:
        model = self.model
        strategies = self.strategies
        zero = self.zero
        profile = profile_for(self.platform)
        if strategies.offload:
            # Stage optimizer traffic through uneven transfer buckets,
            # freed in transfer order with an overlap window of 2.
            trainable = _trainable_bytes(model, strategies)
            per_rank = max(
                256, trainable * OPTIMIZER_STATE_FACTOR // zero.n_gpus
            )
            n_buckets = profile.offload_buckets
            # Bucket proportions mirror uneven parameter-group sizes:
            # diverse within a step, identical across iterations.
            weights = [0.5 + ((b * 37) % 11) / 10.0 for b in range(n_buckets)]
            total_w = sum(weights)
            sizes = [max(256, int(per_rank * w / total_w)) for w in weights]
            live: List[str] = []
            for b, size in enumerate(sizes):
                name = f"i{it}.stage{b}"
                trace.alloc(name, size)
                live.append(name)
                if len(live) > 2:
                    trace.free(live.pop(0))
            for name in live:
                trace.free(name)
        elif strategies.lora:
            for layer in range(model.n_layers):
                adapter = strategies.adapter_params(model.hidden, layer)
                upd = f"i{it}.upd{layer}"
                trace.alloc(upd, adapter * 4)  # fp32 update buffer
                trace.free(upd)
        else:
            for layer in range(model.n_layers):
                upd = f"i{it}.upd{layer}"
                # fp32 update buffer over this rank's optimizer partition.
                trace.alloc(
                    upd, zero.optimizer_shard(model.layer_weight_bytes) * 2
                )
                trace.free(upd)
