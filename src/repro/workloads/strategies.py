"""Memory-reduction strategies and their allocation-pattern effects.

The paper evaluates combinations of three techniques (§2.3):

* **Recomputation (R)** — drop forward activations, keep one checkpoint
  per layer, re-materialize during backward.  Allocation effect: fewer
  live bytes, but backward interleaves fresh (and finer-grained)
  activation allocations with gradient buffers, defeating the LIFO
  discipline the caching allocator relies on.
* **LoRA (L)** — freeze base weights and train small rank-decomposition
  adapters.  Allocation effect: gradients/optimizer states shrink to
  adapter size, adding many small allocations with lifetimes that span
  iteration phases.
* **Offload (O)** — keep optimizer state in host memory (ZeRO-Offload).
  Allocation effect: per-step staging buffers of uneven bucket sizes
  are allocated and freed in transfer order (not LIFO).

Labels compose as in the paper: N, R, LR, RO, LRO, ...
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

#: LoRA rank cycles across layers (different projections use different
#: ranks in the paper's recipes), producing size diversity.
LORA_RANKS: List[int] = [8, 16, 32, 64]

#: Number of optimizer-offload transfer buckets per step.
OFFLOAD_BUCKETS: int = 8


@dataclass(frozen=True)
class StrategySet:
    """Which memory-reduction strategies are active."""

    recompute: bool = False
    lora: bool = False
    offload: bool = False

    # ------------------------------------------------------------------
    @classmethod
    def from_label(cls, label: str) -> "StrategySet":
        """Parse a paper-style label: ``"N"``, ``"R"``, ``"LR"``,
        ``"RO"``, ``"LRO"`` (order-insensitive)."""
        label = label.strip().upper()
        if label == "N" or label == "":
            return cls()
        valid = set("LRO")
        if not set(label) <= valid:
            raise ValueError(f"invalid strategy label {label!r}")
        return cls(
            recompute="R" in label,
            lora="L" in label,
            offload="O" in label,
        )

    @property
    def label(self) -> str:
        """Canonical label (N when nothing is enabled)."""
        out = ""
        if self.lora:
            out += "L"
        if self.recompute:
            out += "R"
        if self.offload:
            out += "O"
        return out or "N"

    @property
    def irregularity(self) -> int:
        """How many irregularity sources are active (0-3); used only for
        reporting, the trace builder derives behaviour from the flags."""
        return int(self.recompute) + int(self.lora) + int(self.offload)

    def lora_rank(self, layer: int) -> int:
        """Adapter rank used at ``layer`` (cycles through LORA_RANKS)."""
        return LORA_RANKS[layer % len(LORA_RANKS)]

    def adapter_params(self, hidden: int, layer: int) -> int:
        """Trainable LoRA parameters in one layer: A (h × r) and B
        (r × h) adapters on the QKV and output projections."""
        rank = self.lora_rank(layer)
        return 4 * 2 * hidden * rank

    def __str__(self) -> str:
        return self.label


#: The strategy combinations the paper's figures sweep.
FIG10_COMBOS = ["N", "R", "LR", "RO", "LRO"]
FIG3_COMBOS = ["N", "R", "LR", "RO", "LRO"]
