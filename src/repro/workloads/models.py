"""Transformer model specifications.

Covers the paper's Table 2 benchmark set (OPT-1.3B, GPT-2, GLM-10B,
OPT-13B, Vicuna-13B, GPT-NeoX-20B) plus two extra models (OPT-6.7B,
LLaMA-7B) to reach the "8 different models" of the §5 summary.

Parameter counts use the standard dense-transformer arithmetic
(≈ 12·h² per layer plus embeddings), which lands within a few percent
of the published sizes — close enough for memory-footprint purposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class ModelSpec:
    """Shape of one dense decoder-only transformer.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"opt-13b"``.
    n_layers / hidden / n_heads:
        Transformer depth, model width, attention heads.
    vocab_size:
        Token vocabulary (drives embedding size).
    seq_len:
        Maximum training sequence length used in the experiments.
    ffn_mult:
        Feed-forward expansion factor (4 for GPT/OPT-family).
    dtype_bytes:
        Bytes per parameter/activation element (2 = fp16/bf16).
    """

    name: str
    n_layers: int
    hidden: int
    n_heads: int
    vocab_size: int
    seq_len: int = 2048
    ffn_mult: int = 4
    dtype_bytes: int = 2

    # ------------------------------------------------------------------
    @property
    def params_per_layer(self) -> int:
        """Parameters in one transformer block.

        QKV + output projection (4·h²) plus the two FFN matrices
        (2·ffn_mult·h²) plus biases and layer norms (~13·h).
        """
        h = self.hidden
        return (4 + 2 * self.ffn_mult) * h * h + 13 * h

    @property
    def embedding_params(self) -> int:
        """Token (and position) embedding parameters."""
        return self.vocab_size * self.hidden + self.seq_len * self.hidden

    @property
    def n_params(self) -> int:
        """Total parameter count."""
        return self.n_layers * self.params_per_layer + self.embedding_params

    # ------------------------------------------------------------------
    @property
    def layer_weight_bytes(self) -> int:
        """Bytes of one layer's weights at training precision."""
        return self.params_per_layer * self.dtype_bytes

    @property
    def embedding_bytes(self) -> int:
        """Bytes of the embedding tables at training precision."""
        return self.embedding_params * self.dtype_bytes

    @property
    def weight_bytes(self) -> int:
        """Bytes of all weights at training precision."""
        return self.n_params * self.dtype_bytes

    def activation_bytes(self, batch: int, seq: int) -> int:
        """Bytes of one ``batch × seq × hidden`` activation tensor."""
        return batch * seq * self.hidden * self.dtype_bytes

    def __str__(self) -> str:
        return f"{self.name} ({self.n_params / 1e9:.1f}B params)"


#: The model registry: the paper's six benchmarks plus two fillers used
#: by the 76-workload summary.
MODELS: Dict[str, ModelSpec] = {
    spec.name: spec
    for spec in [
        ModelSpec("opt-1.3b", n_layers=24, hidden=2048, n_heads=32,
                  vocab_size=50272, seq_len=2048),
        ModelSpec("gpt-2", n_layers=48, hidden=1600, n_heads=25,
                  vocab_size=50257, seq_len=1024),
        ModelSpec("opt-6.7b", n_layers=32, hidden=4096, n_heads=32,
                  vocab_size=50272, seq_len=2048),
        ModelSpec("llama-7b", n_layers=32, hidden=4096, n_heads=32,
                  vocab_size=32000, seq_len=2048),
        ModelSpec("glm-10b", n_layers=48, hidden=4096, n_heads=64,
                  vocab_size=50304, seq_len=1024),
        ModelSpec("opt-13b", n_layers=40, hidden=5120, n_heads=40,
                  vocab_size=50272, seq_len=2048),
        ModelSpec("vicuna-13b", n_layers=40, hidden=5120, n_heads=40,
                  vocab_size=32000, seq_len=2048),
        ModelSpec("gpt-neox-20b", n_layers=44, hidden=6144, n_heads=64,
                  vocab_size=50432, seq_len=2048),
    ]
}


def get_model(name: str) -> ModelSpec:
    """Look up a model spec by name (case-insensitive)."""
    key = name.lower()
    if key not in MODELS:
        known = ", ".join(sorted(MODELS))
        raise KeyError(f"unknown model {name!r}; known models: {known}")
    return MODELS[key]
