"""Render :mod:`repro.obs` telemetry as analysis tables.

Gauge samples (:class:`repro.obs.GaugePoint`) are time-series rows;
this module turns them into the same plain-text tables the rest of
:mod:`repro.analysis` produces, downsampling evenly when a run has
more points than a terminal wants to read (traces are for Perfetto;
tables are for a quick look).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.analysis.tables import format_table
from repro.obs.gauges import GaugePoint
from repro.units import GB, MB

__all__ = ["gauge_rows", "format_gauges"]


def gauge_rows(points: Iterable[GaugePoint],
               max_rows: int = 20) -> List[Dict[str, Any]]:
    """Table rows from gauge samples, evenly downsampled to ``max_rows``.

    Downsampling keeps the first and last sample and picks evenly
    spaced points in between, so ramps and the steady state both stay
    visible.  ``max_rows <= 0`` keeps every point.
    """
    series = list(points)
    if max_rows > 0 and len(series) > max_rows:
        step = (len(series) - 1) / (max_rows - 1)
        series = [series[round(i * step)] for i in range(max_rows)]
    # The shared-block column only appears when some point has shared
    # blocks, so non-sharing runs keep their familiar table shape.
    sharing = any(p.kv_shared_blocks for p in series)
    rows = []
    for p in series:
        row = {
            "t (s)": round(p.t_s, 2),
            "replica": p.replica,
            "queue": p.queue_depth,
            "running": p.running,
            "active (GB)": round(p.active_bytes / GB, 2),
            "reserved (GB)": round(p.reserved_bytes / GB, 2),
            "pool free (MB)": round(p.free_pool_bytes / MB, 1),
            "KV (GB)": round(p.kv_bytes / GB, 2),
            "KV util": round(p.kv_utilization, 3),
            "replicas": p.active_replicas,
        }
        if sharing:
            row["KV shared"] = p.kv_shared_blocks
        rows.append(row)
    return rows


def format_gauges(points: Iterable[GaugePoint], title: Optional[str] = None,
                  max_rows: int = 20) -> str:
    """A plain-text gauge table (``repro serve --gauges`` output)."""
    rows = gauge_rows(points, max_rows=max_rows)
    if not rows:
        return "(no gauge samples)"
    return format_table(rows, title=title or "serving gauges")
