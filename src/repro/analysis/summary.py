"""Aggregate statistics over many workloads — the paper's §5 headline:
"GMLake reduces fragmentation by 15% on average (up to 33%) and reserved
memory by 9.2 GB on average (up to 25 GB) across 76 workloads from 8
models."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.sim.metrics import ComparisonRow, mem_reduction_ratio


@dataclass
class SummaryStats:
    """Fleet-wide aggregates of a set of baseline-vs-GMLake rows."""

    n_workloads: int
    avg_saving_gb: float
    max_saving_gb: float
    avg_frag_reduction: float
    max_frag_reduction: float
    mem_reduction_ratio: float
    baseline_ooms: int
    gmlake_ooms: int

    def as_dict(self) -> dict:
        return {
            "workloads": self.n_workloads,
            "avg saving (GB)": round(self.avg_saving_gb, 2),
            "max saving (GB)": round(self.max_saving_gb, 2),
            "avg frag reduction": round(self.avg_frag_reduction, 3),
            "max frag reduction": round(self.max_frag_reduction, 3),
            "mem reduction ratio": round(self.mem_reduction_ratio, 3),
            "baseline OOMs": self.baseline_ooms,
            "gmlake OOMs": self.gmlake_ooms,
        }


def summarize(rows: Sequence[ComparisonRow]) -> SummaryStats:
    """Aggregate comparison rows into the §5 summary statistics.

    Rows where either side OOMed are excluded from the memory averages
    (their peaks are truncated) but counted in the OOM tallies.
    """
    complete: List[ComparisonRow] = [
        r for r in rows if not r.baseline.oom and not r.gmlake.oom
    ]
    savings = [r.reserved_saving_gb for r in complete]
    frags = [r.fragmentation_reduction for r in complete]
    return SummaryStats(
        n_workloads=len(rows),
        avg_saving_gb=sum(savings) / len(savings) if savings else 0.0,
        max_saving_gb=max(savings) if savings else 0.0,
        avg_frag_reduction=sum(frags) / len(frags) if frags else 0.0,
        max_frag_reduction=max(frags) if frags else 0.0,
        mem_reduction_ratio=mem_reduction_ratio(
            [r.baseline.peak_reserved_bytes for r in complete],
            [r.gmlake.peak_reserved_bytes for r in complete],
        ),
        baseline_ooms=sum(1 for r in rows if r.baseline.oom),
        gmlake_ooms=sum(1 for r in rows if r.gmlake.oom),
    )
