"""Serving-summary tables for the online serving simulator.

Renders :class:`~repro.serve.metrics.ServingReport` populations the
same way the training benches render :class:`EngineResult` grids, so
`python -m repro serve` output and ``bench_ext_online_serving``
snippets look identical.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.tables import format_table
from repro.serve.metrics import ServingReport, SloConfig
from repro.serve.request import ServeRequest


def serving_row(label: Any, report: ServingReport) -> Dict[str, Any]:
    """One labelled table row for a serving report."""
    row: Dict[str, Any] = {"run": label}
    row.update(report.as_row())
    return row


def serving_summary_rows(
    reports: Mapping[Any, ServingReport],
) -> List[Dict[str, Any]]:
    """Rows for a {label: report} mapping, in insertion order."""
    return [serving_row(label, report) for label, report in reports.items()]


def format_serving_summary(
    reports: Mapping[Any, ServingReport],
    title: Optional[str] = None,
    slo: Optional[SloConfig] = None,
) -> str:
    """Render the serving-summary table.

    ``slo`` is only used for the title annotation — the reports were
    already computed against their SLO.
    """
    slo = slo if slo is not None else SloConfig()
    if title is None:
        title = "online serving summary"
    title = (f"{title}  (SLO: TTFT <= {slo.ttft_s:g}s, "
             f"TPOT <= {slo.tpot_s * 1e3:g}ms)")
    return format_table(serving_summary_rows(reports), title=title)


def goodput_vs_rate_rows(
    cells: Sequence[Tuple[float, Mapping[str, ServingReport]]],
) -> List[Dict[str, Any]]:
    """Rows for a rising-arrival-rate sweep: one row per rate, one
    goodput/SLO column pair per allocator — the §6-style capacity
    picture (``cells`` is ``[(rate, {allocator: report}), ...]``)."""
    rows = []
    for rate, by_allocator in cells:
        row: Dict[str, Any] = {"rate (req/s)": rate}
        for name, report in by_allocator.items():
            row[f"goodput {name}"] = round(report.goodput_req_s, 3)
            row[f"SLO% {name}"] = round(report.slo_attainment * 100.0, 1)
            row[f"preempt {name}"] = report.preemptions
        rows.append(row)
    return rows


def defrag_comparison_rows(
    results: Mapping[Any, Any],
    slo: Optional[SloConfig] = None,
) -> List[Dict[str, Any]]:
    """One row per serving run, pool-level next to cache-level defrag.

    ``results`` maps a display label to a
    :class:`~repro.serve.simulator.ServingResult` (duck-typed — any
    object with ``report()``, allocator/KV names, pool stats and
    ``kv_metrics`` works).  Each row pairs the *pool* fragmentation the
    allocator left (``pool frag``, 1 − utilization) with the *cache*
    fragmentation the KV model left (``kv frag``, internal waste in
    chunk/block tails), plus the copy traffic the layout cost — so a
    table with gmlake+chunked, caching+chunked and paged rows answers
    the head-to-head question: where did each strategy pay?
    """
    rows = []
    for label, result in results.items():
        report = result.report(slo)
        kv = getattr(result, "kv_metrics", None)
        rows.append({
            "run": label,
            "allocator": getattr(result, "allocator_name", "-"),
            "kv": getattr(result, "kv_cache_name", "-"),
            "goodput (req/s)": round(report.goodput_req_s, 3),
            "SLO %": round(report.slo_attainment * 100.0, 1),
            "preempt": report.preemptions,
            "RM (GB)": round(result.peak_reserved_bytes / (1 << 30), 2),
            "pool frag": round(result.fragmentation_ratio, 3),
            "kv frag": round(kv.internal_frag_ratio, 3) if kv else "-",
            "copy (MB)": round(
                (kv.grow_copy_bytes + kv.preempt_copy_bytes) / (1 << 20), 1)
            if kv else "-",
            # Interconnect traffic of swap-based preemption; 0 under
            # recompute.
            "swap (MB)": round(kv.swapped_bytes / (1 << 20), 1)
            if kv else "-",
            # Cross-replica KV migration of disaggregated serving; 0 on
            # colocated runs.
            "migrated (MB)": round(
                getattr(kv, "migrated_bytes", 0) / (1 << 20), 1)
            if kv else "-",
        })
        # Prefix-sharing columns appear only when some run declared
        # prefixes, so existing tables keep their shape.
        if kv is not None and getattr(kv, "prefix_lookups", 0):
            rows[-1]["prefix hit"] = round(kv.prefix_hit_rate, 3)
            rows[-1]["shared (MB)"] = round(kv.shared_bytes / (1 << 20), 1)
            rows[-1]["cow (MB)"] = round(kv.cow_copy_bytes / (1 << 20), 2)
        # Tier-offload columns appear only when some run demoted KV
        # into a slow-memory hierarchy (memory_tiers runs).
        if kv is not None and getattr(kv, "demoted_bytes", None):
            rows[-1]["demoted (MB)"] = round(
                sum(kv.demoted_bytes.values()) / (1 << 20), 1)
            rows[-1]["promoted (MB)"] = round(
                sum(kv.promoted_bytes.values()) / (1 << 20), 1)
    # format_table keys columns off the first row, so when any run fed
    # the hierarchy, give the tierless baselines explicit zero cells.
    if any("demoted (MB)" in row for row in rows):
        for row in rows:
            row.setdefault("demoted (MB)", 0.0)
            row.setdefault("promoted (MB)", 0.0)
    return rows


def format_defrag_comparison(
    results: Mapping[Any, Any],
    title: Optional[str] = None,
    slo: Optional[SloConfig] = None,
) -> str:
    """Render the pool-level vs. cache-level defragmentation table."""
    if title is None:
        title = "pool-level vs. cache-level defragmentation"
    return format_table(defrag_comparison_rows(results, slo), title=title)


def tenant_rows(
    requests: Iterable[ServeRequest],
    makespan_s: float,
    slo: Optional[SloConfig] = None,
) -> List[Dict[str, Any]]:
    """One SLO-metrics row per tenant of a multi-tenant run.

    Groups the request population by ``request.tenant`` (requests
    without a tenant land in a ``"-"`` row) and reports each group
    through the same :class:`~repro.serve.metrics.ServingReport`
    aggregation as the fleet-wide summary, plus the tenant's share of
    completed output tokens — the quantity weighted-fair queueing
    divides.  Rows are sorted by tenant id for stable output.
    """
    groups: Dict[str, List[ServeRequest]] = {}
    for request in requests:
        groups.setdefault(request.tenant or "-", []).append(request)
    total_tokens = sum(r.tokens_done for g in groups.values()
                       for r in g if r.finished) or 1
    rows = []
    for tenant in sorted(groups):
        population = groups[tenant]
        report = ServingReport.from_requests(population, makespan_s, slo)
        tokens = sum(r.tokens_done for r in population if r.finished)
        row: Dict[str, Any] = {"tenant": tenant, "requests": len(population)}
        row.update(report.as_row())
        # Fleet-level columns are meaningless split by tenant.
        for fleet_only in ("req", "util", "RM (GB)", "migrated (MB)"):
            row.pop(fleet_only, None)
        row["tokens"] = tokens
        row["token share"] = round(tokens / total_tokens, 3)
        rows.append(row)
    return rows


def format_tenant_summary(
    requests: Iterable[ServeRequest],
    makespan_s: float,
    title: Optional[str] = None,
    slo: Optional[SloConfig] = None,
) -> str:
    """Render the per-tenant serving table (``repro serve --tenants``)."""
    rows = tenant_rows(requests, makespan_s, slo)
    if not rows:
        return "(no requests)"
    return format_table(rows, title=title or "per-tenant serving summary")
