"""Reporting layer: experiment runners and table rendering.

- :mod:`repro.analysis.tables` — plain-text table formatting used by
  every bench.
- :mod:`repro.analysis.experiments` — the paper's experiment grids
  (strategy combos, GPU scale-out, platform sweep, batch sweep) as
  reusable functions returning comparison rows.
- :mod:`repro.analysis.summary` — the §5 "76 workloads / 8 models"
  aggregate statistics.
- :mod:`repro.analysis.serving` — serving-summary tables for the
  online serving simulator (:mod:`repro.serve`).
- :mod:`repro.analysis.observability` — gauge time-series tables for
  :mod:`repro.obs` telemetry.
"""

from repro.analysis.experiments import (
    batch_sweep,
    platform_sweep,
    scaleout_sweep,
    strategy_sweep,
)
from repro.analysis.memory_report import (
    MemoryReport,
    PeakMemoryObserver,
    fragmentation_headroom,
    report_for,
)
from repro.analysis.observability import format_gauges, gauge_rows
from repro.analysis.serving import (
    format_serving_summary,
    format_tenant_summary,
    goodput_vs_rate_rows,
    serving_summary_rows,
    tenant_rows,
)
from repro.analysis.summary import SummaryStats, summarize
from repro.analysis.tables import format_table

__all__ = [
    "format_gauges",
    "gauge_rows",
    "format_serving_summary",
    "format_tenant_summary",
    "goodput_vs_rate_rows",
    "serving_summary_rows",
    "tenant_rows",
    "strategy_sweep",
    "scaleout_sweep",
    "platform_sweep",
    "batch_sweep",
    "SummaryStats",
    "summarize",
    "format_table",
    "MemoryReport",
    "PeakMemoryObserver",
    "report_for",
    "fragmentation_headroom",
]
