"""Plain-text table rendering for bench output.

Every bench prints its table with :func:`format_table` so EXPERIMENTS.md
snippets and terminal output look identical.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[List[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict rows as an aligned ASCII table.

    ``columns`` picks and orders the columns; by default the keys of the
    first row are used.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    table = [[_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in table))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in table:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_kv(title: str, pairs: Dict[str, Any]) -> str:
    """Render a key/value block (used for single-result reports)."""
    width = max(len(k) for k in pairs)
    lines = [title]
    for key, value in pairs.items():
        lines.append(f"  {key.ljust(width)} : {_cell(value)}")
    return "\n".join(lines)
