"""Allocator memory reports: where did the reserved bytes go?

Produces the kind of breakdown ``torch.cuda.memory_summary()`` gives —
free-block histograms, the largest servable block, and (for GMLake) the
stitchable mass — so a user can see *why* an allocator fragments, not
just that it does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.allocators.base import AllocatorObserver, BaseAllocator
from repro.allocators.caching import CachingAllocator
from repro.allocators.expandable import ExpandableSegmentsAllocator
from repro.core.allocator import GMLakeAllocator
from repro.units import MB, fmt_bytes


@dataclass
class MemoryReport:
    """Point-in-time breakdown of one allocator's memory."""

    allocator: str
    reserved_bytes: int
    active_bytes: int
    free_bytes: int
    free_block_count: int
    largest_free_block: int
    #: log2 histogram: bucket upper bound (bytes) -> count of free blocks
    free_histogram: Dict[int, int] = field(default_factory=dict)
    #: bytes reusable for a single maximal request (GMLake: stitched sum;
    #: others: the largest free block)
    max_servable: int = 0

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"memory report — {self.allocator}",
            f"  reserved        : {fmt_bytes(self.reserved_bytes)}",
            f"  active          : {fmt_bytes(self.active_bytes)}",
            f"  free (cached)   : {fmt_bytes(self.free_bytes)} "
            f"in {self.free_block_count} blocks",
            f"  largest free    : {fmt_bytes(self.largest_free_block)}",
            f"  max servable    : {fmt_bytes(self.max_servable)}",
        ]
        if self.free_histogram:
            lines.append("  free-block histogram:")
            for bound in sorted(self.free_histogram):
                count = self.free_histogram[bound]
                bar = "#" * min(count, 40)
                lines.append(f"    <= {fmt_bytes(bound):>10} : {count:4d} {bar}")
        return "\n".join(lines)


def _histogram(sizes: List[int]) -> Dict[int, int]:
    hist: Dict[int, int] = {}
    for size in sizes:
        bound = 1 << max(0, math.ceil(math.log2(size))) if size > 0 else 1
        hist[bound] = hist.get(bound, 0) + 1
    return hist


def report_for(allocator: BaseAllocator) -> MemoryReport:
    """Build a :class:`MemoryReport` for any supported allocator."""
    if isinstance(allocator, GMLakeAllocator):
        return _report_gmlake(allocator)
    if isinstance(allocator, CachingAllocator):
        return _report_caching(allocator)
    if isinstance(allocator, ExpandableSegmentsAllocator):
        return _report_expandable(allocator)
    return _report_generic(allocator)


def _report_generic(allocator: BaseAllocator) -> MemoryReport:
    free = allocator.reserved_bytes - allocator.active_bytes
    return MemoryReport(
        allocator=allocator.name,
        reserved_bytes=allocator.reserved_bytes,
        active_bytes=allocator.active_bytes,
        free_bytes=free,
        free_block_count=0,
        largest_free_block=free,
        max_servable=free,
    )


def _report_caching(allocator: CachingAllocator) -> MemoryReport:
    sizes = [block.size for pool in allocator._free_pools.values()
             for block in pool]
    largest = max(sizes) if sizes else 0
    return MemoryReport(
        allocator=allocator.name,
        reserved_bytes=allocator.reserved_bytes,
        active_bytes=allocator.active_bytes,
        free_bytes=sum(sizes),
        free_block_count=len(sizes),
        largest_free_block=largest,
        free_histogram=_histogram(sizes),
        # BFC can serve at most its largest free block without a new
        # cudaMalloc: holes cannot be combined.
        max_servable=largest,
    )


def _report_expandable(allocator: ExpandableSegmentsAllocator) -> MemoryReport:
    sizes = [block.size for arena in allocator._arenas.values()
             for block in arena.free_blocks]
    largest = max(sizes) if sizes else 0
    return MemoryReport(
        allocator=allocator.name,
        reserved_bytes=allocator.reserved_bytes,
        active_bytes=allocator.active_bytes,
        free_bytes=sum(sizes),
        free_block_count=len(sizes),
        largest_free_block=largest,
        free_histogram=_histogram(sizes),
        # Like BFC, expandable segments cannot fuse disjoint holes —
        # but it can always grow at the tail, so the largest hole is
        # the most it serves without *new* physical memory.
        max_servable=largest,
    )


def _report_gmlake(allocator: GMLakeAllocator) -> MemoryReport:
    sizes = [block.size for block in allocator.ppool if not block.active]
    largest = max(sizes) if sizes else 0
    stitchable = 0
    if allocator.config.enable_stitch:
        stitchable = sum(
            size for size in sizes
            if size >= allocator.config.fragmentation_limit
        )
    return MemoryReport(
        allocator=allocator.name,
        reserved_bytes=allocator.reserved_bytes,
        active_bytes=allocator.active_bytes,
        free_bytes=sum(sizes),
        free_block_count=len(sizes),
        largest_free_block=largest,
        free_histogram=_histogram(sizes),
        # Stitching fuses every inactive block above the limit into one
        # servable region — the defragmentation headroom.
        max_servable=max(stitchable, largest),
    )


def fragmentation_headroom(allocator: BaseAllocator) -> int:
    """Bytes a single request could use beyond the largest hole —
    GMLake's stitching advantage (zero for non-stitching allocators)."""
    report = report_for(allocator)
    return max(0, report.max_servable - report.largest_free_block)


class PeakMemoryObserver(AllocatorObserver):
    """Event-hook subscriber that keeps the report at the *worst* moment.

    Attach with ``allocator.add_observer(PeakMemoryObserver())``: after
    the run, :attr:`at_peak` holds the :class:`MemoryReport` snapshotted
    near the moment reserved memory peaked, and :attr:`at_oom` the
    report at the first OOM (None if the run never OOMed) — the two
    states a post-mortem actually wants, captured without any replay-
    loop involvement.

    A report is rebuilt only when the reserved peak grows by at least
    ``min_growth`` bytes (and always on the very first event), so a
    monotone ramp-up of N allocations costs O(peak / min_growth)
    report builds rather than O(N); plateaus cost nothing.  Set
    ``min_growth=0`` for an exact at-the-peak snapshot.
    """

    def __init__(self, min_growth: int = 16 * MB):
        if min_growth < 0:
            raise ValueError("min_growth must be non-negative")
        self.min_growth = min_growth
        self.at_peak: Optional[MemoryReport] = None
        self.at_oom: Optional[MemoryReport] = None
        self.oom_requested: int = 0
        self._peak_reserved = -1
        self._snapshot_reserved = -1

    def _maybe_snapshot(self, allocator: BaseAllocator) -> None:
        reserved = allocator.reserved_bytes
        if reserved <= self._peak_reserved:
            return
        self._peak_reserved = reserved
        if (self.at_peak is None
                or reserved - self._snapshot_reserved > self.min_growth):
            self._snapshot_reserved = reserved
            self.at_peak = report_for(allocator)

    def on_alloc(self, allocator, allocation) -> None:
        self._maybe_snapshot(allocator)

    def on_free(self, allocator, allocation) -> None:
        self._maybe_snapshot(allocator)

    def on_oom(self, allocator, size, error) -> None:
        if self.at_oom is None:
            self.at_oom = report_for(allocator)
            self.oom_requested = size
