"""The paper's experiment grids as reusable runners.

Each function runs one sweep (the workload axis of a figure) under both
the PyTorch-style caching allocator and GMLake on fresh simulated
devices, returning :class:`~repro.sim.metrics.ComparisonRow` per cell.
Benches print the rows; tests assert the shapes (who wins, direction of
trends, OOM ordering).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.api.spec import AllocatorLike
from repro.sim.engine import AllocatorFactory, EngineResult, run_workload
from repro.sim.metrics import ComparisonRow, compare_results
from repro.units import A100_80GB
from repro.workloads.platforms import Platform
from repro.workloads.training import TrainingWorkload

#: Default iteration count: enough to pass GMLake's ~4-iteration
#: convergence (Fig. 14) with steady state left over.
DEFAULT_ITERATIONS = 8


def _compare(
    workload: TrainingWorkload,
    baseline: Union[AllocatorLike, AllocatorFactory] = "caching",
    gmlake: Union[AllocatorLike, AllocatorFactory] = "gmlake",
    capacity: int = A100_80GB,
) -> ComparisonRow:
    base = run_workload(workload, baseline, capacity=capacity)
    gml = run_workload(workload, gmlake, capacity=capacity)
    return compare_results(workload.label, base, gml)


def strategy_sweep(
    model: str,
    batch_size: int,
    combos: Sequence[str] = ("N", "R", "LR", "RO", "LRO"),
    n_gpus: int = 4,
    iterations: int = DEFAULT_ITERATIONS,
    gmlake: Union[AllocatorLike, AllocatorFactory] = "gmlake",
) -> List[ComparisonRow]:
    """Figure 3 / Figure 10: memory-efficient strategy combinations."""
    rows = []
    for combo in combos:
        workload = TrainingWorkload(
            model, batch_size=batch_size, n_gpus=n_gpus,
            strategies=combo, iterations=iterations,
        )
        rows.append(_compare(workload, gmlake=gmlake))
    return rows


def scaleout_sweep(
    model: str,
    batch_size: int,
    gpu_counts: Sequence[int] = (1, 2, 4, 8, 16),
    strategies: str = "LR",
    iterations: int = DEFAULT_ITERATIONS,
    gmlake: Union[AllocatorLike, AllocatorFactory] = "gmlake",
) -> List[ComparisonRow]:
    """Figure 4 / Figure 11: GPU scale-out."""
    rows = []
    for n in gpu_counts:
        workload = TrainingWorkload(
            model, batch_size=batch_size, n_gpus=n,
            strategies=strategies, iterations=iterations,
        )
        rows.append(_compare(workload, gmlake=gmlake))
    return rows


def platform_sweep(
    cells: Sequence[tuple] = (
        (Platform.FSDP, "glm-10b", 8),
        (Platform.DEEPSPEED, "opt-13b", 8),
        (Platform.COLOSSALAI, "gpt-2", 16),
    ),
    n_gpus: int = 4,
    strategies: str = "LR",
    iterations: int = DEFAULT_ITERATIONS,
    gmlake: Union[AllocatorLike, AllocatorFactory] = "gmlake",
) -> List[ComparisonRow]:
    """Figure 12: platforms (FSDP-GLM-10B, DS-OPT-13B, CAI-GPT-2)."""
    rows = []
    for platform, model, batch in cells:
        workload = TrainingWorkload(
            model, batch_size=batch, n_gpus=n_gpus,
            strategies=strategies, platform=platform, iterations=iterations,
        )
        rows.append(_compare(workload, gmlake=gmlake))
    return rows


def batch_sweep(
    model: str,
    batch_sizes: Sequence[int],
    n_gpus: int = 4,
    strategies: str = "LR",
    iterations: int = DEFAULT_ITERATIONS,
    gmlake: Union[AllocatorLike, AllocatorFactory] = "gmlake",
    capacity: int = A100_80GB,
) -> List[ComparisonRow]:
    """Figure 13: end-to-end batch-size sweep with OOM detection."""
    rows = []
    for batch in batch_sizes:
        workload = TrainingWorkload(
            model, batch_size=batch, n_gpus=n_gpus,
            strategies=strategies, iterations=iterations,
        )
        rows.append(_compare(workload, capacity=capacity))
    return rows


def first_oom_batch(
    rows: Sequence[ComparisonRow],
    side: str = "baseline",
) -> Optional[int]:
    """Smallest batch size whose run OOMed on ``side`` (Fig. 13's OOM
    markers); None when the sweep never OOMed."""
    for row in rows:
        result: EngineResult = getattr(row, side)
        if result.oom:
            return int(result.meta["batch_size"])
    return None
