"""Request-lifecycle tracing: the event bus behind ``--trace``.

:class:`TraceRecorder` is a passive event sink the serving simulator
(and the cluster front-end) feeds as requests move through their
lifecycle — ``arrival``, ``admit``, ``first_token``, ``migrate_out``
/ ``migrate_in`` (disaggregated serving), ``preempt``, ``finish``,
``reject`` — plus allocator-side events (``oom``,
``empty_cache``, sampled ``memory`` counters) captured through the
existing :class:`~repro.allocators.base.AllocatorObserver` hook, and
front-end ``autoscale`` decisions.  Recording never advances the
simulated clock and never changes a decision, so a traced run is
byte-identical to an untraced one.

Two export formats:

``chrome``
    Chrome trace-event JSON (the ``{"traceEvents": [...]}`` form),
    loadable in Perfetto / ``chrome://tracing``.  Each replica is a
    process, each request a thread; the waiting/computing phases
    become ``queued`` / ``running`` / ``preempted`` complete ("X")
    spans, point events become instants ("i"), and memory samples
    become counter ("C") tracks.

``jsonl``
    One JSON object per recorded event — the compact, greppable form
    for downstream analysis.

Sinks are registered components of the new ``trace`` kind
(:class:`TraceSpec`, ``repro list-components --kind trace``), so
``ServingSpec`` JSON and the CLI address them with the same
``"name?key=value"`` mini-DSL as every other policy.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, Iterable, List, Optional, Tuple, Union

from repro.allocators.base import Allocation, AllocatorObserver, BaseAllocator
from repro.api.registry import (
    Param,
    SpecError,
    component_names,
    register_component,
    register_kind,
)
from repro.api.spec import ComponentSpec

__all__ = [
    "TraceEvent",
    "TraceRecorder",
    "AllocatorTraceObserver",
    "ChromeTraceSink",
    "JsonlTraceSink",
    "TraceSpec",
    "TraceLike",
    "resolve_trace_sink",
    "trace_sink_names",
    "validate_chrome_trace",
]

#: The live ``trace`` catalogue dict (sink name -> ComponentInfo).
TRACE_SINKS = register_kind("trace", label="trace sink")

#: Replica id used for front-end (dispatcher/autoscaler) events that
#: belong to no single replica.
FRONTEND_REPLICA = -1

#: Request-lifecycle event kinds, in the order a request meets them.
#: ``migrate_out`` / ``migrate_in`` only occur in disaggregated
#: prefill/decode serving, when a request's KV leaves its prefill
#: replica and lands on its decode replica.  ``retry`` marks a crash
#: victim handed back to the fleet (fault injection), ``hedge`` a
#: duplicate dispatched to another replica by the hedging retry
#: policy.
REQUEST_EVENT_KINDS = (
    "arrival", "admit", "cow_copy", "first_token", "migrate_out",
    "migrate_in", "preempt", "retry", "hedge", "finish", "reject",
)

#: Allocator / front-end / KV-cache event kinds.  ``kv_shared``
#: samples the resident shared-block count of a prefix-sharing KV
#: cache (rendered as a counter track, like ``memory``).  ``crash``
#: / ``recover`` bracket a replica's fault-injected downtime (and
#: drive the fleet-wide "down replicas" counter track).
#: ``kv_demote`` / ``kv_promote`` mark KV bytes moving down to / back
#: up from a slow-memory tier (:mod:`repro.serve.memtier`), and
#: ``kv_tier`` samples each tier's resident bytes (the "tier KV (MB)"
#: counter track).
SYSTEM_EVENT_KINDS = ("memory", "oom", "empty_cache", "autoscale",
                      "kv_shared", "crash", "recover",
                      "kv_demote", "kv_promote", "kv_tier")


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event on the serving timeline.

    ``seq`` is a recorder-wide monotone counter breaking ties between
    events recorded at the same simulated instant (e.g. the ``admit``
    → ``first_token`` → ``finish`` chain of a one-token request), so
    span derivation never depends on float comparison luck.
    """

    t_s: float
    kind: str
    replica: int = 0
    req_id: Optional[int] = None
    seq: int = 0
    args: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Append-only event bus for one serving run (or one fleet run —
    replicas share a recorder; their events interleave by ``replica``).

    ``memory_every`` sets the allocator sampling stride used by
    :meth:`attach_allocator`: one ``memory`` counter event per that
    many alloc/free events (OOM and ``empty_cache`` always record).
    """

    def __init__(self, memory_every: int = 64):
        if memory_every < 1:
            raise ValueError(
                f"memory_every must be >= 1, got {memory_every}")
        self.memory_every = memory_every
        self.events: List[TraceEvent] = []
        self._seq = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, kind: str, t_s: float, replica: int = 0,
               req_id: Optional[int] = None, **args: Any) -> None:
        """Append one event (the sole mutation path)."""
        self._seq += 1
        self.events.append(TraceEvent(
            t_s=t_s, kind=kind, replica=replica, req_id=req_id,
            seq=self._seq, args=args))

    def request_event(self, kind: str, request, t_s: float,
                      **args: Any) -> None:
        """Append one lifecycle event for ``request``."""
        self.record(kind, t_s, replica=request.replica,
                    req_id=request.req_id, **args)

    def attach_allocator(self, allocator: BaseAllocator, session,
                         replica: int = 0) -> "AllocatorTraceObserver":
        """Subscribe to ``allocator``'s events on ``session``'s clock.

        Returns the attached observer (already registered on the
        allocator) so callers can detach it if they need to.
        """
        observer = AllocatorTraceObserver(
            self, session, replica=replica, every=self.memory_every)
        allocator.add_observer(observer)
        return observer

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def request_events(self) -> Dict[Tuple[int, int], List[TraceEvent]]:
        """Lifecycle events grouped per (replica, req_id), time-ordered."""
        grouped: Dict[Tuple[int, int], List[TraceEvent]] = {}
        for event in self.events:
            if event.req_id is None:
                continue
            grouped.setdefault((event.replica, event.req_id),
                               []).append(event)
        for events in grouped.values():
            events.sort(key=lambda e: (e.t_s, e.seq))
        return grouped

    def spans(self) -> List[Dict[str, Any]]:
        """Waiting/computing phases per request, derived from events.

        Each span is ``{"name":
        "queued"|"running"|"preempted"|"migrating", "replica",
        "req_id", "start_s", "end_s"}``.  A span still open when the
        event stream ends (never the case for a completed simulation)
        is dropped.  ``migrate_out`` / ``migrate_in`` events carry the
        transfer time in their ``us`` arg, so each yields a completed
        ``migrating`` span and the lane stays strictly sequential
        (never nested — :func:`validate_chrome_trace` enforces that).
        """
        spans: List[Dict[str, Any]] = []

        def close(key, name, start, end):
            replica, req_id = key
            spans.append({"name": name, "replica": replica,
                          "req_id": req_id, "start_s": start,
                          "end_s": end})

        for key, events in self.request_events().items():
            open_name: Optional[str] = None
            open_start = 0.0
            for event in events:
                if event.kind == "arrival":
                    open_name, open_start = "queued", event.t_s
                elif event.kind == "admit":
                    if open_name is not None:
                        close(key, open_name, open_start, event.t_s)
                    open_name, open_start = "running", event.t_s
                elif event.kind == "preempt":
                    if open_name is not None:
                        close(key, open_name, open_start, event.t_s)
                    if event.args.get("requeue", True):
                        open_name, open_start = "preempted", event.t_s
                    else:
                        open_name = None
                elif event.kind in ("migrate_out", "migrate_in"):
                    duration_s = event.args.get("us", 0.0) / 1e6
                    previous = open_name
                    if previous is not None:
                        close(key, previous, open_start, event.t_s)
                    close(key, "migrating", event.t_s,
                          event.t_s + duration_s)
                    if event.kind == "migrate_in" and previous is not None:
                        # The import happens inside admission: resume
                        # the interrupted phase once the bytes land.
                        open_name = previous
                        open_start = event.t_s + duration_s
                    else:
                        # migrate_out ends the request's life on this
                        # replica; its finish event closes nothing.
                        open_name = None
                elif event.kind == "retry":
                    # A crash took the request off this replica; it
                    # re-enters some replica's queue after its backoff
                    # (a later admit there opens the next span).
                    if open_name is not None:
                        close(key, open_name, open_start, event.t_s)
                    open_name = None
                elif event.kind == "hedge":
                    # The duplicate joins its target replica's queue.
                    open_name, open_start = "queued", event.t_s
                elif event.kind in ("finish", "reject"):
                    if open_name is not None:
                        close(key, open_name, open_start, event.t_s)
                    open_name = None
        spans.sort(key=lambda s: (s["start_s"], s["replica"], s["req_id"]))
        return spans

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def chrome_trace(self) -> Dict[str, Any]:
        """The run as a Chrome trace-event JSON object.

        Timestamps are microseconds (the format's unit); each replica
        is a ``pid``, each request a ``tid`` on its replica, and the
        front-end (autoscale events) is its own process.
        """
        events: List[Dict[str, Any]] = []
        pids: Dict[int, int] = {}
        replicas_down = 0

        def pid_of(replica: int) -> int:
            if replica not in pids:
                # pid 0 is the front-end; replicas start at 1.
                pids[replica] = (0 if replica == FRONTEND_REPLICA
                                 else replica + 1)
            return pids[replica]

        for span in self.spans():
            start_us = span["start_s"] * 1e6
            events.append({
                "name": span["name"], "cat": "request", "ph": "X",
                "ts": start_us,
                "dur": max(span["end_s"] * 1e6 - start_us, 0.0),
                "pid": pid_of(span["replica"]), "tid": span["req_id"],
            })
        for event in sorted(self.events, key=lambda e: (e.t_s, e.seq)):
            ts = event.t_s * 1e6
            pid = pid_of(event.replica)
            if event.kind == "memory":
                events.append({
                    "name": "memory (MB)", "ph": "C", "ts": ts,
                    "pid": pid, "tid": 0,
                    "args": {"active": event.args.get("active_mb", 0.0),
                             "reserved": event.args.get("reserved_mb", 0.0)},
                })
            elif event.kind == "autoscale":
                fleet = event.args.get("fleet")
                events.append({
                    "name": ("active replicas" if fleet is None
                             else f"active replicas ({fleet})"),
                    "ph": "C", "ts": ts,
                    "pid": pid, "tid": 0,
                    "args": {"active": event.args.get("active", 0)},
                })
            elif event.kind == "kv_shared":
                events.append({
                    "name": "shared KV blocks", "ph": "C", "ts": ts,
                    "pid": pid, "tid": 0,
                    "args": {"blocks": event.args.get("blocks", 0)},
                })
            elif event.kind == "kv_tier":
                events.append({
                    "name": "tier KV (MB)", "ph": "C", "ts": ts,
                    "pid": pid, "tid": 0,
                    "args": {k: v for k, v in event.args.items()
                             if isinstance(v, (int, float))},
                })
            elif event.kind in ("crash", "recover"):
                # Instant on the replica's own lane, plus the running
                # fleet-wide "down replicas" counter on the front-end
                # process (crash/recover events arrive time-sorted, so
                # the +1/-1 walk reconstructs the count exactly).
                replicas_down += 1 if event.kind == "crash" else -1
                events.append({
                    "name": event.kind, "cat": "event", "ph": "i",
                    "ts": ts, "pid": pid, "tid": 0, "s": "p",
                    "args": {k: v for k, v in event.args.items()
                             if isinstance(v, (int, float, str, bool))},
                })
                events.append({
                    "name": "down replicas", "ph": "C", "ts": ts,
                    "pid": pid_of(FRONTEND_REPLICA), "tid": 0,
                    "args": {"down": max(replicas_down, 0)},
                })
            elif event.kind in ("oom", "empty_cache", "first_token",
                                "migrate_out", "migrate_in",
                                "preempt", "reject", "cow_copy",
                                "retry", "hedge",
                                "kv_demote", "kv_promote"):
                args = {k: v for k, v in event.args.items()
                        if isinstance(v, (int, float, str, bool))}
                events.append({
                    "name": event.kind, "cat": "event", "ph": "i",
                    "ts": ts, "pid": pid,
                    "tid": event.req_id if event.req_id is not None else 0,
                    "s": "t", "args": args,
                })
        events.sort(key=lambda e: e["ts"])
        meta: List[Dict[str, Any]] = []
        for replica, pid in sorted(pids.items(), key=lambda kv: kv[1]):
            name = ("front-end" if replica == FRONTEND_REPLICA
                    else f"replica {replica}")
            meta.append({"name": "process_name", "ph": "M", "pid": pid,
                         "tid": 0, "args": {"name": name}})
        return {"traceEvents": meta + events, "displayTimeUnit": "ms"}

    def to_chrome(self, path: str) -> int:
        """Write the Chrome trace JSON; returns the event count."""
        data = self.chrome_trace()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(data, handle, separators=(",", ":"))
            handle.write("\n")
        return len(data["traceEvents"])

    def to_jsonl(self, path: str) -> int:
        """Write one compact JSON object per event; returns the count."""
        with open(path, "w", encoding="utf-8") as handle:
            for event in sorted(self.events, key=lambda e: (e.t_s, e.seq)):
                row: Dict[str, Any] = {"t": event.t_s, "kind": event.kind,
                                       "replica": event.replica}
                if event.req_id is not None:
                    row["req"] = event.req_id
                if event.args:
                    row.update(event.args)
                handle.write(json.dumps(row, separators=(",", ":")) + "\n")
        return len(self.events)

    def __len__(self) -> int:
        return len(self.events)


class AllocatorTraceObserver(AllocatorObserver):
    """Bridges :class:`AllocatorObserver` hooks into a recorder.

    Every OOM and ``empty_cache`` records an instant; one in ``every``
    alloc/free events records a ``memory`` counter sample (plus the
    very first, so the trace shows the weights' baseline).  Time is
    the owning session's ``elapsed_s`` — the same clock the simulator
    stamps lifecycle events with.
    """

    def __init__(self, recorder: TraceRecorder, session,
                 replica: int = 0, every: int = 64):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.recorder = recorder
        self.session = session
        self.replica = replica
        self.every = every
        self._events = 0

    def _sample(self, allocator: BaseAllocator) -> None:
        self.recorder.record(
            "memory", self.session.elapsed_s, replica=self.replica,
            active_mb=round(allocator.active_bytes / (1 << 20), 3),
            reserved_mb=round(allocator.reserved_bytes / (1 << 20), 3))

    def _tick(self, allocator: BaseAllocator) -> None:
        self._events += 1
        if self._events == 1 or self._events % self.every == 0:
            self._sample(allocator)

    # -- AllocatorObserver hooks ---------------------------------------
    def on_alloc(self, allocator: BaseAllocator,
                 allocation: Allocation) -> None:
        self._tick(allocator)

    def on_free(self, allocator: BaseAllocator,
                allocation: Allocation) -> None:
        self._tick(allocator)

    def on_empty_cache(self, allocator: BaseAllocator) -> None:
        self.recorder.record("empty_cache", self.session.elapsed_s,
                             replica=self.replica)
        self._sample(allocator)

    def on_oom(self, allocator: BaseAllocator, size: int, error) -> None:
        self.recorder.record("oom", self.session.elapsed_s,
                             replica=self.replica, size=size)
        self._sample(allocator)


# ----------------------------------------------------------------------
# Well-formedness checks (used by tests and the CI smoke)
# ----------------------------------------------------------------------
def validate_chrome_trace(data: Any) -> int:
    """Check Chrome trace-event JSON well-formedness; returns the event
    count.  Raises :class:`ValueError` on: a missing/ill-typed
    ``traceEvents`` list, negative or non-numeric timestamps/durations,
    or overlapping "X" spans on one (pid, tid) lane (phases must nest —
    and this simulator's request phases are strictly sequential, so any
    overlap means the exporter emitted a non-monotone timeline).
    """
    if not isinstance(data, dict) or not isinstance(
            data.get("traceEvents"), list):
        raise ValueError("chrome trace must be an object with a "
                         "'traceEvents' list")
    events = data["traceEvents"]
    lanes: Dict[Tuple[Any, Any], float] = {}
    last_ts = float("-inf")
    for i, event in enumerate(events):
        if not isinstance(event, dict) or "ph" not in event:
            raise ValueError(f"traceEvents[{i}] is not a phase event")
        if event["ph"] == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"traceEvents[{i}] has bad ts {ts!r}")
        if ts < last_ts:
            raise ValueError(
                f"traceEvents[{i}] ts {ts} precedes {last_ts} "
                "(stream must be time-ordered)")
        last_ts = ts
        if event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"traceEvents[{i}] has bad dur {dur!r}")
            lane = (event.get("pid"), event.get("tid"))
            open_until = lanes.get(lane, float("-inf"))
            if ts < open_until - 1e-6:
                raise ValueError(
                    f"traceEvents[{i}] overlaps the previous span on "
                    f"pid/tid {lane} (starts {ts} before {open_until})")
            lanes[lane] = max(open_until, ts + dur)
    return len(events)


# ----------------------------------------------------------------------
# Sinks: the registered ``trace`` component kind
# ----------------------------------------------------------------------
def _check_sink(params: Dict[str, Any]) -> None:
    path = params.get("path")
    if path is not None and not str(path).strip():
        raise SpecError("trace sink needs a non-empty path")


@register_component(
    "trace", "chrome",
    aliases=("perfetto",),
    params=(
        Param("path", str, "trace.json", kind="str",
              doc="output file for the Chrome trace-event JSON"),
    ),
    check=_check_sink,
    description="Chrome trace-event JSON (load in Perfetto or "
                "chrome://tracing)",
)
class ChromeTraceSink:
    """Writes a recorder as Chrome trace-event JSON."""

    name = "chrome"

    def __init__(self, path: str = "trace.json"):
        self.path = path

    def write(self, recorder: TraceRecorder) -> str:
        """Export ``recorder`` to :attr:`path`; returns the path."""
        recorder.to_chrome(self.path)
        return self.path


@register_component(
    "trace", "jsonl",
    params=(
        Param("path", str, "trace.jsonl", kind="str",
              doc="output file for the JSONL event log"),
    ),
    check=_check_sink,
    description="compact JSONL event log (one JSON object per event)",
)
class JsonlTraceSink:
    """Writes a recorder as one JSON object per line."""

    name = "jsonl"

    def __init__(self, path: str = "trace.jsonl"):
        self.path = path

    def write(self, recorder: TraceRecorder) -> str:
        """Export ``recorder`` to :attr:`path`; returns the path."""
        recorder.to_jsonl(self.path)
        return self.path


@dataclass(frozen=True)
class TraceSpec(ComponentSpec):
    """The typed ``trace``-kind view of :class:`ComponentSpec`::

        chrome?path=out.json
        jsonl?path=events.jsonl
    """

    kind: ClassVar[str] = "trace"

    @classmethod
    def for_path(cls, path: str) -> "TraceSpec":
        """A sink spec inferred from a path's suffix (``.jsonl`` →
        ``jsonl``, anything else → ``chrome``)."""
        name = "jsonl" if str(path).endswith(".jsonl") else "chrome"
        return cls(name, {"path": path})


#: Anything accepted where a trace sink is named.
TraceLike = Union[str, TraceSpec]


def resolve_trace_sink(sink: TraceLike):
    """Build a trace sink from a spec string or :class:`TraceSpec`."""
    if isinstance(sink, TraceSpec):
        return sink.build()
    return TraceSpec.parse(sink).build()


def trace_sink_names() -> List[str]:
    """Registered trace-sink names."""
    return component_names("trace")


def trace_events_from_result(recorder: TraceRecorder,
                             requests: Iterable,
                             replica: int = 0) -> None:
    """Backfill lifecycle events from final request timestamps.

    For results produced *without* a live recorder (e.g. a finished
    :class:`~repro.serve.simulator.ServingResult` someone wants to
    visualize after the fact).  Mid-run detail (preemptions' exact
    times) is not reconstructible — only terminal timestamps are —
    so live recording is preferred; this is the lossy fallback.
    """
    for request in requests:
        recorder.record("arrival", request.arrival_s,
                        replica=replica, req_id=request.req_id)
        if request.admitted_s is not None:
            recorder.record("admit", request.admitted_s,
                            replica=replica, req_id=request.req_id)
        if request.first_token_s is not None:
            recorder.record("first_token", request.first_token_s,
                            replica=replica, req_id=request.req_id)
        if request.finished_s is not None:
            recorder.record("finish", request.finished_s,
                            replica=replica, req_id=request.req_id,
                            tokens=request.tokens_done)
        if request.rejected_s is not None:
            recorder.record("reject", request.rejected_s,
                            replica=replica, req_id=request.req_id,
                            reason=request.reject_reason)
