"""``repro.obs`` — structured serving telemetry.

Three complementary instruments over the online serving simulator,
all opt-in and all zero-cost when unused (a run without them is
byte-identical to one before this package existed):

* **Lifecycle tracing** (:mod:`repro.obs.trace`) —
  :class:`TraceRecorder` captures every request's arrival → queued →
  admitted → first-token → preempt/resume → finish/reject path plus
  allocator events (OOM, ``empty_cache``, sampled memory) through the
  existing :class:`~repro.allocators.base.AllocatorObserver` hook, and
  exports Chrome trace-event JSON (Perfetto-loadable) or compact
  JSONL.  Export sinks are registered components of the new ``trace``
  kind (``repro list-components --kind trace``).
* **Streaming quantiles** (:mod:`repro.obs.sketch`) —
  :class:`QuantileSketch`, a mergeable t-digest backing
  ``ServingReport.from_requests(streaming=True)``: percentiles in
  constant memory, and fleet-level reports merge per-replica sketches
  instead of concatenating sample lists.
* **Time-series gauges** (:mod:`repro.obs.gauges`) —
  :class:`GaugeSampler` polls queue depth, running count, pool/KV
  bytes, KV block utilization and active replicas on a fixed
  simulated-time stride, for ``repro.analysis`` tables.

Wire-up: ``repro serve --trace out.json --gauges --streaming``, or the
``trace`` / ``gauge_every_s`` / ``streaming`` fields of
:class:`repro.api.ServingSpec`.
"""

from repro.obs.gauges import GaugePoint, GaugeSampler
from repro.obs.sketch import QuantileSketch
from repro.obs.trace import (
    FRONTEND_REPLICA,
    REQUEST_EVENT_KINDS,
    SYSTEM_EVENT_KINDS,
    TRACE_SINKS,
    AllocatorTraceObserver,
    ChromeTraceSink,
    JsonlTraceSink,
    TraceEvent,
    TraceLike,
    TraceRecorder,
    TraceSpec,
    resolve_trace_sink,
    trace_sink_names,
    validate_chrome_trace,
)

__all__ = [
    "AllocatorTraceObserver",
    "ChromeTraceSink",
    "FRONTEND_REPLICA",
    "GaugePoint",
    "GaugeSampler",
    "JsonlTraceSink",
    "QuantileSketch",
    "REQUEST_EVENT_KINDS",
    "SYSTEM_EVENT_KINDS",
    "TRACE_SINKS",
    "TraceEvent",
    "TraceLike",
    "TraceRecorder",
    "TraceSpec",
    "resolve_trace_sink",
    "trace_sink_names",
    "validate_chrome_trace",
]
