"""Time-series gauges: the serving system's vitals, sampled on a clock.

Lifecycle traces answer "what happened to request 17"; gauges answer
"what did the *system* look like at t=212s" — queue depth, running
batch size, pool and KV memory, block utilization, active replicas.
:class:`GaugeSampler` polls a replica's state at a fixed simulated-time
stride from inside the serving loop (pure reads — sampling never
advances the clock or changes a decision) and accumulates
:class:`GaugePoint` rows that ``repro.analysis`` renders directly
(:func:`repro.analysis.observability.format_gauges`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["GaugePoint", "GaugeSampler"]


@dataclass(frozen=True)
class GaugePoint:
    """One sample of a replica's serving state.

    Attributes
    ----------
    t_s:
        Simulated seconds since the replica's run started.
    replica:
        Which replica this sample describes.
    queue_depth / running:
        Requests waiting for admission / currently decoding.
    active_bytes / reserved_bytes:
        The allocator's live tensor bytes and pool reservation.
    free_pool_bytes:
        Reserved-but-idle pool memory (``reserved - active``) — the
        fragmentation reservoir the paper's defrag argument is about.
    device_free_bytes:
        Unreserved device memory (``capacity - reserved``).
    kv_bytes:
        Bytes currently held in live KV tensors.
    kv_utilization:
        Used/allocated KV token capacity over the running batch at the
        sample instant (1.0 when nothing is running).
    active_replicas:
        Replicas the front-end considers active (always 1 for a
        single-replica run; fleet-level changes are recorded by
        :meth:`GaugeSampler.note_active_replicas`).
    kv_shared_blocks:
        Resident shared prefix blocks held by a prefix-sharing KV
        cache (0 for models without sharing).
    replicas_down:
        Fleet-wide count of crashed (not yet recovered) replicas at
        the sample instant, per the crash/recover notes the fault
        model feeds through :meth:`GaugeSampler.note_crash` /
        :meth:`GaugeSampler.note_recover` (always 0 with
        ``faults=none``).
    kv_tier_bytes:
        KV bytes currently resident in slow-memory tiers below HBM
        (the replica's :class:`~repro.serve.memtier.TierHierarchy`;
        0 for runs without ``memory_tiers``).
    """

    t_s: float
    replica: int
    queue_depth: int
    running: int
    active_bytes: int
    reserved_bytes: int
    free_pool_bytes: int
    device_free_bytes: int
    kv_bytes: int
    kv_utilization: float
    active_replicas: int = 1
    kv_shared_blocks: int = 0
    replicas_down: int = 0
    kv_tier_bytes: int = 0


class GaugeSampler:
    """Samples replica vitals every ``every_s`` simulated seconds.

    One sampler may serve a whole fleet: each replica keeps its own
    next-due time, and :meth:`series` filters per replica.  The
    front-end additionally reports autoscaling decisions through
    :meth:`note_active_replicas` as an (irregular) change-point series.
    """

    def __init__(self, every_s: float = 1.0):
        if not every_s > 0:
            raise ValueError(f"every_s must be positive, got {every_s}")
        self.every_s = every_s
        self.points: List[GaugePoint] = []
        #: (t_s, active) change points from the fleet front-end.
        self.active_points: List[Tuple[float, int]] = []
        #: Per-fleet change points (disaggregated serving runs one
        #: series per phase, e.g. "prefill" / "decode").
        self.fleet_points: Dict[str, List[Tuple[float, int]]] = {}
        self._due: Dict[int, float] = {}
        #: (t_s, down count) change points from crash/recover notes.
        self.down_points: List[Tuple[float, int]] = []
        self._down: set = set()

    # ------------------------------------------------------------------
    def poll(self, simulator, queue, running) -> None:
        """Sample ``simulator`` if its replica's stride has elapsed.

        Called once per serving-loop iteration; cheap when not due.
        The first poll samples immediately (the t≈0 baseline with the
        weights resident).
        """
        now = simulator.session.elapsed_s
        due = self._due.get(simulator.replica_id)
        if due is not None and now < due:
            return
        self.sample(simulator, queue, running)
        self._due[simulator.replica_id] = now + self.every_s

    def sample(self, simulator, queue, running) -> GaugePoint:
        """Record one point from the simulator's current state."""
        allocator = simulator.allocator
        active = allocator.active_bytes
        reserved = allocator.reserved_bytes
        kv = simulator.kv
        utilization = kv.utilization_snapshot(running)
        hierarchy = getattr(simulator, "hierarchy", None)
        point = GaugePoint(
            t_s=simulator.session.elapsed_s,
            replica=simulator.replica_id,
            queue_depth=len(queue),
            running=len(running),
            active_bytes=active,
            reserved_bytes=reserved,
            free_pool_bytes=max(reserved - active, 0),
            device_free_bytes=max(simulator.capacity - reserved, 0),
            kv_bytes=kv.live_kv_bytes,
            kv_utilization=utilization if utilization is not None else 1.0,
            active_replicas=self._active_at(simulator.session.elapsed_s),
            kv_shared_blocks=getattr(kv, "shared_live_blocks", 0),
            replicas_down=len(self._down),
            kv_tier_bytes=(hierarchy.resident_bytes
                           if hierarchy is not None else 0),
        )
        self.points.append(point)
        return point

    def note_crash(self, t_s: float, replica: int) -> None:
        """Record that ``replica`` went down at ``t_s``."""
        self._down.add(replica)
        self.down_points.append((t_s, len(self._down)))

    def note_recover(self, t_s: float, replica: int) -> None:
        """Record that ``replica`` came back at ``t_s``."""
        self._down.discard(replica)
        self.down_points.append((t_s, len(self._down)))

    def note_active_replicas(self, t_s: float, active: int,
                             fleet: Optional[str] = None) -> None:
        """Record a front-end autoscaling change point.

        ``fleet`` routes the point to that fleet's own series (and
        leaves the global one untouched) so a disaggregated front-end
        can report per-phase fleet sizes independently.
        """
        series = (self.active_points if fleet is None
                  else self.fleet_points.setdefault(fleet, []))
        if series and series[-1][1] == active:
            return
        series.append((t_s, active))

    def _active_at(self, t_s: float) -> int:
        """Active replica count at ``t_s`` per the change-point series."""
        current = 1
        for when, active in self.active_points:
            if when > t_s:
                break
            current = active
        return current

    # ------------------------------------------------------------------
    def series(self, replica: Optional[int] = None) -> List[GaugePoint]:
        """Recorded points, optionally restricted to one replica."""
        if replica is None:
            return list(self.points)
        return [p for p in self.points if p.replica == replica]

    def fleet_series(self, fleet: str) -> List[Tuple[float, int]]:
        """One fleet's (t_s, active) change points (empty if unknown)."""
        return list(self.fleet_points.get(fleet, ()))

    def __len__(self) -> int:
        return len(self.points)
