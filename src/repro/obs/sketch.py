"""Mergeable streaming quantile sketch (t-digest).

``ServingReport.from_requests`` historically materialized every TTFT /
latency sample to call :func:`repro.serve.metrics.percentile` — fine
for a hundred requests, hopeless for the million-request traces the
roadmap asks for, and structurally wrong for fleet aggregation (each
replica would have to ship its full sample list to the front-end).
:class:`QuantileSketch` replaces the lists behind the opt-in
``streaming=True`` path: constant memory per stream, and ``merge()``
combines replicas' sketches without ever touching raw samples.

The sketch is a t-digest (Dunning & Ertl): sorted centroids
``(mean, weight)`` whose permitted weight shrinks toward the
distribution's tails, so extreme quantiles stay near-exact while the
middle compresses aggressively.  With the default ``compression`` of
200 the *rank* error of ``quantile(q)`` is a small fraction of a
percentile point near the tails and well under one percentile point at
the median; the value error this translates to depends on the local
density of the data (see ``docs/observability.md`` for the bounds the
test suite enforces).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

__all__ = ["QuantileSketch"]


class QuantileSketch:
    """Constant-memory percentile estimator with lossless-ish ``merge``.

    ``add`` buffers raw values and periodically folds them into the
    centroid list; ``quantile(q)`` interpolates between centroid
    centers (``q`` in ``[0, 100]``, mirroring
    :func:`repro.serve.metrics.percentile`).  Exact minimum and maximum
    are tracked separately so ``quantile(0)`` / ``quantile(100)`` are
    always exact.
    """

    __slots__ = ("compression", "count", "_means", "_weights",
                 "_buffer", "_flush_at", "_min", "_max")

    def __init__(self, compression: int = 200):
        if compression < 20:
            raise ValueError(
                f"compression must be >= 20, got {compression}")
        self.compression = compression
        self.count = 0
        self._means: List[float] = []
        self._weights: List[float] = []
        self._buffer: List[float] = []
        self._flush_at = 4 * compression
        self._min = float("inf")
        self._max = float("-inf")

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def add(self, value: float) -> None:
        """Fold one sample into the sketch."""
        value = float(value)
        self.count += 1
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self._buffer.append(value)
        if len(self._buffer) >= self._flush_at:
            self._compress()

    def extend(self, values: Sequence[float]) -> None:
        """Fold many samples into the sketch."""
        for value in values:
            self.add(value)

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch in place; returns ``self``.

        Both operands' centroids are re-clustered together, so
        ``a.merge(b)`` and ``b.merge(a)`` summarize the identical
        weighted point set (their quantiles agree up to the sketch's
        own rank tolerance).
        """
        other._compress()
        self._compress()
        self._means.extend(other._means)
        self._weights.extend(other._weights)
        self.count += other.count
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        self._compress(force=True)
        return self

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------
    def _compress(self, force: bool = False) -> None:
        """Re-cluster buffered samples + centroids under the size bound."""
        if not self._buffer and not force:
            return
        points: List[Tuple[float, float]] = list(
            zip(self._means, self._weights))
        points.extend((v, 1.0) for v in self._buffer)
        self._buffer.clear()
        if not points:
            return
        points.sort()
        total = float(sum(w for _, w in points))
        if total <= 2.0 * self.compression:
            # Small streams stay uncompressed: still within the memory
            # bound, and all-singleton sketches answer quantiles
            # exactly (see :meth:`quantile`).
            self._means = [m for m, _ in points]
            self._weights = [w for _, w in points]
            return
        means: List[float] = []
        weights: List[float] = []
        cur_mean, cur_weight = points[0]
        seen = 0.0  # weight fully to the left of the open cluster
        k_left = self._k_scale(0.0)
        for mean, weight in points[1:]:
            proposed = cur_weight + weight
            # k1 scale function: a cluster may span at most one unit of
            # k(q) = (c/2π)·asin(2q−1).  k is steep at the tails, so
            # extreme clusters pinch to singletons while the middle
            # compresses hard — and the total k-range is c/2, which
            # caps the centroid count independent of stream length.
            q_right = (seen + proposed) / total
            if self._k_scale(q_right) - k_left <= 1.0:
                cur_mean += (mean - cur_mean) * (weight / proposed)
                cur_weight = proposed
            else:
                means.append(cur_mean)
                weights.append(cur_weight)
                seen += cur_weight
                k_left = self._k_scale(seen / total)
                cur_mean, cur_weight = mean, weight
        means.append(cur_mean)
        weights.append(cur_weight)
        self._means = means
        self._weights = weights

    def _k_scale(self, q: float) -> float:
        """The t-digest k1 scale function (tail-emphasizing)."""
        q = min(max(q, 0.0), 1.0)
        return self.compression * math.asin(2.0 * q - 1.0) / (2.0 * math.pi)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float:
        """Estimated percentile ``q`` in [0, 100] (0.0 if empty)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        self._compress()
        if q == 0.0:
            return self._min
        if q == 100.0:
            return self._max
        means, weights = self._means, self._weights
        if len(means) == 1:
            return means[0]
        if len(means) == self.count:
            # Every centroid is still a singleton — the sketch holds
            # the full sorted sample list, so answer with the exact
            # order statistic, float-identical to metrics.percentile.
            rank = (self.count - 1) * q / 100.0
            lo = int(rank)
            hi = min(lo + 1, self.count - 1)
            frac = rank - lo
            return means[lo] * (1.0 - frac) + means[hi] * frac
        total = float(sum(weights))
        target = q / 100.0 * total
        # Centroid i's center sits at cumulative rank C_i + w_i/2.
        cum = 0.0
        prev_center = 0.0
        prev_value = self._min
        for mean, weight in zip(means, weights):
            center = cum + weight / 2.0
            if target <= center:
                span = center - prev_center
                if span <= 0.0:
                    return mean
                frac = (target - prev_center) / span
                return prev_value + (mean - prev_value) * frac
            cum += weight
            prev_center = center
            prev_value = mean
        # Past the last centroid's center: interpolate toward the max.
        span = total - prev_center
        if span <= 0.0:
            return self._max
        frac = (target - prev_center) / span
        return prev_value + (self._max - prev_value) * frac

    @property
    def centroid_count(self) -> int:
        """Live centroids (the sketch's memory footprint, in pairs)."""
        self._compress()
        return len(self._means)

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (f"QuantileSketch(count={self.count}, "
                f"centroids={len(self._means)}, "
                f"buffered={len(self._buffer)})")
