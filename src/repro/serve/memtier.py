"""Tiered KV memory: host DRAM / CXL / NVMe offload targets below HBM.

The paper's serving argument stops at a single modeled device plus one
PCIe swap hop.  This module generalizes that hop into a **memory
hierarchy**: an ordered list of slow-memory tiers below the implicit
``hbm`` device tier, each with its own capacity, bandwidth and latency,
registered under the ``memory-tier`` component kind and named by the
same ``"name?key=value"`` mini-DSL as every other policy:

``dram``
    Host DRAM over the host link.  ``gb_per_s`` / ``latency_us``
    default to 0, the sentinel for "use the device latency model's
    PCIe figures" — so a bare ``dram`` tier prices transfers exactly
    the way swap preemption always has.

``cxl``
    CXL-attached memory: more capacity than host DRAM, load/store
    latency in microseconds, bandwidth below the host link.

``nvme``
    NVMe flash: effectively unbounded capacity, milliseconds of setup
    latency, single-digit GB/s.

A **hierarchy** (:class:`TierHierarchy`) is built from a comma-
separated spec string, e.g.::

    dram?gb=64,cxl?gb=256&gb_per_s=40&latency_us=1,nvme?gb=2048

Cold KV bytes *demote* to the first tier (in order) with room and
*promote* back on first touch; every transfer is priced by the tier's
:class:`~repro.serve.interconnect.Interconnect` (an explicit ``link``
spec, or a :class:`~repro.serve.interconnect.PcieInterconnect` built
from the tier's own ``gb_per_s`` / ``latency_us``) and charged to the
simulated clock.  Swap preemption is the degenerate two-tier case: one
unbounded DRAM tier over the host link (see
:class:`repro.serve.preemption.SwapPreemption`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Iterable, List, Optional, Tuple, Union

from repro.api.registry import (
    Param,
    SpecError,
    component_names,
    register_component,
    register_kind,
)
from repro.api.spec import ComponentSpec
from repro.serve.interconnect import (
    Interconnect,
    InterconnectSpec,
    PcieInterconnect,
    resolve_interconnect,
)
from repro.units import GB

__all__ = [
    "MemoryTier",
    "DramTier",
    "CxlTier",
    "NvmeTier",
    "TierHierarchy",
    "MemoryTierSpec",
    "MemoryTierLike",
    "MemoryTiersLike",
    "MEMORY_TIERS",
    "memory_tier_names",
    "parse_memory_tiers",
    "resolve_memory_tiers",
]

#: The live ``memory-tier`` catalogue dict (tier name -> ComponentInfo).
MEMORY_TIERS = register_kind("memory-tier", label="memory tier")


class MemoryTier:
    """One slow-memory level below the device's HBM.

    ``gb == 0`` means unbounded capacity (the sentinel the swap shim's
    host tier uses — host memory is not modeled as scarce).  The tier's
    transfer pricing comes from an explicit ``link`` interconnect spec,
    or — when ``link`` is empty — a :class:`PcieInterconnect` built
    from the tier's own ``gb_per_s`` / ``latency_us`` (whose 0 values
    fall back to the device latency model, like every PCIe link).
    """

    name: str = "tier"

    def __init__(self, gb: float = 0.0, gb_per_s: float = 0.0,
                 latency_us: float = 0.0, link: str = ""):
        if gb < 0:
            raise ValueError(f"gb must be >= 0 (0 = unbounded), got {gb}")
        if gb_per_s < 0:
            raise ValueError(f"gb_per_s must be >= 0, got {gb_per_s}")
        if latency_us < 0:
            raise ValueError(f"latency_us must be >= 0, got {latency_us}")
        self.gb = gb
        self.capacity_bytes = float("inf") if gb == 0 else int(gb * GB)
        self.interconnect: Interconnect = (
            resolve_interconnect(link) if link
            else PcieInterconnect(gb_per_s=gb_per_s, latency_us=latency_us))
        self.gb_per_s = gb_per_s
        self.latency_us = latency_us
        self.link = link

    def transfer_us(self, size: int, latency) -> float:
        """Microseconds one ``size``-byte transfer to/from this tier
        takes (``latency`` is the device's latency model, used by
        links with 0-sentinel parameters)."""
        return self.interconnect.transfer_us(size, latency)


def _check_tier(params: Dict[str, Any]) -> None:
    for key in ("gb", "gb_per_s", "latency_us"):
        value = params.get(key)
        if value is not None and value < 0:
            raise SpecError(
                f"memory tier {key} must be >= 0, got {value}")
    link = params.get("link")
    if link:
        if "gb_per_s" in params or "latency_us" in params:
            raise SpecError(
                "pass either a link interconnect spec or explicit "
                "gb_per_s/latency_us, not both")
        try:
            InterconnectSpec.parse(link)
        except SpecError as exc:
            raise SpecError(f"memory tier link: {exc}") from None


def _tier_params(gb: float, gb_per_s: float, latency_us: float,
                 capacity_doc: str) -> tuple:
    return (
        Param("gb", float, gb, kind="float",
              doc=f"tier capacity, GB (0 = unbounded); {capacity_doc}"),
        Param("gb_per_s", float, gb_per_s, kind="float",
              doc="transfer bandwidth, GB/s (0 = the device latency "
                  "model's PCIe bandwidth)"),
        Param("latency_us", float, latency_us, kind="float",
              doc="per-transfer setup latency, µs (0 = the device "
                  "latency model's PCIe latency)"),
        Param("link", str, "", kind="str",
              doc="explicit interconnect spec pricing transfers (e.g. "
                  "'pcie?gb_per_s=12'); mutually exclusive with "
                  "gb_per_s/latency_us"),
    )


@register_component(
    "memory-tier", "dram",
    aliases=("host",),
    params=_tier_params(64.0, 0.0, 0.0, "64 GB host DRAM by default"),
    check=_check_tier,
    description="host DRAM over the host link (device PCIe figures by "
                "default — swap preemption's exact pricing)",
)
class DramTier(MemoryTier):
    """Host DRAM: the tier swap preemption always offloaded to."""

    name = "dram"

    def __init__(self, gb: float = 64.0, gb_per_s: float = 0.0,
                 latency_us: float = 0.0, link: str = ""):
        super().__init__(gb, gb_per_s, latency_us, link)


@register_component(
    "memory-tier", "cxl",
    params=_tier_params(256.0, 40.0, 1.0, "256 GB CXL pool by default"),
    check=_check_tier,
    description="CXL-attached memory: big, microsecond-latency, "
                "below-host-link bandwidth",
)
class CxlTier(MemoryTier):
    """CXL-attached memory expansion."""

    name = "cxl"

    def __init__(self, gb: float = 256.0, gb_per_s: float = 40.0,
                 latency_us: float = 1.0, link: str = ""):
        super().__init__(gb, gb_per_s, latency_us, link)


@register_component(
    "memory-tier", "nvme",
    aliases=("flash", "ssd"),
    params=_tier_params(2048.0, 6.0, 80.0, "2 TB NVMe by default"),
    check=_check_tier,
    description="NVMe flash: effectively unbounded, tens of µs setup, "
                "single-digit GB/s",
)
class NvmeTier(MemoryTier):
    """NVMe flash — the deepest (and slowest) offload target."""

    name = "nvme"

    def __init__(self, gb: float = 2048.0, gb_per_s: float = 6.0,
                 latency_us: float = 80.0, link: str = ""):
        super().__init__(gb, gb_per_s, latency_us, link)


@dataclass(frozen=True)
class MemoryTierSpec(ComponentSpec):
    """A validated (memory tier, parameters) pair.

    Speaks the same mini-DSL as :class:`repro.api.AllocatorSpec`::

        dram
        dram?gb=64
        cxl?gb=256&gb_per_s=40&latency_us=1
        nvme?gb=2048&link=pcie?gb_per_s=6
    """

    kind: ClassVar[str] = "memory-tier"

    def build(self) -> MemoryTier:
        """Instantiate the configured tier."""
        return super().build()


#: Anything accepted where one memory tier is named.
MemoryTierLike = Union[str, MemoryTierSpec, MemoryTier]

#: Anything accepted where a whole hierarchy is named: a comma-
#: separated spec string, a list of tier specs/instances, a built
#: :class:`TierHierarchy`, or ``None`` / ``""`` for no tiering.
MemoryTiersLike = Union[str, Iterable[MemoryTierLike], "TierHierarchy",
                        None]


class TierHierarchy:
    """An ordered stack of slow-memory tiers below the device's HBM.

    The hierarchy owns the *residency ledger*: which offloaded item
    (a parked request's KV, a demoted prefix block) lives in which
    tier, and how many bytes each tier holds.  Placement is
    first-fit in tier order — an item demotes to the shallowest tier
    with room and comes back from wherever it landed.  Every item is
    resident in **exactly one** tier (or none); capacities are never
    exceeded; a drained run leaves every tier empty — the invariants
    ``tests/test_serve_memtier.py`` fuzzes.

    Like a KV-cache model, a hierarchy carries per-run state and binds
    to one replica's session + device.
    """

    def __init__(self, tiers: Iterable[MemoryTierLike]):
        self.tiers: List[MemoryTier] = [
            tier if isinstance(tier, MemoryTier)
            else tier.build() if isinstance(tier, MemoryTierSpec)
            else MemoryTierSpec.parse(tier).build()
            for tier in tiers
        ]
        if not self.tiers:
            raise ValueError("a tier hierarchy needs at least one tier")
        labels: List[str] = []
        for index, tier in enumerate(self.tiers):
            label = tier.name
            if label in labels:
                label = f"{tier.name}{index}"
            labels.append(label)
        #: Stable per-tier labels (tier name, de-duplicated in order).
        self.labels: List[str] = labels
        self._used: List[int] = [0] * len(self.tiers)
        #: item name -> (tier index, size in bytes).
        self._resident: Dict[str, Tuple[int, int]] = {}
        self._session = None
        self._latency = None
        self._trace = None
        self._replica = 0

    # -- wiring --------------------------------------------------------
    def bind(self, session, device) -> None:
        """Attach the replica's session clock + device latency model."""
        self._session = session
        self._latency = device.latency

    def attach_trace(self, recorder, replica: int = 0) -> None:
        """Attach an observability recorder so demote/promote instants
        and the per-tier byte counter land in the lifecycle stream."""
        self._trace = recorder
        self._replica = replica

    # -- residency -----------------------------------------------------
    def demote(self, name: str, size: int) -> Optional[Tuple[str, float]]:
        """Park ``size`` bytes under ``name`` in the shallowest tier
        with room.

        Returns ``(tier label, transfer µs)`` — the caller charges the
        clock and its own byte ledger — or ``None`` when every tier is
        full (the caller falls back to dropping the bytes).
        """
        if name in self._resident:
            raise ValueError(f"{name!r} is already resident in tier "
                             f"{self.tier_of(name)}")
        for index, tier in enumerate(self.tiers):
            if self._used[index] + size > tier.capacity_bytes:
                continue
            self._used[index] += size
            self._resident[name] = (index, size)
            us = tier.transfer_us(size, self._latency)
            self._note_transfer("kv_demote", self.labels[index], size)
            return self.labels[index], us
        return None

    def promote(self, name: str) -> Optional[Tuple[str, int, float]]:
        """Bring ``name`` back to the device on first touch.

        Returns ``(tier label, size, transfer µs)``, or ``None`` when
        ``name`` is not resident in any tier.
        """
        entry = self._resident.pop(name, None)
        if entry is None:
            return None
        index, size = entry
        self._used[index] -= size
        us = self.tiers[index].transfer_us(size, self._latency)
        self._note_transfer("kv_promote", self.labels[index], size)
        return self.labels[index], size, us

    def discard(self, name: str) -> None:
        """Drop ``name``'s residency without a transfer (rejection)."""
        entry = self._resident.pop(name, None)
        if entry is not None:
            index, size = entry
            self._used[index] -= size

    def holds(self, name: str) -> bool:
        """Whether ``name`` is currently resident in some tier."""
        return name in self._resident

    def tier_of(self, name: str) -> Optional[str]:
        """The label of the tier holding ``name`` (``None`` if absent)."""
        entry = self._resident.get(name)
        return None if entry is None else self.labels[entry[0]]

    # -- introspection -------------------------------------------------
    @property
    def used_bytes(self) -> Dict[str, int]:
        """Bytes currently resident per tier label."""
        return dict(zip(self.labels, self._used))

    @property
    def resident_bytes(self) -> int:
        """Total bytes resident across all tiers."""
        return sum(self._used)

    @property
    def resident_items(self) -> int:
        """Items currently parked in some tier."""
        return len(self._resident)

    @property
    def drained(self) -> bool:
        """True when no tier holds anything (a clean end state)."""
        return not self._resident and not any(self._used)

    def spec_strings(self) -> List[str]:
        """The tiers as canonical spec strings (for result labels)."""
        out = []
        for tier in self.tiers:
            params = []
            if tier.gb:
                params.append(f"gb={tier.gb:g}")
            if tier.link:
                params.append(f"link={tier.link}")
            else:
                if tier.gb_per_s:
                    params.append(f"gb_per_s={tier.gb_per_s:g}")
                if tier.latency_us:
                    params.append(f"latency_us={tier.latency_us:g}")
            out.append(tier.name + ("?" + "&".join(params) if params
                                    else ""))
        return out

    # -- tracing -------------------------------------------------------
    def _note_transfer(self, kind: str, label: str, size: int) -> None:
        if self._trace is None:
            return
        t_s = self._session.elapsed_s if self._session is not None else 0.0
        self._trace.record(kind, t_s, replica=self._replica,
                           tier=label, mb=round(size / (1 << 20), 3))
        self._trace.record(
            "kv_tier", t_s, replica=self._replica,
            **{label: round(used / (1 << 20), 3)
               for label, used in self.used_bytes.items()})


def memory_tier_names(include_aliases: bool = False) -> List[str]:
    """Registered memory-tier names, optionally with aliases."""
    return component_names("memory-tier", include_aliases)


def parse_memory_tiers(text: str) -> List[MemoryTierSpec]:
    """Parse a comma-separated hierarchy string into tier specs.

    ``""`` (or whitespace) means no tiering and yields an empty list.
    Tier spec strings never contain commas, so the split is unambiguous.
    """
    if not text or not text.strip():
        return []
    return [MemoryTierSpec.parse(part.strip())
            for part in text.split(",") if part.strip()]


def resolve_memory_tiers(tiers: MemoryTiersLike) -> Optional[TierHierarchy]:
    """Build a hierarchy from a spec string, tier list, or instance.

    Returns ``None`` for ``None`` / ``""`` / an empty list — the
    "no tiering" configurations, which must stay byte-identical to the
    pre-tier simulator.
    """
    if tiers is None:
        return None
    if isinstance(tiers, TierHierarchy):
        return tiers
    if isinstance(tiers, str):
        specs = parse_memory_tiers(tiers)
        return TierHierarchy(specs) if specs else None
    tiers = list(tiers)
    return TierHierarchy(tiers) if tiers else None
