"""Online inference serving with the allocator in the scheduling loop.

The rest of the package replays *pre-built* allocation traces — a
request's admission time and KV-cache lifetime are fixed before the
allocator runs.  This subpackage closes the loop the paper's §6
serving argument describes: fragmentation feeds back into admission
capacity and latency.  A discrete-event simulator admits requests
online, provisions KV caches through a pluggable memory model
(``chunked`` contiguous growth or vLLM-style ``paged`` block tables),
preempts and requeues on OOM instead of failing the trace, and reports
serving SLO metrics (TTFT, TPOT, tail latency, goodput) next to the
allocator metrics.

Every pluggable policy here is a **registered component** addressable
by the same ``"name?key=value"`` mini-DSL as allocators (see
``repro list-components``): KV-cache models (``kv-cache``), admission
schedulers (``scheduler``), arrival processes (``arrivals``),
preemption policies (``preemption``), autoscalers (``autoscaler``),
fault models (``faults``), retry policies (``retry``) and
trace-export sinks (``trace``, from :mod:`repro.obs`).

Observability is opt-in and passive: pass a
:class:`repro.obs.TraceRecorder` and/or :class:`repro.obs.GaugeSampler`
to :func:`run_serving` / :func:`run_serving_cluster` for lifecycle
traces (Chrome trace-event JSON) and time-series gauges, and
``report(streaming=True)`` for constant-memory t-digest percentiles
(see :mod:`repro.obs` and ``docs/observability.md``).

Layout
------
- :mod:`repro.serve.request`    — the request lifecycle model.
- :mod:`repro.serve.arrivals`   — Poisson / MMPP / replayed /
  closed-loop / multi-tenant arrival processes with heavy-tailed
  prompt/output lengths.
- :mod:`repro.serve.kvcache`    — KV-cache memory models (``chunked``
  vs. ``paged``): pool-level vs. cache-level defragmentation, with
  first-class block reference counts.
- :mod:`repro.serve.prefix`     — radix-trie prefix sharing over the
  paged model (``paged-shared``): ref-counted shared blocks,
  copy-on-write, LRU eviction under pressure.
- :mod:`repro.serve.scheduler`  — FCFS / shortest-prompt / memory-aware
  / weighted-fair (``wfq``) admission policies (memory-aware queries
  ``allocator.stats()`` through the KV model's headroom — free-block
  counts under paged KV, reuse-aware under prefix sharing).
- :mod:`repro.serve.preemption` — what an OOM eviction does to the
  victim's KV: ``recompute`` (free + re-prefill) or ``swap`` (host
  offload over a modeled interconnect).
- :mod:`repro.serve.memtier`    — tiered KV memory: host DRAM / CXL /
  NVMe offload targets below HBM (``memory-tier`` components), the
  hierarchy cold KV demotes into and promotes back from on first
  touch; swap preemption is its degenerate two-tier case.
- :mod:`repro.serve.autoscale`  — replica-count policies for the
  multi-replica front-end (``none`` / ``queue-depth``).
- :mod:`repro.serve.interconnect` — modeled links (``pcie`` /
  ``nvlink``) pricing KV movement for swap offload and migration.
- :mod:`repro.serve.faults`     — replica fault models
  (``replica-crash`` / ``straggler`` / ``link-degrade``) and retry
  policies (``budget`` backoff / ``hedge``) for fault-tolerant
  serving.
- :mod:`repro.serve.simulator`  — the single-replica event loop.
- :mod:`repro.serve.metrics`    — SLO metrics and the serving report
  (exact or streaming via :mod:`repro.obs.sketch`).
- :mod:`repro.serve.cluster`    — the multi-replica front-end.
- :mod:`repro.serve.disagg`     — disaggregated prefill/decode fleets
  with cross-replica KV migration over an interconnect.

Quick start
-----------
>>> from repro.serve import PoissonArrivals, run_serving
>>> stream = PoissonArrivals(rate_per_s=2.0).generate(50, seed=0)
>>> result = run_serving(stream, "opt-1.3b", allocator="gmlake")
>>> result.report().completed
50
"""

from repro.serve.arrivals import (
    ArrivalLike,
    ArrivalProcess,
    ArrivalSpec,
    ClosedLoopArrivals,
    LengthSampler,
    MMPPArrivals,
    MultiTenantArrivals,
    PoissonArrivals,
    ReplayArrivals,
    arrival_names,
    load_arrival_log,
    resolve_arrivals,
)
from repro.serve.autoscale import (
    Autoscaler,
    AutoscalerLike,
    AutoscalerSpec,
    NoAutoscaler,
    QueueDepthAutoscaler,
    autoscaler_names,
    resolve_autoscaler,
)
from repro.serve.cluster import (
    ServeClusterResult,
    dispatch_requests,
    run_serving_cluster,
)
from repro.serve.disagg import DisaggServingResult, run_serving_disagg
from repro.serve.faults import (
    BudgetRetry,
    CrashSchedule,
    DegradedInterconnect,
    FaultModel,
    FaultsLike,
    FaultsSpec,
    HedgeRetry,
    LinkDegradeFaults,
    NoFaults,
    NoRetry,
    ReplicaCrashFaults,
    RetryLike,
    RetryPolicy,
    RetrySpec,
    StragglerFaults,
    faults_names,
    resolve_faults,
    resolve_retry,
    retry_names,
)
from repro.serve.interconnect import (
    Interconnect,
    InterconnectLike,
    InterconnectSpec,
    NvlinkInterconnect,
    PcieInterconnect,
    interconnect_names,
    resolve_interconnect,
)
from repro.serve.kvcache import (
    KV_CACHE_MODELS,
    ChunkedKVCache,
    KVCacheMetrics,
    KVCacheModel,
    KVCacheSpec,
    PagedKVCache,
    kv_cache_names,
    resolve_kv_cache,
)
from repro.serve.memtier import (
    MEMORY_TIERS,
    CxlTier,
    DramTier,
    MemoryTier,
    MemoryTierLike,
    MemoryTierSpec,
    MemoryTiersLike,
    NvmeTier,
    TierHierarchy,
    memory_tier_names,
    parse_memory_tiers,
    resolve_memory_tiers,
)
from repro.serve.prefix import PrefixTrie, SharedPagedKVCache
from repro.serve.metrics import (
    ServingReport,
    ServingReportAccumulator,
    SloConfig,
    percentile,
)
from repro.serve.preemption import (
    PreemptionLike,
    PreemptionPolicy,
    PreemptionSpec,
    RecomputePreemption,
    SwapPreemption,
    TieredPreemption,
    preemption_names,
    resolve_preemption,
)
from repro.serve.request import RequestState, ServeRequest
from repro.serve.scheduler import (
    SCHEDULER_FACTORIES,
    FcfsScheduler,
    MemoryAwareScheduler,
    Scheduler,
    SchedulerLike,
    SchedulerSpec,
    SchedulerView,
    ShortestPromptScheduler,
    WeightedFairScheduler,
    make_scheduler,
    parse_tenant_weights,
    resolve_scheduler,
    scheduler_names,
)
from repro.serve.simulator import (
    ServingConfig,
    ServingResult,
    ServingSimulator,
    run_serving,
)

__all__ = [
    "ArrivalLike",
    "ArrivalProcess",
    "ArrivalSpec",
    "ClosedLoopArrivals",
    "LengthSampler",
    "PoissonArrivals",
    "MMPPArrivals",
    "MultiTenantArrivals",
    "ReplayArrivals",
    "arrival_names",
    "load_arrival_log",
    "resolve_arrivals",
    "Autoscaler",
    "AutoscalerLike",
    "AutoscalerSpec",
    "NoAutoscaler",
    "QueueDepthAutoscaler",
    "autoscaler_names",
    "resolve_autoscaler",
    "RequestState",
    "ServeRequest",
    "KVCacheModel",
    "KVCacheMetrics",
    "KVCacheSpec",
    "ChunkedKVCache",
    "PagedKVCache",
    "SharedPagedKVCache",
    "PrefixTrie",
    "KV_CACHE_MODELS",
    "kv_cache_names",
    "resolve_kv_cache",
    "PreemptionLike",
    "PreemptionPolicy",
    "PreemptionSpec",
    "RecomputePreemption",
    "SwapPreemption",
    "TieredPreemption",
    "preemption_names",
    "resolve_preemption",
    "MEMORY_TIERS",
    "MemoryTier",
    "MemoryTierLike",
    "MemoryTierSpec",
    "MemoryTiersLike",
    "DramTier",
    "CxlTier",
    "NvmeTier",
    "TierHierarchy",
    "memory_tier_names",
    "parse_memory_tiers",
    "resolve_memory_tiers",
    "Scheduler",
    "SchedulerLike",
    "SchedulerSpec",
    "SchedulerView",
    "FcfsScheduler",
    "ShortestPromptScheduler",
    "MemoryAwareScheduler",
    "WeightedFairScheduler",
    "parse_tenant_weights",
    "SCHEDULER_FACTORIES",
    "make_scheduler",
    "resolve_scheduler",
    "scheduler_names",
    "ServingConfig",
    "ServingSimulator",
    "ServingResult",
    "run_serving",
    "SloConfig",
    "ServingReport",
    "ServingReportAccumulator",
    "percentile",
    "ServeClusterResult",
    "dispatch_requests",
    "run_serving_cluster",
    "Interconnect",
    "InterconnectLike",
    "InterconnectSpec",
    "PcieInterconnect",
    "NvlinkInterconnect",
    "interconnect_names",
    "resolve_interconnect",
    "DisaggServingResult",
    "run_serving_disagg",
    "FaultModel",
    "FaultsLike",
    "FaultsSpec",
    "NoFaults",
    "ReplicaCrashFaults",
    "StragglerFaults",
    "LinkDegradeFaults",
    "CrashSchedule",
    "DegradedInterconnect",
    "RetryPolicy",
    "RetryLike",
    "RetrySpec",
    "NoRetry",
    "BudgetRetry",
    "HedgeRetry",
    "faults_names",
    "retry_names",
    "resolve_faults",
    "resolve_retry",
]
