"""Fault injection and retry: failure as a first-class serving dimension.

Production fleets are availability-limited as much as memory-limited:
replicas crash and reboot, stragglers run hot, interconnects degrade,
and the front-end papers over all of it with retries, backoff and
hedged requests.  This module makes those failure modes *seeded,
deterministic inputs* of the serving simulator, registered under two
new component kinds speaking the same ``"name?key=value"`` mini-DSL as
every other policy:

``faults`` — what breaks
    ``none``
        Nothing ever fails (the default).  The simulator takes zero
        fault hooks on this path, so a ``faults=none`` run is
        byte-identical to the pre-fault simulator — enforced by the
        committed hotpath goldens.
    ``replica-crash?mtbf_s=…&mttr_s=…&seed=…``
        Seeded per-replica crash/recover schedules: up-times are
        exponential with mean ``mtbf_s``, down-times exponential with
        mean ``mttr_s``, drawn from a per-replica RNG so the schedule
        is a pure function of ``(seed, replica)`` — independent of
        load, which keeps metamorphic comparisons across retry
        policies honest.  A crash evicts every in-flight request: its
        device KV is freed through the KV model (the no-leak
        invariants keep holding), its generated text is kept, and the
        ``retry`` policy decides whether it re-enters the fleet.
    ``straggler?slowdown=…&prob=…&seed=…``
        Transient per-replica throughput degradation: each decode step
        independently runs ``slowdown``× slower with probability
        ``prob`` (thermal throttling, noisy neighbours).
    ``link-degrade?factor=…``
        Interconnect bandwidth collapse: every transfer priced through
        the wrapped :class:`~repro.serve.interconnect.Interconnect`
        takes ``factor``× longer, so disaggregated KV migrations stall
        realistically.

``retry`` — what the front-end does about it
    ``none``
        Crash victims fail permanently (``reject_reason="failed"``).
    ``budget?max=…&backoff_s=…&jitter=…&seed=…``
        Per-request retry budget with exponential backoff: attempt
        ``k`` waits ``backoff_s * 2**(k-1)``, stretched by a
        deterministic seeded jitter in ``[0, jitter]``; past ``max``
        attempts the request fails permanently.
    ``hedge?after_s=…``
        Tail-latency hedging: a request still un-admitted ``after_s``
        seconds past arrival is duplicated to the healthiest other
        replica; the first copy to finish wins and the loser is
        cancelled with its KV freed.  Crash victims re-dispatch
        immediately (no backoff).  Hedging needs a fleet — on a
        single replica it degenerates to immediate crash retry.

Determinism: every random draw comes from a ``random.Random`` keyed by
the spec's ``seed`` plus the replica id (crash windows, straggler
coin-flips) or the request id and attempt number (backoff jitter) — so
two runs with the same specs produce the same failures at the same
simulated instants, regardless of what the workload does in between.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Iterator, List, Optional, Tuple, Union

from repro.api.registry import (
    Param,
    SpecError,
    component_names,
    register_component,
    register_kind,
)
from repro.api.spec import ComponentSpec
from repro.serve.interconnect import Interconnect
from repro.serve.request import ServeRequest

register_kind("faults", label="fault model")
register_kind("retry", label="retry policy")


# ----------------------------------------------------------------------
# Per-replica fault state the simulator drives
# ----------------------------------------------------------------------
class CrashSchedule:
    """One replica's crash/recover window state machine.

    Wraps an infinite iterator of ``(start_s, end_s)`` down-windows in
    chronological order.  The simulator polls it once per loop
    iteration: :attr:`start_s` / :attr:`end_s` describe the next (or,
    while :attr:`down`, the current) window.
    """

    def __init__(self, windows: Iterator[Tuple[float, float]]):
        self._windows = windows
        self.start_s, self.end_s = next(windows)
        self.down = False

    def crash(self) -> None:
        """Enter the current window's downtime."""
        self.down = True

    def recover(self) -> None:
        """Leave the current window and line up the next one."""
        self.down = False
        self.start_s, self.end_s = next(self._windows)


class StragglerState:
    """One replica's per-decode-step slowdown coin."""

    def __init__(self, rng: random.Random, slowdown: float, prob: float):
        self._rng = rng
        self.slowdown = slowdown
        self.prob = prob

    def step_factor(self) -> float:
        """Multiplier for the next decode step's duration (one draw
        per step, so the sequence is deterministic per replica)."""
        return self.slowdown if self._rng.random() < self.prob else 1.0


def _crash_window_stream(seed: int, replica_id: int, mtbf_s: float,
                         mttr_s: float) -> Iterator[Tuple[float, float]]:
    """Deterministic per-replica (start_s, end_s) down-windows.

    A pure function of ``(seed, replica_id)`` — the dispatcher and the
    replica's own simulator derive the *same* schedule independently.
    """
    # random.Random rejects tuple seeds; a formatted string is stable.
    rng = random.Random(f"{seed}:{replica_id}")
    t = 0.0
    while True:
        t += rng.expovariate(1.0 / mtbf_s)
        end = t + rng.expovariate(1.0 / mttr_s)
        yield (t, end)
        t = end


class DegradedInterconnect(Interconnect):
    """A link whose every transfer takes ``factor``× longer."""

    def __init__(self, inner: Interconnect, factor: float):
        super().__init__(inner.gb_per_s, inner.latency_us)
        self.name = f"{inner.name}~degraded"
        self.inner = inner
        self.factor = factor

    def transfer_us(self, size: int, latency) -> float:
        return self.factor * self.inner.transfer_us(size, latency)


# ----------------------------------------------------------------------
# The ``faults`` kind
# ----------------------------------------------------------------------
class FaultModel(ABC):
    """What breaks, where, and when — a pure function of its seed.

    A fault model is stateless across replicas: per-replica mutable
    state lives in the context object :meth:`replica_context` returns
    (``None`` when the model injects nothing on that replica, so the
    simulator's default path carries zero fault hooks).
    """

    name: str = "faults"
    #: True when the model produces replica down-windows the
    #: dispatcher must route around.
    has_crashes: ClassVar[bool] = False

    def replica_context(
            self, replica_id: int
    ) -> Optional[Union[CrashSchedule, StragglerState]]:
        """Fresh per-replica fault state (``None`` = no hooks)."""
        del replica_id
        return None

    def crash_windows(
            self, replica_id: int) -> Optional[Iterator[Tuple[float, float]]]:
        """The replica's deterministic down-window stream (``None``
        when the model never takes a replica down)."""
        del replica_id
        return None

    def wrap_interconnect(self, link: Interconnect) -> Interconnect:
        """Apply link-level degradation (identity for other models)."""
        return link


@register_component(
    "faults", "none",
    description="fault-free fleet (byte-identical to the pre-fault "
                "simulator)",
)
class NoFaults(FaultModel):
    """Nothing ever fails — the default."""

    name = "none"


def _check_replica_crash(params: Dict[str, Any]) -> None:
    mtbf_s = params.get("mtbf_s", 120.0)
    mttr_s = params.get("mttr_s", 10.0)
    if mtbf_s <= 0 or mttr_s <= 0:
        raise SpecError(
            f"replica-crash needs positive mtbf_s and mttr_s "
            f"(got mtbf_s={mtbf_s}, mttr_s={mttr_s})")


@register_component(
    "faults", "replica-crash",
    aliases=("crash",),
    params=(
        Param("mtbf_s", float, 120.0, kind="float",
              doc="mean time between failures per replica, seconds "
                  "(exponential up-times)"),
        Param("mttr_s", float, 10.0, kind="float",
              doc="mean time to recovery per replica, seconds "
                  "(exponential down-times)"),
        Param("seed", int, 0,
              doc="crash-schedule seed (windows are a pure function "
                  "of seed and replica id)"),
    ),
    check=_check_replica_crash,
    description="seeded per-replica crash/recover schedules: crashes "
                "evict in-flight requests (KV freed, text kept) and "
                "hand them to the retry policy",
)
class ReplicaCrashFaults(FaultModel):
    """Whole-replica fail-stop crashes with seeded repair times."""

    name = "replica-crash"
    has_crashes: ClassVar[bool] = True

    def __init__(self, mtbf_s: float = 120.0, mttr_s: float = 10.0,
                 seed: int = 0):
        if mtbf_s <= 0 or mttr_s <= 0:
            raise ValueError(
                f"mtbf_s and mttr_s must be positive "
                f"(got {mtbf_s}, {mttr_s})")
        self.mtbf_s = mtbf_s
        self.mttr_s = mttr_s
        self.seed = seed

    def replica_context(self, replica_id: int) -> CrashSchedule:
        return CrashSchedule(self.crash_windows(replica_id))

    def crash_windows(self, replica_id: int) -> Iterator[Tuple[float, float]]:
        return _crash_window_stream(self.seed, replica_id,
                                    self.mtbf_s, self.mttr_s)


def _check_straggler(params: Dict[str, Any]) -> None:
    slowdown = params.get("slowdown", 4.0)
    prob = params.get("prob", 0.1)
    if slowdown < 1:
        raise SpecError(
            f"straggler slowdown must be >= 1, got {slowdown}")
    if not 0.0 <= prob <= 1.0:
        raise SpecError(
            f"straggler prob must be in [0, 1], got {prob}")


@register_component(
    "faults", "straggler",
    params=(
        Param("slowdown", float, 4.0, kind="float",
              doc="decode-step slowdown factor while straggling"),
        Param("prob", float, 0.1, kind="float",
              doc="per-decode-step probability of straggling"),
        Param("seed", int, 0,
              doc="coin-flip seed (per-replica deterministic)"),
    ),
    check=_check_straggler,
    description="transient per-replica throughput degradation: each "
                "decode step runs `slowdown`x slower with "
                "probability `prob`",
)
class StragglerFaults(FaultModel):
    """Per-step transient slowdowns (throttling, noisy neighbours)."""

    name = "straggler"

    def __init__(self, slowdown: float = 4.0, prob: float = 0.1,
                 seed: int = 0):
        if slowdown < 1:
            raise ValueError(f"slowdown must be >= 1, got {slowdown}")
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"prob must be in [0, 1], got {prob}")
        self.slowdown = slowdown
        self.prob = prob
        self.seed = seed

    def replica_context(self, replica_id: int) -> StragglerState:
        return StragglerState(random.Random(f"{self.seed}:{replica_id}"),
                              self.slowdown, self.prob)


def _check_link_degrade(params: Dict[str, Any]) -> None:
    factor = params.get("factor", 4.0)
    if factor < 1:
        raise SpecError(
            f"link-degrade factor must be >= 1, got {factor}")


@register_component(
    "faults", "link-degrade",
    aliases=("degrade",),
    params=(
        Param("factor", float, 4.0, kind="float",
              doc="every interconnect transfer takes this many times "
                  "longer"),
    ),
    check=_check_link_degrade,
    description="interconnect bandwidth collapse: transfers over the "
                "wrapped link take `factor`x longer (disagg "
                "migrations stall realistically)",
)
class LinkDegradeFaults(FaultModel):
    """Degrades every interconnect transfer by a constant factor."""

    name = "link-degrade"

    def __init__(self, factor: float = 4.0):
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        self.factor = factor

    def wrap_interconnect(self, link: Interconnect) -> Interconnect:
        return DegradedInterconnect(link, self.factor)


# ----------------------------------------------------------------------
# The ``retry`` kind
# ----------------------------------------------------------------------
class RetryPolicy(ABC):
    """What the front-end does with a request its replica lost.

    ``next_delay_s`` prices one more attempt for a crash victim
    (``None`` = give up: the request is rejected with the terminal
    ``reject_reason="failed"``).  ``hedge_after_s``, when set, arms
    fleet-level duplicate dispatch for requests stuck in a queue.
    """

    name: str = "retry"
    #: Un-admitted queue wait (seconds) after which the fleet
    #: front-end dispatches a duplicate; ``None`` disables hedging.
    hedge_after_s: Optional[float] = None

    @abstractmethod
    def next_delay_s(self, request: ServeRequest) -> Optional[float]:
        """Seconds before re-dispatching ``request`` after a crash
        (``None``: budget exhausted, fail permanently)."""


@register_component(
    "retry", "none",
    description="no retries: crash victims fail permanently "
                "(reject_reason='failed')",
)
class NoRetry(RetryPolicy):
    """Crash victims are lost — the availability floor."""

    name = "none"

    def next_delay_s(self, request: ServeRequest) -> Optional[float]:
        del request
        return None


def _check_budget(params: Dict[str, Any]) -> None:
    max_retries = params.get("max", 3)
    if max_retries < 1:
        raise SpecError(f"budget max must be >= 1, got {max_retries}")
    backoff_s = params.get("backoff_s", 0.25)
    if backoff_s < 0:
        raise SpecError(f"budget backoff_s must be >= 0, got {backoff_s}")
    jitter = params.get("jitter", 0.1)
    if jitter < 0:
        raise SpecError(f"budget jitter must be >= 0, got {jitter}")


@register_component(
    "retry", "budget",
    params=(
        Param("max", int, 3,
              doc="per-request retry budget; past it the request "
                  "fails permanently"),
        Param("backoff_s", float, 0.25, kind="float",
              doc="base backoff: attempt k waits backoff_s * 2**(k-1)"),
        Param("jitter", float, 0.1, kind="float",
              doc="deterministic seeded jitter fraction stretching "
                  "each backoff by up to this much"),
        Param("seed", int, 0,
              doc="jitter seed (a pure function of seed, request id "
                  "and attempt)"),
    ),
    check=_check_budget,
    description="per-request retry budget with exponential backoff "
                "and deterministic seeded jitter",
)
class BudgetRetry(RetryPolicy):
    """Exponential backoff under a hard per-request budget."""

    name = "budget"

    def __init__(self, max: int = 3, backoff_s: float = 0.25,
                 jitter: float = 0.1, seed: int = 0):
        if max < 1:
            raise ValueError(f"max must be >= 1, got {max}")
        if backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {backoff_s}")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.max_retries = max
        self.backoff_s = backoff_s
        self.jitter = jitter
        self.seed = seed

    def next_delay_s(self, request: ServeRequest) -> Optional[float]:
        attempt = request.retries + 1
        if attempt > self.max_retries:
            return None
        u = random.Random(
            f"{self.seed}:{request.req_id}:{attempt}").random()
        return self.backoff_s * (2.0 ** (attempt - 1)) * (1.0
                                                          + self.jitter * u)


def _check_hedge(params: Dict[str, Any]) -> None:
    after_s = params.get("after_s", 2.0)
    if after_s <= 0:
        raise SpecError(f"hedge after_s must be > 0, got {after_s}")


@register_component(
    "retry", "hedge",
    params=(
        Param("after_s", float, 2.0, kind="float",
              doc="un-admitted queue wait before the front-end "
                  "dispatches a duplicate to another healthy replica"),
    ),
    check=_check_hedge,
    description="tail-latency hedging: duplicate a stuck request to "
                "a healthy replica, first finisher wins, loser "
                "cancelled (KV freed); crash victims re-dispatch "
                "immediately",
)
class HedgeRetry(RetryPolicy):
    """Duplicate dispatch for requests stuck behind a sick replica."""

    name = "hedge"

    def __init__(self, after_s: float = 2.0):
        if after_s <= 0:
            raise ValueError(f"after_s must be > 0, got {after_s}")
        self.after_s = after_s
        self.hedge_after_s = after_s

    def next_delay_s(self, request: ServeRequest) -> Optional[float]:
        del request
        return 0.0  # crash victims re-dispatch immediately


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultsSpec(ComponentSpec):
    """A validated (fault model, parameters) pair.

    Speaks the same mini-DSL as :class:`repro.api.AllocatorSpec`::

        none
        replica-crash?mtbf_s=60&mttr_s=5
        straggler?slowdown=8&prob=0.02
        link-degrade?factor=10
    """

    kind: ClassVar[str] = "faults"

    def build(self) -> FaultModel:
        """Instantiate the configured fault model."""
        return super().build()


@dataclass(frozen=True)
class RetrySpec(ComponentSpec):
    """A validated (retry policy, parameters) pair::

        none
        budget?max=5&backoff_s=0.5&jitter=0.2
        hedge?after_s=1.5
    """

    kind: ClassVar[str] = "retry"

    def build(self) -> RetryPolicy:
        """Instantiate the configured retry policy."""
        return super().build()


#: Anything the serving stack accepts where a fault model is named.
FaultsLike = Union[str, FaultsSpec, FaultModel]

#: Anything the serving stack accepts where a retry policy is named.
RetryLike = Union[str, RetrySpec, RetryPolicy]


def faults_names(include_aliases: bool = False) -> List[str]:
    """Registered fault-model names, optionally with aliases."""
    return component_names("faults", include_aliases)


def retry_names(include_aliases: bool = False) -> List[str]:
    """Registered retry-policy names, optionally with aliases."""
    return component_names("retry", include_aliases)


def resolve_faults(kind: FaultsLike) -> FaultModel:
    """Build a fault model from a spec string, spec, or instance."""
    if isinstance(kind, FaultModel):
        return kind
    return FaultsSpec.parse(kind).build()


def resolve_retry(kind: RetryLike) -> RetryPolicy:
    """Build a retry policy from a spec string, spec, or instance."""
    if isinstance(kind, RetryPolicy):
        return kind
    return RetrySpec.parse(kind).build()
