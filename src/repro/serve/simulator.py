"""The discrete-event online serving simulator (one GPU replica).

Where the offline engine replays a *fixed* allocation trace, this loop
decides admissions online, with the allocator in the loop:

* requests arrive on their own clock (arrival process) and wait in a
  queue; waiting past ``queue_timeout_s`` rejects them (timeout SLO);
* the scheduler picks what to admit, possibly consulting live
  ``allocator.stats()`` headroom;
* admission provisions the request's KV cache through a pluggable
  :class:`~repro.serve.kvcache.KVCacheModel` — ``chunked`` (contiguous
  per-request tensors grown by re-alloc, the new block allocated
  before the old is freed as a real KV copy requires, stressing the
  allocator's pool) or ``paged`` (vLLM-style fixed-size blocks with a
  per-request block table, moving fragmentation from the pool into the
  cache layer);
* an OOM during KV growth **preempts** the youngest other running
  request (its KV is freed, the request requeued with its generated
  tokens kept — vLLM-style recompute preemption) instead of crashing
  the job like the offline replay does;
* every lifecycle timestamp is recorded so :mod:`repro.serve.metrics`
  can report TTFT / TPOT / tail latency / goodput.

Time is the device's simulated clock: driver costs charged by the
allocator, prefill and per-step decode compute all advance it, so
allocation latency shows up in TTFT exactly as it would in production.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Tuple, Union

from repro.allocators.stats import AllocatorStats
from repro.api.spec import AllocatorLike, resolve_allocator
from repro.gpu.device import GpuDevice
from repro.obs.gauges import GaugePoint, GaugeSampler
from repro.obs.trace import TraceRecorder
from repro.serve.faults import (
    CrashSchedule,
    FaultsLike,
    RetryLike,
    StragglerState,
    resolve_faults,
    resolve_retry,
)
from repro.serve.kvcache import (
    KVCacheLike,
    KVCacheMetrics,
    resolve_kv_cache,
)
from repro.serve.memtier import MemoryTiersLike, resolve_memory_tiers
from repro.serve.preemption import (
    PreemptionLike,
    RecomputePreemption,
    SwapPreemption,
    TieredPreemption,
    resolve_preemption,
)
from repro.serve.request import REJECT_REASONS, RequestState, ServeRequest
from repro.serve.metrics import ServingReport, SloConfig
from repro.serve.scheduler import (
    SchedulerLike,
    SchedulerView,
    resolve_scheduler,
)
from repro.sim.engine import AllocatorFactory, ReplaySession
from repro.sim.timeline import TimelinePoint
from repro.units import A100_80GB, GB
from repro.workloads.inference import (
    DECODE_TOKENS_PER_S,
    decode_workspace_bytes,
)
from repro.workloads.models import ModelSpec, get_model

#: Slack for floating-point arrival-time comparisons, seconds.
_EPS = 1e-9

#: States a request can hold only while waiting in the admission queue.
_QUEUE_STATES = (RequestState.QUEUED, RequestState.PREEMPTED)


@dataclass
class ServingConfig:
    """Tunables of one serving replica.

    Attributes
    ----------
    max_batch:
        Cap on concurrently running (decoding) requests.
    kv_chunk_tokens:
        Default KV growth granularity in tokens for the ``chunked``
        KV-cache model (a ``chunked?chunk_tokens=...`` spec overrides
        it; the ``paged`` model uses ``block_tokens`` instead).
    queue_timeout_s:
        A request waiting longer than this is rejected (timeout SLO).
    max_preemptions:
        A request preempted more than this many times is rejected
        rather than thrashing forever.
    prefill_tokens_per_s / decode_tokens_per_s / step_overhead_us:
        The compute model: prefill is linear in context, one decode
        step costs ``overhead + batch / decode_rate`` so per-GPU token
        throughput saturates at ``decode_tokens_per_s``.
    record_timeline:
        Sample the memory timeline once per decode step.
    """

    max_batch: int = 16
    kv_chunk_tokens: int = 256
    queue_timeout_s: float = 60.0
    max_preemptions: int = 8
    prefill_tokens_per_s: float = 25_000.0
    decode_tokens_per_s: float = DECODE_TOKENS_PER_S
    step_overhead_us: float = 150.0
    record_timeline: bool = False

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.kv_chunk_tokens < 1:
            raise ValueError("kv_chunk_tokens must be >= 1")
        if not (self.queue_timeout_s > 0 and math.isfinite(self.queue_timeout_s)):
            raise ValueError("queue_timeout_s must be positive and finite")
        if self.max_preemptions < 0:
            raise ValueError("max_preemptions must be >= 0")
        if min(self.prefill_tokens_per_s, self.decode_tokens_per_s) <= 0:
            raise ValueError("token rates must be positive")


@dataclass
class ServingResult:
    """Everything one replica measured: per-request lifecycles plus the
    allocator-side statistics the offline engine also reports."""

    allocator_name: str
    scheduler_name: str
    model_name: str
    capacity: int
    requests: List[ServeRequest]
    makespan_s: float
    stats: AllocatorStats
    timeline: List[TimelinePoint] = field(default_factory=list)
    replica_id: int = 0
    kv_cache_name: str = "chunked"
    kv_metrics: Optional[KVCacheMetrics] = None
    preemption_name: str = "recompute"
    gauges: List[GaugePoint] = field(default_factory=list)
    #: Canonical tier hierarchy this replica served with ("" = none).
    memory_tiers: str = ""
    _tallies: "Optional[tuple]" = field(default=None, init=False,
                                        repr=False, compare=False)

    def _request_tallies(self) -> "tuple":
        """(completed, rejected, preemptions, retries, failed), once.

        The request population is final when the simulator builds this
        result, and these counts back several derived metrics
        (throughput, extras, reports) — one pass instead of one scan
        per property access.
        """
        if self._tallies is None:
            done = rejected = preempted = retried = failed = 0
            for request in self.requests:
                done += request.finished
                rejected += request.rejected
                preempted += request.preemptions
                retried += request.retries
                failed += request.reject_reason == "failed"
            self._tallies = (done, rejected, preempted, retried, failed)
        return self._tallies

    @property
    def completed(self) -> int:
        return self._request_tallies()[0]

    @property
    def rejected(self) -> int:
        return self._request_tallies()[1]

    @property
    def preemptions(self) -> int:
        return self._request_tallies()[2]

    @property
    def retries(self) -> int:
        """Crash-forced re-dispatches summed over the population."""
        return self._request_tallies()[3]

    @property
    def failed(self) -> int:
        """Requests rejected permanently by replica faults."""
        return self._request_tallies()[4]

    @property
    def utilization(self) -> float:
        return self.stats.utilization_ratio

    @property
    def peak_reserved_gb(self) -> float:
        return self.stats.peak_reserved_bytes / GB

    # -- the :class:`repro.api.RunResult` shared surface ---------------
    @property
    def peak_active_bytes(self) -> int:
        return self.stats.peak_active_bytes

    @property
    def peak_reserved_bytes(self) -> int:
        return self.stats.peak_reserved_bytes

    @property
    def utilization_ratio(self) -> float:
        return self.stats.utilization_ratio

    @property
    def fragmentation_ratio(self) -> float:
        return self.stats.fragmentation_ratio

    @property
    def throughput(self) -> float:
        """Completed requests per second of makespan."""
        return self.completed / max(self.makespan_s, 1e-9)

    @property
    def oom(self) -> bool:
        """Serving preempts instead of crashing; an OOM surfaces as
        preemptions and rejections, never as a failed run."""
        return False

    def extras(self) -> Dict[str, object]:
        """Serving-specific metrics beyond the shared surface."""
        out: Dict[str, object] = {
            "completed": self.completed,
            "rejected": self.rejected,
            "preemptions": self.preemptions,
            "makespan_s": self.makespan_s,
            "kv_cache": self.kv_cache_name,
            "preemption": self.preemption_name,
        }
        if self.retries:
            out["retries"] = self.retries
        if self.failed:
            out["failed"] = self.failed
        if self.kv_metrics is not None:
            out["kv_internal_frag"] = round(
                self.kv_metrics.internal_frag_ratio, 3)
            if self.kv_metrics.swapped_bytes:
                out["swapped_mb"] = round(
                    self.kv_metrics.swapped_bytes / (1 << 20), 1)
            if self.kv_metrics.migrated_bytes:
                out["migrated_mb"] = round(
                    self.kv_metrics.migrated_bytes / (1 << 20), 1)
            if self.kv_metrics.prefix_lookups:
                out["prefix_hit_rate"] = round(
                    self.kv_metrics.prefix_hit_rate, 3)
                out["shared_mb"] = round(
                    self.kv_metrics.shared_bytes / (1 << 20), 1)
                out["cow_copy_mb"] = round(
                    self.kv_metrics.cow_copy_bytes / (1 << 20), 1)
            if self.kv_metrics.demoted_bytes:
                out["demoted_mb"] = round(sum(
                    self.kv_metrics.demoted_bytes.values()) / (1 << 20), 1)
                out["promoted_mb"] = round(sum(
                    self.kv_metrics.promoted_bytes.values()) / (1 << 20), 1)
                out["demoted_by_tier"] = {
                    tier: round(size / (1 << 20), 1)
                    for tier, size in sorted(
                        self.kv_metrics.demoted_bytes.items())}
        if self.memory_tiers:
            out["memory_tiers"] = self.memory_tiers
        return out

    def report(self, slo: Optional[SloConfig] = None,
               streaming: bool = False) -> ServingReport:
        """Aggregate SLO metrics for this replica's request population.

        ``streaming=True`` aggregates through constant-memory quantile
        sketches (see :mod:`repro.obs.sketch`) instead of sorted
        sample lists.
        """
        migrated = (self.kv_metrics.migrated_bytes
                    if self.kv_metrics is not None else 0)
        return ServingReport.from_requests(
            self.requests, self.makespan_s, slo,
            utilization=self.utilization,
            peak_reserved_gb=self.peak_reserved_gb,
            streaming=streaming,
            migrated_mb=migrated / (1 << 20),
        )


class ServingSimulator:
    """One GPU replica serving an online request stream."""

    def __init__(
        self,
        model: Union[ModelSpec, str],
        allocator: Union[AllocatorLike, AllocatorFactory] = "gmlake",
        capacity: int = A100_80GB,
        scheduler: SchedulerLike = "fcfs",
        config: Optional[ServingConfig] = None,
        replica_id: int = 0,
        kv_cache: KVCacheLike = "chunked",
        preemption: PreemptionLike = "recompute",
        trace: Optional[TraceRecorder] = None,
        gauges: Optional[GaugeSampler] = None,
        faults: FaultsLike = "none",
        retry: RetryLike = "none",
        memory_tiers: MemoryTiersLike = "",
    ):
        self.model = get_model(model) if isinstance(model, str) else model
        self.config = config if config is not None else ServingConfig()
        self.capacity = capacity
        self.replica_id = replica_id
        self.device = GpuDevice(capacity=capacity)
        self.allocator = resolve_allocator(allocator, self.device)
        self.scheduler = resolve_scheduler(scheduler)
        self.session = ReplaySession(self.allocator)
        # Telemetry is strictly passive: recording/sampling never
        # advances the clock or changes a decision, so a traced run is
        # byte-identical to an untraced one.
        self.trace = trace
        self.gauges = gauges
        if trace is not None:
            trace.attach_allocator(self.allocator, self.session,
                                   replica=replica_id)
        self.kv = resolve_kv_cache(
            kv_cache, self.model,
            default_chunk_tokens=self.config.kv_chunk_tokens)
        self.kv.bind(self.session, self.allocator)
        if trace is not None:
            self.kv.attach_trace(trace, replica_id)
        # Tiered slow memory (optional).  ``memory_tiers=""`` builds no
        # hierarchy and leaves every code path byte-identical to the
        # pre-tier simulator (the committed goldens enforce this).
        self.hierarchy = resolve_memory_tiers(memory_tiers)
        if self.hierarchy is not None:
            self.hierarchy.bind(self.session, self.device)
            if trace is not None:
                self.hierarchy.attach_trace(trace, replica_id)
            if hasattr(self.kv, "attach_hierarchy"):
                self.kv.attach_hierarchy(self.hierarchy)
        self.preemption = resolve_preemption(preemption)
        if self.hierarchy is not None:
            if isinstance(self.preemption, SwapPreemption):
                raise ValueError(
                    "memory_tiers generalizes swap preemption's single "
                    "host hop; pass preemption='recompute' (the default) "
                    "with a tier hierarchy, or drop memory_tiers to keep "
                    "legacy swap")
            if isinstance(self.preemption, RecomputePreemption):
                # The hierarchy *is* the offload policy: preempted KV
                # demotes to the shallowest tier with room instead of
                # being dropped and recomputed.
                self.preemption = TieredPreemption(self.hierarchy)
        self.preemption.bind(self)
        self._step_count = 0
        # decode_workspace_bytes is a pure function of (model, batch),
        # evaluated once per decode step — memoize per batch size.
        self._workspace_bytes: Dict[int, int] = {}
        #: Min-heap of (deadline, req_id, request) queue-timeout events,
        #: owned by :meth:`run`; requeue paths push into it directly.
        self._timeouts: List[Tuple[float, int, ServeRequest]] = []
        # Fault injection.  With faults="none" the replica context is
        # None, so the loop body's fault branches never fire and the
        # run stays byte-identical to the pre-fault simulator (the
        # committed hotpath goldens enforce this).
        self.faults = resolve_faults(faults)
        self.retry = resolve_retry(retry)
        context = self.faults.replica_context(replica_id)
        self._crash = context if isinstance(context, CrashSchedule) else None
        self._straggler = (context if isinstance(context, StragglerState)
                           else None)
        #: Min-heap of (ready_s, seq, request) re-entries: retries
        #: landing after backoff and hedge duplicates, drained into
        #: the admission queue alongside arrivals.
        self._injected: List[Tuple[float, int, ServeRequest]] = []
        self._inject_seq = 0
        #: ``id()`` of requests that left this replica (re-dispatched
        #: to another one, or cancelled hedge losers): their stale
        #: timeout-heap entries are skipped and they are dropped from
        #: this replica's result population.
        self._gone: set = set()
        #: Requests injected here that did not arrive with the shard.
        self._adopted: List[ServeRequest] = []
        self._adopted_ids: set = set()
        self._home_ids: set = set()
        #: Orchestrator hook, (request, ready_s, failover) -> None.
        #: When set (fleet co-simulation), crash victims and failover
        #: re-routes go fleet-wide; when None they re-enter *this*
        #: replica's queue after the retry delay.
        self._fault_sink = None
        # Run state owned by start()/tick()/finish().
        self._pending: List[ServeRequest] = []
        self._queue: "Deque[ServeRequest]" = deque()
        self._running: List[ServeRequest] = []
        self._index = 0

    # ------------------------------------------------------------------
    # Time helpers
    # ------------------------------------------------------------------
    def _now(self) -> float:
        """Simulated seconds since the run started."""
        return self.session.elapsed_s

    # ------------------------------------------------------------------
    # Lifecycle transitions
    # ------------------------------------------------------------------
    def _finish(self, request: ServeRequest,
                running: List[ServeRequest]) -> None:
        self.kv.release(request)
        running.remove(request)
        request.state = RequestState.FINISHED
        request.finished_s = self._now()
        if self.trace is not None:
            self.trace.request_event("finish", request, request.finished_s,
                                     tokens=request.tokens_done)

    def _reject(self, request: ServeRequest, reason: str) -> None:
        # The single reject path: the taxonomy is closed here, so every
        # downstream consumer may partition rejections by reason.
        assert reason in REJECT_REASONS, f"unknown reject reason {reason!r}"
        self.kv.release(request)
        self.preemption.forget(request)
        request.state = RequestState.REJECTED
        request.rejected_s = self._now()
        request.reject_reason = reason
        if reason == "failed":
            request.failed_s = request.rejected_s
        if self.trace is not None:
            self.trace.request_event("reject", request, request.rejected_s,
                                     reason=reason)

    def _preempt(self, request: ServeRequest, running: List[ServeRequest],
                 queue: "Deque[ServeRequest]") -> None:
        """Evict a running request: the preemption policy handles its
        KV (free, or offload to host), then requeue (or reject).

        ``requeue`` tells the policy whether the victim will come back
        — a real stack knows the preemption budget before evicting, so
        a swap policy must not pay PCIe to offload a request that is
        about to be rejected anyway.
        """
        requeue = request.preemptions + 1 <= self.config.max_preemptions
        self.preemption.evict(request, requeue=requeue)
        if request in running:
            running.remove(request)
        request.preemptions += 1
        if self.trace is not None:
            self.trace.request_event("preempt", request, self._now(),
                                     requeue=requeue,
                                     preemptions=request.preemptions)
        if not requeue:
            self._reject(request, "preempted-out")
            return
        request.state = RequestState.PREEMPTED
        queue.appendleft(request)
        # While the request was RUNNING its deadline entry may have
        # been lazily dropped from the timeout heap as stale; re-push
        # on every requeue so a preempted request can still time out.
        # A surviving duplicate is harmless: the first expiry pop
        # rejects, later pops see a non-queued state and skip.
        heapq.heappush(
            self._timeouts,
            (request.arrival_s + self.config.queue_timeout_s,
             request.req_id, request))

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _try_admit(self, request: ServeRequest,
                   running: List[ServeRequest]) -> bool:
        """Admit: allocate prompt KV, run prefill, emit the first token."""
        context = request.context_tokens
        if not self.kv.admit(request):
            return False
        if request.admitted_s is None:
            request.admitted_s = self._now()
        if self.trace is not None:
            self.trace.request_event("admit", request, self._now(),
                                     resumed=request.preemptions > 0,
                                     context=context)
        # Make the request decode-ready: prefill over the full context
        # for fresh (and recompute-restored) requests, a PCIe swap-in
        # for requests a swap policy parked in host memory.
        self.session.advance(self.preemption.restore_us(request, context))
        request.state = RequestState.RUNNING
        running.append(request)
        if request.tokens_done == 0:
            request.tokens_done = 1
            request.first_token_s = self._now()
            if self.trace is not None:
                self.trace.request_event("first_token", request,
                                         request.first_token_s)
            if request.tokens_done >= request.output_tokens:
                self._finish(request, running)
        return True

    @staticmethod
    def _queue_discard(queue: "Deque[ServeRequest]",
                       request: ServeRequest) -> None:
        """Drop ``request`` from the queue by identity.

        O(1) for the head (the FCFS and memory-aware common case);
        schedulers that pick mid-queue pay one identity scan.  Raises
        like ``list.remove`` did if the request is not queued — a
        scheduler returning an already-admitted request is a bug that
        must not silently double-admit.
        """
        if queue and queue[0] is request:
            queue.popleft()
            return
        for i, queued in enumerate(queue):
            if queued is request:
                del queue[i]
                return
        raise ValueError(
            f"request {request.req_id} is not in the admission queue"
        )

    def _run_admissions(self, queue: "Deque[ServeRequest]",
                        running: List[ServeRequest]) -> None:
        flushed = False
        while queue and len(running) < self.config.max_batch:
            view = SchedulerView(
                allocator=self.allocator, model=self.model,
                running=len(running), max_batch=self.config.max_batch,
                capacity=self.capacity, kv=self.kv,
            )
            request = self.scheduler.select(queue, view)
            if request is None:
                if flushed or running:
                    # Under load a decline means "wait for a
                    # retirement"; flushing the pool here would destroy
                    # the allocator's converged state on every step.
                    break
                # Idle server, waiting requests, yet the policy sees no
                # headroom: only stale pool reservations can be in the
                # way.  Release cached memory and ask once more (what
                # PyTorch does under pressure) so a conservative policy
                # cannot starve an idle machine.
                self.allocator.empty_cache()
                flushed = True
                continue
            self._queue_discard(queue, request)
            if self._try_admit(request, running):
                continue
            if not running:
                # Nothing left to retire or preempt: even an empty
                # server cannot hold this request's prompt KV.
                self._reject(request, "too-large")
                continue
            # Memory is full; hold the request at the head of the queue
            # until a retirement (or timeout) changes the picture.
            request.state = RequestState.QUEUED
            queue.appendleft(request)
            break

    def _expire_timeouts(self, queue: "Deque[ServeRequest]") -> None:
        """Reject queued requests that waited past the timeout SLO.

        ``self._timeouts`` is a min-heap of ``(deadline, req_id,
        request)`` pushed at arrival and again on every requeue.
        Entries for requests that already left the queue (admitted,
        finished, rejected) are skipped lazily.  The expiry test is the
        same float expression the per-step queue scan used
        (``now - arrival > timeout``), and subtraction's weak
        monotonicity guarantees that if the earliest deadline has not
        expired, no later one has — so popping in deadline order
        rejects exactly the set the full scan would.
        """
        now = self._now()
        timeout_s = self.config.queue_timeout_s
        timeouts = self._timeouts
        while timeouts:
            _, _, request = timeouts[0]
            if (request.state not in _QUEUE_STATES
                    or id(request) in self._gone):
                heapq.heappop(timeouts)  # left the queue (or replica)
                continue
            if now - request.arrival_s > timeout_s:
                heapq.heappop(timeouts)
                self._queue_discard(queue, request)
                self._reject(request, "timeout")
                continue
            break

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------
    def _grow_kv(self, request: ServeRequest, running: List[ServeRequest],
                 queue: "Deque[ServeRequest]") -> bool:
        """Grow the request's KV capacity; preempt on OOM.

        Returns ``False`` when ``request`` itself had to be preempted
        (no other victim could free enough memory).
        """
        while True:
            if self.kv.grow(request):
                return True
            victim = self.preemption.select_victim(running, request)
            if victim is None:
                self._preempt(request, running, queue)
                return False
            # Evict the policy's victim (default: the youngest other
            # request, vLLM-style) and retry the growth.
            self._preempt(victim, running, queue)

    def _decode_step(self, queue: "Deque[ServeRequest]",
                     running: List[ServeRequest]) -> None:
        batch = len(running)
        step_us = (self.config.step_overhead_us
                   + batch * 1e6 / self.config.decode_tokens_per_s)
        if self._straggler is not None:
            step_us *= self._straggler.step_factor()
        self.session.advance(step_us)
        # Transient per-step activation workspace, like the offline
        # serving generator's ``ws`` tensors: small, short-lived churn
        # alongside the big KV blocks.  Best-effort — under pressure
        # the step runs from reserved slack rather than preempting.
        self._step_count += 1
        workspace = f"ws{self._step_count}"
        ws_bytes = self._workspace_bytes.get(batch)
        if ws_bytes is None:
            ws_bytes = self._workspace_bytes[batch] = decode_workspace_bytes(
                self.model, batch)
        if self.session.try_alloc(workspace, ws_bytes):
            self.session.free(workspace)
        for request in list(running):
            if request.state is not RequestState.RUNNING:
                continue  # preempted by an earlier request's growth
            request.tokens_done += 1
            if request.tokens_done >= request.output_tokens:
                self._finish(request, running)
                continue
            if request.context_tokens + 1 > request.kv_capacity_tokens:
                self._grow_kv(request, running, queue)
        self.kv.note_decode_step(running)
        if self.config.record_timeline:
            self.session.sample()

    # ------------------------------------------------------------------
    # Fault hooks (no-ops on the faults="none" default path)
    # ------------------------------------------------------------------
    def inject(self, request: ServeRequest, ready_s: float) -> None:
        """Queue ``request`` to (re-)enter this replica at ``ready_s``.

        Used by the local retry path (a crash victim coming back after
        backoff) and by the fleet orchestrator (failover re-routes and
        hedge duplicates landing from another replica).  The request
        joins the admission queue when the replica's clock reaches
        ``ready_s``; its *original* arrival keeps driving the timeout
        SLO — deadlines are end-to-end, retries do not reset them.
        """
        rid = id(request)
        self._gone.discard(rid)
        if rid not in self._home_ids and rid not in self._adopted_ids:
            self._adopted_ids.add(rid)
            self._adopted.append(request)
        self._inject_seq += 1
        heapq.heappush(self._injected, (ready_s, self._inject_seq, request))

    def cancel(self, request: ServeRequest) -> None:
        """Withdraw ``request`` from this replica (a hedge copy lost
        the race): free any KV it holds through the KV model, forget
        any preemption-policy state, and drop it from this replica's
        result population with no reject accounting — exactly one copy
        of a hedged request survives fleet-wide.
        """
        if request.state is RequestState.RUNNING:
            self.kv.release(request)
            if request in self._running:
                self._running.remove(request)
        elif request.state in _QUEUE_STATES:
            self.kv.release(request)
            try:
                self._queue_discard(self._queue, request)
            except ValueError:
                pass  # still in the injection heap; the drain skips it
        self.preemption.forget(request)
        # Terminal-but-unaccounted: heaps lazily skip REJECTED entries,
        # and _gone drops the object from finish()'s population.
        request.state = RequestState.REJECTED
        self._gone.add(id(request))

    def _crash_victim(self, request: ServeRequest,
                      running: List[ServeRequest]) -> None:
        """The replica died under a running request: its device KV is
        gone (freed through the KV model, so the no-leak invariants
        keep holding), its generated text survives, and the retry
        policy decides whether it re-enters the fleet — recompute
        prefill over the full context rebuilds the KV on re-admission,
        exactly like recompute preemption."""
        self.kv.release(request)
        self.preemption.forget(request)
        running.remove(request)
        now = self._now()
        delay = self.retry.next_delay_s(request)
        if delay is None:
            self._reject(request, "failed")
            return
        request.retries += 1
        request.state = RequestState.QUEUED
        if self.trace is not None:
            self.trace.request_event("retry", request, now,
                                     attempt=request.retries,
                                     delay_s=delay)
        if self._fault_sink is not None:
            self._gone.add(id(request))
            self._fault_sink(request, now + delay, False)
        else:
            self.inject(request, now + delay)

    def _crash_poll(self, queue: "Deque[ServeRequest]",
                    running: List[ServeRequest]) -> None:
        """Cross crash/recover window boundaries the clock has passed.

        Idle jumps can leap whole windows, so this loops: recover from
        an expired window, enter the next one if it is already due.
        At crash entry every running request is evicted to the retry
        policy; under fleet orchestration the queued requests fail
        over too (re-routed by the front-end, no retry budget spent —
        they lost no work).  While down, the replica admits nothing
        and decodes nothing; queued requests keep aging toward their
        timeout deadlines.
        """
        crash = self._crash
        now = self._now()
        while True:
            if crash.down:
                if now < crash.end_s:
                    return
                recover_s = crash.end_s
                crash.recover()
                if self.trace is not None:
                    self.trace.record("recover", max(now, recover_s),
                                      replica=self.replica_id)
                if self.gauges is not None:
                    self.gauges.note_recover(max(now, recover_s),
                                             self.replica_id)
            if now < crash.start_s:
                return
            crash.crash()
            if self.trace is not None:
                self.trace.record("crash", max(now, crash.start_s),
                                  replica=self.replica_id,
                                  mttr_s=crash.end_s - crash.start_s)
            if self.gauges is not None:
                self.gauges.note_crash(max(now, crash.start_s),
                                       self.replica_id)
            for request in list(running):
                self._crash_victim(request, running)
            if self._fault_sink is not None:
                while queue:
                    request = queue.popleft()
                    self._gone.add(id(request))
                    self._fault_sink(request, now, True)

    @property
    def busy(self) -> bool:
        """True while :meth:`tick` still has work to do."""
        return bool(self._index < len(self._pending) or self._queue
                    or self._running or self._injected)

    @property
    def outstanding(self) -> int:
        """Requests currently queued or running here — the load signal
        the fleet front-end uses for failover and hedge targeting."""
        return len(self._queue) + len(self._running)

    # ------------------------------------------------------------------
    def start(self, requests: Iterable[ServeRequest]) -> None:
        """Begin a run: sort arrivals, place the weights, reset state.

        ``start`` / :meth:`tick` / :meth:`finish` decompose
        :meth:`run` so a fleet orchestrator can co-simulate replicas
        (stepping whichever holds the earliest clock) — ``run`` is
        exactly ``start``, ``tick`` until done, ``finish``.
        """
        self._pending = sorted(requests, key=lambda r: (r.arrival_s, r.req_id))
        for request in self._pending:
            request.replica = self.replica_id
        self._home_ids = {id(r) for r in self._pending}
        self.session.alloc("weights", self.model.weight_bytes)
        self._queue = deque()
        self._running = []
        self._timeouts.clear()
        self._index = 0

    def tick(self) -> bool:
        """One serving-loop iteration; ``False`` once drained.

        Every iteration either admits, decodes one step, rejects, or
        jumps the clock to the next arrival/timeout/re-entry/recovery
        event — so the loop terminates for any finite stream.

        Event plumbing is heap/deque-driven so each step is O(log n)
        bookkeeping: arrivals come off a presorted list by index, the
        admission queue is a deque (O(1) head pops and preemption
        re-queues), and queue timeouts live in a ``heapq`` of deadlines
        instead of being re-scanned against the whole queue per step —
        the earliest pending event (next arrival or earliest deadline)
        is the heap top, not a min() over rebuilt lists.
        """
        pending, queue, running = self._pending, self._queue, self._running
        if not (self._index < len(pending) or queue or running
                or self._injected):
            return False
        timeouts = self._timeouts
        timeout_s = self.config.queue_timeout_s
        now = self._now()
        if self._crash is not None:
            self._crash_poll(queue, running)
        while (self._index < len(pending)
               and pending[self._index].arrival_s <= now + _EPS):
            request = pending[self._index]
            queue.append(request)
            heapq.heappush(
                timeouts,
                (request.arrival_s + timeout_s, request.req_id, request))
            if self.trace is not None:
                self.trace.request_event("arrival", request,
                                         request.arrival_s,
                                         prompt=request.prompt_tokens,
                                         output=request.output_tokens)
            self._index += 1
        while self._injected and self._injected[0][0] <= now + _EPS:
            _, _, request = heapq.heappop(self._injected)
            if id(request) in self._gone:  # cancelled before landing
                continue
            request.replica = self.replica_id
            request.state = RequestState.QUEUED
            queue.append(request)
            heapq.heappush(
                timeouts,
                (request.arrival_s + timeout_s, request.req_id, request))
        self._expire_timeouts(queue)
        down = self._crash is not None and self._crash.down
        if not down:
            self._run_admissions(queue, running)
        if self.gauges is not None:
            self.gauges.poll(self, queue, running)
        if running:
            self._decode_step(queue, running)
            return True
        # Idle (or admission-blocked with an empty batch): jump to
        # whatever happens next — an arrival, a queue timeout, a
        # retry/hedge re-entry, or the crash window's end.  Stale heap
        # entries (requests that already left the queue) are discarded
        # first so they can never shorten the jump.
        while timeouts and (timeouts[0][2].state not in _QUEUE_STATES
                            or id(timeouts[0][2]) in self._gone):
            heapq.heappop(timeouts)
        horizons = []
        if self._index < len(pending):
            horizons.append(pending[self._index].arrival_s)
        if queue and timeouts:
            horizons.append(timeouts[0][0])
        if self._injected:
            horizons.append(self._injected[0][0])
        if down:
            horizons.append(self._crash.end_s)
        if not horizons:
            return False
        target = max(min(horizons), now)
        # The extra microsecond pushes strictly past the boundary so
        # the event fires on the next pass (no busy-spinning).
        self.session.advance((target - now) * 1e6 + 1.0)
        return True

    def finish(self) -> ServingResult:
        """Close the run and collect this replica's result.

        The population is every request that *ended* here: the shard's
        arrivals minus the ones faults moved elsewhere (re-dispatched
        crash victims, failover re-routes, cancelled hedge losers),
        plus adopted re-entries from other replicas.  On the
        fault-free path that is exactly the shard, untouched.
        """
        requests = self._pending
        if self._gone or self._adopted:
            requests = [r for r in requests if id(r) not in self._gone]
            requests.extend(r for r in self._adopted
                            if id(r) not in self._gone)
            requests.sort(key=lambda r: (r.arrival_s, r.req_id))
        return ServingResult(
            allocator_name=self.allocator.name,
            scheduler_name=self.scheduler.name,
            model_name=self.model.name,
            capacity=self.capacity,
            requests=requests,
            makespan_s=self._now(),
            stats=self.allocator.stats(),
            timeline=list(self.session.timeline),
            replica_id=self.replica_id,
            kv_cache_name=self.kv.name,
            kv_metrics=self.kv.metrics,
            preemption_name=self.preemption.name,
            gauges=(self.gauges.series(self.replica_id)
                    if self.gauges is not None else []),
            memory_tiers=(",".join(self.hierarchy.spec_strings())
                          if self.hierarchy is not None else ""),
        )

    def run(self, requests: Iterable[ServeRequest]) -> ServingResult:
        """Serve ``requests`` to completion (or rejection).

        Exactly :meth:`start`, :meth:`tick` until drained,
        :meth:`finish` — the same operation sequence the historical
        single-method loop performed, so the committed goldens pin
        this path byte-for-byte.
        """
        self.start(requests)
        while self.tick():
            pass
        return self.finish()


def run_serving(
    requests: Iterable[ServeRequest],
    model: Union[ModelSpec, str],
    allocator: Union[AllocatorLike, AllocatorFactory] = "gmlake",
    capacity: int = A100_80GB,
    scheduler: SchedulerLike = "fcfs",
    config: Optional[ServingConfig] = None,
    kv_cache: KVCacheLike = "chunked",
    preemption: PreemptionLike = "recompute",
    trace: Optional[TraceRecorder] = None,
    gauges: Optional[GaugeSampler] = None,
    faults: FaultsLike = "none",
    retry: RetryLike = "none",
    memory_tiers: MemoryTiersLike = "",
) -> ServingResult:
    """Convenience wrapper: build one replica and serve ``requests``.

    ``trace`` (a :class:`~repro.obs.trace.TraceRecorder`) and
    ``gauges`` (a :class:`~repro.obs.gauges.GaugeSampler`) opt into
    lifecycle tracing and time-series sampling; both are passive.
    ``faults`` / ``retry`` (see :mod:`repro.serve.faults`) opt into
    fault injection; crash victims retry *locally* on a single replica
    (there is nowhere else to go) and hedging is inert without a fleet.
    ``memory_tiers`` (see :mod:`repro.serve.memtier`) names an optional
    slow-memory hierarchy below HBM, e.g. ``"dram?gb=64,cxl?gb=256"``
    — preempted KV and pressure-evicted prefix tails demote into it
    instead of being dropped.
    """
    simulator = ServingSimulator(model, allocator=allocator,
                                 capacity=capacity, scheduler=scheduler,
                                 config=config, kv_cache=kv_cache,
                                 preemption=preemption, trace=trace,
                                 gauges=gauges, faults=faults, retry=retry,
                                 memory_tiers=memory_tiers)
    return simulator.run(requests)
