"""KV-cache memory models: pool-level vs. cache-level defragmentation.

The paper's thesis is that *pool-level* defragmentation (GMLake's VMM
stitching) recovers the memory a caching allocator strands.  The
strongest modern counterpoint is *cache-level* defragmentation: vLLM's
paged attention carves the KV cache into fixed-size blocks indexed by a
per-request block table, so the allocator only ever sees one request
size and pool fragmentation cannot occur.  This module makes both
strategies pluggable in the online serving simulator so the two can be
compared head to head on identical arrival streams:

``chunked``
    One contiguous KV tensor per request, grown by whole chunks.  A
    growth re-alloc allocates the new tensor *before* freeing the old
    (a real KV copy needs both live), transiently doubling the
    request's footprint — the worst case for a fragmented pool, and the
    scenario where the allocator choice (caching vs. GMLake) decides
    goodput.

``paged``
    Fixed-size blocks of ``block_tokens`` tokens, tracked in a
    per-request block table and freed exactly at request completion.
    Every allocation has the same size, so any allocator serves it
    from an exact-fit free list and *pool* fragmentation vanishes —
    fragmentation moves into the cache layer instead, as internal
    waste in each request's last partially-filled block.

A model is named by the same ``"name?key=value"`` mini-DSL as
allocators (:class:`KVCacheSpec`, e.g. ``"paged?block_tokens=16"``),
with parameters validated against a registry, and reports
:class:`KVCacheMetrics` (block utilization, internal fragmentation,
copy costs) next to the allocator's pool metrics.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, Dict, Iterable, List, Optional, Tuple, Union

from repro.allocators.base import BaseAllocator
from repro.allocators.stats import AllocatorStats
from repro.api.registry import (
    ComponentInfo,
    Param,
    SpecError,
    component_names,
    get_component_info,
    register_component,
    register_kind,
)
from repro.api.spec import ComponentSpec
from repro.serve.request import ServeRequest
from repro.units import align_up
from repro.workloads.inference import kv_bytes
from repro.workloads.models import ModelSpec

#: The live ``kv-cache`` catalogue dict, filled by the registrations
#: below (exposed publicly as :data:`KV_CACHE_MODELS`).
_KV_CACHE_REGISTRY = register_kind("kv-cache", label="KV-cache model")


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
@dataclass
class KVCacheMetrics:
    """What the KV-cache layer itself did during one serving run.

    The allocator's :class:`~repro.allocators.stats.AllocatorStats`
    measure *pool*-level fragmentation; these measure *cache*-level
    waste and data movement, so the comparison tables can show where
    each strategy pays.

    Attributes
    ----------
    kv_cache:
        Model name (``chunked`` / ``paged``).
    block_tokens:
        Granularity in tokens (chunk size for chunked, block size for
        paged).
    kv_allocs / kv_frees:
        KV tensor allocations and frees issued to the allocator.
    peak_kv_bytes:
        Peak bytes held in live KV tensors.
    peak_blocks:
        Peak live fixed-size blocks (paged; 0 for chunked).
    grow_copy_bytes:
        Bytes memcpy'd by growth re-allocs (chunked only — paged growth
        never copies; this is the cache-level cost chunked pays).
    preempt_copy_bytes:
        KV bytes discarded at preemption and recomputed on re-admission
        (the copy-on-preempt / recompute cost, both models).
    swapped_bytes:
        KV bytes moved over the host interconnect by swap-based
        preemption (device→host at eviction plus host→device at
        re-admission; 0 under the default recompute policy).
    migrated_bytes:
        KV bytes moved between replicas by disaggregated
        prefill/decode serving (charged on both the exporting and the
        importing replica — see :mod:`repro.serve.disagg`; 0 for
        colocated runs).
    util_sum / util_samples:
        Accumulated per-decode-step KV utilization samples
        (used tokens / allocated token capacity over the running batch).
    shared_bytes:
        KV bytes served from already-resident shared prefix blocks
        instead of fresh allocations (prefix-sharing models only; the
        reuse savings ledger).
    cow_copy_bytes:
        Bytes memcpy'd by copy-on-write at the shared/private boundary
        — when a request's private context begins inside a partially
        shared block, those prefix-tail tokens are copied into the
        request's first private block.
    prefix_lookups / prefix_hits:
        Admissions that declared a sharable prefix, and the subset
        that reused at least one resident shared block (see
        :attr:`prefix_hit_rate`).
    demoted_bytes / promoted_bytes:
        KV bytes moved down to / back up from each slow-memory tier
        of a :class:`~repro.serve.memtier.TierHierarchy`, keyed by
        tier label (empty for runs without ``memory_tiers``; swap
        preemption keeps its legacy ``swapped_bytes`` ledger
        instead).
    """

    kv_cache: str
    block_tokens: int = 0
    kv_allocs: int = 0
    kv_frees: int = 0
    peak_kv_bytes: int = 0
    peak_blocks: int = 0
    grow_copy_bytes: int = 0
    preempt_copy_bytes: int = 0
    swapped_bytes: int = 0
    migrated_bytes: int = 0
    util_sum: float = 0.0
    util_samples: int = 0
    shared_bytes: int = 0
    cow_copy_bytes: int = 0
    prefix_lookups: int = 0
    prefix_hits: int = 0
    demoted_bytes: Dict[str, int] = field(default_factory=dict)
    promoted_bytes: Dict[str, int] = field(default_factory=dict)

    def merge_from(self, other: "KVCacheMetrics") -> None:
        """Accumulate ``other``'s counters into this instance.

        The fleet-level result mergers (:mod:`repro.serve.cluster`,
        :mod:`repro.serve.disagg`) use this so a field added to the
        metrics is merged by construction instead of silently dropped:
        every numeric field sums, every per-tier dict merges key-wise.
        The identity fields (``kv_cache``, ``block_tokens``) stay the
        merger's own.
        """
        for spec in fields(self):
            if spec.name in ("kv_cache", "block_tokens"):
                continue
            mine = getattr(self, spec.name)
            theirs = getattr(other, spec.name)
            if isinstance(mine, dict):
                for key, value in theirs.items():
                    mine[key] = mine.get(key, 0) + value
            else:
                setattr(self, spec.name, mine + theirs)

    @property
    def block_utilization(self) -> float:
        """Mean fraction of allocated KV token capacity actually used."""
        if self.util_samples == 0:
            return 1.0
        return self.util_sum / self.util_samples

    @property
    def internal_frag_ratio(self) -> float:
        """1 − block utilization: the cache-level fragmentation metric."""
        return 1.0 - self.block_utilization

    @property
    def prefix_hit_rate(self) -> float:
        """Fraction of prefix-declaring admissions that reused at
        least one resident shared block (0.0 when nothing declared a
        prefix — plain paged/chunked runs report 0)."""
        if self.prefix_lookups == 0:
            return 0.0
        return self.prefix_hits / self.prefix_lookups

    def as_row(self) -> Dict[str, Any]:
        """Table columns for ``repro.analysis`` rendering."""
        return {
            "kv": self.kv_cache,
            "kv util": round(self.block_utilization, 3),
            "kv frag": round(self.internal_frag_ratio, 3),
            "kv allocs": self.kv_allocs,
            "copy (MB)": round(
                (self.grow_copy_bytes + self.preempt_copy_bytes) / (1 << 20), 1),
        }


# ----------------------------------------------------------------------
# The model interface
# ----------------------------------------------------------------------
class KVCacheModel(ABC):
    """How one serving replica lays its KV cache out in pool memory.

    The simulator owns the event loop and the preemption policy; the
    model owns every KV byte: it allocates through the replica's
    :class:`~repro.sim.engine.ReplaySession` (so driver latency is
    charged to the simulated clock), keeps ``request.kv_capacity_tokens``
    current, and accounts its own :class:`KVCacheMetrics`.  ``admit`` /
    ``grow`` return ``False`` on allocator OOM — recovery (victim
    preemption, queueing) stays the simulator's job.
    """

    name: str = "kv"

    def __init__(self, model: ModelSpec, granularity_tokens: int):
        if granularity_tokens < 1:
            raise SpecError(
                f"{self.name} KV cache needs a positive token granularity, "
                f"got {granularity_tokens}"
            )
        self.model = model
        self.metrics = KVCacheMetrics(kv_cache=self.name,
                                      block_tokens=granularity_tokens)
        self._session = None  # ReplaySession, bound by the simulator
        self._allocator: Optional[BaseAllocator] = None
        self._live_kv_bytes = 0
        self._trace = None  # obs.TraceRecorder, optional
        self._replica = 0

    def attach_trace(self, recorder, replica: int = 0) -> None:
        """Attach an observability recorder (optional; the simulator
        calls this when it was itself given a trace) so cache-level
        events — copy-on-write instants, shared-block counters — land
        in the same lifecycle stream as the request events."""
        self._trace = recorder
        self._replica = replica

    def bind(self, session, allocator: BaseAllocator) -> None:
        """Attach the replica's session + allocator (once, at startup)."""
        if self._session is not None:
            raise ValueError(
                f"KV-cache model {self.name!r} is already bound to a "
                "replica; a model instance carries per-run metrics and "
                "block tables, so build a fresh one (or pass a spec "
                "string) per simulator"
            )
        self._session = session
        self._allocator = allocator

    # -- allocator access with shared accounting -----------------------
    def _try_alloc(self, name: str, size: int) -> bool:
        """Allocate a KV tensor; retry once after ``empty_cache``."""
        ok = self._session.try_alloc(name, size)
        if not ok:
            self._allocator.empty_cache()
            ok = self._session.try_alloc(name, size)
        if ok:
            self.metrics.kv_allocs += 1
            self._live_kv_bytes += size
            self.metrics.peak_kv_bytes = max(
                self.metrics.peak_kv_bytes, self._live_kv_bytes)
        return ok

    def _free(self, name: str, size: int) -> None:
        self._session.free(name)
        self.metrics.kv_frees += 1
        self._live_kv_bytes -= size

    # -- lifecycle (called by the simulator) ---------------------------
    @abstractmethod
    def admit(self, request: ServeRequest) -> bool:
        """Provision KV capacity for ``context + 1`` tokens at admission."""

    @abstractmethod
    def grow(self, request: ServeRequest) -> bool:
        """Extend a running request's KV capacity past its context."""

    @abstractmethod
    def release(self, request: ServeRequest, preempted: bool = False) -> None:
        """Free every KV byte of ``request`` (finish, reject or preempt)."""

    # -- admission feedback (called by schedulers) ---------------------
    @abstractmethod
    def projected_bytes(self, request: ServeRequest) -> int:
        """KV bytes the request will occupy at its full context."""

    @abstractmethod
    def headroom_bytes(self, stats: AllocatorStats, capacity: int,
                       pool_reuse: float = 0.5) -> int:
        """Bytes of KV the allocator can plausibly hand out right now."""

    # -- preemption-policy feedback ------------------------------------
    @abstractmethod
    def held_bytes(self, request: ServeRequest) -> int:
        """KV bytes ``request`` currently holds on the device (0 if
        none) — what a swap-based preemption policy must move over
        PCIe to evict it."""

    # -- invariants / metrics ------------------------------------------
    @property
    @abstractmethod
    def live_requests(self) -> int:
        """Requests currently holding KV memory (0 after a clean run)."""

    @property
    def live_kv_bytes(self) -> int:
        """Bytes currently held in live KV tensors."""
        return self._live_kv_bytes

    def utilization_snapshot(
            self, running: Iterable[ServeRequest]) -> Optional[float]:
        """Used/allocated KV token capacity over ``running`` right now.

        ``None`` when no request holds capacity (an empty batch has no
        meaningful utilization) — callers pick their own sentinel.
        """
        capacity = used = 0
        for request in running:
            capacity += request.kv_capacity_tokens
            used += min(request.context_tokens, request.kv_capacity_tokens)
        if capacity == 0:
            return None
        return used / capacity

    def note_decode_step(self, running: Iterable[ServeRequest]) -> None:
        """Sample cache-level utilization over the running batch."""
        utilization = self.utilization_snapshot(running)
        if utilization is not None:
            self.metrics.util_sum += utilization
            self.metrics.util_samples += 1

    def _note_preempt(self, request: ServeRequest) -> None:
        self.metrics.preempt_copy_bytes += kv_bytes(
            self.model, min(request.context_tokens, request.kv_capacity_tokens))


class ChunkedKVCache(KVCacheModel):
    """Contiguous per-request KV tensors, grown by whole chunks.

    This is the layout a plain PyTorch serving stack produces: each
    growth allocates a bigger tensor *before* freeing the old one (the
    copy needs both live), so KV sizes vary continuously and the memory
    pool bears the fragmentation — the workload the paper's pool-level
    stitching is built for.
    """

    name = "chunked"

    def __init__(self, model: ModelSpec, chunk_tokens: int = 256):
        super().__init__(model, chunk_tokens)
        self.chunk_tokens = chunk_tokens
        self._live: Dict[int, Tuple[str, int]] = {}  # req_id -> (name, bytes)

    def _realloc(self, request: ServeRequest, capacity_tokens: int) -> bool:
        """Allocate the new KV tensor, then retire the old (copy done)."""
        request.kv_generation += 1
        name = f"kv{request.req_id}.{request.kv_generation}"
        size = kv_bytes(self.model, capacity_tokens)
        if not self._try_alloc(name, size):
            request.kv_generation -= 1
            return False
        old = self._live.get(request.req_id)
        if old is not None:
            self.metrics.grow_copy_bytes += kv_bytes(
                self.model,
                min(request.context_tokens, request.kv_capacity_tokens))
            self._free(*old)
        self._live[request.req_id] = (name, size)
        request.kv_name = name
        request.kv_capacity_tokens = capacity_tokens
        return True

    def admit(self, request: ServeRequest) -> bool:
        tokens = align_up(max(request.context_tokens + 1, 1),
                          self.chunk_tokens)
        return self._realloc(request, tokens)

    def grow(self, request: ServeRequest) -> bool:
        return self._realloc(
            request, request.kv_capacity_tokens + self.chunk_tokens)

    def release(self, request: ServeRequest, preempted: bool = False) -> None:
        held = self._live.pop(request.req_id, None)
        if held is None:
            return
        if preempted:
            self._note_preempt(request)
        self._free(*held)
        request.kv_name = None
        request.kv_capacity_tokens = 0

    def projected_bytes(self, request: ServeRequest) -> int:
        tokens = align_up(max(request.total_tokens, 1), self.chunk_tokens)
        return kv_bytes(self.model, tokens)

    def held_bytes(self, request: ServeRequest) -> int:
        held = self._live.get(request.req_id)
        return held[1] if held is not None else 0

    def headroom_bytes(self, stats: AllocatorStats, capacity: int,
                       pool_reuse: float = 0.5) -> int:
        """Unreserved memory in full; idle pool memory at ``pool_reuse``.

        Whether a shredded pool can serve a *large* contiguous KV block
        depends on the allocator — a splitting allocator may have
        fragmented it beyond use, a stitching one can fuse it back.
        This is the feedback path that makes admission
        allocator-dependent under chunked KV.
        """
        unreserved = capacity - stats.reserved_bytes
        reusable = stats.reserved_bytes - stats.active_bytes
        return int(unreserved + pool_reuse * reusable)

    @property
    def live_requests(self) -> int:
        return len(self._live)


class PagedKVCache(KVCacheModel):
    """vLLM-style paged KV: fixed-size blocks + per-request block tables.

    Every allocation is exactly ``block_tokens`` tokens of KV, so the
    pool only ever sees one size and any allocator serves it from an
    exact-fit free list — cache-level defragmentation makes the
    allocator choice irrelevant.  The price moves into the cache layer:
    each request wastes the tail of its last block (internal
    fragmentation), and attention must gather through a block table.

    Every block carries a first-class **reference count**
    (:meth:`ref_count`): a block table entry is one reference, and a
    block returns to the pool exactly when its count reaches zero.
    Under plain paged serving every block has a single referent, so
    this degenerates to free-at-release (byte-identical to the
    pre-ref-count behaviour); the prefix-sharing subclass
    (:class:`repro.serve.prefix.SharedPagedKVCache`) holds extra
    references for blocks shared across requests.
    """

    name = "paged"

    def __init__(self, model: ModelSpec, block_tokens: int = 16):
        super().__init__(model, block_tokens)
        self.block_tokens = block_tokens
        self.block_bytes = kv_bytes(model, block_tokens)
        self._tables: Dict[int, List[str]] = {}  # req_id -> block names
        self._ref: Dict[str, int] = {}  # block name -> reference count
        self._live_blocks = 0
        self._next_block = 0

    def _blocks_for(self, tokens: int) -> int:
        return -(-max(tokens, 1) // self.block_tokens)  # ceil div

    # -- first-class block reference counts ----------------------------
    def ref_count(self, block: str) -> int:
        """Live references to ``block`` (0 once it returned to the pool)."""
        return self._ref.get(block, 0)

    def _add_block_ref(self, block: str) -> None:
        self._ref[block] = self._ref.get(block, 0) + 1

    def _drop_block_ref(self, block: str) -> None:
        """Drop one reference; the block frees only at ref 0."""
        refs = self._ref[block] - 1
        if refs > 0:
            self._ref[block] = refs
            return
        del self._ref[block]
        self._free(block, self.block_bytes)
        self._live_blocks -= 1

    def _ensure(self, request: ServeRequest, tokens: int) -> bool:
        """Grow the block table to cover ``tokens``; roll back on OOM."""
        table = self._tables.setdefault(request.req_id, [])
        need = self._blocks_for(tokens)
        added: List[str] = []
        while len(table) < need:
            name = f"kvb{request.req_id}.{self._next_block}"
            self._next_block += 1
            if not self._try_alloc(name, self.block_bytes):
                for block in reversed(added):
                    table.remove(block)
                    self._drop_block_ref(block)
                if not table:
                    del self._tables[request.req_id]
                request.kv_capacity_tokens = len(table) * self.block_tokens
                return False
            table.append(name)
            added.append(name)
            self._add_block_ref(name)
            self._live_blocks += 1
        self.metrics.peak_blocks = max(self.metrics.peak_blocks,
                                       self._live_blocks)
        request.kv_capacity_tokens = len(table) * self.block_tokens
        return True

    def admit(self, request: ServeRequest) -> bool:
        return self._ensure(request, request.context_tokens + 1)

    def grow(self, request: ServeRequest) -> bool:
        return self._ensure(request, request.context_tokens + 1)

    def release(self, request: ServeRequest, preempted: bool = False) -> None:
        table = self._tables.pop(request.req_id, None)
        if table is None:
            return
        if preempted:
            self._note_preempt(request)
        self._forget(request)
        for block in table:
            self._drop_block_ref(block)
        request.kv_capacity_tokens = 0

    def _forget(self, request: ServeRequest) -> None:
        """Hook for subclasses to drop per-request sharing state
        (called by :meth:`release` after preemption accounting, before
        the block references are dropped)."""

    def projected_bytes(self, request: ServeRequest) -> int:
        return self._blocks_for(request.total_tokens) * self.block_bytes

    def held_bytes(self, request: ServeRequest) -> int:
        table = self._tables.get(request.req_id)
        return len(table) * self.block_bytes if table else 0

    def free_blocks(self, stats: AllocatorStats, capacity: int) -> int:
        """Whole blocks the pool can still hand out right now.

        Because every block is the same size, reserved-but-inactive
        pool memory is *fully* reusable (exact-fit hits, no stitching
        or splitting needed) — the defining contrast with
        :meth:`ChunkedKVCache.headroom_bytes`'s discounted pool reuse.
        """
        unreserved = capacity - stats.reserved_bytes
        reusable = stats.reserved_bytes - stats.active_bytes
        return max(0, int(unreserved + reusable) // self.block_bytes)

    def headroom_bytes(self, stats: AllocatorStats, capacity: int,
                       pool_reuse: float = 0.5) -> int:
        """Free-block count times block size (``pool_reuse`` ignored —
        exact-size blocks always reuse idle pool memory in full)."""
        del pool_reuse
        return self.free_blocks(stats, capacity) * self.block_bytes

    @property
    def live_requests(self) -> int:
        return len(self._tables)

    @property
    def live_blocks(self) -> int:
        """Blocks currently allocated across all block tables."""
        return self._live_blocks


# ----------------------------------------------------------------------
# Registry + spec mini-DSL
# ----------------------------------------------------------------------
def _check_token_granularity(params: Dict[str, Any]) -> None:
    """Token-granularity params must be >= 1 at spec-parse time."""
    for name, value in params.items():
        if isinstance(value, int) and value < 1:
            raise SpecError(
                f"KV cache parameter {name!r} must be >= 1, got {value}")


#: Backwards-compatible name — KV-cache registry entries are plain
#: :class:`~repro.api.registry.ComponentInfo` records.
KVCacheInfo = ComponentInfo

register_component(
    "kv-cache", "chunked",
    params=(
        Param("chunk_tokens", int, 256,
              doc="KV growth granularity in tokens "
                  "(default: ServingConfig.kv_chunk_tokens)"),
    ),
    check=_check_token_granularity,
    description="contiguous per-request KV tensors grown by chunks "
                "(pool-level defragmentation territory)",
)(ChunkedKVCache)

register_component(
    "kv-cache", "paged",
    params=(
        Param("block_tokens", int, 16,
              doc="tokens per fixed-size KV block (vLLM-style)"),
    ),
    check=_check_token_granularity,
    description="fixed-size blocks + per-request block tables "
                "(cache-level defragmentation)",
)(PagedKVCache)


#: The KV-cache model catalogue — the *live* ``kv-cache`` kind dict of
#: the component registry (the serving-side sibling of the allocator
#: kind's ``_REGISTRY``), so pre-registry extension code that inserted
#: entries directly keeps working and later registrations show up.
KV_CACHE_MODELS: Dict[str, ComponentInfo] = _KV_CACHE_REGISTRY


def kv_cache_names() -> List[str]:
    """Registered KV-cache model names."""
    return component_names("kv-cache")


def get_kv_cache_info(name: str) -> ComponentInfo:
    """Look up KV-cache registry metadata; raises :class:`SpecError`."""
    return get_component_info("kv-cache", name)


@dataclass(frozen=True)
class KVCacheSpec(ComponentSpec):
    """A validated (KV-cache model, parameters) pair.

    Speaks the same mini-DSL as :class:`repro.api.AllocatorSpec`::

        chunked
        chunked?chunk_tokens=128
        paged?block_tokens=16

    ``params`` holds only explicitly-set values, validated against the
    registry, so specs stay minimal and JSON-stable.
    """

    kind: ClassVar[str] = "kv-cache"

    def build(self, model: ModelSpec,
              default_chunk_tokens: int = 256) -> KVCacheModel:
        """Instantiate the configured model for ``model``.

        ``default_chunk_tokens`` backs the chunked model's granularity
        when the spec does not pin ``chunk_tokens`` (the simulator
        passes its ``ServingConfig.kv_chunk_tokens``).
        """
        info = self.info
        params = dict(self.params)
        if info.name == "chunked":
            params.setdefault("chunk_tokens", default_chunk_tokens)
        return info.build(model, params=params)


#: Anything the serving stack accepts where a KV-cache model is named.
KVCacheLike = Union[str, KVCacheSpec, KVCacheModel]


def resolve_kv_cache(kind: KVCacheLike, model: ModelSpec,
                     default_chunk_tokens: int = 256) -> KVCacheModel:
    """Build a KV-cache model from a spec string, spec, or instance."""
    if isinstance(kind, KVCacheModel):
        return kind
    return KVCacheSpec.parse(kind).build(
        model, default_chunk_tokens=default_chunk_tokens)
