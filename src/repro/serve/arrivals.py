"""Request arrival processes for the online serving simulator.

Three processes cover the traffic shapes serving papers evaluate:

* :class:`PoissonArrivals` — memoryless open-loop traffic at a fixed
  mean rate, the standard load-sweep axis.
* :class:`MMPPArrivals` — a two-state Markov-modulated Poisson process
  (calm/burst), the classic model for bursty production traffic.
* :class:`ReplayArrivals` — timestamps replayed from a recorded log,
  for trace-driven evaluation.

Every process emits :class:`~repro.serve.request.ServeRequest` objects
with prompt/output lengths drawn from the same heavy-tailed log-normal
mixture as the offline :class:`~repro.workloads.inference.ServingWorkload`,
so offline-replay and online-serving experiments stress the allocator
with the same size distribution.  Generation is a pure function of the
seed: the same (process, sampler, seed) always yields the same stream.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Sequence, Union

from repro.serve.request import ServeRequest
from repro.units import align_up


def _heavy_tail_tokens(rng: random.Random, mean: int, sigma: float,
                       lo: int, hi: int) -> int:
    """One log-normal token count, 16-aligned and clamped to [lo, hi]."""
    value = int(rng.lognormvariate(0.0, sigma) * mean)
    return max(lo, min(hi, align_up(value, 16)))


@dataclass(frozen=True)
class LengthSampler:
    """Heavy-tailed prompt/output length distribution.

    ``sigma`` is the log-normal shape parameter; 0.6 matches the
    offline serving workload generator.
    """

    mean_prompt: int = 512
    mean_output: int = 256
    sigma: float = 0.6
    min_tokens: int = 16
    max_tokens: int = 2048

    def sample(self, rng: random.Random) -> "tuple[int, int]":
        """Draw one (prompt_tokens, output_tokens) pair."""
        prompt = _heavy_tail_tokens(rng, self.mean_prompt, self.sigma,
                                    self.min_tokens, self.max_tokens)
        output = _heavy_tail_tokens(rng, self.mean_output, self.sigma,
                                    self.min_tokens, self.max_tokens)
        return prompt, output


class ArrivalProcess(ABC):
    """Base class: a distribution over arrival-time sequences."""

    kind: str = "arrivals"

    @abstractmethod
    def arrival_times(self, n_requests: int, rng: random.Random) -> List[float]:
        """Return ``n_requests`` non-decreasing arrival times (seconds)."""

    def generate(
        self,
        n_requests: int,
        lengths: LengthSampler = LengthSampler(),
        seed: int = 0,
    ) -> List[ServeRequest]:
        """Materialize a request stream: times plus sampled lengths."""
        if n_requests < 1:
            raise ValueError(f"n_requests must be >= 1, got {n_requests}")
        rng = random.Random(seed * 9176 + 11)
        times = self.arrival_times(n_requests, rng)
        requests = []
        for i, t in enumerate(sorted(times)):
            prompt, output = lengths.sample(rng)
            requests.append(ServeRequest(
                req_id=i, arrival_s=float(t),
                prompt_tokens=prompt, output_tokens=output,
            ))
        return requests


@dataclass
class PoissonArrivals(ArrivalProcess):
    """Open-loop Poisson traffic at ``rate_per_s`` mean requests/second."""

    rate_per_s: float = 1.0
    kind: str = field(default="poisson", init=False)

    def __post_init__(self):
        if self.rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be positive, got {self.rate_per_s}")

    def arrival_times(self, n_requests: int, rng: random.Random) -> List[float]:
        now = 0.0
        times = []
        for _ in range(n_requests):
            now += rng.expovariate(self.rate_per_s)
            times.append(now)
        return times


@dataclass
class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (calm ↔ burst).

    The process dwells in each state for an exponentially distributed
    time (mean ``mean_dwell_s``) and emits Poisson arrivals at that
    state's rate — bursts several times the calm rate are the shape
    that collapses admission capacity in production traces.
    """

    rate_calm_per_s: float = 1.0
    rate_burst_per_s: float = 4.0
    mean_dwell_s: float = 10.0
    kind: str = field(default="mmpp", init=False)

    def __post_init__(self):
        if self.rate_calm_per_s <= 0 or self.rate_burst_per_s <= 0:
            raise ValueError("MMPP rates must be positive")
        if self.mean_dwell_s <= 0:
            raise ValueError("mean_dwell_s must be positive")

    def arrival_times(self, n_requests: int, rng: random.Random) -> List[float]:
        now = 0.0
        burst = False
        state_ends = rng.expovariate(1.0 / self.mean_dwell_s)
        times: List[float] = []
        while len(times) < n_requests:
            rate = self.rate_burst_per_s if burst else self.rate_calm_per_s
            gap = rng.expovariate(rate)
            if now + gap >= state_ends:
                # Switch state at the boundary; the pending gap restarts
                # (memorylessness of the exponential makes this exact).
                now = state_ends
                burst = not burst
                state_ends = now + rng.expovariate(1.0 / self.mean_dwell_s)
                continue
            now += gap
            times.append(now)
        return times


@dataclass
class ReplayArrivals(ArrivalProcess):
    """Arrival times replayed from a recorded log."""

    times: Sequence[float] = ()
    kind: str = field(default="replay", init=False)

    def __post_init__(self):
        self.times = sorted(float(t) for t in self.times)
        if any(t < 0 for t in self.times):
            raise ValueError("replayed arrival times must be non-negative")

    def arrival_times(self, n_requests: int, rng: random.Random) -> List[float]:
        del rng
        if n_requests > len(self.times):
            raise ValueError(
                f"replay log has {len(self.times)} arrivals, "
                f"{n_requests} requested"
            )
        return list(self.times[:n_requests])


def load_arrival_log(path: Union[str, Path]) -> List[float]:
    """Read an arrival log: one arrival timestamp (seconds) per line.

    Blank lines and ``#`` comments are skipped.
    """
    times = []
    for line_no, line in enumerate(Path(path).read_text().splitlines(), 1):
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            times.append(float(line))
        except ValueError as exc:
            raise ValueError(f"{path}:{line_no}: not a timestamp: {line!r}") from exc
    if not times:
        raise ValueError(f"{path}: empty arrival log")
    return times
