"""Request arrival processes for the online serving simulator.

Five processes cover the traffic shapes serving papers evaluate, all
registered under the ``arrivals`` component kind and nameable by the
same ``"name?key=value"`` mini-DSL as allocators:

* :class:`PoissonArrivals` (``"poisson?rate=2.0"``) — memoryless
  open-loop traffic at a fixed mean rate, the standard load-sweep axis.
* :class:`MMPPArrivals` (``"mmpp?rate=1&burst=4&dwell=10"``) — a
  two-state Markov-modulated Poisson process (calm/burst), the classic
  model for bursty production traffic.
* :class:`ReplayArrivals` (``"replay?path=log.txt"``) — timestamps
  replayed from a recorded log, for trace-driven evaluation.
* :class:`ClosedLoopArrivals` (``"closed-loop?clients=8&think_s=2"``)
  — a fixed population of clients, each issuing its next request after
  a think time, the classic closed-system load model.
* :class:`MultiTenantArrivals`
  (``"multi-tenant?tenants=8&zipf=1.1&shared_prefix_tokens=256"``) —
  aggregate Poisson traffic from a Zipf-popular tenant population;
  requests carry tenant ids and declare each tenant's shared prompt
  prefix (feeding the ``wfq`` scheduler and prefix-sharing KV cache).

Every process emits :class:`~repro.serve.request.ServeRequest` objects
with prompt/output lengths drawn from the same heavy-tailed log-normal
mixture as the offline :class:`~repro.workloads.inference.ServingWorkload`,
so offline-replay and online-serving experiments stress the allocator
with the same size distribution.  Generation is a pure function of the
seed: the same (process, sampler, seed) always yields the same stream.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, ClassVar, Dict, List, Sequence, Union

from repro.api.registry import (
    Param,
    SpecError,
    component_names,
    register_component,
    register_kind,
)
from repro.api.spec import ComponentSpec
from repro.serve.request import ServeRequest
from repro.units import align_up

register_kind("arrivals", label="arrival process")


def _heavy_tail_tokens(rng: random.Random, mean: int, sigma: float,
                       lo: int, hi: int) -> int:
    """One log-normal token count, 16-aligned and clamped to [lo, hi]."""
    value = int(rng.lognormvariate(0.0, sigma) * mean)
    return max(lo, min(hi, align_up(value, 16)))


@dataclass(frozen=True)
class LengthSampler:
    """Heavy-tailed prompt/output length distribution.

    ``sigma`` is the log-normal shape parameter; 0.6 matches the
    offline serving workload generator.
    """

    mean_prompt: int = 512
    mean_output: int = 256
    sigma: float = 0.6
    min_tokens: int = 16
    max_tokens: int = 2048

    def sample(self, rng: random.Random) -> "tuple[int, int]":
        """Draw one (prompt_tokens, output_tokens) pair."""
        prompt = _heavy_tail_tokens(rng, self.mean_prompt, self.sigma,
                                    self.min_tokens, self.max_tokens)
        output = _heavy_tail_tokens(rng, self.mean_output, self.sigma,
                                    self.min_tokens, self.max_tokens)
        return prompt, output


class ArrivalProcess(ABC):
    """Base class: a distribution over arrival-time sequences."""

    kind: str = "arrivals"

    @abstractmethod
    def arrival_times(self, n_requests: int, rng: random.Random) -> List[float]:
        """Return ``n_requests`` non-decreasing arrival times (seconds)."""

    def generate(
        self,
        n_requests: int,
        lengths: LengthSampler = LengthSampler(),
        seed: int = 0,
    ) -> List[ServeRequest]:
        """Materialize a request stream: times plus sampled lengths."""
        if n_requests < 1:
            raise ValueError(f"n_requests must be >= 1, got {n_requests}")
        rng = random.Random(seed * 9176 + 11)
        times = self.arrival_times(n_requests, rng)
        requests = []
        for i, t in enumerate(sorted(times)):
            prompt, output = lengths.sample(rng)
            requests.append(ServeRequest(
                req_id=i, arrival_s=float(t),
                prompt_tokens=prompt, output_tokens=output,
            ))
        return requests


def _check_positive(*names: str):
    """A ``check`` hook rejecting non-positive values for ``names``."""

    def check(params: Dict[str, Any]) -> None:
        for name in names:
            value = params.get(name)
            if value is not None and value <= 0:
                raise SpecError(
                    f"arrival parameter {name!r} must be positive, "
                    f"got {value}")

    return check


@register_component(
    "arrivals", "poisson",
    params=(
        Param("rate_per_s", float, 1.0, kind="float", aliases=("rate",),
              doc="mean arrival rate, requests/second"),
    ),
    check=_check_positive("rate_per_s"),
    description="open-loop Poisson traffic at a fixed mean rate",
)
@dataclass
class PoissonArrivals(ArrivalProcess):
    """Open-loop Poisson traffic at ``rate_per_s`` mean requests/second."""

    rate_per_s: float = 1.0
    kind: str = field(default="poisson", init=False)

    def __post_init__(self):
        if self.rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be positive, got {self.rate_per_s}")

    def arrival_times(self, n_requests: int, rng: random.Random) -> List[float]:
        now = 0.0
        times = []
        for _ in range(n_requests):
            now += rng.expovariate(self.rate_per_s)
            times.append(now)
        return times


@register_component(
    "arrivals", "mmpp",
    params=(
        Param("rate_calm_per_s", float, 1.0, kind="float",
              aliases=("rate", "calm"),
              doc="Poisson rate in the calm state, requests/second"),
        Param("rate_burst_per_s", float, 4.0, kind="float",
              aliases=("burst",),
              doc="Poisson rate in the burst state, requests/second"),
        Param("mean_dwell_s", float, 10.0, kind="float", aliases=("dwell",),
              doc="mean exponential dwell time per state, seconds"),
    ),
    check=_check_positive("rate_calm_per_s", "rate_burst_per_s",
                          "mean_dwell_s"),
    description="two-state Markov-modulated Poisson process (calm/burst)",
)
@dataclass
class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (calm ↔ burst).

    The process dwells in each state for an exponentially distributed
    time (mean ``mean_dwell_s``) and emits Poisson arrivals at that
    state's rate — bursts several times the calm rate are the shape
    that collapses admission capacity in production traces.
    """

    rate_calm_per_s: float = 1.0
    rate_burst_per_s: float = 4.0
    mean_dwell_s: float = 10.0
    kind: str = field(default="mmpp", init=False)

    def __post_init__(self):
        if self.rate_calm_per_s <= 0 or self.rate_burst_per_s <= 0:
            raise ValueError("MMPP rates must be positive")
        if self.mean_dwell_s <= 0:
            raise ValueError("mean_dwell_s must be positive")

    def arrival_times(self, n_requests: int, rng: random.Random) -> List[float]:
        now = 0.0
        burst = False
        state_ends = rng.expovariate(1.0 / self.mean_dwell_s)
        times: List[float] = []
        while len(times) < n_requests:
            rate = self.rate_burst_per_s if burst else self.rate_calm_per_s
            gap = rng.expovariate(rate)
            if now + gap >= state_ends:
                # Switch state at the boundary; the pending gap restarts
                # (memorylessness of the exponential makes this exact).
                now = state_ends
                burst = not burst
                state_ends = now + rng.expovariate(1.0 / self.mean_dwell_s)
                continue
            now += gap
            times.append(now)
        return times


def _check_replay(params: Dict[str, Any]) -> None:
    if not params.get("path"):
        raise SpecError(
            "replay arrivals need a log file: \"replay?path=arrivals.txt\"")


def _replay_from_path(path: str = "") -> "ReplayArrivals":
    if not path:
        raise SpecError(
            "replay arrivals need a log file: \"replay?path=arrivals.txt\"")
    return ReplayArrivals(load_arrival_log(path))


@register_component(
    "arrivals", "replay",
    params=(
        Param("path", str, "", kind="str",
              doc="arrival-log file: one timestamp (seconds) per line"),
    ),
    check=_check_replay,
    factory=_replay_from_path,
    description="arrival times replayed from a recorded log",
)
@dataclass
class ReplayArrivals(ArrivalProcess):
    """Arrival times replayed from a recorded log."""

    times: Sequence[float] = ()
    kind: str = field(default="replay", init=False)

    def __post_init__(self):
        self.times = sorted(float(t) for t in self.times)
        if any(t < 0 for t in self.times):
            raise ValueError("replayed arrival times must be non-negative")

    def arrival_times(self, n_requests: int, rng: random.Random) -> List[float]:
        del rng
        if n_requests > len(self.times):
            raise ValueError(
                f"replay log has {len(self.times)} arrivals, "
                f"{n_requests} requested"
            )
        return list(self.times[:n_requests])


def _check_closed_loop(params: Dict[str, Any]) -> None:
    clients = params.get("clients")
    if clients is not None and clients < 1:
        raise SpecError(f"closed-loop clients must be >= 1, got {clients}")
    for name in ("think_s", "service_s"):
        value = params.get(name)
        if value is not None and value <= 0:
            raise SpecError(
                f"closed-loop {name} must be positive, got {value}")


@register_component(
    "arrivals", "closed-loop",
    params=(
        Param("clients", int, 4,
              doc="fixed client population issuing requests"),
        Param("think_s", float, 2.0, kind="float", aliases=("think",),
              doc="mean exponential think time between a client's requests"),
        Param("service_s", float, 2.0, kind="float", aliases=("service",),
              doc="a-priori estimate of one request's service time"),
    ),
    check=_check_closed_loop,
    description="N closed-loop clients with exponential think times",
)
@dataclass
class ClosedLoopArrivals(ArrivalProcess):
    """A fixed population of clients with think times (closed system).

    Each of ``clients`` users issues a request, waits for it to be
    served, thinks for an exponentially distributed time (mean
    ``think_s``), and issues the next — so the offered load is
    self-limiting: at most ``clients`` requests are ever outstanding,
    the classic interactive-traffic model (and the shape open-loop
    Poisson sweeps miss: overload shows up as longer cycles, not an
    unbounded queue).

    Because arrival streams are materialized *before* the simulator
    runs (so identical streams can be replayed against every
    allocator), the in-service portion of each client's cycle uses an
    a-priori estimate ``service_s`` instead of the simulated completion
    time — a quasi-closed model: cycle = ``service_s`` + think.
    """

    clients: int = 4
    think_s: float = 2.0
    service_s: float = 2.0
    kind: str = field(default="closed-loop", init=False)

    def __post_init__(self):
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1, got {self.clients}")
        if self.think_s <= 0 or self.service_s <= 0:
            raise ValueError("think_s and service_s must be positive")

    def arrival_times(self, n_requests: int, rng: random.Random) -> List[float]:
        per_client = -(-n_requests // self.clients)  # ceil div
        times: List[float] = []
        for _ in range(self.clients):
            # Each client starts after an initial think (staggering the
            # population), then cycles think -> request -> service.
            now = rng.expovariate(1.0 / self.think_s)
            for _ in range(per_client):
                times.append(now)
                now += self.service_s + rng.expovariate(1.0 / self.think_s)
        times.sort()
        return times[:n_requests]


def _check_multi_tenant(params: Dict[str, Any]) -> None:
    tenants = params.get("tenants")
    if tenants is not None and tenants < 1:
        raise SpecError(
            f"multi-tenant tenants must be >= 1, got {tenants}")
    rate = params.get("rate_per_s")
    if rate is not None and rate <= 0:
        raise SpecError(
            f"multi-tenant rate_per_s must be positive, got {rate}")
    zipf = params.get("zipf")
    if zipf is not None and zipf < 0:
        raise SpecError(
            f"multi-tenant zipf must be >= 0, got {zipf}")
    prefix = params.get("shared_prefix_tokens")
    if prefix is not None and prefix < 0:
        raise SpecError(
            f"multi-tenant shared_prefix_tokens must be >= 0, got {prefix}")


@register_component(
    "arrivals", "multi-tenant",
    params=(
        Param("tenants", int, 4,
              doc="tenant population size (tenant ids t0..tN-1)"),
        Param("rate_per_s", float, 4.0, kind="float", aliases=("rate",),
              doc="aggregate Poisson arrival rate, requests/second"),
        Param("zipf", float, 1.1, kind="float",
              doc="tenant popularity skew: P(tk) ∝ 1/(k+1)^zipf "
                  "(0 = uniform)"),
        Param("shared_prefix_tokens", int, 256, aliases=("prefix",),
              doc="tokens of each tenant's shared prompt prefix "
                  "(system prompt); 0 disables prefix declarations"),
    ),
    check=_check_multi_tenant,
    description="Poisson traffic from N tenants with Zipf popularity; "
                "each request carries its tenant id and declares the "
                "tenant's shared prompt prefix",
)
@dataclass
class MultiTenantArrivals(ArrivalProcess):
    """Aggregate Poisson traffic split over a Zipf tenant population.

    Models a multi-tenant endpoint: ``tenants`` customers share one
    serving fleet, request volume follows a Zipf popularity law
    (tenant ``tk`` with probability ∝ ``1/(k+1)**zipf``; ``zipf=0`` is
    uniform), and every request of tenant ``tk`` starts with the same
    ``shared_prefix_tokens``-token system prompt.  Emitted requests
    carry ``tenant="tk"`` (consumed by the ``wfq`` scheduler and the
    per-tenant report rows) and declare
    ``prefix_id="tk" / prefix_tokens=shared_prefix_tokens`` (consumed
    by the ``paged-shared`` prefix-sharing KV cache; harmless
    elsewhere).  Prompts are the shared prefix plus a heavy-tailed
    private suffix, so the stream works identically — same lengths,
    same times — with sharing on or off.
    """

    tenants: int = 4
    rate_per_s: float = 4.0
    zipf: float = 1.1
    shared_prefix_tokens: int = 256
    kind: str = field(default="multi-tenant", init=False)

    def __post_init__(self):
        if self.tenants < 1:
            raise ValueError(f"tenants must be >= 1, got {self.tenants}")
        if self.rate_per_s <= 0:
            raise ValueError(
                f"rate_per_s must be positive, got {self.rate_per_s}")
        if self.zipf < 0:
            raise ValueError(f"zipf must be >= 0, got {self.zipf}")
        if self.shared_prefix_tokens < 0:
            raise ValueError(
                f"shared_prefix_tokens must be >= 0, "
                f"got {self.shared_prefix_tokens}")

    def arrival_times(self, n_requests: int, rng: random.Random) -> List[float]:
        now = 0.0
        times = []
        for _ in range(n_requests):
            now += rng.expovariate(self.rate_per_s)
            times.append(now)
        return times

    def _sample_tenant(self, rng: random.Random) -> int:
        weights = [1.0 / (k + 1) ** self.zipf for k in range(self.tenants)]
        total = sum(weights)
        pick = rng.random() * total
        for k, weight in enumerate(weights):
            pick -= weight
            if pick < 0:
                return k
        return self.tenants - 1

    def generate(
        self,
        n_requests: int,
        lengths: LengthSampler = LengthSampler(),
        seed: int = 0,
    ) -> List[ServeRequest]:
        """Materialize the stream with tenant + prefix annotations."""
        if n_requests < 1:
            raise ValueError(f"n_requests must be >= 1, got {n_requests}")
        rng = random.Random(seed * 9176 + 11)
        times = self.arrival_times(n_requests, rng)
        prefix = self.shared_prefix_tokens
        requests = []
        for i, t in enumerate(sorted(times)):
            suffix, output = lengths.sample(rng)
            tenant = f"t{self._sample_tenant(rng)}"
            requests.append(ServeRequest(
                req_id=i, arrival_s=float(t),
                prompt_tokens=prefix + suffix, output_tokens=output,
                tenant=tenant,
                prefix_id=tenant if prefix > 0 else None,
                prefix_tokens=prefix,
            ))
        return requests


@dataclass(frozen=True)
class ArrivalSpec(ComponentSpec):
    """A validated (arrival process, parameters) pair.

    Speaks the same mini-DSL as :class:`repro.api.AllocatorSpec`::

        poisson?rate=4.0
        mmpp?rate=1&burst=6&dwell=5
        replay?path=arrivals.txt
        closed-loop?clients=8&think_s=0.5
    """

    kind: ClassVar[str] = "arrivals"

    def build(self) -> ArrivalProcess:
        """Instantiate the configured arrival process."""
        return super().build()


#: Anything the serving stack accepts where an arrival process is named.
ArrivalLike = Union[str, ArrivalSpec, ArrivalProcess]


def arrival_names(include_aliases: bool = False):
    """Registered arrival-process names, optionally with aliases."""
    return component_names("arrivals", include_aliases)


def resolve_arrivals(kind: ArrivalLike) -> ArrivalProcess:
    """Build an arrival process from a spec string, spec, or instance."""
    if isinstance(kind, ArrivalProcess):
        return kind
    return ArrivalSpec.parse(kind).build()


def load_arrival_log(path: Union[str, Path]) -> List[float]:
    """Read an arrival log: one arrival timestamp (seconds) per line.

    Blank lines and ``#`` comments are skipped.
    """
    times = []
    for line_no, line in enumerate(Path(path).read_text().splitlines(), 1):
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            times.append(float(line))
        except ValueError as exc:
            raise ValueError(f"{path}:{line_no}: not a timestamp: {line!r}") from exc
    if not times:
        raise ValueError(f"{path}: empty arrival log")
    return times
