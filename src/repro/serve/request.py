"""The unit of serving work: one inference request and its lifecycle.

A :class:`ServeRequest` is created by an arrival process with an
arrival time and sampled prompt/output token counts, then mutated by
the simulator as it moves through the queue: admitted (prefill),
decoded token by token, possibly preempted back to the queue on
allocator OOM, and finally finished or rejected.  All timestamps are
simulated seconds relative to the start of the run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class RequestState(enum.Enum):
    """Lifecycle states of a serving request."""

    QUEUED = "queued"
    RUNNING = "running"
    PREEMPTED = "preempted"
    FINISHED = "finished"
    REJECTED = "rejected"


#: The closed reject-reason taxonomy.  Every rejection the simulator
#: issues must carry one of these (asserted in the single reject path,
#: ``ServingSimulator._reject``); metrics may therefore partition
#: rejections by reason without an "other" bucket.
REJECT_REASONS = ("timeout", "preempted-out", "too-large", "failed")


@dataclass
class ServeRequest:
    """One inference request flowing through the serving simulator.

    Attributes
    ----------
    req_id:
        Position in the arrival stream (unique, monotonically rising).
    arrival_s:
        When the request reached the server, in simulated seconds.
    prompt_tokens / output_tokens:
        Sampled prompt length and target output length.
    state:
        Current lifecycle state.
    replica:
        Index of the replica the front-end dispatched this request to.
    admitted_s / first_token_s / finished_s / rejected_s:
        Lifecycle timestamps (``None`` until reached).  ``admitted_s``
        is the *first* admission — preemption does not reset it.
    tokens_done:
        Output tokens generated so far; survives preemption (the KV
        cache is recomputed on re-admission, the text is kept).
    preemptions:
        How many times this request was kicked out of the batch.
    reject_reason:
        One of :data:`REJECT_REASONS`: ``"timeout"`` (queued past the
        timeout SLO), ``"preempted-out"`` (preemption budget
        exhausted), ``"too-large"`` (prompt KV cannot fit an empty
        device) or ``"failed"`` (replica crashes exhausted the retry
        budget — permanent failure).
    retries:
        How many times a replica crash forced this request to be
        re-dispatched (0 on the fault-free path).  Unlike
        ``preemptions`` this counts *failures*, not memory pressure,
        and does not draw on ``max_preemptions``.
    failed_s:
        When the request failed permanently (its last crash with no
        retry budget left); ``None`` unless ``reject_reason`` is
        ``"failed"``.
    prefill_wait_s / decode_wait_s:
        Per-phase queue-wait attribution, set only by disaggregated
        serving (:mod:`repro.serve.disagg`): time spent queued before
        the prefill replica admitted the request, and time spent
        queued (KV parked on the wire's far side) before the decode
        replica did.  ``None`` for colocated runs.
    tenant:
        Owning tenant id (``""`` for single-tenant streams).  Set by
        multi-tenant arrival processes; consumed by the weighted-fair
        scheduler and the per-tenant report rows.
    prefix_id / prefix_tokens:
        Declared shared token prefix: the first ``prefix_tokens``
        tokens of the prompt are byte-identical across every request
        carrying the same ``prefix_id`` (a shared system prompt,
        few-shot preamble, …).  A prefix-sharing KV-cache model may
        serve those tokens from shared, ref-counted blocks;
        ``prefix_id=None`` (the default) opts out.
    """

    req_id: int
    arrival_s: float
    prompt_tokens: int
    output_tokens: int
    state: RequestState = RequestState.QUEUED
    replica: int = 0
    admitted_s: Optional[float] = None
    first_token_s: Optional[float] = None
    finished_s: Optional[float] = None
    rejected_s: Optional[float] = None
    reject_reason: Optional[str] = None
    tokens_done: int = 0
    preemptions: int = 0
    retries: int = 0
    failed_s: Optional[float] = field(default=None, repr=False)
    prefill_wait_s: Optional[float] = field(default=None, repr=False)
    decode_wait_s: Optional[float] = field(default=None, repr=False)
    tenant: str = field(default="", repr=False)
    prefix_id: Optional[str] = field(default=None, repr=False)
    prefix_tokens: int = field(default=0, repr=False)
    # KV bookkeeping maintained by the replica's KVCacheModel.
    # kv_capacity_tokens is the token capacity currently provisioned
    # (chunk-rounded for chunked KV, whole blocks for paged KV);
    # kv_name/kv_generation are used by the chunked model only — the
    # paged model keeps its block table internally, keyed by req_id.
    kv_name: Optional[str] = field(default=None, repr=False)
    kv_capacity_tokens: int = field(default=0, repr=False)
    kv_generation: int = field(default=0, repr=False)

    # ------------------------------------------------------------------
    @property
    def context_tokens(self) -> int:
        """Tokens the KV cache must currently cover (prompt + output)."""
        return self.prompt_tokens + self.tokens_done

    @property
    def total_tokens(self) -> int:
        """Prompt plus full target output."""
        return self.prompt_tokens + self.output_tokens

    @property
    def finished(self) -> bool:
        return self.state is RequestState.FINISHED

    @property
    def rejected(self) -> bool:
        return self.state is RequestState.REJECTED

    # ------------------------------------------------------------------
    @property
    def ttft_s(self) -> Optional[float]:
        """Time to first token (arrival → end of first prefill)."""
        if self.first_token_s is None:
            return None
        return self.first_token_s - self.arrival_s

    @property
    def latency_s(self) -> Optional[float]:
        """End-to-end latency (arrival → last token)."""
        if self.finished_s is None:
            return None
        return self.finished_s - self.arrival_s

    @property
    def tpot_s(self) -> Optional[float]:
        """Mean time per output token after the first (decode pace)."""
        if self.finished_s is None or self.first_token_s is None:
            return None
        if self.tokens_done <= 1:
            return 0.0
        return (self.finished_s - self.first_token_s) / (self.tokens_done - 1)

    def __str__(self) -> str:
        return (
            f"req{self.req_id}[{self.state.value} "
            f"p={self.prompt_tokens} o={self.tokens_done}/{self.output_tokens}]"
        )
