"""Admission scheduling policies with the allocator in the loop.

The simulator asks its scheduler which queued request to admit next —
and the scheduler may inspect *live allocator state* before answering.
This is the feedback path the offline trace replay cannot express: a
memory-aware policy holds a request back when the pool has no headroom,
so fragmentation (allocator-dependent!) directly changes admission
timing, queueing delay and therefore every latency metric.

Policies (registered under the ``scheduler`` component kind, named by
the same ``"name?key=value"`` mini-DSL as allocators)
--------------------------------------------------------------------
``fcfs``            strict arrival order.
``shortest-prompt`` admit the queued request with the smallest current
                    context first (SJF on prefill work; alias ``sjf``).
``memory-aware``    arrival order, but skip requests whose projected
                    full-context KV footprint exceeds the allocator's
                    current headroom (``margin`` is the safety factor:
                    ``"memory-aware?margin=1.5"``).
``wfq``             weighted fair queueing across tenants: each tenant
                    accrues virtual time as it is served, scaled by
                    1/weight, and the head request of the
                    lowest-virtual-time tenant is admitted next
                    (``"wfq?weights=t0:2,t1:1"``; unlisted tenants
                    weigh 1).
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, ClassVar, Callable, Dict, Optional, Sequence, Union

from repro.allocators.base import BaseAllocator
from repro.api.registry import (
    Param,
    SpecError,
    component_names,
    component_registry,
    register_component,
    register_kind,
)
from repro.api.spec import ComponentSpec
from repro.serve.kvcache import KVCacheModel
from repro.serve.request import RequestState, ServeRequest
from repro.workloads.models import ModelSpec

register_kind("scheduler", label="scheduler")


@dataclass
class SchedulerView:
    """What an admission policy may observe about the serving state."""

    allocator: BaseAllocator
    model: ModelSpec
    running: int
    max_batch: int
    capacity: int
    kv: KVCacheModel

    def projected_kv_bytes(self, request: ServeRequest) -> int:
        """KV bytes the request occupies at its *full* context, as the
        replica's KV-cache model lays it out (chunk-rounded for the
        chunked model, whole blocks for the paged model)."""
        return self.kv.projected_bytes(request)

    def headroom_bytes(self, pool_reuse: float = 0.5) -> int:
        """Bytes of KV the allocator can plausibly hand out right now.

        Delegates to the KV-cache model, because reusability of
        reserved-but-inactive pool memory is a property of the KV
        layout.  Under **chunked** KV, unreserved memory counts in full
        and idle pool memory only at ``pool_reuse`` — whether a
        shredded pool can serve a *large* contiguous block depends on
        the allocator (a splitting allocator may have fragmented it
        beyond use, a stitching one can fuse it back), which is the
        feedback path that makes admission allocator-dependent.  Under
        **paged** KV every allocation is one fixed-size block, so the
        model counts whole free blocks and idle pool memory reuses in
        full — admission consults the free-block count, like vLLM's
        block manager.
        """
        return self.kv.headroom_bytes(
            self.allocator.stats(), self.capacity, pool_reuse)


class Scheduler(ABC):
    """Base admission policy."""

    name: str = "scheduler"

    @abstractmethod
    def select(
        self, queue: Sequence[ServeRequest], view: SchedulerView
    ) -> Optional[ServeRequest]:
        """Pick the queued request to admit next, or ``None`` to wait.

        The simulator only calls this while the batch has a free slot;
        the policy never needs to re-check ``view.running``.
        """


@register_component(
    "scheduler", "fcfs",
    description="first-come-first-served: strict arrival order",
)
class FcfsScheduler(Scheduler):
    """First-come-first-served: strict arrival order."""

    name = "fcfs"

    def select(self, queue, view):
        del view
        return queue[0] if queue else None


@register_component(
    "scheduler", "shortest-prompt",
    aliases=("sjf",),
    description="admit the smallest prefill first (SJF on current context)",
)
class ShortestPromptScheduler(Scheduler):
    """Admit the smallest prefill first (SJF on the current context).

    Cuts mean TTFT under load at the cost of tail latency for long
    prompts; ``req_id`` breaks ties deterministically.
    """

    name = "shortest-prompt"

    def select(self, queue, view):
        del view
        if not queue:
            return None
        return min(queue, key=lambda r: (r.context_tokens, r.req_id))


def _check_margin(params: Dict[str, Any]) -> None:
    margin = params.get("margin")
    if margin is not None and margin < 1.0:
        raise SpecError(
            f"memory-aware scheduler margin must be >= 1.0, got {margin}")


@register_component(
    "scheduler", "memory-aware",
    params=(
        Param("margin", float, 1.25, kind="float",
              doc="safety factor on the projected KV footprint"),
    ),
    check=_check_margin,
    description="FCFS, but only admit what the allocator can hold "
                "(skips requests whose projected KV exceeds headroom)",
)
class MemoryAwareScheduler(Scheduler):
    """FCFS, but only admit what the allocator can actually hold.

    Skips any request whose projected full-context KV (times a safety
    ``margin``) exceeds the current headroom reported by
    ``allocator.stats()`` — trading a little head-of-line blocking for
    far fewer mid-flight OOM preemptions.
    """

    name = "memory-aware"

    def __init__(self, margin: float = 1.25):
        if margin < 1.0:
            raise ValueError(f"margin must be >= 1.0, got {margin}")
        self.margin = margin

    def select(self, queue, view):
        headroom = view.headroom_bytes()
        for request in queue:
            if view.projected_kv_bytes(request) * self.margin <= headroom:
                return request
        return None


def parse_tenant_weights(weights: str) -> Dict[str, float]:
    """Parse a WFQ weights string into ``{tenant: weight}``.

    Two entry forms, comma-separated: ``tenant:weight`` pairs
    (``"t0:2,t1:1"``) and bare positional weights (``"2,1"``, assigned
    to tenants ``t0``, ``t1``, … in order).  Weights must be positive;
    a tenant repeated with a *different* weight is an error, while
    exact duplicates collapse (``"t0:2,t0:2"`` ≡ ``"t0:2"``).  Scaling
    every weight by a constant yields the same schedule — only ratios
    matter — so ``"t0:4,t1:2"`` normalizes to the ``"t0:2,t1:1"``
    behaviour.
    """
    parsed: Dict[str, float] = {}
    position = 0
    for entry in filter(None, (e.strip() for e in weights.split(","))):
        if ":" in entry:
            tenant, _, raw = entry.partition(":")
            tenant = tenant.strip()
        else:
            tenant, raw = f"t{position}", entry
            position += 1
        try:
            weight = float(raw)
        except ValueError:
            raise SpecError(
                f"wfq weight for tenant {tenant!r} must be a number, "
                f"got {raw!r}") from None
        if not weight > 0:
            raise SpecError(
                f"wfq weight for tenant {tenant!r} must be positive, "
                f"got {weight}")
        if tenant in parsed and parsed[tenant] != weight:
            raise SpecError(
                f"wfq tenant {tenant!r} given conflicting weights "
                f"{parsed[tenant]} and {weight}")
        parsed[tenant] = weight
    return parsed


def _check_weights(params: Dict[str, Any]) -> None:
    weights = params.get("weights")
    if weights is not None:
        parse_tenant_weights(weights)


@register_component(
    "scheduler", "wfq",
    aliases=("weighted-fair",),
    params=(
        Param("weights", str, "", kind="str",
              doc="per-tenant weights, 'tenant:weight' pairs or bare "
                  "positional weights, comma-separated "
                  "(e.g. 't0:2,t1:1' or '2,1'); unlisted tenants "
                  "weigh 1"),
    ),
    check=_check_weights,
    description="weighted fair queueing across tenants: admit the "
                "head request of the tenant with the lowest "
                "service-per-weight virtual time",
)
class WeightedFairScheduler(Scheduler):
    """Weighted fair queueing over the ``tenant`` field of requests.

    Classic virtual-time WFQ, with *expected decode work* (remaining
    prompt + output tokens) as the service currency: each tenant
    accrues ``work / weight`` virtual time when a request of theirs is
    admitted, and ``select`` picks the head-of-line request of the
    tenant with the smallest virtual time (FCFS within a tenant, so
    one tenant's order is never reshuffled).  A tenant first seen
    mid-run joins at the *current* minimum virtual time — it cannot
    cash in service credit for the time before it existed.

    The charge is applied lazily on the next ``select`` call, and only
    if the previously returned request actually entered the batch — a
    request bounced by an allocator OOM costs its tenant nothing.
    Scaling all weights by a constant leaves the schedule unchanged
    (only ``work/weight`` ratios are compared).
    """

    name = "wfq"

    def __init__(self, weights: str = ""):
        self.weights = (parse_tenant_weights(weights)
                        if isinstance(weights, str) else dict(weights))
        self._vtime: Dict[str, float] = {}
        self._pending: Optional[ServeRequest] = None
        self._pending_work: float = 0.0

    def _weight(self, tenant: str) -> float:
        return self.weights.get(tenant, 1.0)

    def _settle(self) -> None:
        """Charge the last selection if it was actually admitted."""
        request, self._pending = self._pending, None
        if request is None:
            return
        if request.state in (RequestState.RUNNING, RequestState.FINISHED):
            tenant = request.tenant
            self._vtime[tenant] = (self._vtime.get(tenant, 0.0)
                                   + self._pending_work
                                   / self._weight(tenant))

    def select(self, queue, view):
        del view
        self._settle()
        if not queue:
            return None
        heads: Dict[str, ServeRequest] = {}
        for request in queue:
            heads.setdefault(request.tenant, request)
        floor = min((self._vtime[t] for t in heads if t in self._vtime),
                    default=0.0)
        for tenant in heads:
            if tenant not in self._vtime:
                self._vtime[tenant] = floor
        request = min(
            heads.values(),
            key=lambda r: (self._vtime[r.tenant], r.arrival_s, r.req_id))
        # Expected service: tokens still to prefill + decode.
        self._pending = request
        self._pending_work = float(
            request.context_tokens
            + (request.output_tokens - request.tokens_done))
        return request


@dataclass(frozen=True)
class SchedulerSpec(ComponentSpec):
    """A validated (scheduler, parameters) pair.

    Speaks the same mini-DSL as :class:`repro.api.AllocatorSpec`::

        fcfs
        sjf                           # alias of shortest-prompt
        memory-aware?margin=1.5
    """

    kind: ClassVar[str] = "scheduler"

    def build(self) -> Scheduler:
        """Instantiate the configured scheduler."""
        return super().build()


#: Anything the serving stack accepts where a scheduler is named.
SchedulerLike = Union[str, SchedulerSpec, Scheduler]


def scheduler_names(include_aliases: bool = False):
    """Registered scheduler names, optionally with aliases."""
    return component_names("scheduler", include_aliases)


def resolve_scheduler(kind: SchedulerLike) -> Scheduler:
    """Build a scheduler from a spec string, spec, or instance."""
    if isinstance(kind, Scheduler):
        return kind
    return SchedulerSpec.parse(kind).build()


# ----------------------------------------------------------------------
# Deprecated shims (pre-registry entry points)
# ----------------------------------------------------------------------
#: Deprecated shim — the scheduler catalogue now lives in the
#: kind-aware component registry; this dict is a snapshot of it
#: (aliases included) **frozen at import**, for callers that predate
#: :class:`SchedulerSpec`.  Like the ``ALLOCATOR_FACTORIES`` shim, it
#: does not see later ``register_component("scheduler", ...)`` calls —
#: enumerate the registry (``scheduler_names()``) instead.
SCHEDULER_FACTORIES: Dict[str, Callable[[], Scheduler]] = {
    key: info.cls
    for info in component_registry("scheduler").values()
    for key in (info.name, *info.aliases)
}


def make_scheduler(kind: Union[str, Scheduler]) -> Scheduler:
    """Instantiate a scheduler by name (or pass one through).

    .. deprecated::
        Thin shim over :func:`resolve_scheduler`; new code should name
        schedulers with a :class:`SchedulerSpec` (e.g.
        ``"memory-aware?margin=1.5"``), which also carries parameters
        through CLI flags and JSON experiment files.  Unknown names
        still raise :class:`KeyError`.
    """
    warnings.warn(
        "make_scheduler is deprecated; use repro.serve.resolve_scheduler "
        "or a SchedulerSpec (e.g. 'memory-aware?margin=1.5')",
        DeprecationWarning, stacklevel=2,
    )
    return resolve_scheduler(kind)
