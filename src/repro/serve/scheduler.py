"""Admission scheduling policies with the allocator in the loop.

The simulator asks its scheduler which queued request to admit next —
and the scheduler may inspect *live allocator state* before answering.
This is the feedback path the offline trace replay cannot express: a
memory-aware policy holds a request back when the pool has no headroom,
so fragmentation (allocator-dependent!) directly changes admission
timing, queueing delay and therefore every latency metric.

Policies (registered under the ``scheduler`` component kind, named by
the same ``"name?key=value"`` mini-DSL as allocators)
--------------------------------------------------------------------
``fcfs``            strict arrival order.
``shortest-prompt`` admit the queued request with the smallest current
                    context first (SJF on prefill work; alias ``sjf``).
``memory-aware``    arrival order, but skip requests whose projected
                    full-context KV footprint exceeds the allocator's
                    current headroom (``margin`` is the safety factor:
                    ``"memory-aware?margin=1.5"``).
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, ClassVar, Callable, Dict, Optional, Sequence, Union

from repro.allocators.base import BaseAllocator
from repro.api.registry import (
    Param,
    SpecError,
    component_names,
    component_registry,
    register_component,
    register_kind,
)
from repro.api.spec import ComponentSpec
from repro.serve.kvcache import KVCacheModel
from repro.serve.request import ServeRequest
from repro.workloads.models import ModelSpec

register_kind("scheduler", label="scheduler")


@dataclass
class SchedulerView:
    """What an admission policy may observe about the serving state."""

    allocator: BaseAllocator
    model: ModelSpec
    running: int
    max_batch: int
    capacity: int
    kv: KVCacheModel

    def projected_kv_bytes(self, request: ServeRequest) -> int:
        """KV bytes the request occupies at its *full* context, as the
        replica's KV-cache model lays it out (chunk-rounded for the
        chunked model, whole blocks for the paged model)."""
        return self.kv.projected_bytes(request)

    def headroom_bytes(self, pool_reuse: float = 0.5) -> int:
        """Bytes of KV the allocator can plausibly hand out right now.

        Delegates to the KV-cache model, because reusability of
        reserved-but-inactive pool memory is a property of the KV
        layout.  Under **chunked** KV, unreserved memory counts in full
        and idle pool memory only at ``pool_reuse`` — whether a
        shredded pool can serve a *large* contiguous block depends on
        the allocator (a splitting allocator may have fragmented it
        beyond use, a stitching one can fuse it back), which is the
        feedback path that makes admission allocator-dependent.  Under
        **paged** KV every allocation is one fixed-size block, so the
        model counts whole free blocks and idle pool memory reuses in
        full — admission consults the free-block count, like vLLM's
        block manager.
        """
        return self.kv.headroom_bytes(
            self.allocator.stats(), self.capacity, pool_reuse)


class Scheduler(ABC):
    """Base admission policy."""

    name: str = "scheduler"

    @abstractmethod
    def select(
        self, queue: Sequence[ServeRequest], view: SchedulerView
    ) -> Optional[ServeRequest]:
        """Pick the queued request to admit next, or ``None`` to wait.

        The simulator only calls this while the batch has a free slot;
        the policy never needs to re-check ``view.running``.
        """


@register_component(
    "scheduler", "fcfs",
    description="first-come-first-served: strict arrival order",
)
class FcfsScheduler(Scheduler):
    """First-come-first-served: strict arrival order."""

    name = "fcfs"

    def select(self, queue, view):
        del view
        return queue[0] if queue else None


@register_component(
    "scheduler", "shortest-prompt",
    aliases=("sjf",),
    description="admit the smallest prefill first (SJF on current context)",
)
class ShortestPromptScheduler(Scheduler):
    """Admit the smallest prefill first (SJF on the current context).

    Cuts mean TTFT under load at the cost of tail latency for long
    prompts; ``req_id`` breaks ties deterministically.
    """

    name = "shortest-prompt"

    def select(self, queue, view):
        del view
        if not queue:
            return None
        return min(queue, key=lambda r: (r.context_tokens, r.req_id))


def _check_margin(params: Dict[str, Any]) -> None:
    margin = params.get("margin")
    if margin is not None and margin < 1.0:
        raise SpecError(
            f"memory-aware scheduler margin must be >= 1.0, got {margin}")


@register_component(
    "scheduler", "memory-aware",
    params=(
        Param("margin", float, 1.25, kind="float",
              doc="safety factor on the projected KV footprint"),
    ),
    check=_check_margin,
    description="FCFS, but only admit what the allocator can hold "
                "(skips requests whose projected KV exceeds headroom)",
)
class MemoryAwareScheduler(Scheduler):
    """FCFS, but only admit what the allocator can actually hold.

    Skips any request whose projected full-context KV (times a safety
    ``margin``) exceeds the current headroom reported by
    ``allocator.stats()`` — trading a little head-of-line blocking for
    far fewer mid-flight OOM preemptions.
    """

    name = "memory-aware"

    def __init__(self, margin: float = 1.25):
        if margin < 1.0:
            raise ValueError(f"margin must be >= 1.0, got {margin}")
        self.margin = margin

    def select(self, queue, view):
        headroom = view.headroom_bytes()
        for request in queue:
            if view.projected_kv_bytes(request) * self.margin <= headroom:
                return request
        return None


@dataclass(frozen=True)
class SchedulerSpec(ComponentSpec):
    """A validated (scheduler, parameters) pair.

    Speaks the same mini-DSL as :class:`repro.api.AllocatorSpec`::

        fcfs
        sjf                           # alias of shortest-prompt
        memory-aware?margin=1.5
    """

    kind: ClassVar[str] = "scheduler"

    def build(self) -> Scheduler:
        """Instantiate the configured scheduler."""
        return super().build()


#: Anything the serving stack accepts where a scheduler is named.
SchedulerLike = Union[str, SchedulerSpec, Scheduler]


def scheduler_names(include_aliases: bool = False):
    """Registered scheduler names, optionally with aliases."""
    return component_names("scheduler", include_aliases)


def resolve_scheduler(kind: SchedulerLike) -> Scheduler:
    """Build a scheduler from a spec string, spec, or instance."""
    if isinstance(kind, Scheduler):
        return kind
    return SchedulerSpec.parse(kind).build()


# ----------------------------------------------------------------------
# Deprecated shims (pre-registry entry points)
# ----------------------------------------------------------------------
#: Deprecated shim — the scheduler catalogue now lives in the
#: kind-aware component registry; this dict is a snapshot of it
#: (aliases included) **frozen at import**, for callers that predate
#: :class:`SchedulerSpec`.  Like the ``ALLOCATOR_FACTORIES`` shim, it
#: does not see later ``register_component("scheduler", ...)`` calls —
#: enumerate the registry (``scheduler_names()``) instead.
SCHEDULER_FACTORIES: Dict[str, Callable[[], Scheduler]] = {
    key: info.cls
    for info in component_registry("scheduler").values()
    for key in (info.name, *info.aliases)
}


def make_scheduler(kind: Union[str, Scheduler]) -> Scheduler:
    """Instantiate a scheduler by name (or pass one through).

    .. deprecated::
        Thin shim over :func:`resolve_scheduler`; new code should name
        schedulers with a :class:`SchedulerSpec` (e.g.
        ``"memory-aware?margin=1.5"``), which also carries parameters
        through CLI flags and JSON experiment files.  Unknown names
        still raise :class:`KeyError`.
    """
    warnings.warn(
        "make_scheduler is deprecated; use repro.serve.resolve_scheduler "
        "or a SchedulerSpec (e.g. 'memory-aware?margin=1.5')",
        DeprecationWarning, stacklevel=2,
    )
    return resolve_scheduler(kind)
