"""Admission scheduling policies with the allocator in the loop.

The simulator asks its scheduler which queued request to admit next —
and the scheduler may inspect *live allocator state* before answering.
This is the feedback path the offline trace replay cannot express: a
memory-aware policy holds a request back when the pool has no headroom,
so fragmentation (allocator-dependent!) directly changes admission
timing, queueing delay and therefore every latency metric.

Policies
--------
``fcfs``            strict arrival order.
``shortest-prompt`` admit the queued request with the smallest current
                    context first (SJF on prefill work).
``memory-aware``    arrival order, but skip requests whose projected
                    full-context KV footprint exceeds the allocator's
                    current headroom (with a safety margin).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Union

from repro.allocators.base import BaseAllocator
from repro.serve.request import ServeRequest
from repro.units import align_up
from repro.workloads.inference import kv_bytes
from repro.workloads.models import ModelSpec


@dataclass
class SchedulerView:
    """What an admission policy may observe about the serving state."""

    allocator: BaseAllocator
    model: ModelSpec
    running: int
    max_batch: int
    capacity: int
    kv_chunk_tokens: int

    def projected_kv_bytes(self, request: ServeRequest) -> int:
        """Chunk-rounded KV bytes for the request's *full* context."""
        tokens = align_up(max(request.total_tokens, 1), self.kv_chunk_tokens)
        return kv_bytes(self.model, tokens)

    def headroom_bytes(self, pool_reuse: float = 0.5) -> int:
        """Bytes the allocator can plausibly hand out right now.

        Unreserved device memory counts in full; reserved-but-inactive
        pool memory counts at ``pool_reuse`` because whether a shredded
        pool can actually serve a *large* KV block depends on the
        allocator — a splitting allocator may have fragmented it beyond
        use, while a stitching one can fuse it back.  This is the
        feedback path that makes admission allocator-dependent: a
        fragmented pool (high reserved, same active) shrinks the
        headroom a memory-aware policy sees.
        """
        stats = self.allocator.stats()
        unreserved = self.capacity - stats.reserved_bytes
        reusable = stats.reserved_bytes - stats.active_bytes
        return int(unreserved + pool_reuse * reusable)


class Scheduler(ABC):
    """Base admission policy."""

    name: str = "scheduler"

    @abstractmethod
    def select(
        self, queue: Sequence[ServeRequest], view: SchedulerView
    ) -> Optional[ServeRequest]:
        """Pick the queued request to admit next, or ``None`` to wait.

        The simulator only calls this while the batch has a free slot;
        the policy never needs to re-check ``view.running``.
        """


class FcfsScheduler(Scheduler):
    """First-come-first-served: strict arrival order."""

    name = "fcfs"

    def select(self, queue, view):
        del view
        return queue[0] if queue else None


class ShortestPromptScheduler(Scheduler):
    """Admit the smallest prefill first (SJF on the current context).

    Cuts mean TTFT under load at the cost of tail latency for long
    prompts; ``req_id`` breaks ties deterministically.
    """

    name = "shortest-prompt"

    def select(self, queue, view):
        del view
        if not queue:
            return None
        return min(queue, key=lambda r: (r.context_tokens, r.req_id))


class MemoryAwareScheduler(Scheduler):
    """FCFS, but only admit what the allocator can actually hold.

    Skips any request whose projected full-context KV (times a safety
    ``margin``) exceeds the current headroom reported by
    ``allocator.stats()`` — trading a little head-of-line blocking for
    far fewer mid-flight OOM preemptions.
    """

    name = "memory-aware"

    def __init__(self, margin: float = 1.25):
        if margin < 1.0:
            raise ValueError(f"margin must be >= 1.0, got {margin}")
        self.margin = margin

    def select(self, queue, view):
        headroom = view.headroom_bytes()
        for request in queue:
            if view.projected_kv_bytes(request) * self.margin <= headroom:
                return request
        return None


#: Named scheduler factories (the allocator equivalent lives in
#: :mod:`repro.api.registry`).
SCHEDULER_FACTORIES: Dict[str, Callable[[], Scheduler]] = {
    "fcfs": FcfsScheduler,
    "shortest-prompt": ShortestPromptScheduler,
    "sjf": ShortestPromptScheduler,  # alias
    "memory-aware": MemoryAwareScheduler,
}


def make_scheduler(kind: Union[str, Scheduler]) -> Scheduler:
    """Instantiate a scheduler by name (or pass one through)."""
    if isinstance(kind, Scheduler):
        return kind
    key = kind.lower()
    if key not in SCHEDULER_FACTORIES:
        known = ", ".join(sorted(SCHEDULER_FACTORIES))
        raise KeyError(f"unknown scheduler {kind!r}; known: {known}")
    return SCHEDULER_FACTORIES[key]()
