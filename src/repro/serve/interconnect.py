"""Interconnect models: what moving KV bytes between memories costs.

The serving stack moves KV-cache bytes across links in two places:
swap preemption parks a victim's KV in host memory (GPU↔host), and
disaggregated prefill/decode serving migrates a finished prefill's KV
to a decode replica (GPU↔GPU, see :mod:`repro.serve.disagg`).  Both
transfers are priced by an **interconnect model** registered under the
``interconnect`` component kind and named by the same
``"name?key=value"`` mini-DSL as every other policy:

``pcie``
    The host link.  ``gb_per_s`` / ``latency_us`` default to 0, the
    sentinel for "use the device latency model's PCIe figures"
    (:class:`~repro.gpu.latency.LatencyModel`, 24 GB/s + 25 µs by
    default) — so a bare ``pcie`` spec prices transfers exactly the
    way swap preemption always has.

``nvlink``
    A direct GPU↔GPU link: much higher bandwidth (200 GB/s default)
    and lower per-transfer setup latency (2 µs default), with no
    device fallback — the parameters *are* the link.

A transfer of ``size`` bytes costs ``latency_us + size / (gb_per_s *
GB) * 1e6`` microseconds, charged to the simulated clock of whichever
replica performs it.
"""

from __future__ import annotations

from abc import ABC
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Union

from repro.api.registry import (
    Param,
    SpecError,
    component_names,
    register_component,
    register_kind,
)
from repro.api.spec import ComponentSpec
from repro.units import GB

register_kind("interconnect", label="interconnect")


class Interconnect(ABC):
    """A point-to-point link KV bytes travel over.

    Stateless: one instance may price transfers for a whole fleet.
    ``transfer_us`` takes the device's
    :class:`~repro.gpu.latency.LatencyModel` so links with 0-sentinel
    parameters (``pcie``) can fall back to the modelled device figures.
    """

    name: str = "interconnect"

    def __init__(self, gb_per_s: float = 0.0, latency_us: float = 0.0):
        if gb_per_s < 0:
            raise ValueError(f"gb_per_s must be >= 0, got {gb_per_s}")
        if latency_us < 0:
            raise ValueError(f"latency_us must be >= 0, got {latency_us}")
        self.gb_per_s = gb_per_s
        self.latency_us = latency_us

    def _resolve(self, latency) -> tuple:
        """(bandwidth GB/s, setup µs) after device-fallback resolution."""
        return (self.gb_per_s or latency.pcie_gb_per_s,
                self.latency_us or latency.pcie_latency_us)

    def transfer_us(self, size: int, latency) -> float:
        """Microseconds one transfer of ``size`` bytes takes.

        ``latency`` is the transferring device's
        :class:`~repro.gpu.latency.LatencyModel` (used only by links
        whose parameters defer to the device, i.e. ``pcie`` with the 0
        sentinels).  The formula — setup latency plus size over
        bandwidth — is the same expression
        :meth:`~repro.gpu.latency.LatencyModel.pcie_transfer` uses, so
        a default ``pcie`` link prices byte-identically to it.
        """
        bandwidth, setup = self._resolve(latency)
        if bandwidth <= 0:
            raise ValueError(
                f"{self.name} bandwidth must be positive, got {bandwidth}")
        return setup + size / (bandwidth * GB) * 1e6


def _check_link(params: Dict[str, Any]) -> None:
    bandwidth = params.get("gb_per_s")
    if bandwidth is not None and bandwidth < 0:
        raise SpecError(
            f"interconnect gb_per_s must be >= 0, got {bandwidth}")
    latency = params.get("latency_us")
    if latency is not None and latency < 0:
        raise SpecError(
            f"interconnect latency_us must be >= 0, got {latency}")


def _check_nvlink(params: Dict[str, Any]) -> None:
    _check_link(params)
    bandwidth = params.get("gb_per_s")
    # nvlink has no device fallback, so the 0 sentinel is meaningless.
    if bandwidth is not None and bandwidth == 0:
        raise SpecError(
            "nvlink gb_per_s must be > 0 (only pcie falls back to the "
            "device latency model)")


@register_component(
    "interconnect", "pcie",
    params=(
        Param("gb_per_s", float, 0.0, kind="float",
              doc="link bandwidth, GB/s (0 = the device latency "
                  "model's PCIe bandwidth)"),
        Param("latency_us", float, 0.0, kind="float",
              doc="per-transfer setup latency, µs (0 = the device "
                  "latency model's PCIe latency)"),
    ),
    check=_check_link,
    description="host link: defaults to the device latency model's "
                "PCIe bandwidth/latency (swap preemption's pricing)",
)
class PcieInterconnect(Interconnect):
    """The host link; 0-valued parameters defer to the device model."""

    name = "pcie"


@register_component(
    "interconnect", "nvlink",
    params=(
        Param("gb_per_s", float, 200.0, kind="float",
              doc="link bandwidth, GB/s"),
        Param("latency_us", float, 2.0, kind="float",
              doc="per-transfer setup latency, µs"),
    ),
    check=_check_nvlink,
    description="direct GPU-to-GPU link: high bandwidth, low setup "
                "latency, no device fallback",
)
class NvlinkInterconnect(Interconnect):
    """A direct GPU↔GPU link parameterized entirely by its spec."""

    name = "nvlink"

    def __init__(self, gb_per_s: float = 200.0, latency_us: float = 2.0):
        if gb_per_s <= 0:
            raise ValueError(f"gb_per_s must be > 0, got {gb_per_s}")
        super().__init__(gb_per_s, latency_us)

    def _resolve(self, latency) -> tuple:
        del latency  # fully self-described, no device fallback
        return self.gb_per_s, self.latency_us


@dataclass(frozen=True)
class InterconnectSpec(ComponentSpec):
    """A validated (interconnect, parameters) pair.

    Speaks the same mini-DSL as :class:`repro.api.AllocatorSpec`::

        pcie
        pcie?gb_per_s=12
        nvlink?gb_per_s=300&latency_us=1.5
    """

    kind: ClassVar[str] = "interconnect"

    def build(self) -> Interconnect:
        """Instantiate the configured interconnect."""
        return super().build()


#: Anything the serving stack accepts where an interconnect is named.
InterconnectLike = Union[str, InterconnectSpec, Interconnect]


def interconnect_names(include_aliases: bool = False) -> List[str]:
    """Registered interconnect names, optionally with aliases."""
    return component_names("interconnect", include_aliases)


def resolve_interconnect(kind: InterconnectLike) -> Interconnect:
    """Build an interconnect from a spec string, spec, or instance."""
    if isinstance(kind, Interconnect):
        return kind
    return InterconnectSpec.parse(kind).build()
