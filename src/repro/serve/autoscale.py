"""Autoscalers: driving the replica count from observed load.

The multi-replica serving front-end (:mod:`repro.serve.cluster`)
dispatches each arrival to one of N identical replicas.  An autoscaler
decides, at every arrival, *how many* of those replicas are active —
scaling the fleet up under backlog pressure and back down when the
queues drain.  Policies are registered under the ``autoscaler``
component kind and named by the same ``"name?key=value"`` mini-DSL as
allocators:

``none``
    The fleet is always at full size (the front-end's original
    behaviour — every replica receives traffic from the first
    arrival).

``queue-depth``
    Classic hysteresis on per-replica backlog: when the mean
    outstanding token backlog per active replica exceeds ``high``, one
    more replica is activated; when it falls below ``low``, the
    most-recently-activated idle replica is retired.  ``high > low``
    keeps the controller from flapping.

The backlog signal is the same least-outstanding-work estimator the
dispatcher itself uses (assigned tokens, drained at the saturated
decode rate between arrivals) — exactly what a front-end can compute
online, with no peeking at simulation results.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Sequence, Union

from repro.api.registry import (
    Param,
    SpecError,
    component_names,
    register_component,
    register_kind,
)
from repro.api.spec import ComponentSpec

register_kind("autoscaler", label="autoscaler")


class Autoscaler(ABC):
    """Base autoscaling policy: a pure function of the backlog signal."""

    name: str = "autoscaler"

    def initial_replicas(self, max_replicas: int) -> int:
        """Active replicas before the first arrival."""
        return max_replicas

    @abstractmethod
    def decide(self, backlogs: Sequence[float], active: int,
               max_replicas: int) -> int:
        """New active replica count, in ``[1, max_replicas]``.

        ``backlogs`` holds every replica's outstanding-token estimate
        (index < ``active`` means the replica currently takes
        traffic); called once per arrival, after backlog decay.
        """


@register_component(
    "autoscaler", "none",
    description="fixed fleet: every replica active from the first arrival",
)
class NoAutoscaler(Autoscaler):
    """No autoscaling — the fleet always runs at full size."""

    name = "none"

    def decide(self, backlogs, active, max_replicas):
        del backlogs, active
        return max_replicas


def _check_queue_depth(params: Dict[str, Any]) -> None:
    high = params.get("high", 4000.0)
    low = params.get("low", 500.0)
    if high <= 0 or low < 0:
        raise SpecError(
            f"queue-depth thresholds must be positive (high={high}, low={low})")
    if low >= high:
        raise SpecError(
            f"queue-depth needs low < high for hysteresis, "
            f"got low={low}, high={high}")
    min_replicas = params.get("min_replicas")
    if min_replicas is not None and min_replicas < 1:
        raise SpecError(
            f"queue-depth min_replicas must be >= 1, got {min_replicas}")


@register_component(
    "autoscaler", "queue-depth",
    params=(
        Param("high", float, 4000.0, kind="float",
              doc="scale up when mean backlog tokens/replica exceed this"),
        Param("low", float, 500.0, kind="float",
              doc="scale down when mean backlog tokens/replica fall below"),
        Param("min_replicas", int, 1, aliases=("min",),
              doc="never retire below this many replicas"),
    ),
    check=_check_queue_depth,
    description="hysteresis on per-replica token backlog "
                "(scale up past `high`, down below `low`)",
)
class QueueDepthAutoscaler(Autoscaler):
    """Hysteresis controller on the per-replica backlog estimate."""

    name = "queue-depth"

    def __init__(self, high: float = 4000.0, low: float = 500.0,
                 min_replicas: int = 1):
        if high <= 0 or low < 0:
            raise ValueError(
                f"thresholds must be positive (high={high}, low={low})")
        if low >= high:
            raise ValueError(
                f"hysteresis needs low < high, got low={low}, high={high}")
        if min_replicas < 1:
            raise ValueError(f"min_replicas must be >= 1, got {min_replicas}")
        self.high = high
        self.low = low
        self.min_replicas = min_replicas

    def initial_replicas(self, max_replicas: int) -> int:
        return min(self.min_replicas, max_replicas)

    def decide(self, backlogs, active, max_replicas):
        floor = min(self.min_replicas, max_replicas)
        mean_backlog = sum(backlogs[:active]) / max(active, 1)
        if mean_backlog > self.high and active < max_replicas:
            return active + 1
        if mean_backlog < self.low and active > floor:
            # Only retire a replica that has drained: shrinking while
            # the victim still holds backlog would strand its estimate.
            if backlogs[active - 1] <= 0.0:
                return active - 1
        return active


@dataclass(frozen=True)
class AutoscalerSpec(ComponentSpec):
    """A validated (autoscaler, parameters) pair.

    Speaks the same mini-DSL as :class:`repro.api.AllocatorSpec`::

        none
        queue-depth?high=6000&low=800
    """

    kind: ClassVar[str] = "autoscaler"

    def build(self) -> Autoscaler:
        """Instantiate the configured autoscaler."""
        return super().build()


#: Anything the serving stack accepts where an autoscaler is named.
AutoscalerLike = Union[str, AutoscalerSpec, Autoscaler]


def autoscaler_names(include_aliases: bool = False):
    """Registered autoscaler names, optionally with aliases."""
    return component_names("autoscaler", include_aliases)


def resolve_autoscaler(kind: AutoscalerLike) -> Autoscaler:
    """Build an autoscaler from a spec string, spec, or instance."""
    if isinstance(kind, Autoscaler):
        return kind
    return AutoscalerSpec.parse(kind).build()
