"""Multi-GPU serving front-end: one arrival stream over N replicas.

A load balancer dispatches every incoming request to one of N identical
single-GPU replicas at arrival time (no request migration), using a
least-outstanding-work estimator: each replica's backlog of assigned
tokens, drained at the replica's saturated decode rate between
arrivals.  Each replica then runs its own
:class:`~repro.serve.simulator.ServingSimulator` on its own simulated
device, and the results are aggregated the way
:mod:`repro.sim.cluster` aggregates training ranks: the fleet's
makespan is the slowest replica's, memory headlines are worst-replica,
and SLO metrics are computed over the merged request population.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.api.result import WorstMemberRunResult
from repro.api.spec import AllocatorLike
from repro.obs.gauges import GaugePoint, GaugeSampler
from repro.obs.trace import FRONTEND_REPLICA, TraceRecorder
from repro.serve.autoscale import Autoscaler, AutoscalerLike, resolve_autoscaler
from repro.serve.kvcache import KVCacheLike, KVCacheMetrics, KVCacheModel
from repro.serve.metrics import ServingReport, ServingReportAccumulator, SloConfig
from repro.serve.preemption import PreemptionLike, PreemptionPolicy
from repro.serve.request import ServeRequest
from repro.serve.scheduler import SchedulerLike
from repro.serve.simulator import ServingConfig, ServingResult, ServingSimulator
from repro.sim.engine import AllocatorFactory
from repro.units import A100_80GB
from repro.workloads.models import ModelSpec, get_model


def dispatch_requests(
    requests: Iterable[ServeRequest],
    n_replicas: int,
    drain_tokens_per_s: float = 3000.0,
    autoscaler: Optional[Autoscaler] = None,
    gauges: Optional[GaugeSampler] = None,
    trace: Optional[TraceRecorder] = None,
    fleet: Optional[str] = None,
) -> List[List[ServeRequest]]:
    """Split one arrival stream into per-replica streams.

    Least-outstanding-work: assign each arrival to the replica with the
    smallest estimated token backlog, where backlogs drain at
    ``drain_tokens_per_s`` between arrivals.  This is what a front-end
    can actually compute online — it never peeks at simulation results.

    An ``autoscaler`` (see :mod:`repro.serve.autoscale`) decides per
    arrival how many of the ``n_replicas`` are *active*; arrivals only
    land on active replicas.  ``None`` (or the registered ``"none"``
    policy) keeps every replica active from the first arrival — the
    front-end's original behaviour, bit for bit.

    ``gauges`` / ``trace`` record the active-replica change points the
    autoscaler produces (as :meth:`GaugeSampler.note_active_replicas`
    and front-end ``autoscale`` trace events); dispatch decisions are
    identical with or without them.

    ``fleet`` names the replica pool when a front-end runs several of
    them (disaggregated serving dispatches a ``"prefill"`` and a
    ``"decode"`` fleet independently): change points are then tagged
    with the fleet so per-phase size series stay separable.  ``None``
    (colocated serving) is byte-identical to the original behaviour.
    """
    if n_replicas < 1:
        raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
    backlog = [0.0] * n_replicas
    last_t = 0.0
    active = (autoscaler.initial_replicas(n_replicas)
              if autoscaler is not None else n_replicas)
    noted = None  # last active count reported to the telemetry hooks
    shards: List[List[ServeRequest]] = [[] for _ in range(n_replicas)]
    for request in sorted(requests, key=lambda r: (r.arrival_s, r.req_id)):
        elapsed = max(0.0, request.arrival_s - last_t)
        last_t = request.arrival_s
        drained = elapsed * drain_tokens_per_s
        # Decay in place (no per-arrival list rebuild).  The clamp at
        # zero is applied per arrival on purpose: a lazily-drained heap
        # would need max(0, b - sum(drains)), which is not float-equal
        # to the iterated max(0, b - drain) sequence and would change
        # dispatch decisions at the margin.
        for i in range(n_replicas):
            drained_backlog = backlog[i] - drained
            backlog[i] = drained_backlog if drained_backlog > 0.0 else 0.0
        if autoscaler is not None:
            active = min(max(autoscaler.decide(backlog, active, n_replicas), 1),
                         n_replicas)
        if active != noted:
            if gauges is not None:
                gauges.note_active_replicas(request.arrival_s, active,
                                            fleet=fleet)
            if trace is not None:
                if fleet is None:
                    trace.record("autoscale", request.arrival_s,
                                 replica=FRONTEND_REPLICA, active=active)
                else:
                    trace.record("autoscale", request.arrival_s,
                                 replica=FRONTEND_REPLICA, active=active,
                                 fleet=fleet)
            noted = active
        target = min(range(active), key=lambda i: (backlog[i], i))
        backlog[target] += float(request.total_tokens)
        shards[target].append(request)
    return shards


@dataclass
class ServeClusterResult(WorstMemberRunResult):
    """Aggregated outcome of one multi-replica serving run."""

    replicas: List[ServingResult] = field(default_factory=list)
    autoscaler_name: str = "none"
    #: Front-end autoscaling change points: (arrival_s, active count).
    active_replica_points: List[Tuple[float, int]] = field(
        default_factory=list)
    _merged: Optional[List[ServeRequest]] = field(default=None, init=False,
                                                  repr=False, compare=False)

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    @property
    def requests(self) -> List[ServeRequest]:
        """The merged request population, in arrival order.

        Each replica's population is already sorted by (arrival,
        req_id) — the dispatcher preserves arrival order within a
        shard — so an n-way ``heapq.merge`` replaces a full re-sort,
        and the merge is computed once per result.
        """
        if self._merged is None:
            self._merged = list(heapq.merge(
                *(replica.requests for replica in self.replicas),
                key=lambda r: (r.arrival_s, r.req_id)))
        return self._merged

    @property
    def makespan_s(self) -> float:
        """The fleet finishes when its slowest replica does."""
        return max((r.makespan_s for r in self.replicas), default=0.0)

    @property
    def min_utilization(self) -> float:
        """The worst replica's memory utilization ratio."""
        return min(r.utilization for r in self.replicas)

    @property
    def max_peak_reserved_gb(self) -> float:
        """The worst replica's reserved peak (capacity planning view)."""
        return max(r.peak_reserved_gb for r in self.replicas)

    # -- the :class:`repro.api.RunResult` shared surface ---------------
    # Memory figures delegate to WorstMemberRunResult (worst replica).
    def _result_members(self) -> List[ServingResult]:
        return self.replicas

    @property
    def throughput(self) -> float:
        """Fleet-wide completed requests per second of makespan."""
        done = sum(r.completed for r in self.replicas)
        return done / max(self.makespan_s, 1e-9)

    @property
    def oom(self) -> bool:
        return False

    @property
    def kv_cache_name(self) -> str:
        """The fleet's (uniform) KV-cache model name."""
        return self.replicas[0].kv_cache_name if self.replicas else "chunked"

    @property
    def preemption_name(self) -> str:
        """The fleet's (uniform) preemption policy name."""
        return self.replicas[0].preemption_name if self.replicas else "recompute"

    @property
    def active_replicas(self) -> int:
        """Replicas the front-end actually routed traffic to (an
        autoscaled fleet may leave some replicas idle)."""
        return sum(1 for r in self.replicas if r.requests)

    @property
    def kv_metrics(self) -> Optional[KVCacheMetrics]:
        """Fleet-wide KV-cache metrics, merged across replicas.

        Counters, copy bytes and utilization samples sum; the peak
        fields sum *per-replica* peaks (the fleet's capacity-planning
        upper bound — replicas own disjoint memory, but their peaks
        need not coincide in time).
        """
        merged: Optional[KVCacheMetrics] = None
        for replica in self.replicas:
            metrics = replica.kv_metrics
            if metrics is None:
                continue
            if merged is None:
                merged = KVCacheMetrics(kv_cache=metrics.kv_cache,
                                        block_tokens=metrics.block_tokens)
            merged.kv_allocs += metrics.kv_allocs
            merged.kv_frees += metrics.kv_frees
            merged.peak_kv_bytes += metrics.peak_kv_bytes
            merged.peak_blocks += metrics.peak_blocks
            merged.grow_copy_bytes += metrics.grow_copy_bytes
            merged.preempt_copy_bytes += metrics.preempt_copy_bytes
            merged.swapped_bytes += metrics.swapped_bytes
            merged.migrated_bytes += metrics.migrated_bytes
            merged.util_sum += metrics.util_sum
            merged.util_samples += metrics.util_samples
        return merged

    def extras(self) -> Dict[str, object]:
        """Fleet-specific metrics beyond the shared surface."""
        out: Dict[str, object] = {
            "n_replicas": self.n_replicas,
            "completed": sum(r.completed for r in self.replicas),
            "rejected": sum(r.rejected for r in self.replicas),
            "preemptions": sum(r.preemptions for r in self.replicas),
            "makespan_s": self.makespan_s,
            "kv_cache": self.kv_cache_name,
            "preemption": self.preemption_name,
        }
        if self.autoscaler_name != "none":
            out["autoscaler"] = self.autoscaler_name
            out["active_replicas"] = self.active_replicas
        merged = self.kv_metrics
        if merged is not None:
            out["kv_internal_frag"] = round(merged.internal_frag_ratio, 3)
            if merged.swapped_bytes:
                out["swapped_mb"] = round(merged.swapped_bytes / (1 << 20), 1)
            if merged.migrated_bytes:
                out["migrated_mb"] = round(
                    merged.migrated_bytes / (1 << 20), 1)
        return out

    @property
    def gauge_points(self) -> List[GaugePoint]:
        """Every replica's gauge samples, merged in time order."""
        return sorted((point for replica in self.replicas
                       for point in replica.gauges),
                      key=lambda p: (p.t_s, p.replica))

    def report(self, slo: Optional[SloConfig] = None,
               streaming: bool = False) -> ServingReport:
        """Fleet-wide SLO report over the merged request population.

        ``streaming=True`` folds each replica's requests into a
        :class:`~repro.serve.metrics.ServingReportAccumulator` and
        merges the accumulators — constant memory, never touching the
        merged request list (percentiles come from merged t-digest
        sketches, within sketch tolerance of the exact path).
        """
        metrics = self.kv_metrics
        migrated_mb = ((metrics.migrated_bytes / (1 << 20))
                       if metrics is not None else 0.0)
        if streaming:
            merged: Optional[ServingReportAccumulator] = None
            for replica in self.replicas:
                acc = ServingReportAccumulator(slo)
                for request in replica.requests:
                    acc.observe(request)
                merged = acc if merged is None else merged.merge(acc)
            if merged is None:
                merged = ServingReportAccumulator(slo)
            return merged.report(
                self.makespan_s,
                utilization=self.min_utilization,
                peak_reserved_gb=self.max_peak_reserved_gb,
                migrated_mb=migrated_mb,
            )
        return ServingReport.from_requests(
            self.requests, self.makespan_s, slo,
            utilization=self.min_utilization,
            peak_reserved_gb=self.max_peak_reserved_gb,
            migrated_mb=migrated_mb,
        )

    def summary(self) -> str:
        """One-line fleet report."""
        report = self.report()
        return f"{self.n_replicas} replicas: {report.summary()}"


def run_serving_cluster(
    requests: Iterable[ServeRequest],
    model: Union[ModelSpec, str],
    n_replicas: int = 2,
    allocator: Union[AllocatorLike, AllocatorFactory] = "gmlake",
    capacity: int = A100_80GB,
    scheduler: SchedulerLike = "fcfs",
    config: Optional[ServingConfig] = None,
    kv_cache: KVCacheLike = "chunked",
    preemption: PreemptionLike = "recompute",
    autoscaler: AutoscalerLike = "none",
    trace: Optional[TraceRecorder] = None,
    gauges: Optional[GaugeSampler] = None,
) -> ServeClusterResult:
    """Load-balance ``requests`` over ``n_replicas`` single-GPU replicas.

    ``autoscaler`` drives how many replicas take traffic per arrival
    (see :mod:`repro.serve.autoscale`); ``n_replicas`` is the fleet's
    maximum size.  Every replica still runs (an idle replica just
    serves an empty stream), so memory headlines stay comparable.

    A single ``trace`` recorder and ``gauges`` sampler are shared by
    the front-end and every replica: trace events carry their replica
    id (front-end events use :data:`~repro.obs.trace.FRONTEND_REPLICA`)
    and gauge points are tagged per replica, so one Chrome trace shows
    the whole fleet as separate processes.
    """
    if isinstance(kv_cache, KVCacheModel):
        raise ValueError(
            "pass kv_cache as a spec string or KVCacheSpec so each "
            "replica builds its own model (a shared instance would mix "
            "block tables across replicas)"
        )
    if isinstance(preemption, PreemptionPolicy):
        raise ValueError(
            "pass preemption as a spec string or PreemptionSpec so each "
            "replica builds its own policy (a shared instance would mix "
            "swap ledgers across replicas)"
        )
    model = get_model(model) if isinstance(model, str) else model
    config = config if config is not None else ServingConfig()
    scaler = resolve_autoscaler(autoscaler)
    shards = dispatch_requests(requests, n_replicas,
                               drain_tokens_per_s=config.decode_tokens_per_s,
                               autoscaler=scaler, gauges=gauges, trace=trace)
    result = ServeClusterResult(autoscaler_name=scaler.name)
    if gauges is not None:
        result.active_replica_points = list(gauges.active_points)
    for replica_id, shard in enumerate(shards):
        simulator = ServingSimulator(
            model, allocator=allocator, capacity=capacity,
            scheduler=scheduler, config=config, replica_id=replica_id,
            kv_cache=kv_cache, preemption=preemption, trace=trace,
            gauges=gauges,
        )
        result.replicas.append(simulator.run(shard))
    return result
